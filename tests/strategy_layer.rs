//! The SamplingStrategy execution layer: trait-object dispatch must be
//! invisible (byte-identical reports vs direct runner calls) and the
//! parallel batch executor must be deterministic for any worker count.

use delorean::prelude::*;

fn scale() -> Scale {
    Scale::tiny()
}

fn plan() -> RegionPlan {
    SamplingConfig::for_scale(scale()).with_regions(3).plan()
}

/// All five strategies as boxed trait objects on one machine.
fn strategies(machine: MachineConfig) -> Vec<Box<dyn SamplingStrategy>> {
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(
            machine,
            CoolSimConfig::for_scale(scale()),
        )),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale()),
        )),
    ]
}

/// Byte-identical comparison: the full Debug rendering covers every
/// field, including cost passes and floating-point metrics.
fn fingerprint(report: &SimulationReport) -> String {
    format!("{report:?}")
}

#[test]
fn trait_object_dispatch_is_byte_identical_to_direct_calls() {
    let machine = MachineConfig::for_scale(scale());
    let plan = plan();
    let w = spec_workload("hmmer", scale(), 42).unwrap();

    // Direct calls on the concrete runner types...
    let direct = [
        SmartsRunner::new(machine).run(&w, &plan).into_report(),
        CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale()))
            .run(&w, &plan)
            .into_report(),
        MrrlRunner::new(machine).run(&w, &plan).into_report(),
        CheckpointWarmingRunner::new(machine)
            .run(&w, &plan)
            .into_report(),
        DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale()))
            .run(&w, &plan)
            .into_report(),
    ];

    // ...must match dispatch through Box<dyn SamplingStrategy> exactly.
    for (boxed, direct) in strategies(machine).iter().zip(&direct) {
        let via_trait = boxed.run(&w, &plan).into_report();
        assert_eq!(via_trait.strategy, boxed.name());
        assert_eq!(
            fingerprint(&via_trait),
            fingerprint(direct),
            "trait dispatch changed the result of {}",
            boxed.name()
        );
    }
}

#[test]
fn batch_executor_is_deterministic_across_thread_counts() {
    let machine = MachineConfig::for_scale(scale());
    let plan = plan();
    let strategies = strategies(machine);
    let workloads: Vec<_> = ["bwaves", "mcf"]
        .iter()
        .map(|n| spec_workload(n, scale(), 42).unwrap())
        .collect();

    let serial = BatchExecutor::with_threads(1).run_matrix(&strategies, &workloads, &plan);
    for threads in [2, 3, 8] {
        let parallel =
            BatchExecutor::with_threads(threads).run_matrix(&strategies, &workloads, &plan);
        assert_eq!(parallel.len(), serial.len());
        for (srow, prow) in serial.iter().zip(&parallel) {
            for (s, p) in srow.iter().zip(prow) {
                assert_eq!(
                    fingerprint(s),
                    fingerprint(p),
                    "threads={threads} changed {}/{}",
                    s.workload,
                    s.strategy
                );
            }
        }
    }
}

#[test]
fn batch_executor_matches_direct_trait_calls() {
    let machine = MachineConfig::for_scale(scale());
    let plan = plan();
    let strategies = strategies(machine);
    let workloads: Vec<_> = ["namd", "lbm"]
        .iter()
        .map(|n| spec_workload(n, scale(), 42).unwrap())
        .collect();

    let matrix = BatchExecutor::new().run_matrix(&strategies, &workloads, &plan);
    for (w, row) in workloads.iter().zip(&matrix) {
        for (s, cell) in strategies.iter().zip(row) {
            let direct = s.run(w, &plan);
            assert_eq!(fingerprint(cell), fingerprint(&direct));
        }
    }
}

#[test]
fn executor_preserves_strategy_extras() {
    let machine = MachineConfig::for_scale(scale());
    let plan = plan();
    let strategies = strategies(machine);
    let w = spec_workload("gamess", scale(), 42).unwrap();
    let reports = BatchExecutor::new().run_strategies(&strategies, &w, &plan);

    // Checkpoint extras: storage + preparation cost.
    let cw = reports[3]
        .extras::<delorean::sampling::CheckpointExtras>()
        .expect("checkpoint extras survive the executor");
    assert!(cw.storage_bytes > 0);
    assert!(cw.preparation_seconds > 0.0);

    // DeLorean extras: TT stats + DSW counts, recoverable as an output.
    let delorean = reports.into_iter().nth(4).unwrap();
    let out: DeLoreanOutput = delorean.try_into().expect("delorean extras");
    assert_eq!(out.stats.regions, plan.regions.len() as u64);

    // Baselines carry no extras.
    let smarts = SmartsRunner::new(machine).run(&w, &plan);
    assert!(smarts.extras::<DeLoreanExtras>().is_none());
}

#[test]
fn pipelined_trait_run_matches_serial_oracle() {
    // The serial runner is the oracle: the trait entry point (pipelined,
    // multi-threaded) must reproduce it exactly.
    let machine = MachineConfig::for_scale(scale());
    let plan = plan();
    let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale()));
    let w = spec_workload("zeusmp", scale(), 42).unwrap();
    let serial = runner.run_serial(&w, &plan);
    let piped: DeLoreanOutput = runner.run(&w, &plan).try_into().unwrap();
    assert_eq!(fingerprint(&serial.report), fingerprint(&piped.report));
    assert_eq!(serial.stats, piped.stats);
    assert_eq!(serial.dsw_counts, piped.dsw_counts);
}
