//! End-to-end integration: every suite workload through every strategy.

use delorean::prelude::*;

fn plan() -> RegionPlan {
    SamplingConfig::for_scale(Scale::tiny())
        .with_regions(3)
        .plan()
}

#[test]
fn all_24_workloads_run_through_delorean() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = plan();
    for w in spec2006(scale, 42) {
        let out: DeLoreanOutput = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale))
            .run(&w, &plan)
            .try_into()
            .unwrap();
        assert_eq!(out.report.regions.len(), 3, "{}", w.name());
        assert!(
            out.report.cpi() > 0.05,
            "{} CPI {}",
            w.name(),
            out.report.cpi()
        );
        assert!(
            out.report.cpi() < 30.0,
            "{} CPI {}",
            w.name(),
            out.report.cpi()
        );
        assert_eq!(out.stats.regions, 3, "{}", w.name());
        // The level counts add up to the access count in every region.
        for r in &out.report.regions {
            let total: u64 = r.detailed.level_counts.iter().sum();
            assert_eq!(total, r.detailed.mem_accesses, "{}", w.name());
        }
    }
}

#[test]
fn delorean_tracks_smarts_within_tolerance_on_stable_workloads() {
    // Tiny scale is aggressive; these workloads have structure that holds
    // up at any scale. The demo-scale experiments assert far tighter
    // bounds (see EXPERIMENTS.md).
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = plan();
    for name in ["bwaves", "hmmer", "gamess", "namd", "libquantum", "lbm"] {
        let w = spec_workload(name, scale, 42).unwrap();
        let reference = SmartsRunner::new(machine).run(&w, &plan);
        let out = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale)).run(&w, &plan);
        let err = out.report.cpi_error_vs(&reference);
        assert!(
            err < 0.15,
            "{name}: DeLorean {} vs SMARTS {} ({}%)",
            out.report.cpi(),
            reference.cpi(),
            (err * 100.0) as u32
        );
    }
}

#[test]
fn statistical_warming_beats_functional_warming() {
    // Both statistical strategies must decisively outrun SMARTS. (The
    // CoolSim-vs-DeLorean ordering is a property of the demo-scale
    // trap volume and is asserted by the recorded experiments, not at
    // tiny scale where warm-up intervals are 4000× compressed.)
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = plan();
    let w = spec_workload("perlbench", scale, 42).unwrap();
    let smarts = SmartsRunner::new(machine).run(&w, &plan);
    let coolsim = CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale)).run(&w, &plan);
    let delorean = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale)).run(&w, &plan);
    let s = smarts.mips_pipelined();
    assert!(s * 10.0 < coolsim.mips_pipelined(), "SMARTS {s} vs CoolSim");
    assert!(
        s * 10.0 < delorean.report.mips_pipelined(),
        "SMARTS {s} vs DeLorean"
    );
}

#[test]
fn collected_reuse_distances_are_directed() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = plan();
    for name in ["perlbench", "mcf", "omnetpp"] {
        let w = spec_workload(name, scale, 42).unwrap();
        let coolsim = CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale)).run(&w, &plan);
        let delorean =
            DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale)).run(&w, &plan);
        assert!(
            delorean.report.collected_reuse_distances * 2 < coolsim.collected_reuse_distances,
            "{name}: DSW {} vs RSW {}",
            delorean.report.collected_reuse_distances,
            coolsim.collected_reuse_distances
        );
    }
}

#[test]
fn reports_have_usable_debug_output() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = plan();
    let w = spec_workload("hmmer", scale, 42).unwrap();
    let report = SmartsRunner::new(machine).run(&w, &plan);
    let dbg = format!("{report:?}");
    assert!(dbg.contains("hmmer"));
    assert!(dbg.contains("smarts"));
}
