//! Armed fault-injection determinism suite: the PR 9 recovery
//! contract, pinned end to end.
//!
//! The contract has three clauses:
//!
//! 1. **Isolation is scheduling, never semantics** — a fault-isolated
//!    run with nothing armed, and a run whose injected faults were all
//!    absorbed by retries, are bitwise identical to the plain run at
//!    every worker count, for every strategy.
//! 2. **Quarantine is deterministic and typed** — units struck past
//!    the retry budget quarantine with their attempt count and
//!    classified fault, the same set at every worker count, and the
//!    partial report covers exactly the surviving units.
//! 3. **The journal restores what it recorded, verbatim** — a killed
//!    sweep resumes to the uninterrupted matrix; damaged journals are
//!    truncated to their valid prefix (lost cells re-execute); a
//!    journal from a different sweep configuration is a hard error.
//!
//! These tests live in their own integration binary on purpose: the
//! fault registry is process-global and [`fault::arm`] serializes armed
//! sections, so every test here holds an arm guard — a site-less plan
//! when it needs a clean run — and plain (non-isolated) runs, which
//! traverse no sites, need no guard at all.

use delorean::bench::headline_strategies;
use delorean::prelude::*;
use delorean::trace::fault::{self, FaultKind, FaultPlan, FaultSite};
use delorean::trace::JournalError;
use std::path::PathBuf;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("delorean-fij-{}-{tag}", std::process::id()))
}

/// Every strategy, including SMARTS's speculative warm lane (whose
/// isolated path adds the `ReconcilerCommit` site to `UnitEntry`).
fn all_strategies(scale: Scale, machine: MachineConfig) -> Vec<Box<dyn SamplingStrategy>> {
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(SmartsRunner::new(machine).with_speculation(ProxyStateSource::StatModel)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ]
}

/// Smallest seed whose plan hits a nonempty strict subset of
/// `0..units` at `site` with period 2; `max_first` additionally forces
/// the first selected unit below it (so a chain has a downstream to
/// poison). Selection is a pure function of `(seed, site, unit)`, so
/// the caller can change strikes/kinds freely on the returned seed.
fn seed_hitting_subset(site: FaultSite, units: u64, max_first: u64) -> u64 {
    (0..4096u64)
        .find(|&seed| {
            let plan = FaultPlan::new(seed).at(site).every(2);
            let hit: Vec<u64> = (0..units)
                .filter(|&u| plan.fault_for(site, u, 0).is_some())
                .collect();
            !hit.is_empty() && (hit.len() as u64) < units && hit[0] < max_first
        })
        .expect("some seed hits a strict subset")
}

#[test]
fn clean_isolated_runs_match_plain_runs_bitwise_at_every_worker_count() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(4).plan();
    let w = spec_workload("soplex", scale, 42).unwrap();
    let policy = FaultPolicy::default();

    // Site-less armed plan: holds the gate so no other test's plan is
    // live, while every instrumented site stays a no-op.
    let _guard = fault::arm(FaultPlan::new(0));
    for s in all_strategies(scale, machine) {
        let plain = s.run_with_workers(&w, &plan, 1).into_report();
        for workers in WORKER_COUNTS {
            let iso = s.run_isolated(&w, &plan, workers, &policy);
            assert!(
                iso.is_complete(),
                "{}: clean isolated run quarantined at {workers} workers: {:?}",
                s.name(),
                iso.quarantined
            );
            assert_eq!(
                plain,
                iso.report,
                "{}: isolation changed the report at {workers} workers",
                s.name()
            );
        }
    }
}

#[test]
fn faults_absorbed_by_retries_never_change_the_report() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(4).plan();
    let w = spec_workload("hmmer", scale, 42).unwrap();
    let policy = FaultPolicy::default();

    // Strike every unit at both retryable sites, once fewer than the
    // attempt budget, drawing from the full fault menu (Delay is the
    // benign stall — a delayed unit succeeds on its first attempt).
    let strike_plan = FaultPlan::new(2019)
        .at(FaultSite::UnitEntry)
        .at(FaultSite::ReconcilerCommit)
        .strikes(policy.retry_budget)
        .kinds(&[
            FaultKind::Panic,
            FaultKind::TraceError,
            FaultKind::Timeout,
            FaultKind::Delay,
        ]);
    for s in all_strategies(scale, machine) {
        let plain = s.run_with_workers(&w, &plan, 1).into_report();
        for workers in WORKER_COUNTS {
            // Fresh arm per run: occurrence counters restart, so every
            // run sees the identical fault schedule.
            let guard = fault::arm(strike_plan);
            let iso = s.run_isolated(&w, &plan, workers, &policy);
            drop(guard);
            assert!(
                iso.is_complete(),
                "{}: recoverable faults quarantined at {workers} workers: {:?}",
                s.name(),
                iso.quarantined
            );
            assert_eq!(
                plain,
                iso.report,
                "{}: a retried fault changed the report at {workers} workers",
                s.name()
            );
        }
    }
}

#[test]
fn exhausted_units_quarantine_deterministically_across_worker_counts() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(5).plan();
    let n_units = plan.regions.len() as u64;
    let w = spec_workload("astar", scale, 42).unwrap();
    let policy = FaultPolicy::default();
    // DeLorean's units are independent (no warm chain), so quarantine
    // hits exactly the struck subset and nothing downstream.
    let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));

    let seed = seed_hitting_subset(FaultSite::UnitEntry, n_units, n_units);
    let kill_plan = FaultPlan::new(seed)
        .at(FaultSite::UnitEntry)
        .every(2)
        .strikes(u32::MAX)
        .kinds(&[FaultKind::Panic]);
    let mut reference: Option<(Vec<u32>, SimulationReport)> = None;
    for workers in WORKER_COUNTS {
        let guard = fault::arm(kill_plan);
        let iso = runner.run_isolated(&w, &plan, workers, &policy);
        drop(guard);
        assert!(!iso.is_complete(), "the kill plan never fired");
        for f in &iso.quarantined {
            assert_eq!(
                f.attempts,
                policy.max_attempts(),
                "unit {} gave up early",
                f.unit
            );
            assert!(
                matches!(f.fault, UnitFault::Panicked { .. }),
                "unit {}: expected a classified panic, got {}",
                f.unit,
                f.fault
            );
        }
        let units: Vec<u32> = iso.quarantined.iter().map(|f| f.unit).collect();
        match &reference {
            None => reference = Some((units, iso.report)),
            Some((r_units, r_report)) => {
                assert_eq!(
                    r_units, &units,
                    "quarantine set changed at {workers} workers"
                );
                assert_eq!(
                    r_report, &iso.report,
                    "partial report changed at {workers} workers"
                );
            }
        }
    }
    let (units, report) = reference.unwrap();
    assert_eq!(
        report.regions.len() + units.len(),
        plan.regions.len(),
        "the partial report must cover exactly the surviving units"
    );
}

#[test]
fn reconciler_exhaustion_poisons_the_downstream_chain() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(5).plan();
    let n_units = plan.regions.len() as u64;
    let w = spec_workload("hmmer", scale, 42).unwrap();
    let policy = FaultPolicy::default();
    let runner = SmartsRunner::new(machine).with_speculation(ProxyStateSource::StatModel);

    // First struck unit strictly before the last, so there is a chain
    // to poison downstream of it.
    let seed = seed_hitting_subset(FaultSite::ReconcilerCommit, n_units, n_units - 1);
    let kill_plan = FaultPlan::new(seed)
        .at(FaultSite::ReconcilerCommit)
        .every(2)
        .strikes(u32::MAX)
        .kinds(&[FaultKind::Panic]);
    let mut reference: Option<Vec<u32>> = None;
    for workers in [1, 2, 4] {
        let guard = fault::arm(kill_plan);
        let iso = runner.run_isolated(&w, &plan, workers, &policy);
        drop(guard);
        assert!(!iso.is_complete(), "the reconciler plan never fired");
        let first = *iso
            .quarantined
            .iter()
            .map(|f| &f.unit)
            .min()
            .expect("at least one quarantined unit");
        // The first casualty exhausted the commit gate's retries...
        let head = iso
            .quarantined
            .iter()
            .find(|f| f.unit == first)
            .expect("first casualty present");
        assert_eq!(head.attempts, policy.max_attempts());
        assert!(matches!(head.fault, UnitFault::Panicked { .. }));
        // ...and everything after it is chain-poisoned, never run.
        for unit in (first + 1)..plan.regions.len() as u32 {
            let f = iso
                .quarantined
                .iter()
                .find(|f| f.unit == unit)
                .unwrap_or_else(|| panic!("unit {unit} escaped the poisoned chain"));
            assert_eq!(f.attempts, 0, "poisoned unit {unit} must never run");
            assert!(
                matches!(f.fault, UnitFault::ChainPoisoned { upstream } if upstream == first),
                "unit {unit}: expected ChainPoisoned by {first}, got {}",
                f.fault
            );
        }
        let units: Vec<u32> = iso.quarantined.iter().map(|f| f.unit).collect();
        match &reference {
            None => reference = Some(units),
            Some(r) => assert_eq!(r, &units, "poison set changed at {workers} workers"),
        }
    }
}

#[test]
fn killed_journaled_sweep_resumes_to_the_uninterrupted_matrix() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let workloads: Vec<_> = ["hmmer", "mcf"]
        .iter()
        .map(|n| spec_workload(n, scale, 42).unwrap())
        .collect();
    let strategies = headline_strategies(scale, machine);
    let cells = workloads.len() * strategies.len();
    let exec = BatchExecutor::with_threads(2);
    let policy = FaultPolicy::default();
    let path = temp("kill-resume.dlj");
    let _ = std::fs::remove_file(&path);

    let clean = exec.run_matrix(&strategies, &workloads, &plan);

    // "Kill" the sweep: quarantine a strict subset of cells, leaving
    // the journal holding only the completed ones — byte for byte the
    // state a killed process leaves behind.
    let seed = seed_hitting_subset(FaultSite::UnitEntry, cells as u64, cells as u64);
    let guard = fault::arm(
        FaultPlan::new(seed)
            .at(FaultSite::UnitEntry)
            .every(2)
            .strikes(u32::MAX),
    );
    let killed = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &path)
        .unwrap();
    drop(guard);
    assert!(!killed.is_complete(), "the kill plan never fired");
    let lost = killed.quarantined.len();

    // Resume clean: restored cells verbatim, only the lost cells run,
    // and every cell equals the uninterrupted matrix.
    let _guard = fault::arm(FaultPlan::new(0));
    let resumed = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &path)
        .unwrap();
    assert!(resumed.is_complete());
    assert_eq!(resumed.resumed_cells, cells - lost);
    assert_eq!(resumed.executed_cells, lost);
    for (crow, rrow) in clean.iter().zip(&resumed.matrix) {
        for (c, r) in crow.iter().zip(rrow) {
            let r = r.as_ref().expect("complete run");
            assert_eq!(
                c.report, r.report,
                "{}/{}: resumed cell diverged",
                c.workload, c.strategy
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn journal_damage_truncates_to_the_valid_prefix_and_reexecutes_lost_cells() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let workloads = vec![spec_workload("soplex", scale, 42).unwrap()];
    let strategies = headline_strategies(scale, machine);
    let cells = workloads.len() * strategies.len();
    let exec = BatchExecutor::with_threads(2);
    let policy = FaultPolicy::default();
    let path = temp("damage.dlj");
    let _ = std::fs::remove_file(&path);

    let _guard = fault::arm(FaultPlan::new(0));
    let clean = exec.run_matrix(&strategies, &workloads, &plan);
    let full = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &path)
        .unwrap();
    assert!(full.is_complete());
    assert_eq!(full.executed_cells, cells);

    let matches_clean = |run: &MatrixRun| {
        for (crow, rrow) in clean.iter().zip(&run.matrix) {
            for (c, r) in crow.iter().zip(rrow) {
                assert_eq!(c.report, r.as_ref().expect("complete run").report);
            }
        }
    };

    // A bit flip in the final entry tears it: the resume keeps the
    // valid prefix, re-executes the one lost cell, and repairs the
    // journal — the matrix still equals the uninterrupted run.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    let flipped = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &path)
        .unwrap();
    assert!(flipped.is_complete());
    assert_eq!(flipped.resumed_cells, cells - 1);
    assert_eq!(flipped.executed_cells, 1);
    matches_clean(&flipped);

    // A truncated tail (a write cut off mid-entry) behaves the same.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
    let chopped = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &path)
        .unwrap();
    assert!(chopped.is_complete());
    assert_eq!(chopped.resumed_cells, cells - 1);
    assert_eq!(chopped.executed_cells, 1);
    matches_clean(&chopped);

    // Header damage is *not* recoverable: the file's provenance is
    // gone, so resuming is a hard error, never silent re-execution.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[4] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();
    let err = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &path)
        .unwrap_err();
    assert!(
        !matches!(err, JournalError::Io(_)),
        "header damage must classify, not surface as I/O: {err}"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn resuming_with_a_different_sweep_configuration_is_a_hard_error() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let strategies = headline_strategies(scale, machine);
    let exec = BatchExecutor::with_threads(2);
    let policy = FaultPolicy::default();
    let path = temp("tag.dlj");
    let _ = std::fs::remove_file(&path);

    let _guard = fault::arm(FaultPlan::new(0));
    let first = vec![spec_workload("hmmer", scale, 42).unwrap()];
    exec.run_matrix_journaled(&strategies, &first, &plan, &policy, &path)
        .unwrap();

    // Same path, different workload list: the tag catches it before a
    // single cell is restored into the wrong sweep.
    let second = vec![spec_workload("mcf", scale, 42).unwrap()];
    match exec.run_matrix_journaled(&strategies, &second, &plan, &policy, &path) {
        Err(JournalError::TagMismatch { expected, found }) => assert_ne!(expected, found),
        other => panic!("expected TagMismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}
