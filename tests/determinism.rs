//! Determinism guarantees: the whole system is a pure function of
//! (workload seed, configuration) — the property that lets the
//! time-traveling passes observe one consistent execution.

use delorean::prelude::*;

#[test]
fn workloads_are_position_addressable() {
    // Visiting accesses in any order yields identical records.
    let w = spec_workload("xalancbmk", Scale::tiny(), 42).unwrap();
    let forward: Vec<_> = w.iter_range(10_000..10_100).collect();
    let mut backward: Vec<_> = (10_000..10_100).rev().map(|k| w.access_at(k)).collect();
    backward.reverse();
    let random_order: Vec<_> = [50u64, 3, 99, 0, 77]
        .iter()
        .map(|&o| w.access_at(10_000 + o))
        .collect();
    assert_eq!(forward, backward);
    assert_eq!(random_order[0], forward[50]);
    assert_eq!(random_order[3], forward[0]);
}

#[test]
fn every_strategy_is_run_to_run_deterministic() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
    let w = spec_workload("astar", scale, 42).unwrap();

    let s1 = SmartsRunner::new(machine).run(&w, &plan);
    let s2 = SmartsRunner::new(machine).run(&w, &plan);
    assert_eq!(s1.total(), s2.total());

    let c1 = CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale)).run(&w, &plan);
    let c2 = CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale)).run(&w, &plan);
    assert_eq!(c1.total(), c2.total());
    assert_eq!(c1.collected_reuse_distances, c2.collected_reuse_distances);

    let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));
    let d1: DeLoreanOutput = runner.run(&w, &plan).try_into().unwrap();
    let d2: DeLoreanOutput = runner.run(&w, &plan).try_into().unwrap();
    assert_eq!(d1.report.total(), d2.report.total());
    assert_eq!(d1.stats, d2.stats);
}

#[test]
fn pipelined_and_scheduled_delorean_agree_with_serial_across_workloads() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    for name in ["bwaves", "mcf", "povray", "GemsFDTD", "calculix"] {
        let w = spec_workload(name, scale, 42).unwrap();
        let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));
        let serial = runner.run_serial(&w, &plan);
        // Region-parallel (the trait entry point).
        let scheduled: DeLoreanOutput = runner.run_with_workers(&w, &plan, 4).try_into().unwrap();
        assert_eq!(serial.report.total(), scheduled.report.total(), "{name}");
        assert_eq!(serial.stats, scheduled.stats, "{name}");
        assert_eq!(serial.dsw_counts, scheduled.dsw_counts, "{name}");
        // Pass-pipelined (the §3.2-faithful alternative).
        let piped = delorean::core::pipeline::run_pipelined(
            &w,
            runner.machine(),
            runner.timing(),
            runner.cost_model(),
            runner.config(),
            &plan,
        );
        assert_eq!(serial.report.total(), piped.report.total(), "{name}");
        assert_eq!(serial.stats, piped.stats, "{name}");
        assert_eq!(serial.dsw_counts, piped.dsw_counts, "{name}");
    }
}

#[test]
fn region_scheduler_reports_are_identical_at_any_worker_count() {
    // The region-parallel determinism contract: for every strategy, the
    // scheduler at 2/4/8 workers must reproduce the sequential driver
    // (1 worker) byte for byte — regions, counters, collected reuses and
    // the full f64 cost accounting (units included). `SimulationReport`
    // equality covers every field.
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(4).plan();
    let w = spec_workload("soplex", scale, 42).unwrap();

    let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ];
    for s in &strategies {
        let sequential = s.run_with_workers(&w, &plan, 1);
        for workers in [2, 4, 8] {
            let parallel = s.run_with_workers(&w, &plan, workers);
            assert_eq!(
                sequential.report,
                parallel.report,
                "{} diverged at {workers} workers",
                s.name()
            );
        }
        // The runner's default `run` is the same decomposition.
        assert_eq!(sequential.report, s.run(&w, &plan).report, "{}", s.name());
    }

    // DeLorean extras (TT statistics, DSW counts) obey the same contract.
    let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));
    let serial = runner.run_serial(&w, &plan);
    for workers in [2, 4, 8] {
        let parallel: DeLoreanOutput = runner
            .run_with_workers(&w, &plan, workers)
            .try_into()
            .unwrap();
        assert_eq!(serial.report, parallel.report, "workers={workers}");
        assert_eq!(serial.stats, parallel.stats, "workers={workers}");
        assert_eq!(serial.dsw_counts, parallel.dsw_counts, "workers={workers}");
    }
}

#[test]
fn speculative_warm_lane_reports_are_bitwise_sequential_for_every_proxy() {
    // The PR 8 contract: breaking SMARTS's warm chain by speculation
    // must never change the report — every proxy source, at every
    // worker count, reproduces the sequential chained run in full
    // (regions, counters and the f64 cost accounting), and the
    // commit/miss outcomes themselves are worker-count invariant.
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let w = spec_workload("hmmer", scale, 42).unwrap();
    let sequential = SmartsRunner::new(machine).run_with_workers(&w, &plan, 1);

    for proxy in [
        ProxyStateSource::Cold,
        ProxyStateSource::NearestBoundary,
        ProxyStateSource::StatModel,
        ProxyStateSource::Poisoned,
    ] {
        let runner = SmartsRunner::new(machine).with_speculation(proxy);
        let at_one = runner.run_with_workers(&w, &plan, 1);
        assert_eq!(
            sequential.report,
            at_one.report,
            "{}: speculation changed the sequential report",
            proxy.name()
        );
        for workers in [2, 4, 8] {
            let spec = runner.run_with_workers(&w, &plan, workers);
            assert_eq!(
                sequential.report,
                spec.report,
                "{}: diverged at {workers} workers",
                proxy.name()
            );
            assert_eq!(
                at_one.extras::<SpeculationExtras>(),
                spec.extras::<SpeculationExtras>(),
                "{}: outcomes changed at {workers} workers",
                proxy.name()
            );
        }
    }
}

#[test]
fn poisoned_proxy_forces_full_re_measure_and_still_matches() {
    // A proxy that is wrong for every region is the worst case: the
    // reconciler must re-measure everything from the true carried
    // state — and the report must still equal sequential SMARTS.
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let w = spec_workload("astar", scale, 42).unwrap();
    let sequential = SmartsRunner::new(machine).run_with_workers(&w, &plan, 1);
    let poisoned = SmartsRunner::new(machine)
        .with_speculation(ProxyStateSource::Poisoned)
        .run_with_workers(&w, &plan, 4);
    let extras = poisoned
        .extras::<SpeculationExtras>()
        .expect("speculative runs carry extras");
    assert_eq!(extras.hits(), 0, "a poisoned proxy must never commit");
    assert_eq!(sequential.report, poisoned.report);

    // Checkpoint preparation shares the warm chain and the same
    // guarantee: speculative preparation produces the same snapshots,
    // cost and downstream evaluation report.
    let runner = CheckpointWarmingRunner::new(machine);
    let seq_set = runner.prepare(&w, &plan);
    for proxy in [ProxyStateSource::StatModel, ProxyStateSource::Poisoned] {
        for workers in [2, 8] {
            let (spec_set, _extras) = runner.prepare_speculative(&w, &plan, proxy, workers);
            assert_eq!(
                seq_set.preparation_seconds,
                spec_set.preparation_seconds,
                "{}: preparation cost diverged at {workers} workers",
                proxy.name()
            );
        }
    }
}

#[test]
fn different_seeds_give_different_executions_same_structure() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
    let w1 = spec_workload("gromacs", scale, 1).unwrap();
    let w2 = spec_workload("gromacs", scale, 2).unwrap();
    let r1 = SmartsRunner::new(machine).run(&w1, &plan);
    let r2 = SmartsRunner::new(machine).run(&w2, &plan);
    // Different executions...
    assert_ne!(r1.total(), r2.total());
    // ...but statistically similar behaviour (same generative model).
    let rel = (r1.cpi() - r2.cpi()).abs() / r1.cpi();
    assert!(rel < 0.35, "seed changed CPI by {:.0}%", rel * 100.0);
}
