//! Design-space exploration must agree with standalone DeLorean runs:
//! the shared warm-up may not change any analyst's answer.

use delorean::prelude::*;

#[test]
fn dse_analyst_matches_standalone_runner() {
    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let w = spec_workload("zeusmp", scale, 42).unwrap();
    let base = MachineConfig::for_scale(scale);
    let config = DeLoreanConfig::for_scale(scale);

    // Standalone run at the default machine, through the strategy layer.
    let standalone: DeLoreanOutput = DeLoreanRunner::new(base, config.clone())
        .run(&w, &plan)
        .try_into()
        .unwrap();

    // DSE with the same machine among the analysts.
    let machines = vec![
        base,
        base.with_llc_paper_bytes(scale, 64 << 20),
        base.with_llc_paper_bytes(scale, 512 << 20),
    ];
    let dse = DesignSpaceExplorer::new(base, config).run(&w, &plan, &machines);

    let via_dse = &dse.outputs[0];
    assert_eq!(
        standalone.report.cpi(),
        via_dse.report.cpi(),
        "shared warm-up changed the default machine's CPI"
    );
    assert_eq!(standalone.report.total(), via_dse.report.total());
    assert_eq!(standalone.dsw_counts, via_dse.dsw_counts);
}

#[test]
fn dse_mpki_is_monotone_in_llc_size() {
    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let base = MachineConfig::for_scale(scale);
    let sizes = MachineConfig::llc_sweep_paper_bytes();
    let machines: Vec<MachineConfig> = sizes
        .iter()
        .map(|&s| base.with_llc_paper_bytes(scale, s))
        .collect();
    for name in ["lbm", "libquantum", "omnetpp"] {
        let w = spec_workload(name, scale, 42).unwrap();
        let dse = DesignSpaceExplorer::new(base, DeLoreanConfig::for_scale(scale))
            .run(&w, &plan, &machines);
        let mpki: Vec<f64> = dse.outputs.iter().map(|o| o.report.llc_mpki()).collect();
        for pair in mpki.windows(2) {
            assert!(
                pair[1] <= pair[0] + 1.0,
                "{name}: MPKI rose with LLC size: {mpki:?}"
            );
        }
    }
}

#[test]
fn dse_shares_warming_cost() {
    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
    let base = MachineConfig::for_scale(scale);
    let sizes = MachineConfig::llc_sweep_paper_bytes();
    let machines: Vec<MachineConfig> = sizes
        .iter()
        .map(|&s| base.with_llc_paper_bytes(scale, s))
        .collect();
    let w = spec_workload("leslie3d", scale, 42).unwrap();
    let dse =
        DesignSpaceExplorer::new(base, DeLoreanConfig::for_scale(scale)).run(&w, &plan, &machines);
    // 10 analysts must cost far less than 10 runs.
    let marginal = dse.marginal_cost_factor(10);
    assert!(marginal < 3.0, "marginal cost {marginal}");
    // Warming dominates a single analyst (paper: ~235×).
    assert!(
        dse.warming_to_detailed_ratio() > 2.0,
        "warming/detailed {}",
        dse.warming_to_detailed_ratio()
    );
}
