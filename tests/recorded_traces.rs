//! Recorded (captured) traces through the full methodology: what a user
//! with real Pin/DynamoRIO logs would do.

use delorean::prelude::*;
use delorean::trace::RecordedTrace;

#[test]
fn recorded_trace_runs_all_strategies() {
    let scale = Scale::tiny();
    let source = spec_workload("tonto", scale, 42).unwrap();
    let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
    // Capture enough of the source execution to cover the plan.
    let needed = source.access_index_at_instr(plan.total_instrs()) + 1;
    let trace = RecordedTrace::capture(&source, 0..needed);
    let machine = MachineConfig::for_scale(scale);

    let smarts = SmartsRunner::new(machine).run(&trace, &plan);
    let delorean =
        DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale)).run(&trace, &plan);
    assert!(smarts.cpi() > 0.0);
    assert!(delorean.report.cpi() > 0.0);
    let err = delorean.report.cpi_error_vs(&smarts);
    assert!(err < 0.25, "recorded-trace error {err}");
}

#[test]
fn recorded_capture_is_equivalent_to_the_source() {
    // Same plan over the source workload and its captured copy must give
    // identical SMARTS results (the capture covers the whole plan).
    let scale = Scale::tiny();
    let source = spec_workload("gamess", scale, 42).unwrap();
    let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
    let needed = source.access_index_at_instr(plan.total_instrs()) + 1;
    let trace = RecordedTrace::capture(&source, 0..needed);
    let machine = MachineConfig::for_scale(scale);

    let on_source = SmartsRunner::new(machine).run(&source, &plan);
    let on_trace = SmartsRunner::new(machine).run(&trace, &plan);
    assert_eq!(on_source.total(), on_trace.total());
}
