//! Property-based integration tests: invariants over randomized workload
//! compositions and configurations.

use delorean::prelude::*;
use delorean::statmodel::exact::ExactStackProcessor;
use delorean::trace::{Pattern, PhasedWorkloadBuilder, StreamSpec};
use proptest::prelude::*;

/// Strategy generating a small but structurally diverse workload.
fn arb_workload() -> impl Strategy<Value = (u64, Vec<(u8, u32, u64)>)> {
    // (seed, streams of (kind, weight, size_param))
    (
        any::<u64>(),
        prop::collection::vec((0u8..4, 1u32..8, 16u64..512), 1..4),
    )
}

fn build(seed: u64, streams: &[(u8, u32, u64)]) -> delorean::trace::PhasedWorkload {
    let specs: Vec<StreamSpec> = streams
        .iter()
        .map(|&(kind, weight, size)| {
            let pattern = match kind {
                0 => Pattern::Stream {
                    lines: size,
                    stride_lines: 1,
                },
                1 => Pattern::RandomUniform { lines: size },
                2 => Pattern::PermutationWalk { lines: size },
                _ => Pattern::HotCold {
                    hot_lines: (size / 4).max(1),
                    cold_lines: size,
                    hot_permille: 800,
                },
            };
            StreamSpec::new(pattern, weight)
        })
        .collect();
    PhasedWorkloadBuilder::new("prop", seed)
        .mem_period(3)
        .phase(100_000, specs)
        .build()
        .expect("generated spec is valid")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    #[test]
    fn position_addressability_holds_for_arbitrary_compositions(
        (seed, streams) in arb_workload(),
        probes in prop::collection::vec(0u64..5_000_000, 8),
    ) {
        let w = build(seed, &streams);
        for &k in &probes {
            prop_assert_eq!(w.access_at(k), w.access_at(k));
        }
        // Sequential and random access orders agree.
        let seq: Vec<_> = w.iter_range(100..120).collect();
        for (i, a) in seq.iter().enumerate() {
            prop_assert_eq!(*a, w.access_at(100 + i as u64));
        }
    }

    #[test]
    fn statstack_tracks_exact_lru_for_arbitrary_compositions(
        (seed, streams) in arb_workload(),
    ) {
        let w = build(seed, &streams);
        let n = 20_000u64;
        // Full-information profile.
        let mut profile = delorean::statmodel::ReuseProfile::new();
        let mut last = std::collections::HashMap::new();
        let mut exact = ExactStackProcessor::new();
        let mut misses_64 = 0u64;
        let mut misses_1024 = 0u64;
        for a in w.iter_range(0..n) {
            match exact.access(a.line()) {
                Some(sd) => {
                    if sd >= 64 { misses_64 += 1; }
                    if sd >= 1024 { misses_1024 += 1; }
                }
                None => {
                    misses_64 += 1;
                    misses_1024 += 1;
                }
            }
            if let Some(p) = last.insert(a.line(), a.index) {
                profile.record(a.index - p - 1, 1.0);
            } else {
                profile.record_cold(1.0);
            }
        }
        // StatStack assumes stationary, well-mixed reuse behaviour; fully
        // deterministic interleaves of cyclic sweeps are its worst case
        // (correlated reuses violate the independence assumption), so the
        // bound here is looser than for the suite workloads (see
        // tests/statistical_model_validation.rs for the 10% bound there).
        let err64 = (profile.miss_ratio(64) - misses_64 as f64 / n as f64).abs();
        let err1024 = (profile.miss_ratio(1024) - misses_1024 as f64 / n as f64).abs();
        prop_assert!(err64 < 0.25, "64-line error {err64}");
        prop_assert!(err1024 < 0.25, "1024-line error {err1024}");
    }

    #[test]
    fn delorean_pipeline_equals_serial_for_arbitrary_compositions(
        (seed, streams) in arb_workload(),
    ) {
        let scale = Scale::tiny();
        let machine = MachineConfig::for_scale(scale);
        let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
        let w = build(seed, &streams);
        let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));
        let serial = runner.run_serial(&w, &plan);
        let piped = runner.run(&w, &plan);
        prop_assert_eq!(serial.report.total(), piped.report.total());
        prop_assert_eq!(serial.stats, piped.stats);
    }
}
