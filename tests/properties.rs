//! Property-based integration tests: invariants over randomized workload
//! compositions and configurations.
//!
//! Cases are generated from the workspace's own deterministic counter
//! RNG (`mix64`) instead of proptest — the registry is unreachable in
//! this build environment, and seeded enumeration keeps failures exactly
//! reproducible by case index.

use delorean::prelude::*;
use delorean::statmodel::exact::ExactStackProcessor;
use delorean::trace::{mix64, Pattern, PhasedWorkloadBuilder, RecordedTrace, StreamSpec};

/// Deterministically generate a small but structurally diverse workload
/// composition for case `case`: a seed plus 1–3 streams of
/// (pattern kind, weight, size parameter).
fn arb_workload(case: u64) -> (u64, Vec<(u8, u32, u64)>) {
    let seed = mix64(0xa4b, case);
    let n_streams = 1 + (mix64(0x57e, case) % 3) as usize;
    let streams = (0..n_streams as u64)
        .map(|s| {
            (
                (mix64(case, s) % 4) as u8,
                1 + (mix64(case, s + 100) % 7) as u32,
                16 + mix64(case, s + 200) % 496,
            )
        })
        .collect();
    (seed, streams)
}

fn build(seed: u64, streams: &[(u8, u32, u64)]) -> delorean::trace::PhasedWorkload {
    let specs: Vec<StreamSpec> = streams
        .iter()
        .map(|&(kind, weight, size)| {
            let pattern = match kind {
                0 => Pattern::Stream {
                    lines: size,
                    stride_lines: 1,
                },
                1 => Pattern::RandomUniform { lines: size },
                2 => Pattern::PermutationWalk { lines: size },
                _ => Pattern::HotCold {
                    hot_lines: (size / 4).max(1),
                    cold_lines: size,
                    hot_permille: 800,
                },
            };
            StreamSpec::new(pattern, weight)
        })
        .collect();
    PhasedWorkloadBuilder::new("prop", seed)
        .mem_period(3)
        .phase(100_000, specs)
        .build()
        .expect("generated spec is valid")
}

#[test]
fn position_addressability_holds_for_arbitrary_compositions() {
    for case in 0..24u64 {
        let (seed, streams) = arb_workload(case);
        let w = build(seed, &streams);
        let probes: Vec<u64> = (0..8)
            .map(|i| mix64(0x94abe ^ case, i) % 5_000_000)
            .collect();
        for &k in &probes {
            assert_eq!(w.access_at(k), w.access_at(k), "case {case} probe {k}");
        }
        // Sequential and random access orders agree.
        let seq: Vec<_> = w.iter_range(100..120).collect();
        for (i, a) in seq.iter().enumerate() {
            assert_eq!(*a, w.access_at(100 + i as u64), "case {case}");
        }
    }
}

#[test]
fn statstack_tracks_exact_lru_for_arbitrary_compositions() {
    for case in 0..24u64 {
        let (seed, streams) = arb_workload(case);
        let w = build(seed, &streams);
        let n = 20_000u64;
        // Full-information profile.
        let mut profile = delorean::statmodel::ReuseProfile::new();
        let mut last = std::collections::HashMap::new();
        let mut exact = ExactStackProcessor::new();
        let mut misses_64 = 0u64;
        let mut misses_1024 = 0u64;
        for a in w.iter_range(0..n) {
            match exact.access(a.line()) {
                Some(sd) => {
                    if sd >= 64 {
                        misses_64 += 1;
                    }
                    if sd >= 1024 {
                        misses_1024 += 1;
                    }
                }
                None => {
                    misses_64 += 1;
                    misses_1024 += 1;
                }
            }
            if let Some(p) = last.insert(a.line(), a.index) {
                profile.record(a.index - p - 1, 1.0);
            } else {
                profile.record_cold(1.0);
            }
        }
        // StatStack assumes stationary, well-mixed reuse behaviour; fully
        // deterministic interleaves of cyclic sweeps are its worst case
        // (correlated reuses violate the independence assumption), so the
        // bound here is looser than for the suite workloads (see
        // tests/statistical_model_validation.rs for the 10% bound there).
        let err64 = (profile.miss_ratio(64) - misses_64 as f64 / n as f64).abs();
        let err1024 = (profile.miss_ratio(1024) - misses_1024 as f64 / n as f64).abs();
        assert!(err64 < 0.25, "case {case}: 64-line error {err64}");
        assert!(err1024 < 0.25, "case {case}: 1024-line error {err1024}");
    }
}

/// Drain `workload.cursor(range)` in batches of `batch` and assert every
/// produced record is byte-identical to `access_at`, and that exactly the
/// range is produced.
fn assert_cursor_matches_access_at(
    workload: &dyn delorean::trace::Workload,
    range: std::ops::Range<u64>,
    batch: usize,
    ctx: &str,
) {
    let mut cursor = workload.cursor(range.clone());
    let mut buf = Vec::new();
    let mut k = range.start;
    while cursor.fill(&mut buf, batch) > 0 {
        for a in &buf {
            assert_eq!(*a, workload.access_at(k), "{ctx}: index {k}");
            k += 1;
        }
    }
    assert_eq!(k, range.end.max(range.start), "{ctx}: range coverage");
    assert_eq!(cursor.remaining(), 0, "{ctx}: cursor drained");
    // The iterator facade rides the same cursor; spot-check it agrees.
    let n = (range.end.saturating_sub(range.start)).min(64);
    for (i, a) in workload
        .iter_range(range.start..range.start + n)
        .enumerate()
    {
        assert_eq!(a, workload.access_at(range.start + i as u64), "{ctx}: iter");
    }
}

/// Tentpole contract: streaming cursors are byte-identical to `access_at`
/// over random ranges, for arbitrary phased compositions covering every
/// `Pattern` constructor (the six kinds below) and odd batch sizes that
/// land refills mid-period and mid-phase.
#[test]
fn cursors_match_access_at_for_arbitrary_compositions() {
    for case in 0..24u64 {
        let size = 16 + mix64(case, 7) % 496;
        let pattern = match case % 6 {
            0 => Pattern::Stream {
                lines: size,
                stride_lines: 1 + size % 5,
            },
            1 => Pattern::RandomUniform { lines: size },
            2 => Pattern::PermutationWalk { lines: size },
            3 => Pattern::StridedScan {
                lines: (size / 8).max(2),
                stride_lines: 8,
            },
            4 => Pattern::PagedHotCold {
                pages: (size / 64).max(2),
                hot_permille: 700,
            },
            _ => Pattern::HotCold {
                hot_lines: (size / 4).max(1),
                cold_lines: size,
                hot_permille: 800,
            },
        };
        // Two phases so ranges cross a phase boundary and the cycle wrap.
        let w = PhasedWorkloadBuilder::new("cursor-prop", mix64(0x5eed, case))
            .mem_period(1 + case % 4)
            .phase(500, vec![StreamSpec::new(pattern, 1 + (case % 3) as u32)])
            .phase(
                700,
                vec![
                    StreamSpec::new(Pattern::RandomUniform { lines: 64 }, 2),
                    StreamSpec::new(pattern, 3),
                ],
            )
            .build()
            .expect("generated spec is valid");
        let cycle = w.cycle_len_accesses();
        let start = mix64(case, 0xc0de) % (3 * cycle);
        let len = 1 + mix64(case, 0xbeef) % 2_000;
        let batch = 1 + (mix64(case, 0xfeed) % 257) as usize;
        assert_cursor_matches_access_at(&w, start..start + len, batch, &format!("case {case}"));
        // And a range pinned across both the phase switch and the wrap.
        assert_cursor_matches_access_at(
            &w,
            450..cycle + 50,
            batch,
            &format!("case {case} boundary"),
        );
    }
}

/// The full 24-workload suite (every `spec_workload` constructor), with
/// ranges spanning phase boundaries for the phase-split benchmarks.
#[test]
fn cursors_match_access_at_for_the_spec_suite() {
    for (i, w) in delorean::trace::spec2006(Scale::tiny(), 42)
        .iter()
        .enumerate()
    {
        let cycle = w.cycle_len_accesses();
        let deep = mix64(i as u64, 0xd4) % 10_000_000;
        for (range, tag) in [
            (0..600, "head"),
            (cycle - 300..cycle + 300, "cycle wrap"),
            (deep..deep + 600, "deep"),
        ] {
            assert_cursor_matches_access_at(
                w,
                range,
                1 + (mix64(i as u64, 3) % 100) as usize,
                &format!("{} {tag}", w.name()),
            );
        }
    }
}

/// RecordedTrace cursors, including ranges spanning the cyclic-extension
/// wrap at `recorded_len` (multiple wraps per fill batch).
#[test]
fn recorded_trace_cursors_match_access_at_across_wraps() {
    let src = delorean::trace::spec_workload("soplex", Scale::tiny(), 9).unwrap();
    for case in 0..8u64 {
        let len = 37 + mix64(case, 1) % 400;
        let t = RecordedTrace::capture(&src, 1_000..1_000 + len);
        let rlen = t.recorded_len();
        let start = mix64(case, 2) % (2 * rlen);
        let batch = 1 + (mix64(case, 4) % 129) as usize;
        assert_cursor_matches_access_at(
            &t,
            start..start + 3 * rlen + 5,
            batch,
            &format!("recorded case {case}"),
        );
    }
}

#[test]
fn delorean_pipeline_equals_serial_for_arbitrary_compositions() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
    for case in 0..24u64 {
        let (seed, streams) = arb_workload(case);
        let w = build(seed, &streams);
        let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));
        let serial = runner.run_serial(&w, &plan);
        let piped: DeLoreanOutput = runner.run(&w, &plan).try_into().unwrap();
        assert_eq!(serial.report.total(), piped.report.total(), "case {case}");
        assert_eq!(serial.stats, piped.stats, "case {case}");
    }
}
