//! Property-based integration tests: invariants over randomized workload
//! compositions and configurations.
//!
//! Cases are generated from the workspace's own deterministic counter
//! RNG (`mix64`) instead of proptest — the registry is unreachable in
//! this build environment, and seeded enumeration keeps failures exactly
//! reproducible by case index.

use delorean::prelude::*;
use delorean::statmodel::exact::ExactStackProcessor;
use delorean::trace::{mix64, Pattern, PhasedWorkloadBuilder, StreamSpec};

/// Deterministically generate a small but structurally diverse workload
/// composition for case `case`: a seed plus 1–3 streams of
/// (pattern kind, weight, size parameter).
fn arb_workload(case: u64) -> (u64, Vec<(u8, u32, u64)>) {
    let seed = mix64(0xa4b, case);
    let n_streams = 1 + (mix64(0x57e, case) % 3) as usize;
    let streams = (0..n_streams as u64)
        .map(|s| {
            (
                (mix64(case, s) % 4) as u8,
                1 + (mix64(case, s + 100) % 7) as u32,
                16 + mix64(case, s + 200) % 496,
            )
        })
        .collect();
    (seed, streams)
}

fn build(seed: u64, streams: &[(u8, u32, u64)]) -> delorean::trace::PhasedWorkload {
    let specs: Vec<StreamSpec> = streams
        .iter()
        .map(|&(kind, weight, size)| {
            let pattern = match kind {
                0 => Pattern::Stream {
                    lines: size,
                    stride_lines: 1,
                },
                1 => Pattern::RandomUniform { lines: size },
                2 => Pattern::PermutationWalk { lines: size },
                _ => Pattern::HotCold {
                    hot_lines: (size / 4).max(1),
                    cold_lines: size,
                    hot_permille: 800,
                },
            };
            StreamSpec::new(pattern, weight)
        })
        .collect();
    PhasedWorkloadBuilder::new("prop", seed)
        .mem_period(3)
        .phase(100_000, specs)
        .build()
        .expect("generated spec is valid")
}

#[test]
fn position_addressability_holds_for_arbitrary_compositions() {
    for case in 0..24u64 {
        let (seed, streams) = arb_workload(case);
        let w = build(seed, &streams);
        let probes: Vec<u64> = (0..8)
            .map(|i| mix64(0x94abe ^ case, i) % 5_000_000)
            .collect();
        for &k in &probes {
            assert_eq!(w.access_at(k), w.access_at(k), "case {case} probe {k}");
        }
        // Sequential and random access orders agree.
        let seq: Vec<_> = w.iter_range(100..120).collect();
        for (i, a) in seq.iter().enumerate() {
            assert_eq!(*a, w.access_at(100 + i as u64), "case {case}");
        }
    }
}

#[test]
fn statstack_tracks_exact_lru_for_arbitrary_compositions() {
    for case in 0..24u64 {
        let (seed, streams) = arb_workload(case);
        let w = build(seed, &streams);
        let n = 20_000u64;
        // Full-information profile.
        let mut profile = delorean::statmodel::ReuseProfile::new();
        let mut last = std::collections::HashMap::new();
        let mut exact = ExactStackProcessor::new();
        let mut misses_64 = 0u64;
        let mut misses_1024 = 0u64;
        for a in w.iter_range(0..n) {
            match exact.access(a.line()) {
                Some(sd) => {
                    if sd >= 64 {
                        misses_64 += 1;
                    }
                    if sd >= 1024 {
                        misses_1024 += 1;
                    }
                }
                None => {
                    misses_64 += 1;
                    misses_1024 += 1;
                }
            }
            if let Some(p) = last.insert(a.line(), a.index) {
                profile.record(a.index - p - 1, 1.0);
            } else {
                profile.record_cold(1.0);
            }
        }
        // StatStack assumes stationary, well-mixed reuse behaviour; fully
        // deterministic interleaves of cyclic sweeps are its worst case
        // (correlated reuses violate the independence assumption), so the
        // bound here is looser than for the suite workloads (see
        // tests/statistical_model_validation.rs for the 10% bound there).
        let err64 = (profile.miss_ratio(64) - misses_64 as f64 / n as f64).abs();
        let err1024 = (profile.miss_ratio(1024) - misses_1024 as f64 / n as f64).abs();
        assert!(err64 < 0.25, "case {case}: 64-line error {err64}");
        assert!(err1024 < 0.25, "case {case}: 1024-line error {err1024}");
    }
}

#[test]
fn delorean_pipeline_equals_serial_for_arbitrary_compositions() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
    for case in 0..24u64 {
        let (seed, streams) = arb_workload(case);
        let w = build(seed, &streams);
        let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));
        let serial = runner.run_serial(&w, &plan);
        let piped: DeLoreanOutput = runner.run(&w, &plan).try_into().unwrap();
        assert_eq!(serial.report.total(), piped.report.total(), "case {case}");
        assert_eq!(serial.stats, piped.stats, "case {case}");
    }
}
