//! Tiled-ingest determinism: every sampling strategy must produce a
//! bit-identical report whether its accesses come from the synthetic
//! workload or from the packed on-disk tile file — through the sync and
//! streaming cursors, at any region-scheduler worker count. This is the
//! PR 6 counterpart of the worker-count determinism contract.

use delorean::prelude::*;
use std::path::PathBuf;

fn strategies(machine: MachineConfig, scale: Scale) -> Vec<Box<dyn SamplingStrategy>> {
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ]
}

fn pack_span(w: &dyn Workload, plan: &RegionPlan, tag: &str) -> PathBuf {
    let span = w.accesses_in_instrs(plan.total_instrs()) + 1;
    let path = std::env::temp_dir().join(format!(
        "delorean-tiled-determinism-{}-{tag}.dlt",
        std::process::id()
    ));
    pack_workload(w, 0..span, &path).expect("pack plan span");
    path
}

#[test]
fn all_five_strategies_match_in_memory_runs_bit_for_bit() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let w = spec_workload("hmmer", scale, 42).unwrap();
    let path = pack_span(&w, &plan, "strategies");
    let tiled = TiledTrace::open(&path).unwrap();
    let tiled_streaming = tiled.clone().with_streaming(true);

    for s in strategies(machine, scale) {
        let reference = s.run(&w, &plan);
        let from_tiles = s.run(&tiled, &plan);
        let from_stream = s.run(&tiled_streaming, &plan);
        assert_eq!(
            reference.report,
            from_tiles.report,
            "{}: tiled run diverged from in-memory",
            s.name()
        );
        assert_eq!(
            reference.report,
            from_stream.report,
            "{}: streaming tiled run diverged from in-memory",
            s.name()
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn tiled_sources_keep_the_worker_count_determinism_contract() {
    // RegionScheduler units ask the workload for per-region cursor
    // slices; the tile file must serve those seeks identically at any
    // parallelism.
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(4).plan();
    let w = spec_workload("soplex", scale, 42).unwrap();
    let path = pack_span(&w, &plan, "workers");
    let tiled = TiledTrace::open(&path).unwrap();

    for s in strategies(machine, scale) {
        let sequential = s.run_with_workers(&w, &plan, 1);
        for workers in [2, 4] {
            let parallel = s.run_with_workers(&tiled, &plan, workers);
            assert_eq!(
                sequential.report,
                parallel.report,
                "{} diverged on tiled source at {workers} workers",
                s.name()
            );
        }
    }
    std::fs::remove_file(&path).unwrap();
}
