//! Cross-crate validation: statistical predictions vs exact simulation on
//! real suite workloads (not synthetic unit-test streams).

use delorean::prelude::*;
use delorean::statmodel::exact::lru_misses;
use delorean::statmodel::ReuseProfile;
use delorean::trace::LineAddr;

/// Build a full (unsampled) reuse profile of a workload slice.
fn full_profile(w: &dyn Workload, range: std::ops::Range<u64>) -> ReuseProfile {
    let mut profile = ReuseProfile::new();
    let mut last = std::collections::HashMap::new();
    for a in w.iter_range(range) {
        if let Some(p) = last.insert(a.line(), a.index) {
            profile.record(a.index - p - 1, 1.0);
        } else {
            profile.record_cold(1.0);
        }
    }
    profile
}

#[test]
fn statstack_predicts_fully_associative_lru_on_suite_workloads() {
    let scale = Scale::tiny();
    for name in ["hmmer", "libquantum", "omnetpp", "lbm"] {
        let w = spec_workload(name, scale, 42).unwrap();
        let n = 60_000u64;
        let profile = full_profile(&w, 0..n);
        for cache_lines in [64u64, 256, 1024, 4096] {
            let predicted = profile.miss_ratio(cache_lines);
            let lines: Vec<LineAddr> = w.iter_range(0..n).map(|a| a.line()).collect();
            let actual = lru_misses(lines, cache_lines) as f64 / n as f64;
            assert!(
                (predicted - actual).abs() < 0.10,
                "{name} @{cache_lines}: statstack {predicted:.3} vs exact {actual:.3}"
            );
        }
    }
}

#[test]
fn sampled_profiles_converge_to_full_profiles() {
    // A 1-in-50 sampled profile must predict miss ratios close to the
    // full profile — the property statistical warming relies on.
    let scale = Scale::tiny();
    let w = spec_workload("omnetpp", scale, 42).unwrap();
    let n = 80_000u64;
    let full = full_profile(&w, 0..n);

    let mut sampled = ReuseProfile::new();
    let mut pending = std::collections::HashMap::new();
    let rng = delorean::trace::CounterRng::new(7);
    for a in w.iter_range(0..n) {
        if let Some(p) = pending.remove(&a.line()) {
            sampled.record(a.index - p - 1, 1.0);
        }
        if rng.chance_one_in(a.index, 50) {
            pending.entry(a.line()).or_insert(a.index);
        }
    }
    for cache_lines in [128u64, 1024, 8192] {
        let f = full.miss_ratio(cache_lines);
        let s = sampled.miss_ratio(cache_lines);
        assert!(
            (f - s).abs() < 0.12,
            "@{cache_lines}: full {f:.3} vs sampled {s:.3}"
        );
    }
}

#[test]
fn explorer_key_distances_match_ground_truth() {
    // The heart of DSW: key reuse distances collected by the explorer
    // chain equal brute-force backward scans of the trace.
    use delorean::core::explorer::{run_explorer, PendingKey};
    use delorean::virt::{CostModel, HostClock};

    let scale = Scale::tiny();
    let w = spec_workload("tonto", scale, 42).unwrap();
    let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
    let region = plan.regions[1].clone();
    let region_first = w.access_index_at_instr(region.detailed.start);

    let pending: Vec<PendingKey> = (0..60)
        .map(|i| w.access_at(region_first + i))
        .map(|a| PendingKey {
            line: a.line(),
            first_access_index: a.index,
        })
        .collect();
    let cost = CostModel::paper_host();
    let mut clock = HostClock::new();
    let out = run_explorer(
        &w,
        &cost,
        &mut clock,
        0,
        region.start_instr, // deepest possible window
        0,
        &region,
        &pending,
        10_000,
        9,
        1,
    );
    for &(line, rd) in &out.resolved {
        let first_idx = pending
            .iter()
            .find(|k| k.line == line)
            .unwrap()
            .first_access_index;
        let truth = (0..first_idx)
            .rev()
            .find(|&k| w.access_at(k).line() == line)
            .map(|k| first_idx - k - 1)
            .expect("resolved key must exist in trace");
        assert_eq!(rd, truth, "line {line:?}");
    }
}
