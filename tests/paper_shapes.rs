//! Shape assertions on the paper's headline results at test scale: who
//! wins, in which direction, and where the structure lies. (Magnitudes
//! are asserted at demo scale in EXPERIMENTS.md, not here — tiny scale
//! compresses ratios.)

use delorean::prelude::*;

fn plan() -> RegionPlan {
    SamplingConfig::for_scale(Scale::tiny())
        .with_regions(3)
        .plan()
}

#[test]
fn bwaves_is_the_best_case_for_time_traveling() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = plan();
    let bwaves = spec_workload("bwaves", scale, 42).unwrap();
    let gems = spec_workload("GemsFDTD", scale, 42).unwrap();
    let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));
    let out_b: DeLoreanOutput = runner.run(&bwaves, &plan).try_into().unwrap();
    let out_g: DeLoreanOutput = runner.run(&gems, &plan).try_into().unwrap();
    // bwaves: hardly any keys, hardly any explorers (paper: < 1 average).
    assert!(
        out_b.stats.avg_explorers_engaged() < 1.0,
        "bwaves engaged {}",
        out_b.stats.avg_explorers_engaged()
    );
    // GemsFDTD: the deep end (paper: ≈ 4).
    assert!(
        out_g.stats.avg_explorers_engaged() > 3.0,
        "gems engaged {}",
        out_g.stats.avg_explorers_engaged()
    );
    // And bwaves is the faster of the two.
    assert!(out_b.report.mips_pipelined() > out_g.report.mips_pipelined());
}

#[test]
fn lbm_has_its_8mb_knee() {
    // Figure 13's lbm knee: MPKI falls sharply once the LLC crosses the
    // first walk footprint. At tiny scale, 8 MB paper ≈ the first knee.
    let scale = Scale::tiny();
    let plan = plan();
    let w = spec_workload("lbm", scale, 42).unwrap();
    let small = MachineConfig::for_scale(scale).with_llc_paper_bytes(scale, 2 << 20);
    let large = MachineConfig::for_scale(scale).with_llc_paper_bytes(scale, 64 << 20);
    let mpki_small = SmartsRunner::new(small).run(&w, &plan).llc_mpki();
    let mpki_large = SmartsRunner::new(large).run(&w, &plan).llc_mpki();
    assert!(
        mpki_large < mpki_small * 0.75,
        "no knee: {mpki_small:.1} → {mpki_large:.1}"
    );
}

#[test]
fn warming_misses_as_misses_overestimates_cpi() {
    // The ablation of the paper's central insight: treating warming
    // misses as misses must push CPI up, away from the reference.
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = plan();
    let w = spec_workload("perlbench", scale, 42).unwrap();
    let reference = SmartsRunner::new(machine).run(&w, &plan);
    let as_hit = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale)).run(&w, &plan);
    let as_miss = DeLoreanRunner::new(
        machine,
        DeLoreanConfig::for_scale(scale).with_warming_miss_as_miss(),
    )
    .run(&w, &plan);
    assert!(
        as_miss.report.cpi() >= as_hit.report.cpi(),
        "counting warming misses as misses cannot lower CPI"
    );
    assert!(
        as_miss.report.cpi_error_vs(&reference) >= as_hit.report.cpi_error_vs(&reference),
        "the insight must not hurt accuracy"
    );
}

#[test]
fn povray_pays_for_page_granularity() {
    // povray's paged hot/cold layout produces false-positive traps in the
    // deep explorers — the §6.1 pathology.
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = plan();
    let w = spec_workload("povray", scale, 42).unwrap();
    let out: DeLoreanOutput = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale))
        .run(&w, &plan)
        .try_into()
        .unwrap();
    assert!(
        out.stats.false_positive_traps > out.stats.true_hit_traps,
        "expected false positives to dominate: fp={} th={}",
        out.stats.false_positive_traps,
        out.stats.true_hit_traps
    );
}

#[test]
fn conflict_stride_model_fires_on_strided_workloads() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = plan();
    let w = spec_workload("hmmer", scale, 42).unwrap();
    let out: DeLoreanOutput = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale))
        .run(&w, &plan)
        .try_into()
        .unwrap();
    // hmmer carries a 512-byte-stride stream; the limited-associativity
    // model must detect at least some strided PCs over the run (counted
    // indirectly via classification or assoc stats on any region).
    let strided_or_conflict = out.dsw_counts.conflict_stride + out.dsw_counts.conflict_set_full;
    assert!(
        strided_or_conflict > 0 || out.dsw_counts.total() == 0,
        "no conflict classification despite strided stream"
    );
}
