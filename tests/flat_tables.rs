//! Equivalence tests for the flat lookup substrate (PR 3): the
//! open-addressing `FlatMap`/`FlatSet` are pinned against
//! `std::collections` oracles under randomized churn, the refcounted
//! `WatchSet` against a nested-map model, and the rewired time-travel
//! loops against their own serial/pipelined determinism contract.
//!
//! Cases are generated from the workspace's deterministic counter RNG
//! (`mix64`), so any failure reproduces exactly by case index.

use delorean::prelude::*;
use delorean::trace::{mix64, FlatMap, FlatSet, LineAddr, LineMap, LineSet};
use delorean::virt::{Trap, WatchSet};
use std::collections::{HashMap, HashSet};

/// Drive `ops` random insert/remove/get operations over a key universe of
/// `universe` keys, checking the flat map against a `HashMap` oracle
/// after every step. A small universe over a small table forces probe
/// clusters and exercises backshift deletion across wrapped chains.
fn churn_map_case(case: u64, ops: u64, universe: u64) {
    let mut flat: FlatMap<u64, u64> = FlatMap::new();
    let mut oracle: HashMap<u64, u64> = HashMap::new();
    for step in 0..ops {
        let k = mix64(case, step) % universe;
        match mix64(case ^ 0xdead, step) % 4 {
            // Insert / overwrite.
            0 | 1 => {
                assert_eq!(
                    flat.insert(k, step),
                    oracle.insert(k, step),
                    "case {case} step {step}: insert({k})"
                );
            }
            // Remove (backshift path).
            2 => {
                assert_eq!(
                    flat.remove(k),
                    oracle.remove(&k),
                    "case {case} step {step}: remove({k})"
                );
            }
            // Probe.
            _ => {
                assert_eq!(
                    flat.get(k),
                    oracle.get(&k),
                    "case {case} step {step}: get({k})"
                );
            }
        }
        assert_eq!(flat.len(), oracle.len(), "case {case} step {step}: len");
    }
    // Full-contents equivalence at the end.
    let mut a: Vec<(u64, u64)> = flat.iter().map(|(k, &v)| (k, v)).collect();
    let mut b: Vec<(u64, u64)> = oracle.iter().map(|(&k, &v)| (k, v)).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "case {case}: final contents");
}

#[test]
fn flat_map_matches_std_hashmap_under_churn() {
    // Narrow universes keep the table small and collision-dense (the
    // backshift edge cases); wide ones exercise growth.
    for (case, (ops, universe)) in [
        (3_000u64, 24u64),
        (3_000, 48),
        (2_000, 512),
        (4_000, 100_000),
    ]
    .into_iter()
    .enumerate()
    {
        churn_map_case(case as u64, ops, universe);
    }
}

#[test]
fn flat_set_matches_std_hashset_under_churn() {
    for case in 0..4u64 {
        let universe = [16u64, 64, 1024, 1 << 20][case as usize];
        let mut flat: FlatSet<u64> = FlatSet::new();
        let mut oracle: HashSet<u64> = HashSet::new();
        for step in 0..3_000u64 {
            let k = mix64(0x5e7 ^ case, step) % universe;
            if mix64(0xbad ^ case, step).is_multiple_of(3) {
                assert_eq!(flat.remove(k), oracle.remove(&k), "case {case} step {step}");
            } else {
                assert_eq!(flat.insert(k), oracle.insert(k), "case {case} step {step}");
            }
            assert_eq!(flat.len(), oracle.len());
        }
        let mut a: Vec<u64> = flat.iter().collect();
        let mut b: Vec<u64> = oracle.into_iter().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "case {case}: final contents");
    }
}

#[test]
fn line_tables_match_std_oracles_under_churn() {
    // The typed aliases used by the hot loops behave identically to the
    // raw tables: line-keyed map and set against std oracles.
    let mut map: LineMap<u64> = LineMap::new();
    let mut set = LineSet::new();
    let mut map_oracle: HashMap<LineAddr, u64> = HashMap::new();
    let mut set_oracle: HashSet<LineAddr> = HashSet::new();
    for step in 0..5_000u64 {
        let line = LineAddr(mix64(0x11e, step) % 4096);
        if mix64(0xf00, step).is_multiple_of(3) {
            assert_eq!(map.remove(line), map_oracle.remove(&line), "step {step}");
            assert_eq!(set.remove(line), set_oracle.remove(&line), "step {step}");
        } else {
            assert_eq!(
                map.insert(line, step),
                map_oracle.insert(line, step),
                "step {step}"
            );
            assert_eq!(set.insert(line), set_oracle.insert(line), "step {step}");
        }
        assert_eq!(map.contains(line), map_oracle.contains_key(&line));
        assert_eq!(set.contains(line), set_oracle.contains(&line));
    }
}

/// Oracle for the refcounted watch set: nested std maps of refcounts.
#[derive(Default)]
struct WatchOracle {
    pages: HashMap<u64, HashMap<LineAddr, u32>>,
}

impl WatchOracle {
    fn watch(&mut self, line: LineAddr) {
        *self
            .pages
            .entry(line.page().0)
            .or_default()
            .entry(line)
            .or_default() += 1;
    }

    fn unwatch(&mut self, line: LineAddr) -> bool {
        let Some(lines) = self.pages.get_mut(&line.page().0) else {
            return false;
        };
        let Some(rc) = lines.get_mut(&line) else {
            return false;
        };
        *rc -= 1;
        if *rc == 0 {
            lines.remove(&line);
            if lines.is_empty() {
                self.pages.remove(&line.page().0);
            }
        }
        true
    }

    fn classify(&self, line: LineAddr) -> Trap {
        match self.pages.get(&line.page().0) {
            None => Trap::None,
            Some(lines) if lines.contains_key(&line) => Trap::Hit(line),
            Some(_) => Trap::FalsePositive,
        }
    }

    fn lines(&self) -> usize {
        self.pages.values().map(|l| l.len()).sum()
    }
}

#[test]
fn watchset_matches_refcount_oracle_under_churn() {
    let mut watch = WatchSet::new();
    let mut oracle = WatchOracle::default();
    // A narrow line universe concentrates many lines per page, spilling
    // past the inline capacity and exercising double-watch refcounts.
    for step in 0..8_000u64 {
        let line = LineAddr(mix64(0x7a7c, step) % 512);
        match mix64(0x0dd, step) % 5 {
            0..=2 => {
                watch.watch_line(line);
                oracle.watch(line);
            }
            3 => {
                assert_eq!(
                    watch.unwatch_line(line),
                    oracle.unwatch(line),
                    "step {step}: unwatch({line})"
                );
            }
            _ => {}
        }
        let probe = LineAddr(mix64(0x9e9, step) % 600);
        assert_eq!(
            watch.classify_line(probe),
            oracle.classify(probe),
            "step {step}: classify({probe})"
        );
        assert_eq!(watch.watched_lines(), oracle.lines(), "step {step}");
        assert_eq!(watch.watched_pages(), oracle.pages.len(), "step {step}");
    }
}

#[test]
fn explorer_trap_counts_identical_serial_vs_pipelined() {
    // The rewired explorer hot loop (interest filter + flat tables) must
    // keep the pipelined run bit-identical to the serial oracle, down to
    // the per-explorer resolution and trap counters.
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    for name in ["hmmer", "povray", "mcf"] {
        let w = spec_workload(name, scale, 42).unwrap();
        let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));
        let serial = runner.run_serial(&w, &plan);
        let piped: DeLoreanOutput = runner.run(&w, &plan).try_into().unwrap();
        assert_eq!(
            serial.stats.true_hit_traps, piped.stats.true_hit_traps,
            "{name}: true-hit traps"
        );
        assert_eq!(
            serial.stats.false_positive_traps, piped.stats.false_positive_traps,
            "{name}: false-positive traps"
        );
        assert_eq!(
            serial.stats.resolved_by_explorer, piped.stats.resolved_by_explorer,
            "{name}: per-explorer resolution"
        );
        assert_eq!(serial.stats.cold_keys, piped.stats.cold_keys, "{name}");
        assert_eq!(serial.dsw_counts, piped.dsw_counts, "{name}: DSW verdicts");
    }
}
