//! §4.1 generality: statistical warming under non-LRU replacement.
//!
//! The paper argues DSW extends beyond LRU because statistical cache
//! models exist for other policies. This reproduction implements the
//! random-replacement case end to end (StatCache fixpoint inside the
//! DSW classifier) and checks it against a SMARTS reference running an
//! actual random-replacement LLC.

use delorean::cache::ReplacementPolicy;
use delorean::prelude::*;

fn machine_with(policy: ReplacementPolicy, scale: Scale) -> MachineConfig {
    let mut m = MachineConfig::for_scale(scale);
    m.hierarchy.llc = m.hierarchy.llc.with_replacement(policy);
    m
}

#[test]
fn delorean_tracks_smarts_under_random_replacement() {
    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    for name in ["bwaves", "hmmer", "libquantum", "namd"] {
        let w = spec_workload(name, scale, 42).unwrap();
        let machine = machine_with(ReplacementPolicy::Random, scale);
        let reference = SmartsRunner::new(machine).run(&w, &plan);
        let delorean =
            DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale)).run(&w, &plan);
        let err = delorean.report.cpi_error_vs(&reference);
        assert!(
            err < 0.25,
            "{name} under random replacement: DeLorean {} vs SMARTS {} ({:.0}%)",
            delorean.report.cpi(),
            reference.cpi(),
            err * 100.0
        );
    }
}

#[test]
fn delorean_tracks_smarts_under_plru() {
    // Tree-PLRU approximates LRU; the StatStack criterion carries over.
    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    for name in ["hmmer", "perlbench"] {
        let w = spec_workload(name, scale, 42).unwrap();
        let machine = machine_with(ReplacementPolicy::PLru, scale);
        let reference = SmartsRunner::new(machine).run(&w, &plan);
        let delorean =
            DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale)).run(&w, &plan);
        let err = delorean.report.cpi_error_vs(&reference);
        assert!(
            err < 0.25,
            "{name} under PLRU: {} vs {} ({:.0}%)",
            delorean.report.cpi(),
            reference.cpi(),
            err * 100.0
        );
    }
}

#[test]
fn replacement_policy_changes_reference_behaviour() {
    // Sanity: the policies actually differ in the reference simulation
    // for a thrash-prone workload (so the test above is non-vacuous).
    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let w = spec_workload("libquantum", scale, 42).unwrap();
    let lru = SmartsRunner::new(machine_with(ReplacementPolicy::Lru, scale)).run(&w, &plan);
    let rnd = SmartsRunner::new(machine_with(ReplacementPolicy::Random, scale)).run(&w, &plan);
    assert_ne!(lru.total(), rnd.total());
}
