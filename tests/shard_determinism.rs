//! Shard-layer determinism contract: a matrix swept through the broker
//! and worker processes is **bitwise identical** to the in-process
//! [`BatchExecutor`], whatever the worker count, kill pattern, or
//! broker restarts — and the quarantined set under injected faults is
//! identical for any scheduling.
//!
//! Workers here are threads running [`worker_loop`] over in-process
//! pipes — same code path as the `shard-worker` binary, minus the
//! process boundary (covered by `crates/shard/tests/process_e2e.rs`).

use delorean::prelude::*;
use delorean::shard::STRATEGY_NAMES;
use delorean::trace::fault::{FaultKind, FaultPlan, FaultSite};
use std::path::PathBuf;
use std::thread::JoinHandle;

fn base_spec() -> SweepSpec {
    SweepSpec::new(Scale::tiny(), 3)
        .with_suite_seed(7)
        .with_workloads(&["hmmer", "mcf"])
        .with_strategies(&STRATEGY_NAMES)
}

fn reference(spec: &SweepSpec) -> Vec<Vec<StrategyReport>> {
    let plan = spec.plan();
    let strategies = spec.build_strategies().expect("reference strategies");
    let workloads = spec.build_workloads().expect("reference workloads");
    BatchExecutor::with_threads(2).run_matrix(&strategies, &workloads, &plan)
}

/// Attach a worker thread to the broker over a pipe pair.
fn attach_worker(broker: &Broker, opts: WorkerOptions) -> JoinHandle<()> {
    let (worker_read, broker_write) = std::io::pipe().expect("pipe");
    let (broker_read, worker_write) = std::io::pipe().expect("pipe");
    broker.attach(broker_read, broker_write);
    std::thread::spawn(move || {
        let _ = worker_loop(worker_read, worker_write, &opts);
    })
}

fn join_all(workers: Vec<JoinHandle<()>>) {
    for w in workers {
        w.join().expect("worker thread");
    }
}

fn assert_matrix_eq(label: &str, run: &ShardRun, reference: &[Vec<StrategyReport>]) {
    assert!(
        run.run.quarantined.is_empty(),
        "{label}: unexpected quarantine: {:?}",
        run.run
            .quarantined
            .iter()
            .map(|f| f.unit)
            .collect::<Vec<_>>()
    );
    assert_eq!(run.run.matrix.len(), reference.len(), "{label}: row count");
    for (w, (row, ref_row)) in run.run.matrix.iter().zip(reference).enumerate() {
        assert_eq!(row.len(), ref_row.len(), "{label}: row {w} width");
        for (s, (cell, ref_cell)) in row.iter().zip(ref_row).enumerate() {
            let report = cell
                .as_ref()
                .unwrap_or_else(|| panic!("{label}: cell w{w}/s{s} missing"));
            assert_eq!(
                report.report, ref_cell.report,
                "{label}: cell w{w}/s{s} differs from the in-process executor"
            );
        }
    }
}

fn temp_journal(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "delorean-shard-det-{}-{tag}.dlj",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn clean_runs_match_in_process_across_worker_counts() {
    let spec = base_spec();
    let expected = reference(&spec);
    for n in [1usize, 2, 4] {
        let broker = Broker::new(BrokerConfig::default());
        let workers: Vec<_> = (0..n)
            .map(|_| attach_worker(&broker, WorkerOptions::default()))
            .collect();
        let run = broker.run_matrix(spec.clone()).expect("shard run");
        broker.shutdown();
        join_all(workers);
        assert_matrix_eq(&format!("clean/{n}w"), &run, &expected);
        assert!(!run.halted);
        assert_eq!(run.run.executed_cells, spec.n_cells());
    }
}

#[test]
fn killed_worker_mid_sweep_is_resumed_on_survivors() {
    let spec = base_spec();
    let expected = reference(&spec);
    for survivors in [1usize, 2, 4] {
        let broker = Broker::new(BrokerConfig::default());
        let mut workers = vec![attach_worker(
            &broker,
            WorkerOptions {
                abandon_after: Some(1),
                ..WorkerOptions::default()
            },
        )];
        workers.extend((0..survivors).map(|_| attach_worker(&broker, WorkerOptions::default())));
        let run = broker.run_matrix(spec.clone()).expect("shard run");
        broker.shutdown();
        join_all(workers);
        assert_matrix_eq(&format!("kill/{survivors}w"), &run, &expected);
        assert!(
            run.lease_losses >= 1,
            "kill/{survivors}w: the abandoned lease should be counted"
        );
    }
}

#[test]
fn broker_restart_resumes_journal_to_identical_matrix() {
    let spec = base_spec();
    let expected = reference(&spec);
    for n in [1usize, 2, 4] {
        let journal = temp_journal(&format!("restart{n}"));

        // First broker: journal the sweep, halt after 3 completions.
        let first = Broker::new(BrokerConfig::default());
        let workers: Vec<_> = (0..n)
            .map(|_| attach_worker(&first, WorkerOptions::default()))
            .collect();
        let halted = first
            .submit(
                JobRequest::new(spec.clone())
                    .with_journal(journal.clone())
                    .with_cell_budget(3),
            )
            .wait()
            .expect("halted run");
        first.shutdown();
        join_all(workers);
        assert!(halted.run.executed_cells >= 3);

        // Second broker: resume the journal to completion.
        let second = Broker::new(BrokerConfig::default());
        let workers: Vec<_> = (0..n)
            .map(|_| attach_worker(&second, WorkerOptions::default()))
            .collect();
        let resumed = second
            .submit(JobRequest::new(spec.clone()).with_journal(journal.clone()))
            .wait()
            .expect("resumed run");
        second.shutdown();
        join_all(workers);
        assert_matrix_eq(&format!("restart/{n}w"), &resumed, &expected);
        assert!(
            resumed.run.resumed_cells >= 3,
            "restart/{n}w: journal prefix should restore the halted cells"
        );

        // Third broker: a complete journal resumes without executing.
        let third = Broker::new(BrokerConfig::default());
        let replay = third
            .submit(JobRequest::new(spec.clone()).with_journal(journal.clone()))
            .wait()
            .expect("replayed run");
        third.shutdown();
        assert_matrix_eq(&format!("replay/{n}w"), &replay, &expected);
        assert_eq!(replay.run.resumed_cells, spec.n_cells());
        assert_eq!(replay.run.executed_cells, 0);
        let _ = std::fs::remove_file(&journal);
    }
}

#[test]
fn span_leases_reduce_to_identical_reports() {
    for split in [1u32, 2] {
        let spec = base_spec()
            .with_strategies(&["coolsim", "mrrl"])
            .with_split_regions(split);
        let expected = reference(&spec);
        let broker = Broker::new(BrokerConfig::default());
        let workers: Vec<_> = (0..2)
            .map(|_| attach_worker(&broker, WorkerOptions::default()))
            .collect();
        let run = broker.run_matrix(spec.clone()).expect("shard run");
        broker.shutdown();
        join_all(workers);
        assert_matrix_eq(&format!("span/k{split}"), &run, &expected);
    }
}

#[test]
fn quarantined_set_is_identical_for_any_worker_count() {
    let spec = base_spec();
    let expected = reference(&spec);
    let policy = FaultPolicy::default();

    // A plan whose strikes exceed the retry budget permanently fails
    // the seed-selected cells. `fault_for` is pure, so the quarantined
    // set is predictable before any worker runs; pick a seed where the
    // prediction is neither empty nor the whole matrix.
    let n_cells = spec.n_cells() as u64;
    let (seed, predicted) = (1u64..64)
        .find_map(|seed| {
            let plan = FaultPlan::new(seed)
                .at(FaultSite::UnitEntry)
                .every(2)
                .strikes(policy.max_attempts())
                .kinds(&[FaultKind::Panic]);
            let armed: Vec<u32> = (0..n_cells)
                .filter(|&cell| plan.fault_for(FaultSite::UnitEntry, cell, 0).is_some())
                .map(|cell| cell as u32)
                .collect();
            (!armed.is_empty() && armed.len() < n_cells as usize).then_some((seed, armed))
        })
        .expect("a seed arming a strict subset of cells");
    let fault = FaultPlan::new(seed)
        .at(FaultSite::UnitEntry)
        .every(2)
        .strikes(policy.max_attempts())
        .kinds(&[FaultKind::Panic]);

    for n in [1usize, 2, 4] {
        let broker = Broker::new(BrokerConfig::default());
        let workers: Vec<_> = (0..n)
            .map(|_| {
                attach_worker(
                    &broker,
                    WorkerOptions {
                        fault: Some(fault),
                        ..WorkerOptions::default()
                    },
                )
            })
            .collect();
        let run = broker.run_matrix(spec.clone()).expect("shard run");
        broker.shutdown();
        join_all(workers);

        let quarantined: Vec<(u32, u32)> = run
            .run
            .quarantined
            .iter()
            .map(|f| (f.unit, f.attempts))
            .collect();
        let expected_set: Vec<(u32, u32)> = predicted
            .iter()
            .map(|&cell| (cell, policy.max_attempts()))
            .collect();
        assert_eq!(
            quarantined, expected_set,
            "{n} worker(s): quarantine must match the pure fault-plan prediction"
        );
        for failure in &run.run.quarantined {
            assert!(
                matches!(failure.fault, UnitFault::Panicked { .. }),
                "{n} worker(s): injected Panic must classify as Panicked, got {}",
                failure.fault
            );
        }

        // Non-quarantined cells still match the reference bit for bit.
        let n_strategies = spec.strategies.len();
        for (w, (row, ref_row)) in run.run.matrix.iter().zip(&expected).enumerate() {
            for (s, (cell, ref_cell)) in row.iter().zip(ref_row).enumerate() {
                let flat = (w * n_strategies + s) as u32;
                match cell {
                    Some(report) => {
                        assert!(!predicted.contains(&flat));
                        assert_eq!(report.report, ref_cell.report, "cell w{w}/s{s}");
                    }
                    None => assert!(predicted.contains(&flat), "cell w{w}/s{s} missing"),
                }
            }
        }
    }
}

#[test]
fn concurrent_clients_share_the_worker_pool() {
    let spec_a = base_spec();
    let spec_b = base_spec()
        .with_suite_seed(11)
        .with_workloads(&["bzip2", "astar"])
        .with_strategies(&["smarts", "delorean"]);
    let expected_a = reference(&spec_a);
    let expected_b = reference(&spec_b);

    let broker = Broker::new(BrokerConfig::default());
    let workers: Vec<_> = (0..2)
        .map(|_| attach_worker(&broker, WorkerOptions::default()))
        .collect();
    let ticket_a = broker.submit(JobRequest::new(spec_a));
    let ticket_b = broker.submit(JobRequest::new(spec_b));
    let run_b = ticket_b.wait().expect("job b");
    let run_a = ticket_a.wait().expect("job a");
    broker.shutdown();
    join_all(workers);
    assert_matrix_eq("multi-client/a", &run_a, &expected_a);
    assert_matrix_eq("multi-client/b", &run_b, &expected_b);
}
