//! # DeLorean — directed statistical warming through time traveling
//!
//! A from-scratch Rust reproduction of *"Directed Statistical Warming
//! through Time Traveling"* (Nikoleris, Eeckhout, Hagersten, Carlson,
//! MICRO-52 2019): a sampled-simulation methodology that installs accurate
//! cache state for detailed simulation regions by collecting only the
//! *key reuse distances* (directed statistical warming) in a multi-pass,
//! fast-forward/roll-back pipeline (time traveling).
//!
//! This facade crate re-exports the workspace crates:
//!
//! * [`trace`] — deterministic, position-addressable synthetic workloads
//!   (the SPEC CPU2006 stand-in).
//! * [`statmodel`] — StatStack/StatCache statistical cache models.
//! * [`cache`] — set-associative cache hierarchy simulator with MSHRs and
//!   a stride prefetcher.
//! * [`cpu`] — branch predictor and out-of-order interval timing model.
//! * [`virt`] — virtualized fast-forwarding, page-protection watchpoints
//!   and the host cost model.
//! * [`sampling`] — the sampled-simulation framework and the SMARTS /
//!   CoolSim baselines.
//! * [`core`] — DeLorean itself: DSW + TT (Scout, Explorers, Analyst),
//!   design-space exploration.
//! * [`mod@bench`] — the experiment harness regenerating every figure/table.
//! * [`shard`] — the sweep broker/worker shard layer: distributed,
//!   journaled matrices bitwise identical to the in-process executor.
//!
//! ## Quickstart
//!
//! Every warming strategy implements [`SamplingStrategy`]
//! (re-exported in the [`prelude`]), so any mix of strategies runs
//! through one interface — boxed for batch execution or called directly:
//!
//! ```
//! use delorean::prelude::*;
//!
//! // Build a workload and compare DeLorean against the SMARTS reference.
//! let scale = Scale::tiny();
//! let workload = spec_workload("bwaves", scale, 42).unwrap();
//! let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
//! let machine = MachineConfig::for_scale(scale);
//!
//! let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
//!     Box::new(SmartsRunner::new(machine)),
//!     Box::new(DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale))),
//! ];
//! let reports: Vec<StrategyReport> =
//!     strategies.iter().map(|s| s.run(&workload, &plan)).collect();
//!
//! let err = reports[1].cpi_error_vs(&reports[0]);
//! assert!(err < 0.5, "CPI error {err}");
//! assert!(reports[1].speedup_vs(&reports[0]) > 1.0);
//! ```
//!
//! [`SamplingStrategy`]: sampling::SamplingStrategy

pub use delorean_bench as bench;
pub use delorean_cache as cache;
pub use delorean_core as core;
pub use delorean_cpu as cpu;
pub use delorean_sampling as sampling;
pub use delorean_shard as shard;
pub use delorean_statmodel as statmodel;
pub use delorean_trace as trace;
pub use delorean_virt as virt;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use delorean_bench::{BatchExecutor, MatrixRun};
    pub use delorean_cache::{CacheConfig, HierarchyConfig, MachineConfig};
    pub use delorean_core::dse::DesignSpaceExplorer;
    pub use delorean_core::{
        DeLoreanConfig, DeLoreanExtras, DeLoreanOutput, DeLoreanRunner, TtStats,
    };
    pub use delorean_cpu::TimingConfig;
    pub use delorean_sampling::{
        CheckpointWarmingRunner, CoolSimConfig, CoolSimRunner, FaultPolicy, MrrlRunner,
        PartialReport, ProxyStateSource, RegionPlan, RegionScheduler, SamplingConfig,
        SamplingStrategy, SimulationReport, SmartsRunner, SpeculationExtras, StrategyReport,
        UnitFailure, UnitFault,
    };
    pub use delorean_shard::{
        worker_loop, Broker, BrokerConfig, JobRequest, ShardRun, SweepSpec, WorkerOptions,
    };
    pub use delorean_trace::{
        pack_workload, spec2006, spec_workload, Scale, TiledTrace, Workload, WorkloadExt,
        SPEC2006_NAMES,
    };
    pub use delorean_virt::CostModel;
}
