//! The trace-tile ingest pipeline end to end: pack a workload to an
//! on-disk tile file, reopen it as a workload, and show that a full
//! DeLorean run over the tiled source reproduces the in-memory run bit
//! for bit — while the warm loops consume `memcpy`-grade batches
//! instead of regenerating every access.
//!
//! Run with: `cargo run --release --example tiled_trace`

use delorean::prelude::*;
use delorean::trace::tile::DEFAULT_TILE_RECORDS;
use std::time::Instant;

fn main() {
    let scale = Scale::tiny();
    let machine = MachineConfig::for_scale(scale);
    let plan = SamplingConfig::for_scale(scale).with_regions(3).plan();
    let workload = spec_workload("mcf", scale, 42).unwrap();

    // Pack the plan's instruction span once. Records are 17 bytes (pc,
    // addr, kind) grouped into checksummed tiles; index/icount are
    // implied by position, so nothing else needs storing.
    let span = workload.accesses_in_instrs(plan.total_instrs()) + 1;
    let path = std::env::temp_dir().join(format!("delorean-example-{}.dlt", std::process::id()));
    // lint:allow(no-wallclock): the demo prints real elapsed time for context; it never feeds a report
    let t = Instant::now();
    let summary = pack_workload(&workload, 0..span, &path).expect("pack");
    println!(
        "packed {} accesses into {} tiles ({} bytes, {:.1} ms)",
        summary.records,
        summary.tiles,
        summary.bytes,
        t.elapsed().as_secs_f64() * 1e3,
    );

    // `TiledTrace::open` verifies every tile checksum eagerly, then the
    // file behaves exactly like the workload it was packed from — the
    // whole strategy stack runs on it unchanged.
    let tiled = TiledTrace::open(&path).expect("open tile file");
    assert_eq!(tiled.name(), workload.name());
    assert_eq!(tiled.file().tile_records(), DEFAULT_TILE_RECORDS);

    let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale));
    // lint:allow(no-wallclock): the demo prints real elapsed time for context; it never feeds a report
    let t = Instant::now();
    let in_memory = runner.run(&workload, &plan);
    let in_memory_wall = t.elapsed().as_secs_f64();
    // lint:allow(no-wallclock): the demo prints real elapsed time for context; it never feeds a report
    let t = Instant::now();
    let from_tiles = runner.run(&tiled, &plan);
    let tiled_wall = t.elapsed().as_secs_f64();

    assert_eq!(
        in_memory.report, from_tiles.report,
        "tiled run must be bit-identical"
    );
    println!(
        "DeLorean CPI {:.3}: in-memory {:.3} s, tiled {:.3} s — reports bit-identical",
        in_memory.cpi(),
        in_memory_wall,
        tiled_wall,
    );

    // The streaming cursor decodes tiles on a background thread with a
    // bounded channel; same records, overlap instead of interleaving.
    let streaming = tiled.clone().with_streaming(true);
    let from_stream = runner.run(&streaming, &plan);
    assert_eq!(in_memory.report, from_stream.report);
    println!("streaming decoder run: also bit-identical");

    std::fs::remove_file(&path).ok();
}
