//! Speculative SMARTS: break the sequential warm chain, keep the report.
//!
//! SMARTS warms the hierarchy through *every* access between detailed
//! regions, so region N+1 cannot start until region N's warming is done
//! — the one strategy the region-parallel runtime cannot scale. The
//! speculative warm lane guesses each region's boundary state with a
//! cheap proxy, measures in parallel from the guess, and digest-checks
//! the guess when the true chain catches up: a match commits the
//! speculative measurement, a mismatch re-measures from the true state.
//! Either way the report is bitwise identical to sequential SMARTS —
//! this example asserts it, then prints each proxy's speculation
//! hit-rate and the modeled wallclock speedup it buys.
//!
//! Run with: `cargo run --release --example speculative_smarts`

use delorean::prelude::*;

fn main() {
    let scale = Scale::tiny();
    let workload = spec_workload("hmmer", scale, 42).expect("known benchmark");
    let plan = SamplingConfig::for_scale(scale).plan();
    let machine = MachineConfig::for_scale(scale);
    let workers = 4;

    println!("workload : hmmer");
    println!("scale    : {scale}");
    println!("regions  : {}\n", plan.regions.len());

    // The reference: plain chained SMARTS.
    let sequential = SmartsRunner::new(machine).run_with_workers(&workload, &plan, 1);
    let seq_wall = sequential.report.cost.region_parallel_wallclock(1);

    println!(
        "{:<18} {:>10} {:>16}",
        "proxy", "hit-rate", "modeled speedup"
    );
    for proxy in [
        ProxyStateSource::Cold,
        ProxyStateSource::NearestBoundary,
        ProxyStateSource::StatModel,
    ] {
        let speculative = SmartsRunner::new(machine)
            .with_speculation(proxy)
            .run_with_workers(&workload, &plan, workers);

        // The whole point: speculation never changes the answer.
        assert_eq!(
            sequential.report, speculative.report,
            "speculative report must be bitwise identical to sequential SMARTS"
        );

        let extras = speculative
            .extras::<SpeculationExtras>()
            .expect("speculative runs attach SpeculationExtras");
        let wall = speculative
            .report
            .cost
            .speculative_wallclock(workers, &extras.outcomes);
        println!(
            "{:<18} {:>7}/{:<2} {:>11.2}x at {workers} workers",
            proxy.name(),
            extras.hits(),
            extras.outcomes.len(),
            seq_wall / wall,
        );
    }

    println!(
        "\nevery row above reproduced the sequential report bit for bit;\n\
         the statmodel proxy warms a reuse-directed window instead of the\n\
         blind prefix, which is where the speedup comes from."
    );
}
