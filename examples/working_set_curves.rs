//! Working-set characterization (the paper's §6.4.1 use case).
//!
//! Sweeps the LLC from 1 MiB to 512 MiB (paper scale) for lbm and plots
//! its MPKI curve as ASCII art: DeLorean evaluates *all ten points from a
//! single warm-up* because reuse distances are
//! microarchitecture-independent, while the SMARTS reference must re-run
//! functional warming per size.
//!
//! Run with: `cargo run --release --example working_set_curves`

use delorean::prelude::*;

fn main() {
    let scale = Scale::tiny();
    let workload = spec_workload("lbm", scale, 42).expect("known benchmark");
    let plan = SamplingConfig::for_scale(scale).with_regions(5).plan();

    let sizes = MachineConfig::llc_sweep_paper_bytes();
    let machines: Vec<MachineConfig> = sizes
        .iter()
        .map(|&s| MachineConfig::for_scale(scale).with_llc_paper_bytes(scale, s))
        .collect();

    // One warm-up, ten analysts.
    let dse = DesignSpaceExplorer::new(
        MachineConfig::for_scale(scale),
        DeLoreanConfig::for_scale(scale),
    );
    let delorean = dse.run(&workload, &plan, &machines);

    println!("lbm working-set curve ({scale}):\n");
    println!(
        "{:>12} {:>14} {:>14}",
        "LLC (MB)", "SMARTS MPKI", "DeLorean MPKI"
    );
    let mut rows = Vec::new();
    for (i, (&size, machine)) in sizes.iter().zip(&machines).enumerate() {
        let reference = SmartsRunner::new(*machine).run(&workload, &plan);
        let d = delorean.outputs[i].report.llc_mpki();
        println!(
            "{:>12} {:>14.2} {:>14.2}",
            size >> 20,
            reference.llc_mpki(),
            d
        );
        rows.push((size >> 20, d));
    }

    // ASCII sketch of the DeLorean curve.
    let max = rows.iter().map(|r| r.1).fold(f64::MIN_POSITIVE, f64::max);
    println!("\nDeLorean curve (each ▪ ≈ {:.2} MPKI):", max / 40.0);
    for (mb, mpki) in rows {
        let bars = ((mpki / max) * 40.0).round() as usize;
        println!("{mb:>6} MB | {}", "▪".repeat(bars));
    }
    println!(
        "\nwarm-up cost paid once: {:.1}× the cost of one analyst \
         (10 analysts cost {:.2}× one run)",
        delorean.warming_to_detailed_ratio(),
        delorean.marginal_cost_factor(10)
    );
}
