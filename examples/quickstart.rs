//! Quickstart: evaluate one workload with all three sampling strategies.
//!
//! Builds the synthetic `mcf` workload, runs SMARTS (the functional-warming
//! reference), CoolSim (randomized statistical warming) and DeLorean
//! (directed statistical warming + time traveling), and reports accuracy
//! and speed — a miniature of the paper's Figures 5 and 9.
//!
//! Run with: `cargo run --release --example quickstart`

use delorean::prelude::*;

fn main() {
    // `tiny` keeps this example instant; try `Scale::demo()` for the
    // configuration the experiments use.
    let scale = Scale::tiny();
    let workload = spec_workload("mcf", scale, 42).expect("known benchmark");
    let plan = SamplingConfig::for_scale(scale).plan();
    let machine = MachineConfig::for_scale(scale);

    println!("workload : mcf");
    println!("scale    : {scale}");
    println!(
        "plan     : {} regions of {} instructions, {} apart\n",
        plan.regions.len(),
        plan.config.detailed_instrs,
        plan.config.spacing_instrs
    );

    // All strategies share the SamplingStrategy interface; the batch
    // executor fans them out across worker threads.
    let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ];
    let mut reports = BatchExecutor::new()
        .run_strategies(&strategies, &workload, &plan)
        .into_iter();
    let reference = reports.next().unwrap().into_report();
    let coolsim = reports.next().unwrap().into_report();
    let delorean: DeLoreanOutput = reports.next().unwrap().try_into().unwrap();

    println!(
        "{:<10} {:>8} {:>12} {:>12}",
        "strategy", "CPI", "CPI error", "speedup"
    );
    println!(
        "{:<10} {:>8.3} {:>12} {:>12}",
        "SMARTS",
        reference.cpi(),
        "—",
        "1.0× (ref)"
    );
    println!(
        "{:<10} {:>8.3} {:>11.1}% {:>11.1}×",
        "CoolSim",
        coolsim.cpi(),
        100.0 * coolsim.cpi_error_vs(&reference),
        coolsim.speedup_vs(&reference)
    );
    println!(
        "{:<10} {:>8.3} {:>11.1}% {:>11.1}×",
        "DeLorean",
        delorean.report.cpi(),
        100.0 * delorean.report.cpi_error_vs(&reference),
        delorean.report.speedup_vs(&reference)
    );

    let stats = &delorean.stats;
    println!("\ntime traveling:");
    println!(
        "  key cachelines/region (avg): {:.1}",
        stats.avg_keys_per_region()
    );
    println!(
        "  explorers engaged (avg)    : {:.2}",
        stats.avg_explorers_engaged()
    );
    println!(
        "  reuse distances collected  : {} (CoolSim: {})",
        delorean.report.collected_reuse_distances, coolsim.collected_reuse_distances
    );
}
