//! Building a custom workload from pattern primitives.
//!
//! The suite in `delorean-trace` covers SPEC-like behaviours, but any
//! deterministic access pattern can be composed from the primitives. This
//! example builds a two-phase workload — a streaming phase and a
//! pointer-chasing phase — and inspects how DeLorean's time traveling
//! reacts: key counts, explorer engagement and classification mix.
//!
//! Run with: `cargo run --release --example custom_workload`

use delorean::prelude::*;
use delorean::trace::{Pattern, PhasedWorkloadBuilder, StreamSpec};

fn main() {
    // Phase 1: sequential streaming over 1 MiB with a hot 4 KiB loop.
    // Phase 2: pointer-chase-like random traffic over 4 MiB.
    let workload = PhasedWorkloadBuilder::new("custom-stream-chase", 0xfeed)
        .mem_period(3)
        .phase(
            600_000,
            vec![
                StreamSpec::new(
                    Pattern::Stream {
                        lines: 64,
                        stride_lines: 1,
                    },
                    8,
                ),
                StreamSpec::new(Pattern::PermutationWalk { lines: 16_384 }, 2).with_pcs(2),
            ],
        )
        .phase(
            400_000,
            vec![
                StreamSpec::new(
                    Pattern::Stream {
                        lines: 64,
                        stride_lines: 1,
                    },
                    7,
                ),
                StreamSpec::new(Pattern::RandomUniform { lines: 65_536 }, 3).with_pcs(16),
            ],
        )
        .build()
        .expect("valid workload spec");

    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale).plan();
    let machine = MachineConfig::for_scale(scale);

    let reference = SmartsRunner::new(machine).run(&workload, &plan);
    let delorean: DeLoreanOutput = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale))
        .run(&workload, &plan)
        .try_into()
        .expect("delorean extras");

    println!("custom workload: {}", workload.name());
    println!(
        "  cycle length : {} accesses",
        workload.cycle_len_accesses()
    );
    println!("  footprint    : {} lines", workload.footprint_lines());
    println!();
    println!("  SMARTS CPI   : {:.3}", reference.cpi());
    println!("  DeLorean CPI : {:.3}", delorean.report.cpi());
    println!(
        "  CPI error    : {:.1}%",
        100.0 * delorean.report.cpi_error_vs(&reference)
    );
    println!(
        "  speedup      : {:.0}×",
        delorean.report.speedup_vs(&reference)
    );
    println!();
    println!("time traveling detail per run:");
    println!(
        "  keys/region avg {:.1} (min {}, max {})",
        delorean.stats.avg_keys_per_region(),
        delorean.stats.min_keys_per_region(),
        delorean.stats.max_keys_per_region()
    );
    println!(
        "  explorers engaged avg {:.2}; resolved by explorer: {:?}; cold: {}",
        delorean.stats.avg_explorers_engaged(),
        delorean.stats.resolved_by_explorer,
        delorean.stats.cold_keys
    );
    println!(
        "  DSW verdicts: {} set-conflict, {} stride-conflict, {} capacity, {} cold, {} warming(→hit)",
        delorean.dsw_counts.conflict_set_full,
        delorean.dsw_counts.conflict_stride,
        delorean.dsw_counts.capacity,
        delorean.dsw_counts.cold,
        delorean.dsw_counts.warming,
    );
}
