//! Multiprogrammed cache contention with StatCC (§4.2).
//!
//! The paper argues DeLorean generalizes to multiprogrammed workloads via
//! StatCC: solo reuse profiles (exactly what the Explorers collect) feed a
//! small CPI/contention fixpoint that predicts how applications interact
//! in a shared LLC. This example characterizes three suite workloads solo,
//! then predicts every pairing's contention.
//!
//! Run with: `cargo run --release --example multiprogram`

use delorean::prelude::*;
use delorean::statmodel::statcc::{StatCc, StatCcApp};
use delorean::statmodel::ReuseProfile;

/// Build a solo reuse profile by full profiling of a workload slice (in a
/// DeLorean deployment this comes from the Explorers' vicinity sampling).
fn solo_profile(w: &dyn Workload, accesses: u64) -> ReuseProfile {
    let mut profile = ReuseProfile::new();
    let mut last = std::collections::HashMap::new();
    for a in w.iter_range(0..accesses) {
        if let Some(p) = last.insert(a.line(), a.index) {
            profile.record(a.index - p - 1, 1.0);
        } else {
            profile.record_cold(1.0);
        }
    }
    profile
}

fn main() {
    let scale = Scale::tiny();
    let shared_lines = 1_024u64; // a 64 KiB shared LLC (tiny scale)
    let names = ["hmmer", "omnetpp", "libquantum"];

    let apps: Vec<StatCcApp> = names
        .iter()
        .map(|name| {
            let w = spec_workload(name, scale, 42).expect("known benchmark");
            let profile = solo_profile(&w, 60_000);
            let apki = 1000.0 / w.mem_period() as f64;
            StatCcApp {
                name: name.to_string(),
                profile,
                apki,
                base_cpi: 0.4,
                miss_penalty_cycles: 60.0,
            }
        })
        .collect();

    println!("solo miss ratios in a {shared_lines}-line LLC:");
    for a in &apps {
        println!(
            "  {:<12} {:.1}%",
            a.name,
            100.0 * a.profile.miss_ratio(shared_lines)
        );
    }

    println!("\npairwise contention (StatCC fixpoint):");
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>9}",
        "pairing", "CPI A", "CPI B", "missA", "missB"
    );
    for i in 0..apps.len() {
        for j in (i + 1)..apps.len() {
            let pair = [apps[i].clone(), apps[j].clone()];
            let sol = StatCc::new().solve(&pair, shared_lines);
            println!(
                "{:<26} {:>10.3} {:>10.3} {:>8.1}% {:>8.1}%",
                format!("{} + {}", pair[0].name, pair[1].name),
                sol.cpi[0],
                sol.cpi[1],
                100.0 * sol.miss_ratio[0],
                100.0 * sol.miss_ratio[1],
            );
        }
    }
    println!(
        "\nReuse profiles are microarchitecture-independent, so the same \
         Explorer output drives solo analysis, cache sweeps AND contention \
         prediction."
    );
}
