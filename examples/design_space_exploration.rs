//! Design-space exploration (the paper's §6.4.2 use case).
//!
//! Question a computer architect actually asks: "how much LLC does this
//! workload need before returns diminish?" DeLorean answers with CPI
//! across the whole cache sweep from one warm-up; this example also prints
//! the cost accounting that makes parallel exploration nearly free.
//!
//! Run with: `cargo run --release --example design_space_exploration`

use delorean::prelude::*;

fn main() {
    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale).with_regions(5).plan();
    let sizes = MachineConfig::llc_sweep_paper_bytes();
    let machines: Vec<MachineConfig> = sizes
        .iter()
        .map(|&s| MachineConfig::for_scale(scale).with_llc_paper_bytes(scale, s))
        .collect();

    for name in ["cactusADM", "leslie3d", "lbm"] {
        let workload = spec_workload(name, scale, 42).expect("known benchmark");
        let dse = DesignSpaceExplorer::new(
            MachineConfig::for_scale(scale),
            DeLoreanConfig::for_scale(scale),
        );
        let result = dse.run(&workload, &plan, &machines);

        println!("\n=== {name} ===");
        println!("{:>12} {:>10} {:>12}", "LLC (MB)", "CPI", "LLC MPKI");
        let mut best = (0u64, f64::INFINITY);
        for (i, &size) in sizes.iter().enumerate() {
            let cpi = result.outputs[i].report.cpi();
            let mpki = result.outputs[i].report.llc_mpki();
            println!("{:>12} {:>10.3} {:>12.2}", size >> 20, cpi, mpki);
            if cpi < best.1 * 0.98 {
                best = (size >> 20, cpi);
            }
        }
        println!(
            "smallest LLC within 2% of best CPI: {} MB (paper scale)",
            best.0
        );
        println!(
            "cost: warming {:.2} s (shared) + {:.3} s per analyst; \
             10 configurations cost {:.2}× one",
            result.warming_seconds,
            result.analyst_seconds[0],
            result.marginal_cost_factor(10)
        );
    }
}
