//! Statistical warming with a hardware prefetcher (§6.3.2).
//!
//! DeLorean's statistical model replaces the simulated miss stream, so it
//! can also *drive* an LLC stride prefetcher: predicted misses train the
//! stream table, and prefetches to lines predicted resident are nullified.
//! This example compares DeLorean against the SMARTS reference with the
//! prefetcher off and on, for a streaming workload where prefetching
//! matters.
//!
//! Run with: `cargo run --release --example prefetcher_study`

use delorean::prelude::*;

fn main() {
    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale).plan();

    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>10}",
        "workload", "prefetch", "SMARTS CPI", "DeLorean CPI", "error"
    );
    for name in ["libquantum", "lbm", "leslie3d"] {
        let workload = spec_workload(name, scale, 42).expect("known benchmark");
        for prefetch in [false, true] {
            let machine = MachineConfig::for_scale(scale).with_prefetch(prefetch);
            let reference = SmartsRunner::new(machine).run(&workload, &plan);
            let delorean = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(scale))
                .run(&workload, &plan);
            println!(
                "{:<12} {:>10} {:>14.3} {:>14.3} {:>9.1}%",
                name,
                if prefetch { "on" } else { "off" },
                reference.cpi(),
                delorean.report.cpi(),
                100.0 * delorean.report.cpi_error_vs(&reference)
            );
        }
    }
    println!(
        "\nThe prefetcher is trained by *predicted* misses under DeLorean — \
         the statistical model stands in for the simulated miss stream."
    );
}
