//! Tile-file property tests: encode→decode round-trips are byte-identical
//! for record counts straddling tile boundaries, through every cursor
//! flavour, and corruption anywhere in the file surfaces as a typed
//! [`TileError`] rather than a panic or silent bad data.

use delorean_trace::tile::{FILE_HEADER_BYTES, RECORD_BYTES, TILE_HEADER_BYTES};
use delorean_trace::{
    pack_workload_with, spec_workload, AccessCursor, Scale, TileError, TileFile, TiledTrace,
    Workload, WorkloadExt,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

fn temp(tag: &str) -> PathBuf {
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "delorean-roundtrip-{}-{tag}-{id}.dlt",
        std::process::id()
    ))
}

/// Every record of the file must equal the source access, for counts on
/// either side of (and exactly on) tile boundaries — the off-by-one
/// surface of the last-short-tile arithmetic.
#[test]
fn round_trip_is_byte_identical_across_boundary_straddling_counts() {
    const TILE: u64 = 64;
    let w = spec_workload("soplex", Scale::tiny(), 11).unwrap();
    for count in [
        1,
        TILE - 1,
        TILE,
        TILE + 1,
        2 * TILE - 1,
        2 * TILE,
        2 * TILE + 1,
        3 * TILE + 7,
    ] {
        let path = temp(&format!("count{count}"));
        let summary = pack_workload_with(&w, 0..count, &path, TILE as u32).unwrap();
        assert_eq!(summary.records, count);
        assert_eq!(summary.tiles as u64, count.div_ceil(TILE));
        assert_eq!(
            summary.bytes,
            FILE_HEADER_BYTES as u64
                + summary.tiles as u64 * TILE_HEADER_BYTES as u64
                + count * RECORD_BYTES as u64,
            "count {count}: packed size must be exactly header + tiles + records"
        );
        let t = TiledTrace::open(&path).unwrap();
        for k in 0..count {
            assert_eq!(t.access_at(k), w.access_at(k), "count {count}, index {k}");
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// Non-zero range starts re-base the trace (record i = source access
/// start+i), matching `RecordedTrace::capture`.
#[test]
fn packing_a_nonzero_start_rebases_like_recorded_trace() {
    let w = spec_workload("astar", Scale::tiny(), 3).unwrap();
    let path = temp("rebase");
    pack_workload_with(&w, 1_000..1_500, &path, 128).unwrap();
    let t = TiledTrace::open(&path).unwrap();
    assert_eq!(t.recorded_len(), 500);
    for k in [0u64, 1, 127, 128, 499] {
        let got = t.access_at(k);
        let src = w.access_at(1_000 + k);
        assert_eq!(got.index, k);
        assert_eq!(got.icount, k * w.mem_period());
        assert_eq!((got.pc, got.addr, got.kind), (src.pc, src.addr, src.kind));
    }
    std::fs::remove_file(&path).unwrap();
}

/// Both cursor flavours must equal `access_at` for ranges that start
/// mid-tile, end mid-tile, and extend past the recorded length (cyclic
/// wrap), at awkward fill sizes.
#[test]
fn cursors_are_equivalent_to_random_access_everywhere() {
    let w = spec_workload("omnetpp", Scale::tiny(), 5).unwrap();
    let path = temp("cursoreq");
    pack_workload_with(&w, 0..700, &path, 64).unwrap();
    let t = TiledTrace::open(&path).unwrap();
    for range in [0..700u64, 63..65, 100..612, 650..1_500, 1_400..1_402] {
        for streaming in [false, true] {
            let source = t.clone().with_streaming(streaming);
            let mut cur = source.cursor(range.clone());
            let mut buf = Vec::new();
            let mut k = range.start;
            while cur.fill(&mut buf, 61) > 0 {
                for a in &buf {
                    assert_eq!(*a, t.access_at(k), "k={k} streaming={streaming}");
                    k += 1;
                }
            }
            assert_eq!(k, range.end, "range {range:?} streaming={streaming}");
        }
    }
    std::fs::remove_file(&path).unwrap();
}

/// A bit flip in any region of the file must produce a typed error —
/// never a panic, never silently different data.
#[test]
fn every_corruption_site_yields_a_typed_error() {
    let w = spec_workload("sjeng", Scale::tiny(), 13).unwrap();
    let path = temp("corrupt");
    pack_workload_with(&w, 0..300, &path, 64).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    // Flip one byte at a spread of offsets covering the file header,
    // tile headers, and payloads.
    let sites = [
        0usize,                                    // magic
        9,                                         // version
        13,                                        // tile_records
        30,                                        // record_count
        62,                                        // name
        121,                                       // header checksum
        FILE_HEADER_BYTES + 1,                     // tile 0 header
        FILE_HEADER_BYTES + TILE_HEADER_BYTES + 5, // tile 0 payload
        pristine.len() - 3,                        // last tile payload
    ];
    for &site in &sites {
        let mut bad = pristine.clone();
        bad[site] ^= 0x10;
        std::fs::write(&path, &bad).unwrap();
        let err = match TileFile::open(&path) {
            Err(e) => e,
            Ok(f) => f
                .verify()
                .expect_err(&format!("corruption at byte {site} went undetected")),
        };
        match err {
            TileError::BadMagic { .. }
            | TileError::UnsupportedVersion { .. }
            | TileError::Truncated { .. }
            | TileError::HeaderCorrupt { .. }
            | TileError::TileCorrupt { .. }
            | TileError::ChecksumMismatch { .. } => {}
            other => panic!("corruption at byte {site}: unexpected error {other}"),
        }
    }

    // Truncations at every structural boundary.
    for keep in [
        0,
        4,
        FILE_HEADER_BYTES - 1,
        FILE_HEADER_BYTES,
        pristine.len() - 1,
    ] {
        std::fs::write(&path, &pristine[..keep]).unwrap();
        assert!(
            matches!(TileFile::open(&path), Err(TileError::Truncated { .. })),
            "truncation to {keep} bytes not reported"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

/// The decoder thread propagates errors through the channel: the stream
/// ends at the corrupt tile and the error is surfaced, not panicked.
#[test]
fn streaming_decoder_propagates_corruption_in_band() {
    let w = spec_workload("sjeng", Scale::tiny(), 13).unwrap();
    let path = temp("streamerr");
    pack_workload_with(&w, 0..300, &path, 64).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    let tile1_payload =
        FILE_HEADER_BYTES + TILE_HEADER_BYTES + 64 * RECORD_BYTES + TILE_HEADER_BYTES;
    bytes[tile1_payload + 10] ^= 0x80;
    std::fs::write(&path, &bytes).unwrap();

    let t = TiledTrace::open_unverified(&path).unwrap();
    let mut cur = t.streaming_cursor(0..300);
    let mut buf = Vec::new();
    let mut seen = 0u64;
    while cur.fill(&mut buf, 50) > 0 {
        seen += buf.len() as u64;
    }
    assert_eq!(seen, 64, "only tile 0 streams before the corrupt tile 1");
    assert!(matches!(
        cur.take_error(),
        Some(TileError::ChecksumMismatch { tile: 1, .. })
    ));
    // After the error the cursor stays exhausted and quiet.
    assert_eq!(cur.fill(&mut buf, 50), 0);
    std::fs::remove_file(&path).unwrap();
}

/// for_each_access over tiled and synthetic sources produce the same
/// stream — the consumer-level warm-loop contract.
#[test]
fn warm_loop_streams_match_the_source_workload() {
    let w = spec_workload("libquantum", Scale::tiny(), 21).unwrap();
    let path = temp("warmstream");
    pack_workload_with(&w, 0..2_000, &path, 256).unwrap();
    let t = TiledTrace::open(&path).unwrap().with_streaming(true);
    let mut expect = Vec::new();
    w.for_each_access(10..1_990, |a| expect.push(*a));
    let mut got = Vec::new();
    t.for_each_access(10..1_990, |a| got.push(*a));
    assert_eq!(expect, got);
    std::fs::remove_file(&path).unwrap();
}
