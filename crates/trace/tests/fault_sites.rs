//! Armed fault-injection tests for the trace-level sites: the
//! streaming decoder thread and journal appends.
//!
//! These tests live in their own integration binary on purpose: the
//! fault registry is process-global, and [`delorean_trace::fault::arm`]
//! serializes armed sections against each other — but it cannot
//! protect tests in *other* binaries that traverse the same sites.
//! Everything here either holds an arm guard or consults plans purely.

use delorean_trace::fault::{self, FaultKind, FaultPlan, FaultPolicy, FaultSite, UnitFault};
use delorean_trace::journal::{JournalError, JournalReader, JournalWriter};
use delorean_trace::{
    pack_workload_with, spec_workload, AccessCursor, Scale, TileError, TiledTrace, Workload,
};
use std::path::PathBuf;

fn temp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("delorean-fault-{}-{tag}", std::process::id()))
}

#[test]
fn decoder_kill_surfaces_decoder_failed_not_clean_eos() {
    let w = spec_workload("hmmer", Scale::tiny(), 3).unwrap();
    let path = temp("decoder.dlt");
    pack_workload_with(&w, 0..4_000, &path, 256).unwrap();
    let t = TiledTrace::open(&path).unwrap();

    let _guard = fault::arm(
        FaultPlan::new(7)
            .at(FaultSite::DecoderThread)
            .every(1)
            .strikes(u32::MAX)
            .kinds(&[FaultKind::Panic]),
    );
    let mut cur = t.streaming_cursor(0..4_000);
    let mut buf = Vec::new();
    let mut produced = 0u64;
    while cur.fill(&mut buf, 512) > 0 {
        produced += buf.len() as u64;
    }
    assert!(
        produced < 4_000,
        "a killed decoder cannot deliver the full range"
    );
    match cur.error() {
        Some(TileError::DecoderFailed { detail }) => {
            assert!(detail.contains("panicked"), "detail: {detail}");
        }
        other => panic!("expected DecoderFailed, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn decoder_retry_recovers_the_full_stream_byte_identically() {
    let w = spec_workload("hmmer", Scale::tiny(), 3).unwrap();
    let path = temp("decoder-retry.dlt");
    pack_workload_with(&w, 0..4_000, &path, 256).unwrap();
    // 16 tiles; every(2) arms a seed-chosen subset, strikes(1) kills
    // the decoder on each armed tile's first visit only — so each
    // armed tile costs exactly one respawn and the respawned decoder
    // (occurrence 1) sails past it.
    let plan = FaultPlan::new(7)
        .at(FaultSite::DecoderThread)
        .every(2)
        .strikes(1)
        .kinds(&[FaultKind::Panic]);
    let armed: Vec<u64> = (0..16u64)
        .filter(|&tile| plan.fault_for(FaultSite::DecoderThread, tile, 0).is_some())
        .collect();
    assert!(!armed.is_empty(), "seed 7 must arm at least one tile");
    let _guard = fault::arm(plan);
    let t = TiledTrace::open(&path)
        .unwrap()
        .with_decoder_retry(FaultPolicy { retry_budget: 16 });
    let mut cur = t.streaming_cursor(0..4_000);
    let mut buf = Vec::new();
    let mut got = Vec::new();
    while cur.fill(&mut buf, 512) > 0 {
        got.extend_from_slice(&buf);
    }
    assert!(cur.error().is_none(), "retries must absorb decoder deaths");
    assert_eq!(
        cur.retries_used() as usize,
        armed.len(),
        "one respawn per armed tile, no more"
    );
    assert_eq!(got.len(), 4_000);
    // Byte-identical to the random-access path: the respawned decoder
    // resumed from the exact consumer position.
    for (k, a) in got.iter().enumerate() {
        assert_eq!(*a, t.access_at(k as u64), "index {k}");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn decoder_retry_budget_exhaustion_still_surfaces_decoder_failed() {
    let w = spec_workload("hmmer", Scale::tiny(), 3).unwrap();
    let path = temp("decoder-exhaust.dlt");
    pack_workload_with(&w, 0..4_000, &path, 256).unwrap();
    // Unbounded strikes: tile 0 faults on every visit, so every
    // respawn dies again and the bounded budget must give up with the
    // same typed error the no-retry path surfaces.
    let _guard = fault::arm(
        FaultPlan::new(7)
            .at(FaultSite::DecoderThread)
            .every(1)
            .strikes(u32::MAX)
            .kinds(&[FaultKind::Panic]),
    );
    let t = TiledTrace::open(&path)
        .unwrap()
        .with_decoder_retry(FaultPolicy { retry_budget: 2 });
    let mut cur = t.streaming_cursor(0..4_000);
    let mut buf = Vec::new();
    let mut produced = 0u64;
    while cur.fill(&mut buf, 512) > 0 {
        produced += buf.len() as u64;
    }
    assert!(produced < 4_000);
    assert_eq!(
        cur.retries_used(),
        2,
        "budget must be spent before giving up"
    );
    match cur.error() {
        Some(TileError::DecoderFailed { detail }) => {
            assert!(detail.contains("panicked"), "detail: {detail}");
        }
        other => panic!("expected DecoderFailed, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn disarmed_decoder_streams_cleanly_under_a_siteless_plan() {
    let w = spec_workload("mcf", Scale::tiny(), 5).unwrap();
    let path = temp("clean.dlt");
    pack_workload_with(&w, 0..2_000, &path, 128).unwrap();
    let t = TiledTrace::open(&path).unwrap();

    // Armed plan with NO sites: every hit must be a no-op.
    let _guard = fault::arm(FaultPlan::new(3));
    let mut cur = t.streaming_cursor(0..2_000);
    let mut buf = Vec::new();
    let mut produced = 0u64;
    while cur.fill(&mut buf, 512) > 0 {
        produced += buf.len() as u64;
    }
    assert_eq!(produced, 2_000);
    assert!(cur.error().is_none());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn journal_write_fault_is_a_typed_error_and_the_retry_lands() {
    let path = temp("journal.dlj");
    let _guard = fault::arm(
        FaultPlan::new(11)
            .at(FaultSite::JournalWrite)
            .every(1)
            .strikes(1)
            .kinds(&[FaultKind::TraceError]),
    );
    let mut w = JournalWriter::create(&path, 0xabcd).unwrap();
    // First occurrence of entry 0 faults, as a typed error — never a
    // panic, and never a byte on disk.
    match w.append(1, b"cell-0") {
        Err(JournalError::Injected { seq: 0 }) => {}
        other => panic!("expected injected fault, got {other:?}"),
    }
    assert_eq!(w.entries(), 0);
    // The retry (occurrence 1 ≥ strikes) succeeds.
    w.append(1, b"cell-0").unwrap();
    assert_eq!(w.entries(), 1);
    drop(_guard);

    let r = JournalReader::open(&path, Some(0xabcd)).unwrap();
    assert!(!r.torn, "a faulted append must leave no partial bytes");
    assert_eq!(r.entries.len(), 1);
    assert_eq!(r.entries[0].payload, b"cell-0");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn armed_plan_drives_guarded_retry_through_occurrence_counters() {
    let _guard = fault::arm(
        FaultPlan::new(21)
            .at(FaultSite::UnitEntry)
            .every(1)
            .strikes(1)
            .kinds(&[FaultKind::Panic]),
    );
    // First attempt faults at entry, the retry's occurrence passes the
    // strike budget and the unit completes.
    let out = fault::run_unit_guarded(5, &FaultPolicy::default(), || {
        fault::hit(FaultSite::UnitEntry, 5);
        42u32
    });
    assert_eq!(out.unwrap(), 42);
}

#[test]
fn strikes_beyond_the_budget_quarantine_with_attempt_count() {
    let _guard = fault::arm(
        FaultPlan::new(33)
            .at(FaultSite::UnitEntry)
            .every(1)
            .strikes(u32::MAX)
            .kinds(&[FaultKind::Timeout]),
    );
    let policy = FaultPolicy { retry_budget: 2 };
    let err = fault::run_unit_guarded(9, &policy, || -> u32 {
        fault::hit(FaultSite::UnitEntry, 9);
        unreachable!("the plan faults every occurrence");
    })
    .unwrap_err();
    assert_eq!(err.unit, 9);
    assert_eq!(err.attempts, 3);
    assert!(matches!(err.fault, UnitFault::Timeout));
}

#[test]
fn delay_faults_stall_but_never_fail() {
    let _guard = fault::arm(
        FaultPlan::new(17)
            .at(FaultSite::UnitEntry)
            .every(1)
            .strikes(u32::MAX)
            .kinds(&[FaultKind::Delay]),
    );
    let out = fault::run_unit_guarded(3, &FaultPolicy { retry_budget: 0 }, || {
        fault::hit(FaultSite::UnitEntry, 3);
        7u32
    });
    assert_eq!(out.unwrap(), 7);
}

#[test]
fn arm_guard_releases_the_gate_for_the_next_plan() {
    let g = fault::arm(FaultPlan::new(1).at(FaultSite::UnitEntry));
    assert!(fault::armed());
    drop(g);
    let g2 = fault::arm(FaultPlan::new(2).at(FaultSite::JournalWrite));
    assert!(fault::armed());
    drop(g2);
}
