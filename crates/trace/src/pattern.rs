//! Access-pattern primitives.
//!
//! Every primitive maps a *stream-local* access index `j` to a line offset
//! within the pattern's footprint in `O(1)`, which is what keeps whole
//! workloads position addressable. Each primitive produces a distinct
//! reuse-distance signature:
//!
//! | Pattern | Reuse-distance signature | Typical use |
//! |---|---|---|
//! | [`Pattern::Stream`] | sharp spike at footprint/stride | sequential array sweeps |
//! | [`Pattern::PermutationWalk`] | exact spike at footprint | working-set "knees" (lbm) |
//! | [`Pattern::RandomUniform`] | geometric around footprint | pointer-chasing (mcf) |
//! | [`Pattern::HotCold`] | bimodal short/long | most integer codes |
//! | [`Pattern::StridedScan`] | spike, but set-conflicting | limited-associativity outliers |

use crate::rng::mix64;
use serde::{Deserialize, Serialize};

/// Cachelines per 4 KiB page.
const LINES_PER_PAGE: u64 = crate::PAGE_BYTES / crate::LINE_BYTES;

/// A position-addressable access pattern over a private footprint.
///
/// All line offsets returned by [`Pattern::line_at`] lie in
/// `[0, footprint_lines())`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Sequential scan: access `j` touches line `(j * stride) % lines`.
    ///
    /// With `stride_lines == 1` this is a straight streaming sweep whose
    /// reuse distance (in stream-local accesses) equals `lines`.
    Stream {
        /// Footprint in cachelines.
        lines: u64,
        /// Lines advanced per access (≥ 1, coprimality not required).
        stride_lines: u64,
    },
    /// Uniform random accesses over the footprint.
    ///
    /// Stream-local reuse distances are geometrically distributed with mean
    /// `lines`; stack distances spread smoothly, producing working-set
    /// curves without a pronounced knee (cactusADM, leslie3d).
    RandomUniform {
        /// Footprint in cachelines.
        lines: u64,
    },
    /// A fixed pseudo-random permutation walked cyclically.
    ///
    /// Every line is touched exactly once per `lines` accesses, so every
    /// access has stream-local reuse distance *exactly* `lines` — the
    /// sharpest possible working-set knee. Used to model lbm's knees at
    /// 8 MiB and 512 MiB.
    PermutationWalk {
        /// Footprint in cachelines.
        lines: u64,
    },
    /// Bimodal hot/cold mix: with probability `hot_permille`/1000 a random
    /// line of the hot set, otherwise a random line of the cold set.
    HotCold {
        /// Hot-set size in cachelines.
        hot_lines: u64,
        /// Cold-set size in cachelines.
        cold_lines: u64,
        /// Probability (per mille) of picking the hot set.
        hot_permille: u32,
    },
    /// Sequential scan over `lines` lines spaced `stride_lines` apart.
    ///
    /// With a large power-of-two byte stride (the paper's example: 512 B)
    /// the touched lines map to a fraction of the cache sets, causing
    /// conflict misses that the limited-associativity model must catch.
    StridedScan {
        /// Number of distinct lines touched.
        lines: u64,
        /// Spacing between consecutive lines, in lines.
        stride_lines: u64,
    },
    /// Hot and cold lines *interleaved within the same pages*: each page's
    /// first line is hot (frequently revisited), the remaining 63 lines
    /// are cold with long reuses.
    ///
    /// This is the layout that makes page-granularity watchpoints
    /// expensive (§6.1, povray): watching a cold line protects a page
    /// whose hot line traps constantly — every trap a false positive.
    PagedHotCold {
        /// Number of pages (64 lines each).
        pages: u64,
        /// Probability (per mille) of touching a page's hot line.
        hot_permille: u32,
    },
}

impl Pattern {
    /// Size of the address range this pattern touches, in cachelines.
    pub fn footprint_lines(&self) -> u64 {
        match *self {
            Pattern::Stream { lines, .. } => lines,
            Pattern::RandomUniform { lines } => lines,
            Pattern::PermutationWalk { lines } => lines,
            Pattern::HotCold {
                hot_lines,
                cold_lines,
                ..
            } => hot_lines + cold_lines,
            Pattern::StridedScan {
                lines,
                stride_lines,
            } => lines * stride_lines,
            Pattern::PagedHotCold { pages, .. } => pages * LINES_PER_PAGE,
        }
    }

    /// Number of *distinct* lines the pattern can touch (its working set).
    pub fn working_set_lines(&self) -> u64 {
        match *self {
            Pattern::StridedScan { lines, .. } => lines,
            _ => self.footprint_lines(),
        }
    }

    /// Line offset (within the footprint) of stream-local access `j`.
    ///
    /// Pure in `(self, seed, j)`.
    #[inline]
    pub fn line_at(&self, seed: u64, j: u64) -> u64 {
        match *self {
            Pattern::Stream {
                lines,
                stride_lines,
            } => (j % lines).wrapping_mul(stride_lines) % lines,
            Pattern::RandomUniform { lines } => mul_bound(mix64(seed, j), lines),
            Pattern::PermutationWalk { lines } => affine_perm(seed, j % lines, lines),
            Pattern::HotCold {
                hot_lines,
                cold_lines,
                hot_permille,
            } => {
                let h = mix64(seed ^ 0x5b1c_e3f2, j);
                if mul_bound(h, 1000) < hot_permille as u64 {
                    mul_bound(mix64(seed ^ 0x11, j), hot_lines)
                } else {
                    hot_lines + mul_bound(mix64(seed ^ 0x22, j), cold_lines)
                }
            }
            Pattern::StridedScan {
                lines,
                stride_lines,
            } => (j % lines) * stride_lines,
            Pattern::PagedHotCold {
                pages,
                hot_permille,
            } => {
                let h = mix64(seed ^ 0x0007_a6ed, j);
                let page = mul_bound(mix64(seed ^ 0x44, j), pages);
                if mul_bound(h, 1000) < hot_permille as u64 {
                    page * LINES_PER_PAGE
                } else {
                    page * LINES_PER_PAGE + 1 + mul_bound(mix64(seed ^ 0x55, j), LINES_PER_PAGE - 1)
                }
            }
        }
    }

    /// A streaming cursor producing `line_at(seed, j)`, `line_at(seed,
    /// j + 1)`, … incrementally.
    ///
    /// The cursor hoists everything `line_at` re-derives per call out of
    /// the loop: sequential and strided scans keep a running offset
    /// instead of a divide/multiply/mod chain, and permutation walks
    /// compute the affine multiplier (a gcd search in `line_at`) exactly
    /// once, stepping the permutation by modular addition afterwards.
    /// Hash-driven patterns (`RandomUniform`, `HotCold`, `PagedHotCold`)
    /// are inherently per-access and fall through to `line_at`.
    pub fn cursor(&self, seed: u64, start_j: u64) -> PatternCursor {
        let state = match *self {
            Pattern::Stream {
                lines,
                stride_lines,
            } => PatternState::Stream {
                cur: self.line_at(seed, start_j),
                step: stride_lines % lines,
                lines,
            },
            Pattern::StridedScan {
                lines,
                stride_lines,
            } => PatternState::StridedScan {
                idx: start_j % lines,
                cur: (start_j % lines) * stride_lines,
                stride: stride_lines,
                lines,
            },
            Pattern::PermutationWalk { lines } => PatternState::Perm {
                cur: self.line_at(seed, start_j),
                step: if lines == 1 {
                    0
                } else {
                    coprime_multiplier(seed, lines)
                },
                lines,
            },
            Pattern::RandomUniform { .. }
            | Pattern::HotCold { .. }
            | Pattern::PagedHotCold { .. } => PatternState::Hashed,
        };
        PatternCursor {
            pattern: *self,
            seed,
            j: start_j,
            state,
        }
    }

    /// Validate the parameters, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Pattern::Stream {
                lines,
                stride_lines,
            } => {
                if lines == 0 {
                    return Err("Stream: lines must be > 0".into());
                }
                if stride_lines == 0 {
                    return Err("Stream: stride_lines must be > 0".into());
                }
            }
            Pattern::RandomUniform { lines } | Pattern::PermutationWalk { lines } => {
                if lines == 0 {
                    return Err("pattern footprint must be > 0 lines".into());
                }
            }
            Pattern::HotCold {
                hot_lines,
                cold_lines,
                hot_permille,
            } => {
                if hot_lines == 0 || cold_lines == 0 {
                    return Err("HotCold: both sets must be non-empty".into());
                }
                if hot_permille > 1000 {
                    return Err("HotCold: hot_permille must be ≤ 1000".into());
                }
            }
            Pattern::StridedScan {
                lines,
                stride_lines,
            } => {
                if lines == 0 || stride_lines == 0 {
                    return Err("StridedScan: lines and stride must be > 0".into());
                }
            }
            Pattern::PagedHotCold {
                pages,
                hot_permille,
            } => {
                if pages == 0 {
                    return Err("PagedHotCold: pages must be > 0".into());
                }
                if hot_permille > 1000 {
                    return Err("PagedHotCold: hot_permille must be ≤ 1000".into());
                }
            }
        }
        Ok(())
    }
}

/// Incremental state of a [`PatternCursor`].
#[derive(Copy, Clone, Debug)]
enum PatternState {
    /// `Stream`: `(j % lines) * stride % lines` advances by `stride %
    /// lines` per access, wrapping modularly (the wrap at `j % lines == 0`
    /// lands on the same residue, so no reset is needed).
    Stream { cur: u64, step: u64, lines: u64 },
    /// `StridedScan`: `(j % lines) * stride` advances by `stride`,
    /// resetting when the scan restarts.
    StridedScan {
        idx: u64,
        cur: u64,
        stride: u64,
        lines: u64,
    },
    /// `PermutationWalk`: `(a·x + b) mod n` advances by `a mod n` per
    /// access; the wrap from `x = n − 1` to `x = 0` is again the same
    /// modular step.
    Perm { cur: u64, step: u64, lines: u64 },
    /// Hash-driven patterns: no exploitable sequential structure.
    Hashed,
}

/// Streaming generator of a pattern's line offsets; see
/// [`Pattern::cursor`].
#[derive(Copy, Clone, Debug)]
pub struct PatternCursor {
    pattern: Pattern,
    seed: u64,
    j: u64,
    state: PatternState,
}

impl PatternCursor {
    /// The line offset of the current stream-local index, advancing the
    /// cursor by one. Byte-identical to `pattern.line_at(seed, j)`.
    #[inline]
    pub fn next_line(&mut self) -> u64 {
        let j = self.j;
        self.j += 1;
        match &mut self.state {
            PatternState::Stream { cur, step, lines } => {
                let r = *cur;
                *cur += *step;
                if *cur >= *lines {
                    *cur -= *lines;
                }
                r
            }
            PatternState::StridedScan {
                idx,
                cur,
                stride,
                lines,
            } => {
                let r = *cur;
                *idx += 1;
                if *idx == *lines {
                    *idx = 0;
                    *cur = 0;
                } else {
                    *cur += *stride;
                }
                r
            }
            PatternState::Perm { cur, step, lines } => {
                let r = *cur;
                *cur += *step;
                if *cur >= *lines {
                    *cur -= *lines;
                }
                r
            }
            PatternState::Hashed => self.pattern.line_at(self.seed, j),
        }
    }

    /// Stream-local index of the next line the cursor will produce.
    pub fn next_j(&self) -> u64 {
        self.j
    }
}

/// Map a uniform 64-bit value into `[0, bound)` without modulo bias.
#[inline]
fn mul_bound(x: u64, bound: u64) -> u64 {
    (((x as u128) * (bound as u128)) >> 64) as u64
}

/// A seed-dependent affine permutation of `[0, n)`: `x → (a·x + b) mod n`
/// with `gcd(a, n) == 1`.
///
/// Affine maps are weak as ciphers but perfect here: they are bijective
/// (every line visited exactly once per period) and computable in `O(1)`,
/// and they decorrelate the visit order from the address order so that a
/// walk does not look like a sequential stream to a stride prefetcher.
#[inline]
fn affine_perm(seed: u64, x: u64, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    let a = coprime_multiplier(seed, n);
    let b = mix64(seed, 0xb0b) % n;
    crate::cast::u64_exact((x as u128 * a as u128 + b as u128) % n as u128)
}

/// A multiplier near `0.618·n` (golden-ratio spread) adjusted to be coprime
/// with `n`.
#[inline]
fn coprime_multiplier(seed: u64, n: u64) -> u64 {
    let base = (((n as u128 * 0x9e37_79b9) >> 32) as u64 + (mix64(seed, 0xa) % 64)) | 1;
    let mut a = base % n;
    if a == 0 {
        a = 1;
    }
    // At most a few steps: consecutive odd numbers quickly hit a coprime.
    while gcd(a, n) != 1 {
        a = (a + 2) % n;
        if a == 0 {
            a = 1;
        }
    }
    a
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collections::FlatSet;

    #[test]
    fn stream_is_cyclic_with_period_lines() {
        let p = Pattern::Stream {
            lines: 100,
            stride_lines: 1,
        };
        for j in 0..300 {
            assert_eq!(p.line_at(0, j), j % 100);
        }
    }

    #[test]
    fn permutation_walk_is_a_bijection() {
        for n in [1u64, 2, 3, 64, 97, 1000] {
            let p = Pattern::PermutationWalk { lines: n };
            let seen: FlatSet<u64> = (0..n).map(|j| p.line_at(1234, j)).collect();
            assert_eq!(seen.len() as u64, n, "n={n}");
            assert!(seen.iter().all(|l| l < n));
        }
    }

    #[test]
    fn permutation_walk_reuse_distance_is_exact() {
        let n = 53;
        let p = Pattern::PermutationWalk { lines: n };
        for j in 0..n {
            assert_eq!(p.line_at(9, j), p.line_at(9, j + n));
        }
    }

    #[test]
    fn random_uniform_stays_in_bounds_and_covers() {
        let p = Pattern::RandomUniform { lines: 16 };
        let seen: FlatSet<u64> = (0..1000).map(|j| p.line_at(5, j)).collect();
        assert!(seen.len() >= 15, "covered only {} lines", seen.len());
        assert!(seen.iter().all(|l| l < 16));
    }

    #[test]
    fn hot_cold_respects_partition_and_ratio() {
        let p = Pattern::HotCold {
            hot_lines: 8,
            cold_lines: 1000,
            hot_permille: 900,
        };
        let mut hot = 0u32;
        for j in 0..10_000 {
            let l = p.line_at(77, j);
            assert!(l < 1008);
            if l < 8 {
                hot += 1;
            }
        }
        assert!((8_500..9_500).contains(&hot), "hot rate {hot}");
    }

    #[test]
    fn strided_scan_touches_spaced_lines() {
        let p = Pattern::StridedScan {
            lines: 4,
            stride_lines: 8,
        };
        let seq: Vec<u64> = (0..5).map(|j| p.line_at(0, j)).collect();
        assert_eq!(seq, vec![0, 8, 16, 24, 0]);
        assert_eq!(p.footprint_lines(), 32);
        assert_eq!(p.working_set_lines(), 4);
    }

    #[test]
    fn paged_hot_cold_layout() {
        let p = Pattern::PagedHotCold {
            pages: 4,
            hot_permille: 800,
        };
        assert_eq!(p.footprint_lines(), 256);
        let mut hot = 0u32;
        for j in 0..10_000 {
            let l = p.line_at(3, j);
            assert!(l < 256);
            if l.is_multiple_of(64) {
                hot += 1;
            }
        }
        // Hot accesses land on page-first lines at the configured rate.
        assert!((7_500..8_500).contains(&hot), "hot rate {hot}");
        assert!(Pattern::PagedHotCold {
            pages: 0,
            hot_permille: 10
        }
        .validate()
        .is_err());
    }

    #[test]
    fn footprints() {
        assert_eq!(
            Pattern::HotCold {
                hot_lines: 3,
                cold_lines: 5,
                hot_permille: 500
            }
            .footprint_lines(),
            8
        );
        assert_eq!(Pattern::RandomUniform { lines: 7 }.footprint_lines(), 7);
    }

    #[test]
    fn validation_catches_degenerate_parameters() {
        assert!(Pattern::Stream {
            lines: 0,
            stride_lines: 1
        }
        .validate()
        .is_err());
        assert!(Pattern::HotCold {
            hot_lines: 1,
            cold_lines: 1,
            hot_permille: 2000
        }
        .validate()
        .is_err());
        assert!(Pattern::PermutationWalk { lines: 4 }.validate().is_ok());
    }

    #[test]
    fn gcd_and_coprime_helper() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        for n in [2u64, 10, 64, 4096, 10_007] {
            let a = coprime_multiplier(42, n);
            assert_eq!(gcd(a, n), 1, "n={n} a={a}");
            assert!(a < n.max(2));
        }
    }
}
