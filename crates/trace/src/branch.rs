//! Synthetic branch behaviour.
//!
//! The paper warms the branch predictor during the 30 k-instruction detailed
//! warming before each region (Table 1 lists a tournament predictor). The
//! workload model therefore exposes a deterministic branch stream: which
//! instructions are branches, their PCs, and their outcomes. Outcomes are a
//! per-PC biased coin so that a real predictor can learn them — the
//! achievable misprediction rate is a property of the workload, not a
//! constant we feed to the timing model.

use crate::rng::{mix64, CounterRng};
use crate::types::Pc;
use serde::{Deserialize, Serialize};

/// One dynamic branch.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchEvent {
    /// Static branch address.
    pub pc: Pc,
    /// Resolved direction.
    pub taken: bool,
}

/// Deterministic description of a workload's branch behaviour.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchModel {
    /// One instruction in `period` is a branch (≥ 2).
    pub period: u64,
    /// Number of static branch PCs.
    pub pcs: u32,
    /// Fraction (per mille) of branch PCs that are strongly biased and thus
    /// easy to predict; the rest are close to 50/50.
    pub biased_permille: u32,
    /// Seed for outcome generation.
    pub seed: u64,
}

/// Virtual address region where synthetic branch PCs live, disjoint from
/// data-access PCs.
const BRANCH_PC_BASE: u64 = 0x0040_0000_0000;

impl BranchModel {
    /// A model with sensible defaults: every 5th instruction branches,
    /// 256 static branches, 90% of them predictable.
    pub fn new(seed: u64) -> Self {
        BranchModel {
            period: 5,
            pcs: 256,
            biased_permille: 900,
            seed,
        }
    }

    /// Set the fraction of easy (strongly biased) branches.
    pub fn with_biased_permille(mut self, permille: u32) -> Self {
        self.biased_permille = permille.min(1000);
        self
    }

    /// Set the branch density (one branch per `period` instructions).
    pub fn with_period(mut self, period: u64) -> Self {
        self.period = period.max(2);
        self
    }

    /// The branch retiring at instruction `instr`, if any.
    ///
    /// Branches sit at instructions where `instr % period == period - 1`, so
    /// they interleave with the memory accesses (which sit at multiples of
    /// the workload's `mem_period`).
    #[inline]
    pub fn branch_at(&self, instr: u64) -> Option<BranchEvent> {
        if instr % self.period != self.period - 1 {
            return None;
        }
        let b = instr / self.period;
        Some(self.branch_event(b))
    }

    /// The `b`-th dynamic branch of the execution.
    #[inline]
    pub fn branch_event(&self, b: u64) -> BranchEvent {
        let rng = CounterRng::new(self.seed ^ 0xb4a2c);
        let pc_idx = rng.below(b ^ 0x5151, self.pcs.max(1) as u64);
        let pc = Pc(BRANCH_PC_BASE + pc_idx * 4);
        // Per-PC taken probability: biased PCs are ~95/5, the rest ~55/45.
        let pc_hash = mix64(self.seed ^ 0x77, pc.0);
        let biased = pc_hash % 1000 < self.biased_permille as u64;
        let p_taken = if biased {
            if pc_hash & 1 == 0 {
                950
            } else {
                50
            }
        } else {
            550
        };
        let taken = rng.chance_permille(b ^ 0xd00d, p_taken);
        BranchEvent { pc, taken }
    }

    /// Number of dynamic branches among `instrs` instructions.
    #[inline]
    pub fn branches_in_instrs(&self, instrs: u64) -> u64 {
        instrs / self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_positions_follow_period() {
        let m = BranchModel::new(1).with_period(5);
        assert!(m.branch_at(0).is_none());
        assert!(m.branch_at(4).is_some());
        assert!(m.branch_at(5).is_none());
        assert!(m.branch_at(9).is_some());
        assert_eq!(m.branches_in_instrs(50), 10);
    }

    #[test]
    fn outcomes_are_deterministic() {
        let m = BranchModel::new(9);
        for b in 0..100 {
            assert_eq!(m.branch_event(b), m.branch_event(b));
        }
    }

    #[test]
    fn biased_pcs_have_stable_direction() {
        let m = BranchModel::new(5).with_biased_permille(1000);
        // Group outcomes per PC; a fully biased model must be ≥ 85% one-sided.
        let mut per_pc: crate::collections::PcMap<(u32, u32)> = crate::collections::PcMap::new();
        for b in 0..50_000 {
            let e = m.branch_event(b);
            let c = per_pc.or_default(e.pc);
            if e.taken {
                c.0 += 1;
            } else {
                c.1 += 1;
            }
        }
        let mut skewed = 0usize;
        let mut total = 0usize;
        for (_, &(t, n)) in per_pc.iter() {
            let all = t + n;
            if all < 20 {
                continue;
            }
            total += 1;
            let major = t.max(n) as f64 / all as f64;
            if major > 0.85 {
                skewed += 1;
            }
        }
        assert!(total > 50);
        assert!(
            skewed as f64 / total as f64 > 0.9,
            "only {skewed}/{total} PCs skewed"
        );
    }

    #[test]
    fn period_is_clamped() {
        let m = BranchModel::new(0).with_period(0);
        assert_eq!(m.period, 2);
    }
}
