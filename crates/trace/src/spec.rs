//! The synthetic SPEC CPU2006-like workload suite.
//!
//! The paper evaluates on 24 SPEC CPU2006 benchmarks (reference inputs,
//! five excluded for infrastructure reasons). Real SPEC traces are not
//! available here, so each benchmark is modeled as a [`PhasedWorkload`]
//! whose parameters encode the qualitative behaviour the paper reports for
//! it:
//!
//! * **bwaves** — tiny working set, short key reuse distances, everything
//!   resolved by Explorer-1 (the paper's 49× best-case speedup).
//! * **GemsFDTD** — huge working set with very long reuses, engages all
//!   four Explorers, smallest speedup.
//! * **povray** — small working set but one phase with a few very long
//!   reuses; page-granularity watchpoints suffer false positives.
//! * **calculix** — long reuses concentrated in a single phase.
//! * **lbm** — working-set knees at 8 MiB and 512 MiB (Figure 13).
//! * **soplex / xalancbmk** — reuse behaviour spread over many static PCs,
//!   which starves CoolSim's per-PC model (its reported inaccuracy).
//! * **zeusmp / hmmer** — contain a large-stride access stream that causes
//!   conflict misses (the limited-associativity model's target).
//!
//! Footprints are declared at paper scale in bytes and shrunk through
//! [`Scale`], so the same descriptors serve paper-, demo- and tiny-scale
//! experiments.

use crate::branch::BranchModel;
use crate::pattern::Pattern;
use crate::phased::{PhasedWorkload, PhasedWorkloadBuilder, StreamSpec};
use crate::rng::mix64;
use crate::scale::Scale;

/// Names of the 24 modeled benchmarks, in the paper's figure order.
pub const SPEC2006_NAMES: [&str; 24] = [
    "perlbench",
    "bzip2",
    "bwaves",
    "gamess",
    "mcf",
    "zeusmp",
    "gromacs",
    "cactusADM",
    "leslie3d",
    "namd",
    "gobmk",
    "soplex",
    "povray",
    "calculix",
    "hmmer",
    "sjeng",
    "GemsFDTD",
    "libquantum",
    "h264ref",
    "tonto",
    "lbm",
    "omnetpp",
    "astar",
    "xalancbmk",
];

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// Stream descriptor at paper scale.
#[derive(Clone, Copy, Debug)]
enum S {
    /// Small sequential loop footprint: short reuses, resolves in
    /// Explorer-1, mostly hits the lukewarm cache.
    Hot { bytes: u64, w: u32 },
    /// Uniform random accesses over a footprint: gradual working-set
    /// curve, geometric reuse-distance tail (deep explorers engaged).
    Rand { bytes: u64, w: u32, pcs: u32 },
    /// Permutation walk: sharp working-set knee at `bytes`, *exact* reuse
    /// distances — the stream's explorer tier is fully determined by
    /// footprint / weight.
    Walk { bytes: u64, w: u32 },
    /// Sequential sweep: same exact reuse distances as `Walk`, but in
    /// address order — visible to a stride prefetcher (§6.3.2's targets).
    Seq { bytes: u64, w: u32 },
    /// Large-stride scan: conflict misses via set under-utilization.
    Conflict {
        stride_bytes: u64,
        span_bytes: u64,
        w: u32,
    },
    /// Hot/cold lines interleaved within pages: watchpoint false-positive
    /// pathology (povray).
    Paged {
        bytes: u64,
        hot_permille: u32,
        w: u32,
    },
}

impl S {
    fn compile(self, scale: Scale) -> StreamSpec {
        match self {
            S::Hot { bytes, w } => StreamSpec::new(
                Pattern::Stream {
                    lines: scale.lines(bytes),
                    stride_lines: 1,
                },
                w,
            )
            .with_pcs(4)
            .with_write_permille(350),
            S::Rand { bytes, w, pcs } => StreamSpec::new(
                Pattern::RandomUniform {
                    lines: scale.lines(bytes),
                },
                w,
            )
            .with_pcs(pcs)
            .with_write_permille(200),
            S::Walk { bytes, w } => StreamSpec::new(
                Pattern::PermutationWalk {
                    lines: scale.lines(bytes),
                },
                w,
            )
            .with_pcs(2)
            .with_write_permille(150),
            S::Seq { bytes, w } => StreamSpec::new(
                Pattern::Stream {
                    lines: scale.lines(bytes),
                    stride_lines: 1,
                },
                w,
            )
            .with_pcs(2)
            .with_write_permille(150),
            S::Conflict {
                stride_bytes,
                span_bytes,
                w,
            } => {
                let stride_lines = (stride_bytes / crate::LINE_BYTES).max(1);
                let lines = (scale.lines(span_bytes) / stride_lines).max(4);
                StreamSpec::new(
                    Pattern::StridedScan {
                        lines,
                        stride_lines,
                    },
                    w,
                )
                .with_pcs(1)
                .with_write_permille(100)
            }
            S::Paged {
                bytes,
                hot_permille,
                w,
            } => {
                let pages = (scale.lines(bytes) * crate::LINE_BYTES / crate::PAGE_BYTES).max(2);
                StreamSpec::new(
                    Pattern::PagedHotCold {
                        pages,
                        hot_permille,
                    },
                    w,
                )
                .with_pcs(6)
                .with_write_permille(200)
            }
        }
    }
}

fn rand(bytes: u64, w: u32) -> S {
    S::Rand { bytes, w, pcs: 8 }
}

fn rand_pcs(bytes: u64, w: u32, pcs: u32) -> S {
    S::Rand { bytes, w, pcs }
}

fn hot(bytes: u64, w: u32) -> S {
    S::Hot { bytes, w }
}

fn walk(bytes: u64, w: u32) -> S {
    S::Walk { bytes, w }
}

fn seq(bytes: u64, w: u32) -> S {
    S::Seq { bytes, w }
}

fn paged(bytes: u64, hot_permille: u32, w: u32) -> S {
    S::Paged {
        bytes,
        hot_permille,
        w,
    }
}

/// Phase descriptor: length in paper-scale accesses plus its stream mix.
struct Ph {
    paper_len_accesses: u64,
    streams: Vec<S>,
}

struct Spec {
    name: &'static str,
    mem_period: u64,
    /// Fraction (per mille) of branch PCs that are strongly predictable.
    branch_biased: u32,
    phases: Vec<Ph>,
}

fn one_phase(streams: Vec<S>) -> Vec<Ph> {
    vec![Ph {
        // Long enough that single-phase workloads never wrap within a
        // region and its warm-up windows; the pattern maths wraps cleanly
        // anyway.
        paper_len_accesses: 400_000_000,
        streams,
    }]
}

fn spec_table() -> Vec<Spec> {
    // Stream tiers are chosen against the scaled Explorer windows
    // (5 M / 50 M / 100 M / 1 B instructions): a walk stream of L lines at
    // access share f has *exact* reuse distance L/f accesses, pinning the
    // explorer that resolves it; rand streams add geometric tails that
    // engage the deep explorers (and leave a cold trickle past the last
    // window), matching the per-benchmark behaviour of Figures 7 and 8.
    vec![
        Spec {
            name: "perlbench",
            mem_period: 3,
            branch_biased: 900,
            phases: one_phase(vec![hot(8 * KB, 900), walk(2 * MB, 70), walk(16 * MB, 30)]),
        },
        Spec {
            name: "bzip2",
            mem_period: 3,
            branch_biased: 880,
            phases: one_phase(vec![hot(8 * KB, 880), seq(4 * MB, 80), walk(32 * MB, 40)]),
        },
        Spec {
            name: "bwaves",
            mem_period: 3,
            branch_biased: 975,
            // The whole working set fits the L1-D: most regions produce
            // zero key cachelines (everything hits the lukewarm cache),
            // which is the paper's best case — fewer than one Explorer
            // engaged on average and the largest speedup over CoolSim.
            phases: one_phase(vec![hot(4 * KB, 900), walk(16 * KB, 100)]),
        },
        Spec {
            name: "gamess",
            mem_period: 4,
            branch_biased: 960,
            phases: one_phase(vec![hot(8 * KB, 930), walk(MB, 70)]),
        },
        Spec {
            name: "mcf",
            mem_period: 3,
            branch_biased: 850,
            // Giant pointer-chasing footprints with heavy reuse tails:
            // all explorers engaged, highest CPI of the suite.
            phases: one_phase(vec![
                hot(4 * KB, 650),
                rand(64 * MB, 220),
                rand(256 * MB, 130),
            ]),
        },
        Spec {
            name: "zeusmp",
            mem_period: 3,
            branch_biased: 955,
            phases: one_phase(vec![
                hot(8 * KB, 750),
                walk(16 * MB, 150),
                rand(128 * MB, 90),
                S::Conflict {
                    stride_bytes: 512,
                    span_bytes: 2 * MB,
                    w: 10,
                },
            ]),
        },
        Spec {
            name: "gromacs",
            mem_period: 3,
            branch_biased: 940,
            phases: one_phase(vec![hot(8 * KB, 890), walk(4 * MB, 80), walk(32 * MB, 30)]),
        },
        Spec {
            name: "cactusADM",
            mem_period: 3,
            branch_biased: 965,
            // Multi-scale random footprints: the gradual working-set curve
            // of Figure 13 (no pronounced knee).
            phases: one_phase(vec![
                hot(8 * KB, 850),
                rand(512 * KB, 40),
                rand(4 * MB, 40),
                rand(32 * MB, 40),
                rand(256 * MB, 30),
            ]),
        },
        Spec {
            name: "leslie3d",
            mem_period: 3,
            branch_biased: 960,
            phases: one_phase(vec![
                hot(8 * KB, 920),
                rand(MB, 30),
                rand(16 * MB, 20),
                rand(128 * MB, 20),
                rand(512 * MB, 10),
            ]),
        },
        Spec {
            name: "namd",
            mem_period: 3,
            branch_biased: 950,
            phases: one_phase(vec![hot(8 * KB, 920), walk(2 * MB, 60), walk(8 * MB, 20)]),
        },
        Spec {
            name: "gobmk",
            mem_period: 4,
            branch_biased: 870,
            phases: one_phase(vec![hot(8 * KB, 900), walk(2 * MB, 70), walk(12 * MB, 30)]),
        },
        Spec {
            name: "soplex",
            mem_period: 3,
            branch_biased: 900,
            // Two CoolSim failure modes at once (§6.2): phase-split PC
            // pools (the sampled interval is often a different phase than
            // the region, starving the per-PC model), and an 8 MiB random
            // structure sitting exactly at the Figure 9 LLC size, where
            // per-PC all-or-nothing hit/miss thresholds flip while
            // DeLorean's exact per-line reuse distances do not.
            phases: vec![
                Ph {
                    paper_len_accesses: 300_000_000,
                    streams: vec![
                        hot(8 * KB, 780),
                        rand_pcs(8 * MB, 140, 64),
                        rand_pcs(96 * MB, 80, 64),
                    ],
                },
                Ph {
                    paper_len_accesses: 160_000_000,
                    streams: vec![
                        hot(8 * KB, 720),
                        rand_pcs(8 * MB, 170, 64),
                        rand_pcs(96 * MB, 110, 64),
                    ],
                },
            ],
        },
        Spec {
            name: "povray",
            mem_period: 4,
            branch_biased: 910,
            // Hot and cold lines share pages: every watchpoint on a cold
            // key protects a page with a hot line — the false-positive
            // storm that makes povray DeLorean's worst case (§6.1).
            phases: one_phase(vec![hot(8 * KB, 700), paged(64 * MB, 867, 300)]),
        },
        Spec {
            name: "calculix",
            mem_period: 3,
            branch_biased: 945,
            // Long reuses concentrated in one rare phase: deep explorers
            // engage for the few regions that land there.
            phases: vec![
                Ph {
                    paper_len_accesses: 400_000_000,
                    streams: vec![hot(8 * KB, 900), walk(2 * MB, 100)],
                },
                Ph {
                    paper_len_accesses: 45_000_000,
                    streams: vec![hot(8 * KB, 800), walk(256 * MB, 200)],
                },
            ],
        },
        Spec {
            name: "hmmer",
            mem_period: 3,
            branch_biased: 930,
            phases: one_phase(vec![
                hot(8 * KB, 940),
                walk(MB, 50),
                S::Conflict {
                    stride_bytes: 512,
                    span_bytes: MB,
                    w: 10,
                },
            ]),
        },
        Spec {
            name: "sjeng",
            mem_period: 4,
            branch_biased: 860,
            phases: one_phase(vec![
                hot(8 * KB, 850),
                walk(16 * MB, 100),
                walk(48 * MB, 50),
            ]),
        },
        Spec {
            name: "GemsFDTD",
            mem_period: 3,
            branch_biased: 950,
            // Huge working set, very long reuses, phase-split PCs, plus an
            // LLC-threshold structure: engages every explorer and defeats
            // CoolSim's per-PC model (the paper's worst CoolSim error).
            phases: vec![
                // Phase cycle (200M + 100M accesses = 900M instructions)
                // stays within Explorer-4's 1B window, so cross-phase
                // reuses of the giant structures remain resolvable.
                Ph {
                    paper_len_accesses: 200_000_000,
                    streams: vec![
                        hot(8 * KB, 570),
                        rand_pcs(4 * MB, 200, 32),
                        walk(64 * MB, 120),
                        rand_pcs(128 * MB, 110, 32),
                    ],
                },
                Ph {
                    paper_len_accesses: 100_000_000,
                    streams: vec![
                        hot(8 * KB, 530),
                        rand_pcs(4 * MB, 220, 32),
                        walk(64 * MB, 120),
                        rand_pcs(128 * MB, 130, 32),
                    ],
                },
            ],
        },
        Spec {
            name: "libquantum",
            mem_period: 3,
            branch_biased: 970,
            phases: one_phase(vec![hot(4 * KB, 700), seq(32 * MB, 300)]),
        },
        Spec {
            name: "h264ref",
            mem_period: 3,
            branch_biased: 920,
            phases: one_phase(vec![hot(8 * KB, 900), walk(2 * MB, 80), walk(8 * MB, 20)]),
        },
        Spec {
            name: "tonto",
            mem_period: 3,
            branch_biased: 945,
            phases: one_phase(vec![hot(8 * KB, 880), walk(4 * MB, 80), walk(16 * MB, 40)]),
        },
        Spec {
            name: "lbm",
            mem_period: 3,
            branch_biased: 975,
            // Two sequential sweeps pin the Figure 13 knees: the first
            // falls at 8 MiB, the second (384 MiB — comfortably inside the
            // 512 MiB LLC rather than exactly at capacity, which is a
            // knife edge for LRU) shows up at the 512 MiB point. The deep
            // sweep engages Explorer-4 every region, and both are visible
            // to the stride prefetcher (§6.3.2).
            phases: one_phase(vec![hot(8 * KB, 880), seq(8 * MB, 65), seq(384 * MB, 55)]),
        },
        Spec {
            name: "omnetpp",
            mem_period: 3,
            branch_biased: 890,
            phases: one_phase(vec![
                hot(8 * KB, 800),
                walk(16 * MB, 130),
                rand(64 * MB, 70),
            ]),
        },
        Spec {
            name: "astar",
            mem_period: 3,
            branch_biased: 865,
            phases: one_phase(vec![
                hot(8 * KB, 820),
                walk(16 * MB, 100),
                rand(96 * MB, 80),
            ]),
        },
        Spec {
            name: "xalancbmk",
            mem_period: 3,
            branch_biased: 905,
            phases: vec![
                Ph {
                    paper_len_accesses: 320_000_000,
                    streams: vec![
                        hot(8 * KB, 840),
                        walk(8 * MB, 110),
                        rand_pcs(48 * MB, 50, 40),
                    ],
                },
                Ph {
                    paper_len_accesses: 200_000_000,
                    streams: vec![
                        hot(8 * KB, 800),
                        walk(8 * MB, 130),
                        rand_pcs(48 * MB, 70, 40),
                    ],
                },
            ],
        },
    ]
}

fn build(spec: &Spec, scale: Scale, suite_seed: u64) -> PhasedWorkload {
    let seed = mix64(suite_seed, hash_name(spec.name));
    let mut b = PhasedWorkloadBuilder::new(spec.name, seed)
        .mem_period(spec.mem_period)
        .branch_model(BranchModel::new(mix64(seed, 0xb9)).with_biased_permille(spec.branch_biased));
    for ph in &spec.phases {
        let len = (ph.paper_len_accesses / scale.instr_div).max(10_000);
        b = b.phase(len, ph.streams.iter().map(|s| s.compile(scale)).collect());
    }
    // lint:allow(no-unwrap): the static SPEC table always carries at least one phase with streams
    b.build().expect("suite specs are valid by construction")
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

/// Build the full 24-workload suite at the given scale.
///
/// `suite_seed` perturbs every workload's internal randomness; experiments
/// use a fixed seed so results are reproducible run to run.
///
/// ```
/// use delorean_trace::{spec2006, Scale};
///
/// let suite = spec2006(Scale::tiny(), 42);
/// assert_eq!(suite.len(), 24);
/// ```
pub fn spec2006(scale: Scale, suite_seed: u64) -> Vec<PhasedWorkload> {
    spec_table()
        .iter()
        .map(|s| build(s, scale, suite_seed))
        .collect()
}

/// Build a single suite workload by name, or `None` for unknown names.
///
/// ```
/// use delorean_trace::{spec_workload, Scale, Workload};
///
/// let w = spec_workload("lbm", Scale::tiny(), 42).unwrap();
/// assert_eq!(w.name(), "lbm");
/// assert!(spec_workload("nope", Scale::tiny(), 42).is_none());
/// ```
pub fn spec_workload(name: &str, scale: Scale, suite_seed: u64) -> Option<PhasedWorkload> {
    spec_table()
        .iter()
        .find(|s| s.name == name)
        .map(|s| build(s, scale, suite_seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collections::FlatSet;
    use crate::{Workload, WorkloadExt};

    #[test]
    fn suite_has_all_names_in_order() {
        let suite = spec2006(Scale::tiny(), 1);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names, SPEC2006_NAMES.to_vec());
    }

    #[test]
    fn workloads_differ_from_each_other() {
        let suite = spec2006(Scale::tiny(), 1);
        let mut sigs: Vec<Vec<u64>> = Vec::new();
        for w in &suite {
            let sig: Vec<u64> = w.iter_range(0..64).map(|a| a.addr.0).collect();
            assert!(
                !sigs.contains(&sig),
                "{} duplicates another workload",
                w.name()
            );
            sigs.push(sig);
        }
    }

    #[test]
    fn suite_seed_changes_streams_but_not_structure() {
        let a = spec_workload("mcf", Scale::tiny(), 1).unwrap();
        let b = spec_workload("mcf", Scale::tiny(), 2).unwrap();
        assert_eq!(a.mem_period(), b.mem_period());
        let sa: Vec<u64> = a.iter_range(0..64).map(|x| x.addr.0).collect();
        let sb: Vec<u64> = b.iter_range(0..64).map(|x| x.addr.0).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn bwaves_has_small_footprint_gems_large() {
        let bw = spec_workload("bwaves", Scale::demo(), 1).unwrap();
        let gems = spec_workload("GemsFDTD", Scale::demo(), 1).unwrap();
        assert!(
            gems.footprint_lines() > 20 * bw.footprint_lines(),
            "gems {} vs bwaves {}",
            gems.footprint_lines(),
            bw.footprint_lines()
        );
    }

    #[test]
    fn phase_split_benchmarks_have_two_phases() {
        for name in ["soplex", "calculix", "GemsFDTD", "xalancbmk"] {
            let w = spec_workload(name, Scale::demo(), 1).unwrap();
            let cycle = w.cycle_len_accesses();
            assert_eq!(w.phase_at(0), 0, "{name}");
            assert_eq!(w.phase_at(cycle - 1), 1, "{name}");
        }
    }

    #[test]
    fn phase_split_benchmarks_use_distinct_pcs_per_phase() {
        // The CoolSim-starvation mechanism: the same logical data
        // structure is accessed from different static PCs in different
        // phases.
        let w = spec_workload("soplex", Scale::demo(), 1).unwrap();
        let cycle = w.cycle_len_accesses();
        let a_pcs: FlatSet<u64> = w.iter_range(0..5_000).map(|a| a.pc.0).collect();
        let b_pcs: FlatSet<u64> = w.iter_range(cycle - 5_000..cycle).map(|a| a.pc.0).collect();
        assert!(a_pcs.iter().all(|p| !b_pcs.contains(p)), "phases share PCs");
    }

    #[test]
    fn region_locality_is_high_for_hot_workloads() {
        // A 10k-instruction region (3,333 accesses) of a hot-dominated
        // workload must touch only a modest number of unique lines — the
        // paper reports an average of 151 key cachelines per region.
        let w = spec_workload("bwaves", Scale::demo(), 1).unwrap();
        let unique: FlatSet<u64> = w
            .iter_range(1_000_000..1_000_000 + 3_333)
            .map(|a| a.line().0)
            .collect();
        assert!(
            unique.len() < 800,
            "bwaves region touches {} unique lines",
            unique.len()
        );
    }

    #[test]
    fn mem_periods_vary() {
        let suite = spec2006(Scale::tiny(), 1);
        let periods: FlatSet<u64> = suite.iter().map(|w| w.mem_period()).collect();
        assert!(periods.len() >= 2);
    }
}
