//! Experiment scaling.
//!
//! The paper's configuration (1 B instructions between detailed regions,
//! Explorer windows up to 1 B instructions, LLCs up to 512 MiB) is too large
//! to sweep across 24 workloads × 3 methodologies × 10 cache sizes in a
//! test/bench harness. [`Scale`] shrinks the *instruction* dimension and the
//! *size* dimension by constant factors while keeping every structural
//! relation intact: Explorer windows keep their 10×/2×/10× progression,
//! the CoolSim schedule keeps its 75/20/5 split, workloads keep their
//! footprint ratios, and the detailed-region (10 k) and detailed-warming
//! (30 k) lengths are intentionally *not* scaled — the paper argues small
//! regions are the hard, interesting case.

use serde::{Deserialize, Serialize};

/// Scale factors applied to paper-scale instruction counts and sizes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Divide paper-scale instruction counts by this.
    pub instr_div: u64,
    /// Divide paper-scale byte sizes (footprints, cache sizes) by this.
    pub size_div: u64,
    /// Preset name for reports (not serialized; deserialized scales read
    /// back as "custom").
    #[serde(skip, default = "custom_label")]
    pub label: &'static str,
}

// Only referenced from the `#[serde(default)]` attribute, which the
// offline serde shim parses but discards.
#[allow(dead_code)]
fn custom_label() -> &'static str {
    "custom"
}

impl Scale {
    /// The paper's configuration, unscaled.
    pub fn paper() -> Self {
        Scale {
            instr_div: 1,
            size_div: 1,
            label: "paper",
        }
    }

    /// Default experiment scale: 1/100 instructions, 1/64 sizes.
    ///
    /// Region spacing 1 B → 10 M instructions; LLC sweep 1–512 MiB →
    /// 16 KiB–8 MiB; SPEC footprints shrink by the same 64×.
    pub fn demo() -> Self {
        Scale {
            instr_div: 100,
            size_div: 64,
            label: "demo",
        }
    }

    /// Aggressive scale for unit/integration tests.
    pub fn tiny() -> Self {
        Scale {
            instr_div: 4000,
            size_div: 1024,
            label: "tiny",
        }
    }

    /// Scale a paper-scale instruction count (min 1).
    pub fn instrs(&self, paper_instrs: u64) -> u64 {
        (paper_instrs / self.instr_div).max(1)
    }

    /// Scale a paper-scale byte size, clamped to one page (4 KiB).
    ///
    /// The rule is *graduated*: large structures (LLCs, multi-megabyte
    /// footprints) shrink by the full `size_div`, while small structures
    /// (L1 caches, hot working sets — anything ≤ 64 KiB at paper scale)
    /// shrink by at most 8×. Scaling a 64 KiB L1 by the same 64× that
    /// shrinks a 512 MiB LLC would leave a 16-line cache, destroying the
    /// lukewarm-hit behaviour the methodology depends on.
    pub fn bytes(&self, paper_bytes: u64) -> u64 {
        let small_div = self.size_div.min(8);
        let large = paper_bytes / self.size_div;
        let small = paper_bytes.min(64 << 10) / small_div;
        large.max(small).max(4096).min(paper_bytes.max(4096))
    }

    /// Scale a paper-scale byte size and convert to cachelines.
    pub fn lines(&self, paper_bytes: u64) -> u64 {
        self.bytes(paper_bytes) / crate::LINE_BYTES
    }

    /// Scale a sampling period of the form "one sample per `period`
    /// instructions" so that the expected *number* of samples per region is
    /// preserved (periods shrink with the instruction scale).
    pub fn sample_period(&self, paper_period: u64) -> u64 {
        (paper_period / self.instr_div).max(1)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::demo()
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (instr ÷{}, size ÷{})",
            self.label, self.instr_div, self.size_div
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_identity() {
        let s = Scale::paper();
        assert_eq!(s.instrs(1_000_000_000), 1_000_000_000);
        assert_eq!(s.bytes(512 << 20), 512 << 20);
        assert_eq!(s.lines(1 << 20), (1 << 20) / 64);
    }

    #[test]
    fn demo_scale_shrinks_dimensions() {
        let s = Scale::demo();
        assert_eq!(s.instrs(1_000_000_000), 10_000_000);
        assert_eq!(s.bytes(512 << 20), 8 << 20);
        assert_eq!(s.bytes(1 << 20), 16 << 10);
    }

    #[test]
    fn small_structures_shrink_gently() {
        let s = Scale::demo();
        // A 64 KiB L1 shrinks 8×, not 64×.
        assert_eq!(s.bytes(64 << 10), 8 << 10);
        // An 8 KiB hot set hits the page floor.
        assert_eq!(s.bytes(8 << 10), 4096);
    }

    #[test]
    fn scaled_size_never_exceeds_paper_size() {
        let s = Scale::demo();
        for b in [4096u64, 8 << 10, 64 << 10, 1 << 20, 512 << 20] {
            assert!(s.bytes(b) <= b);
        }
    }

    #[test]
    fn clamps_apply() {
        let s = Scale::tiny();
        assert_eq!(s.bytes(1), 4096);
        assert_eq!(s.instrs(1), 1);
        assert_eq!(s.sample_period(100), 1);
    }

    #[test]
    fn sample_period_preserves_expected_counts() {
        let s = Scale::demo();
        // Paper: 1 B instructions at 1/100k → 10k samples.
        // Demo: 10 M instructions at scaled period → still 10k samples.
        let paper_interval = 1_000_000_000u64;
        let paper_period = 100_000u64;
        let scaled = s.sample_period(paper_period);
        assert_eq!(
            s.instrs(paper_interval) / scaled,
            paper_interval / paper_period
        );
    }

    #[test]
    fn display_mentions_label() {
        assert!(format!("{}", Scale::demo()).contains("demo"));
    }
}
