//! Composition of pattern primitives into whole workloads.
//!
//! A [`PhasedWorkload`] interleaves several [`StreamSpec`]s (each a
//! [`Pattern`] with a weight, PC pool and store fraction) according to a
//! deterministic proportional schedule, optionally switching stream sets
//! between *phases*. Everything remains position addressable: the stream,
//! stream-local index, PC and address of global access `k` are all `O(1)`
//! functions of `k`.
//!
//! The deterministic interleave matters more than it may appear: the same
//! access must be produced whether it is visited by the Scout (forward),
//! an Explorer (backward window), the Analyst, or a functional warming
//! baseline — that is the paper's "same execution across passes" invariant
//! that KVM checkpointing provides on real hardware.

use crate::branch::BranchModel;
use crate::cursor::AccessCursor;
use crate::pattern::{Pattern, PatternCursor};
use crate::rng::{mix64, CounterRng};
use crate::types::{AccessKind, Addr, MemAccess, Pc, LINE_BYTES, PAGE_BYTES};
use crate::Workload;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One weighted access stream within a phase.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// The access pattern.
    pub pattern: Pattern,
    /// Relative share of the phase's accesses (weights are normalized over
    /// the phase's weight sum).
    pub weight: u32,
    /// Number of static PCs issuing this stream's accesses.
    pub pcs: u32,
    /// Store fraction in per mille.
    pub write_permille: u32,
}

impl StreamSpec {
    /// A stream with the given pattern and weight, 4 PCs, 30% stores.
    pub fn new(pattern: Pattern, weight: u32) -> Self {
        StreamSpec {
            pattern,
            weight,
            pcs: 4,
            write_permille: 300,
        }
    }

    /// Override the PC pool size.
    pub fn with_pcs(mut self, pcs: u32) -> Self {
        self.pcs = pcs;
        self
    }

    /// Override the store fraction (per mille).
    pub fn with_write_permille(mut self, permille: u32) -> Self {
        self.write_permille = permille;
        self
    }
}

/// One phase: a stream mix active for a span of accesses.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Phase length in accesses (rounded up to a multiple of the phase's
    /// weight sum at build time).
    pub len_accesses: u64,
    /// The streams active during this phase.
    pub streams: Vec<StreamSpec>,
}

/// Builder for [`PhasedWorkload`].
///
/// ```
/// use delorean_trace::{Pattern, PhasedWorkloadBuilder, StreamSpec, Workload};
///
/// let w = PhasedWorkloadBuilder::new("toy", 42)
///     .mem_period(3)
///     .phase(1_000, vec![
///         StreamSpec::new(Pattern::Stream { lines: 64, stride_lines: 1 }, 9),
///         StreamSpec::new(Pattern::RandomUniform { lines: 4096 }, 1),
///     ])
///     .build()
///     .expect("valid spec");
/// assert_eq!(w.name(), "toy");
/// ```
#[derive(Clone, Debug)]
pub struct PhasedWorkloadBuilder {
    name: String,
    seed: u64,
    mem_period: u64,
    branch: Option<BranchModel>,
    phases: Vec<PhaseSpec>,
}

impl PhasedWorkloadBuilder {
    /// Start building a workload with a name and master seed.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        PhasedWorkloadBuilder {
            name: name.into(),
            seed,
            mem_period: 3,
            branch: None,
            phases: Vec::new(),
        }
    }

    /// Instructions per memory access (default 3).
    pub fn mem_period(mut self, period: u64) -> Self {
        self.mem_period = period;
        self
    }

    /// Branch behaviour (default: [`BranchModel::new`] with the workload
    /// seed).
    pub fn branch_model(mut self, model: BranchModel) -> Self {
        self.branch = Some(model);
        self
    }

    /// Append a phase of `len_accesses` accesses with the given streams.
    pub fn phase(mut self, len_accesses: u64, streams: Vec<StreamSpec>) -> Self {
        self.phases.push(PhaseSpec {
            len_accesses,
            streams,
        });
        self
    }

    /// Validate and compile the workload.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid parameter: empty phase
    /// list, zero-weight phases, degenerate patterns, or a zero
    /// `mem_period`.
    pub fn build(self) -> Result<PhasedWorkload, String> {
        if self.mem_period == 0 {
            return Err("mem_period must be ≥ 1".into());
        }
        if self.phases.is_empty() {
            return Err("workload needs at least one phase".into());
        }
        let mut compiled_phases = Vec::with_capacity(self.phases.len());
        let mut phase_starts = Vec::with_capacity(self.phases.len());
        // Data footprints live well above the PC ranges; leave a guard page
        // between streams so footprints never share a page (watchpoint
        // false positives should come from line-vs-page granularity, not
        // accidental overlap).
        let mut next_base_line: u64 = 0x1_0000_0000 / LINE_BYTES;
        let mut cycle = 0u64;
        let rng = CounterRng::new(self.seed);
        for (pi, phase) in self.phases.iter().enumerate() {
            if phase.streams.is_empty() {
                return Err(format!("phase {pi} has no streams"));
            }
            let mut weight_sum = 0u64;
            for (si, s) in phase.streams.iter().enumerate() {
                s.pattern
                    .validate()
                    .map_err(|e| format!("phase {pi} stream {si}: {e}"))?;
                if s.weight == 0 {
                    return Err(format!("phase {pi} stream {si}: weight must be > 0"));
                }
                if s.pcs == 0 {
                    return Err(format!("phase {pi} stream {si}: pcs must be > 0"));
                }
                if s.write_permille > 1000 {
                    return Err(format!(
                        "phase {pi} stream {si}: write_permille must be ≤ 1000"
                    ));
                }
                weight_sum += s.weight as u64;
            }
            if phase.len_accesses == 0 {
                return Err(format!("phase {pi}: len_accesses must be > 0"));
            }
            let len = phase.len_accesses.div_ceil(weight_sum) * weight_sum;
            let slots = build_slot_table(&phase.streams, weight_sum);
            let mut streams = Vec::with_capacity(phase.streams.len());
            for (si, s) in phase.streams.iter().enumerate() {
                let footprint = s.pattern.footprint_lines();
                let lines_per_page = PAGE_BYTES / LINE_BYTES;
                let base_line = next_base_line;
                // Advance past the footprint plus a guard page, page aligned.
                next_base_line += (footprint + lines_per_page).div_ceil(lines_per_page)
                    * lines_per_page
                    + lines_per_page;
                streams.push(CompiledStream {
                    pattern: s.pattern,
                    base_line,
                    pc_base: 0x0010_0000 + ((pi as u64) << 16) + ((si as u64) << 10),
                    pcs: s.pcs,
                    write_permille: s.write_permille,
                    weight: s.weight as u64,
                    seed: rng.derive(((pi as u64) << 32) | si as u64).at(0),
                });
            }
            phase_starts.push(cycle);
            cycle += len;
            compiled_phases.push(CompiledPhase {
                weight_sum,
                periods_per_rep: len / weight_sum,
                slots,
                streams,
            });
        }
        let branch = self
            .branch
            .unwrap_or_else(|| BranchModel::new(mix64(self.seed, 0xb7a9)));
        Ok(PhasedWorkload {
            name: self.name,
            seed: self.seed,
            mem_period: self.mem_period,
            branch,
            phases: compiled_phases,
            phase_starts,
            cycle_len: cycle,
        })
    }
}

/// Bresenham-style proportional interleave: slot `s` of a period of
/// `weight_sum` slots is assigned to the stream with the largest
/// accumulated credit, spreading each stream's occurrences evenly.
fn build_slot_table(streams: &[StreamSpec], weight_sum: u64) -> Vec<SlotEntry> {
    let mut credits: Vec<i64> = vec![0; streams.len()];
    let mut occ: Vec<u32> = vec![0; streams.len()];
    let mut slots = Vec::with_capacity(crate::cast::idx(weight_sum));
    for _ in 0..weight_sum {
        for (c, s) in credits.iter_mut().zip(streams) {
            *c += s.weight as i64;
        }
        let (best, _) = credits
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            // lint:allow(no-unwrap): builders validate phases to have at least one stream before this table is built
            .expect("non-empty streams");
        credits[best] -= weight_sum as i64;
        slots.push(SlotEntry {
            stream: best as u16,
            occ: occ[best],
        });
        occ[best] += 1;
    }
    slots
}

#[derive(Clone, Debug)]
struct SlotEntry {
    stream: u16,
    occ: u32,
}

#[derive(Clone, Debug)]
struct CompiledStream {
    pattern: Pattern,
    base_line: u64,
    pc_base: u64,
    pcs: u32,
    write_permille: u32,
    weight: u64,
    seed: u64,
}

#[derive(Clone, Debug)]
struct CompiledPhase {
    weight_sum: u64,
    periods_per_rep: u64,
    slots: Vec<SlotEntry>,
    streams: Vec<CompiledStream>,
}

/// A compiled multi-phase workload; see the module documentation.
#[derive(Clone, Debug)]
pub struct PhasedWorkload {
    name: String,
    seed: u64,
    mem_period: u64,
    branch: BranchModel,
    phases: Vec<CompiledPhase>,
    phase_starts: Vec<u64>,
    cycle_len: u64,
}

impl PhasedWorkload {
    /// Length of one full phase cycle, in accesses.
    pub fn cycle_len_accesses(&self) -> u64 {
        self.cycle_len
    }

    /// Total footprint across all phases and streams, in cachelines.
    pub fn footprint_lines(&self) -> u64 {
        self.phases
            .iter()
            .flat_map(|p| p.streams.iter())
            .map(|s| s.pattern.footprint_lines())
            .sum()
    }

    /// The master seed the workload was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Index of the phase active at access `k` (for diagnostics).
    pub fn phase_at(&self, k: u64) -> usize {
        let pos = k % self.cycle_len;
        match self.phase_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }
}

impl Workload for PhasedWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn mem_period(&self) -> u64 {
        self.mem_period
    }

    fn branch_model(&self) -> BranchModel {
        self.branch
    }

    #[inline]
    fn access_at(&self, k: u64) -> MemAccess {
        let pos = k % self.cycle_len;
        let rep = k / self.cycle_len;
        let pi = match self.phase_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let phase = &self.phases[pi];
        let local = pos - self.phase_starts[pi];
        let slot = &phase.slots[(local % phase.weight_sum) as usize];
        let period_idx = local / phase.weight_sum;
        let s = &phase.streams[slot.stream as usize];
        // Stream-local index: this stream sees `weight` accesses per period,
        // `periods_per_rep` periods per cycle repetition.
        let j = (rep * phase.periods_per_rep + period_idx) * s.weight + slot.occ as u64;
        let line = s.base_line + s.pattern.line_at(s.seed, j);
        let pc_idx = if s.pcs == 1 {
            0
        } else {
            mix64(s.seed ^ 0x9c, j) % s.pcs as u64
        };
        let kind = if mix64(s.seed ^ 0x3f, j) % 1000 < s.write_permille as u64 {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        MemAccess {
            index: k,
            icount: k * self.mem_period,
            pc: Pc(s.pc_base + pc_idx * 4),
            addr: Addr(line * LINE_BYTES),
            kind,
        }
    }

    fn cursor<'a>(&'a self, range: Range<u64>) -> Box<dyn AccessCursor + 'a> {
        Box::new(PhasedCursor::new(self, range))
    }
}

/// Per-stream incremental state of a [`PhasedCursor`]: the stream-local
/// index of the stream's next occurrence and a [`PatternCursor`] kept in
/// lock-step with it.
#[derive(Debug)]
struct StreamCursor {
    j: u64,
    pattern: PatternCursor,
}

/// Streaming cursor over a [`PhasedWorkload`].
///
/// `access_at` re-derives phase, slot, stream and stream-local index for
/// every access: a binary search over the phase starts plus a chain of
/// divides and mods. Sequential consumers never need any of that — the
/// cursor resolves the phase once per phase *segment* (and once per
/// seek), then walks the slot table in order while per-stream indices
/// and pattern states advance incrementally. Output is byte-identical to
/// `access_at` over the range.
#[derive(Debug)]
pub struct PhasedCursor<'w> {
    w: &'w PhasedWorkload,
    next: u64,
    end: u64,
    /// Index of the phase containing `next`.
    pi: usize,
    /// Global access index at which the current phase segment ends.
    segment_end: u64,
    /// Position in the current phase's slot table for `next`.
    slot_pos: usize,
    streams: Vec<StreamCursor>,
}

impl<'w> PhasedCursor<'w> {
    /// A cursor over `workload` accesses with `index ∈ range`.
    pub fn new(workload: &'w PhasedWorkload, range: Range<u64>) -> Self {
        let mut c = PhasedCursor {
            w: workload,
            next: range.start,
            end: range.end.max(range.start),
            pi: 0,
            segment_end: range.start,
            slot_pos: 0,
            streams: Vec::new(),
        };
        if c.next < c.end {
            c.seek(c.next);
        }
        c
    }

    /// Resolve the phase containing global index `k` and rebuild the
    /// per-stream incremental state. `O(weight_sum + streams)`; runs once
    /// per phase segment, amortized over at least `len_accesses` reads.
    fn seek(&mut self, k: u64) {
        let w = self.w;
        let rep = k / w.cycle_len;
        let pos = k % w.cycle_len;
        let pi = match w.phase_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let phase = &w.phases[pi];
        let local = pos - w.phase_starts[pi];
        let phase_len = phase.periods_per_rep * phase.weight_sum;
        let period_idx = local / phase.weight_sum;
        let slot_pos = (local % phase.weight_sum) as usize;
        // Occurrences of each stream already consumed in this period: the
        // `occ` of its next slot (== weight if fully consumed, which rolls
        // cleanly into the next period's index 0).
        let mut consumed = vec![0u64; phase.streams.len()];
        for slot in &phase.slots[..slot_pos] {
            consumed[slot.stream as usize] += 1;
        }
        let period_base = rep * phase.periods_per_rep + period_idx;
        self.pi = pi;
        self.segment_end = k + (phase_len - local);
        self.slot_pos = slot_pos;
        self.streams = phase
            .streams
            .iter()
            .zip(consumed)
            .map(|(s, done)| {
                let j = period_base * s.weight + done;
                StreamCursor {
                    j,
                    pattern: s.pattern.cursor(s.seed, j),
                }
            })
            .collect();
    }
}

impl AccessCursor for PhasedCursor<'_> {
    fn position(&self) -> u64 {
        self.next
    }

    fn end(&self) -> u64 {
        self.end
    }

    fn fill(&mut self, out: &mut Vec<MemAccess>, max: usize) -> usize {
        out.clear();
        let w = self.w;
        let p = w.mem_period;
        while out.len() < max && self.next < self.end {
            if self.next == self.segment_end {
                self.seek(self.next);
            }
            let phase = &w.phases[self.pi];
            let burst_end = self
                .end
                .min(self.segment_end)
                .min(self.next + (max - out.len()) as u64);
            out.reserve((burst_end - self.next) as usize);
            while self.next < burst_end {
                let slot = &phase.slots[self.slot_pos];
                let si = slot.stream as usize;
                let s = &phase.streams[si];
                let st = &mut self.streams[si];
                let j = st.j;
                st.j += 1;
                let line = s.base_line + st.pattern.next_line();
                let pc_idx = if s.pcs == 1 {
                    0
                } else {
                    mix64(s.seed ^ 0x9c, j) % s.pcs as u64
                };
                let kind = if mix64(s.seed ^ 0x3f, j) % 1000 < s.write_permille as u64 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                out.push(MemAccess {
                    index: self.next,
                    icount: self.next * p,
                    pc: Pc(s.pc_base + pc_idx * 4),
                    addr: Addr(line * LINE_BYTES),
                    kind,
                });
                self.next += 1;
                self.slot_pos += 1;
                if self.slot_pos == phase.slots.len() {
                    self.slot_pos = 0;
                }
            }
        }
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collections::FlatMap;
    use crate::WorkloadExt;

    fn two_stream() -> PhasedWorkload {
        PhasedWorkloadBuilder::new("t", 7)
            .phase(
                10_000,
                vec![
                    StreamSpec::new(
                        Pattern::Stream {
                            lines: 32,
                            stride_lines: 1,
                        },
                        3,
                    ),
                    StreamSpec::new(Pattern::RandomUniform { lines: 1024 }, 1),
                ],
            )
            .build()
            .unwrap()
    }

    #[test]
    fn determinism() {
        let w = two_stream();
        for k in [0u64, 1, 999, 123_456, 10_000_000] {
            assert_eq!(w.access_at(k), w.access_at(k));
        }
    }

    #[test]
    fn weights_are_respected() {
        let w = two_stream();
        // Stream 0 gets 3/4 of accesses; its footprint is 32 lines from its
        // base, stream 1's is 1024 lines from a disjoint base.
        let mut by_base: FlatMap<u64, u64> = FlatMap::new();
        for a in w.iter_range(0..40_000) {
            let line = a.addr.0 / LINE_BYTES;
            let base = if line < w.phases[0].streams[1].base_line {
                0
            } else {
                1
            };
            *by_base.or_default(base) += 1;
        }
        assert_eq!(by_base.get(0), Some(&30_000));
        assert_eq!(by_base.get(1), Some(&10_000));
    }

    #[test]
    fn footprints_do_not_overlap() {
        let w = PhasedWorkloadBuilder::new("t", 3)
            .phase(
                1_000,
                vec![
                    StreamSpec::new(Pattern::RandomUniform { lines: 100 }, 1),
                    StreamSpec::new(Pattern::RandomUniform { lines: 200 }, 1),
                    StreamSpec::new(Pattern::PermutationWalk { lines: 300 }, 1),
                ],
            )
            .build()
            .unwrap();
        let s = &w.phases[0].streams;
        for i in 0..s.len() {
            for l in (i + 1)..s.len() {
                let (a, b) = (&s[i], &s[l]);
                let a_end = a.base_line + a.pattern.footprint_lines();
                let b_end = b.base_line + b.pattern.footprint_lines();
                assert!(
                    a_end <= b.base_line || b_end <= a.base_line,
                    "streams {i} and {l} overlap"
                );
            }
        }
    }

    #[test]
    fn stream_local_indices_are_contiguous() {
        // With a single stream of weight 1, stream-local index == global
        // index, so a PermutationWalk must produce each line exactly once
        // per footprint period.
        let w = PhasedWorkloadBuilder::new("t", 11)
            .phase(
                1_000,
                vec![StreamSpec::new(Pattern::PermutationWalk { lines: 50 }, 1)],
            )
            .build()
            .unwrap();
        let lines: Vec<u64> = w.iter_range(0..50).map(|a| a.addr.0 / 64).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50, "first 50 accesses must cover all lines");
        // And the next period repeats the same sequence.
        let again: Vec<u64> = w.iter_range(50..100).map(|a| a.addr.0 / 64).collect();
        assert_eq!(lines, again);
    }

    #[test]
    fn phases_switch_at_boundaries() {
        let w = PhasedWorkloadBuilder::new("t", 5)
            .phase(
                100,
                vec![StreamSpec::new(Pattern::RandomUniform { lines: 16 }, 1)],
            )
            .phase(
                300,
                vec![StreamSpec::new(Pattern::RandomUniform { lines: 16 }, 1)],
            )
            .build()
            .unwrap();
        assert_eq!(w.cycle_len_accesses(), 400);
        assert_eq!(w.phase_at(0), 0);
        assert_eq!(w.phase_at(99), 0);
        assert_eq!(w.phase_at(100), 1);
        assert_eq!(w.phase_at(399), 1);
        assert_eq!(w.phase_at(400), 0); // wraps
        let a = w.access_at(50);
        let b = w.access_at(150);
        // Different phases → different stream bases.
        assert_ne!(a.addr.0 & !0xfff, b.addr.0 & !0xfff);
    }

    #[test]
    fn phase_length_rounds_up_to_weight_sum() {
        let w = PhasedWorkloadBuilder::new("t", 5)
            .phase(
                10,
                vec![
                    StreamSpec::new(Pattern::RandomUniform { lines: 16 }, 7),
                    StreamSpec::new(Pattern::RandomUniform { lines: 16 }, 6),
                ],
            )
            .build()
            .unwrap();
        assert_eq!(w.cycle_len_accesses(), 13);
    }

    #[test]
    fn builder_rejects_bad_specs() {
        assert!(PhasedWorkloadBuilder::new("t", 0).build().is_err());
        assert!(PhasedWorkloadBuilder::new("t", 0)
            .phase(10, vec![])
            .build()
            .is_err());
        assert!(PhasedWorkloadBuilder::new("t", 0)
            .phase(
                10,
                vec![StreamSpec::new(Pattern::RandomUniform { lines: 16 }, 0)]
            )
            .build()
            .is_err());
        assert!(PhasedWorkloadBuilder::new("t", 0)
            .mem_period(0)
            .phase(
                10,
                vec![StreamSpec::new(Pattern::RandomUniform { lines: 16 }, 1)]
            )
            .build()
            .is_err());
        assert!(PhasedWorkloadBuilder::new("t", 0)
            .phase(
                10,
                vec![StreamSpec::new(Pattern::RandomUniform { lines: 16 }, 1)
                    .with_write_permille(1001)]
            )
            .build()
            .is_err());
    }

    #[test]
    fn slot_table_spreads_occurrences() {
        let streams = vec![
            StreamSpec::new(Pattern::RandomUniform { lines: 16 }, 9),
            StreamSpec::new(Pattern::RandomUniform { lines: 16 }, 1),
        ];
        let slots = build_slot_table(&streams, 10);
        assert_eq!(slots.len(), 10);
        let ones = slots.iter().filter(|s| s.stream == 1).count();
        assert_eq!(ones, 1);
        // Occurrence counters are per-stream and sequential.
        let occs: Vec<u32> = slots
            .iter()
            .filter(|s| s.stream == 0)
            .map(|s| s.occ)
            .collect();
        assert_eq!(occs, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn pcs_come_from_stream_pool() {
        let w = PhasedWorkloadBuilder::new("t", 7)
            .phase(
                1_000,
                vec![StreamSpec::new(Pattern::RandomUniform { lines: 64 }, 1).with_pcs(8)],
            )
            .build()
            .unwrap();
        let pcs: crate::collections::FlatSet<u64> =
            w.iter_range(0..1_000).map(|a| a.pc.0).collect();
        assert!(pcs.len() <= 8);
        assert!(pcs.len() >= 6, "expected most PCs used, got {}", pcs.len());
    }

    #[test]
    fn cursor_matches_access_at_across_phase_and_cycle_boundaries() {
        let w = PhasedWorkloadBuilder::new("t", 5)
            .phase(
                100,
                vec![
                    StreamSpec::new(
                        Pattern::Stream {
                            lines: 32,
                            stride_lines: 3,
                        },
                        3,
                    ),
                    StreamSpec::new(Pattern::PermutationWalk { lines: 61 }, 2),
                ],
            )
            .phase(
                200,
                vec![
                    StreamSpec::new(Pattern::RandomUniform { lines: 128 }, 1),
                    StreamSpec::new(
                        Pattern::StridedScan {
                            lines: 7,
                            stride_lines: 8,
                        },
                        4,
                    ),
                ],
            )
            .build()
            .unwrap();
        let cycle = w.cycle_len_accesses();
        // Ranges spanning the phase switch, the cycle wrap, and a deep
        // offset; odd batch sizes so refills land mid-period.
        for range in [
            0..cycle + 50,
            80..130,
            cycle - 25..2 * cycle + 25,
            1_000_003..1_000_403,
        ] {
            let mut cur = PhasedCursor::new(&w, range.clone());
            let mut buf = Vec::new();
            let mut k = range.start;
            while cur.fill(&mut buf, 13) > 0 {
                for a in &buf {
                    assert_eq!(*a, w.access_at(k), "index {k}");
                    k += 1;
                }
            }
            assert_eq!(k, range.end);
        }
    }

    #[test]
    fn store_fraction_matches_spec() {
        let w = PhasedWorkloadBuilder::new("t", 7)
            .phase(
                1_000,
                vec![StreamSpec::new(Pattern::RandomUniform { lines: 64 }, 1)
                    .with_write_permille(250)],
            )
            .build()
            .unwrap();
        let stores = w.iter_range(0..100_000).filter(|a| a.is_store()).count();
        assert!((23_000..27_000).contains(&stores), "stores = {stores}");
    }
}
