//! Recorded traces: run *captured* access streams through the
//! methodology.
//!
//! The synthetic suite stands in for SPEC, but the methodology itself
//! only needs position addressability — which a materialized trace
//! trivially has. [`RecordedTrace`] wraps a vector of `(pc, addr, kind)`
//! records (e.g. parsed from a Pin/Valgrind/DynamoRIO log) as a
//! [`Workload`], extending it cyclically so region plans of any length
//! remain valid.
//!
//! ```
//! use delorean_trace::{AccessKind, Addr, Pc, RecordedTrace, Workload};
//!
//! let trace = RecordedTrace::builder("captured", 3)
//!     .push(Pc(0x400), Addr(0x1000), AccessKind::Load)
//!     .push(Pc(0x404), Addr(0x1040), AccessKind::Store)
//!     .build()
//!     .unwrap();
//! assert_eq!(trace.access_at(0).addr, Addr(0x1000));
//! assert_eq!(trace.access_at(2).addr, Addr(0x1000)); // cyclic extension
//! ```

use crate::branch::BranchModel;
use crate::cursor::AccessCursor;
use crate::types::{AccessKind, Addr, MemAccess, Pc};
use crate::Workload;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// One recorded access (without position — that is implied by order).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedAccess {
    /// Issuing instruction.
    pub pc: Pc,
    /// Byte address.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
}

/// A materialized access trace exposed as a [`Workload`].
///
/// The trace repeats cyclically past its recorded length, so sampling
/// plans longer than the capture still work (document the wrap in your
/// experiment if it matters).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RecordedTrace {
    name: String,
    mem_period: u64,
    branch: BranchModel,
    accesses: Vec<RecordedAccess>,
}

/// Builder for [`RecordedTrace`].
#[derive(Clone, Debug)]
pub struct RecordedTraceBuilder {
    name: String,
    mem_period: u64,
    branch: Option<BranchModel>,
    accesses: Vec<RecordedAccess>,
}

impl RecordedTrace {
    /// Start building a trace with a name and instructions-per-access.
    pub fn builder(name: impl Into<String>, mem_period: u64) -> RecordedTraceBuilder {
        RecordedTraceBuilder {
            name: name.into(),
            mem_period,
            branch: None,
            accesses: Vec::new(),
        }
    }

    /// Capture a slice of another workload as a materialized trace
    /// (useful for regression-pinning an execution or for tests).
    pub fn capture(workload: &dyn Workload, accesses: std::ops::Range<u64>) -> RecordedTrace {
        let mut b = Self::builder(
            format!("{}@recorded", workload.name()),
            workload.mem_period(),
        );
        b.branch = Some(workload.branch_model());
        for k in accesses {
            let a = workload.access_at(k);
            b = b.push(a.pc, a.addr, a.kind);
        }
        // lint:allow(no-unwrap): callers capture validated non-empty ranges, so the builder always has records
        b.build().expect("captured range is non-empty")
    }

    /// Number of recorded accesses before the cyclic extension.
    pub fn recorded_len(&self) -> u64 {
        self.accesses.len() as u64
    }
}

impl RecordedTraceBuilder {
    /// Append one access.
    pub fn push(mut self, pc: Pc, addr: Addr, kind: AccessKind) -> Self {
        self.accesses.push(RecordedAccess { pc, addr, kind });
        self
    }

    /// Append many accesses.
    pub fn extend<I: IntoIterator<Item = RecordedAccess>>(mut self, iter: I) -> Self {
        self.accesses.extend(iter);
        self
    }

    /// Override the branch model (default: [`BranchModel::new`] seeded
    /// from the trace length).
    pub fn branch_model(mut self, model: BranchModel) -> Self {
        self.branch = Some(model);
        self
    }

    /// Validate and build.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty trace or a zero `mem_period`.
    pub fn build(self) -> Result<RecordedTrace, String> {
        if self.accesses.is_empty() {
            return Err("recorded trace must contain at least one access".into());
        }
        if self.mem_period == 0 {
            return Err("mem_period must be ≥ 1".into());
        }
        let branch = self
            .branch
            .unwrap_or_else(|| BranchModel::new(self.accesses.len() as u64));
        Ok(RecordedTrace {
            name: self.name,
            mem_period: self.mem_period,
            branch,
            accesses: self.accesses,
        })
    }
}

impl Workload for RecordedTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn mem_period(&self) -> u64 {
        self.mem_period
    }

    fn branch_model(&self) -> BranchModel {
        self.branch
    }

    #[inline]
    fn access_at(&self, k: u64) -> MemAccess {
        let r = &self.accesses[crate::cast::idx(k % self.accesses.len() as u64)];
        MemAccess {
            index: k,
            icount: k * self.mem_period,
            pc: r.pc,
            addr: r.addr,
            kind: r.kind,
        }
    }

    fn cursor<'a>(&'a self, range: Range<u64>) -> Box<dyn AccessCursor + 'a> {
        Box::new(RecordedCursor::new(self, range))
    }
}

/// Streaming cursor over a [`RecordedTrace`]: replays the backing slice
/// directly, advancing one in-bounds offset instead of taking a modulo
/// per access, and wrapping at the recorded length for the cyclic
/// extension.
#[derive(Debug)]
pub struct RecordedCursor<'w> {
    trace: &'w RecordedTrace,
    next: u64,
    end: u64,
    /// `next % recorded_len`, maintained incrementally.
    offset: usize,
}

impl<'w> RecordedCursor<'w> {
    /// A cursor over `trace` accesses with `index ∈ range`.
    pub fn new(trace: &'w RecordedTrace, range: Range<u64>) -> Self {
        RecordedCursor {
            trace,
            next: range.start,
            end: range.end.max(range.start),
            offset: crate::cast::idx(range.start % trace.accesses.len() as u64),
        }
    }
}

impl AccessCursor for RecordedCursor<'_> {
    fn position(&self) -> u64 {
        self.next
    }

    fn end(&self) -> u64 {
        self.end
    }

    fn fill(&mut self, out: &mut Vec<MemAccess>, max: usize) -> usize {
        out.clear();
        let records = &self.trace.accesses;
        let p = self.trace.mem_period;
        let n = (self.end - self.next).min(max as u64) as usize;
        out.reserve(n);
        for _ in 0..n {
            let r = &records[self.offset];
            out.push(MemAccess {
                index: self.next,
                icount: self.next * p,
                pc: r.pc,
                addr: r.addr,
                kind: r.kind,
            });
            self.next += 1;
            self.offset += 1;
            if self.offset == records.len() {
                self.offset = 0;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec_workload, Scale, WorkloadExt};

    #[test]
    fn builder_and_cyclic_extension() {
        let t = RecordedTrace::builder("t", 2)
            .push(Pc(1), Addr(64), AccessKind::Load)
            .push(Pc(2), Addr(128), AccessKind::Store)
            .push(Pc(3), Addr(192), AccessKind::Load)
            .build()
            .unwrap();
        assert_eq!(t.recorded_len(), 3);
        assert_eq!(t.access_at(0).addr, Addr(64));
        assert_eq!(t.access_at(4).addr, Addr(128)); // wrapped
        assert_eq!(t.access_at(4).index, 4); // but position is global
        assert_eq!(t.access_at(4).icount, 8);
    }

    #[test]
    fn empty_and_degenerate_traces_rejected() {
        assert!(RecordedTrace::builder("t", 3).build().is_err());
        assert!(RecordedTrace::builder("t", 0)
            .push(Pc(1), Addr(0), AccessKind::Load)
            .build()
            .is_err());
    }

    #[test]
    fn capture_reproduces_the_source_exactly() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let t = RecordedTrace::capture(&w, 1_000..2_000);
        assert_eq!(t.recorded_len(), 1_000);
        for (i, orig) in w.iter_range(1_000..2_000).enumerate() {
            let rec = t.access_at(i as u64);
            assert_eq!(rec.pc, orig.pc);
            assert_eq!(rec.addr, orig.addr);
            assert_eq!(rec.kind, orig.kind);
        }
        assert_eq!(t.mem_period(), w.mem_period());
    }

    #[test]
    fn cursor_matches_access_at_across_the_cyclic_wrap() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let t = RecordedTrace::capture(&w, 0..137);
        let len = t.recorded_len();
        for range in [0..len, len - 10..3 * len + 10, 5..5] {
            let mut cur = RecordedCursor::new(&t, range.clone());
            let mut buf = Vec::new();
            let mut k = range.start;
            while cur.fill(&mut buf, 11) > 0 {
                for a in &buf {
                    assert_eq!(*a, t.access_at(k), "index {k}");
                    k += 1;
                }
            }
            assert_eq!(k, range.end.max(range.start));
        }
    }

    #[test]
    fn extend_appends_in_order() {
        let records: Vec<RecordedAccess> = (0..5)
            .map(|i| RecordedAccess {
                pc: Pc(i),
                addr: Addr(i * 64),
                kind: AccessKind::Load,
            })
            .collect();
        let t = RecordedTrace::builder("t", 1)
            .extend(records.clone())
            .build()
            .unwrap();
        for (i, r) in records.iter().enumerate() {
            assert_eq!(t.access_at(i as u64).addr, r.addr);
        }
    }
}
