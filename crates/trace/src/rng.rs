//! Counter-based pseudo-random mixing.
//!
//! Workloads must be position addressable, so they cannot use sequential
//! RNG state. Instead every "random" decision is a pure hash of
//! `(seed, counter)`; the SplitMix64 finalizer provides high-quality 64-bit
//! avalanche mixing at a handful of cycles per call.

/// SplitMix64 finalizer: a bijective 64-bit mixing function.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mix a seed with a counter into a uniformly distributed 64-bit value.
#[inline]
pub fn mix64(seed: u64, x: u64) -> u64 {
    splitmix64(seed ^ x.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A stateless counter-based random source.
///
/// Each distinct `(seed, index)` pair produces an independent, reproducible
/// value; no call order is implied.
///
/// ```
/// use delorean_trace::CounterRng;
///
/// let rng = CounterRng::new(42);
/// assert_eq!(rng.at(7), rng.at(7));
/// assert_ne!(rng.at(7), rng.at(8));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CounterRng {
    seed: u64,
}

impl CounterRng {
    /// A source with the given seed.
    pub fn new(seed: u64) -> Self {
        CounterRng {
            seed: splitmix64(seed),
        }
    }

    /// Derive an independent sub-source (e.g. one per stream).
    pub fn derive(&self, tag: u64) -> CounterRng {
        CounterRng {
            seed: mix64(self.seed, tag ^ 0xd1b5_4a32_d192_ed03),
        }
    }

    /// The 64-bit value at `index`.
    #[inline]
    pub fn at(&self, index: u64) -> u64 {
        mix64(self.seed, index)
    }

    /// A value in `[0, bound)` at `index`. `bound` must be non-zero.
    #[inline]
    pub fn below(&self, index: u64, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bound must be non-zero");
        // 128-bit multiply avoids modulo bias for small bounds.
        (((self.at(index) as u128) * (bound as u128)) >> 64) as u64
    }

    /// `true` with probability `permille`/1000 at `index`.
    #[inline]
    pub fn chance_permille(&self, index: u64, permille: u32) -> bool {
        self.below(index, 1000) < permille as u64
    }

    /// `true` with probability `1/period` at `index` (`period` ≥ 1).
    #[inline]
    pub fn chance_one_in(&self, index: u64, period: u64) -> bool {
        self.below(index, period.max(1)) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_known_values_are_stable() {
        // Regression pin: if these change, every recorded experiment changes.
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(1), 0x910a2dec89025cc1);
    }

    #[test]
    fn mixing_is_deterministic_and_seed_sensitive() {
        assert_eq!(mix64(1, 2), mix64(1, 2));
        assert_ne!(mix64(1, 2), mix64(2, 2));
        assert_ne!(mix64(1, 2), mix64(1, 3));
    }

    #[test]
    fn below_respects_bound() {
        let rng = CounterRng::new(99);
        for i in 0..10_000 {
            assert!(rng.below(i, 37) < 37);
        }
    }

    #[test]
    fn below_is_roughly_uniform() {
        let rng = CounterRng::new(7);
        let mut counts = [0u32; 8];
        for i in 0..80_000 {
            counts[rng.below(i, 8) as usize] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn chance_permille_matches_rate() {
        let rng = CounterRng::new(3);
        let hits = (0..100_000)
            .filter(|&i| rng.chance_permille(i, 250))
            .count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn chance_one_in_matches_rate() {
        let rng = CounterRng::new(3);
        let hits = (0..100_000).filter(|&i| rng.chance_one_in(i, 100)).count();
        assert!((800..1_200).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn derive_gives_independent_streams() {
        let rng = CounterRng::new(5);
        let a = rng.derive(1);
        let b = rng.derive(2);
        assert_ne!(a.at(0), b.at(0));
        assert_eq!(a.at(0), rng.derive(1).at(0));
    }
}
