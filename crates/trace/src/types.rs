//! Core address and access-record types shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Cacheline size in bytes (Table 1 of the paper: 64 B lines everywhere).
pub const LINE_BYTES: u64 = 64;

/// Page size in bytes. Watchpoints in the paper are implemented with the OS
/// page-protection mechanism, so they have 4 KiB granularity — the source of
/// the false-positive traps the paper discusses for povray.
pub const PAGE_BYTES: u64 = 4096;

/// A byte address in the simulated address space.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Addr(pub u64);

/// A cacheline address: byte address divided by [`LINE_BYTES`].
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LineAddr(pub u64);

/// A page address: byte address divided by [`PAGE_BYTES`].
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageAddr(pub u64);

/// A program counter identifying the static load/store instruction.
///
/// The statistical models in CoolSim (randomized statistical warming) are
/// keyed per PC, which is why this is a first-class type rather than a bare
/// integer.
#[derive(Copy, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pc(pub u64);

impl Addr {
    /// The cacheline containing this address.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// The page containing this address.
    #[inline]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 / PAGE_BYTES)
    }
}

impl LineAddr {
    /// First byte address of this line.
    #[inline]
    pub fn addr(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The page containing this line.
    #[inline]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 * LINE_BYTES / PAGE_BYTES)
    }
}

impl PageAddr {
    /// First byte address of this page.
    #[inline]
    pub fn addr(self) -> Addr {
        Addr(self.0 * PAGE_BYTES)
    }

    /// First line of this page.
    #[inline]
    pub fn first_line(self) -> LineAddr {
        LineAddr(self.0 * PAGE_BYTES / LINE_BYTES)
    }

    /// Number of cachelines per page.
    #[inline]
    pub fn lines_per_page() -> u64 {
        PAGE_BYTES / LINE_BYTES
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr(v)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

macro_rules! hex_debug {
    ($t:ty, $tag:literal) => {
        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "({:#x})"), self.0)
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
        impl fmt::UpperHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }
    };
}

hex_debug!(Addr, "Addr");
hex_debug!(LineAddr, "LineAddr");
hex_debug!(PageAddr, "PageAddr");
hex_debug!(Pc, "Pc");

/// Whether an access reads or writes memory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load (read).
    Load,
    /// A store (write).
    Store,
}

/// One dynamic memory access of a [`Workload`](crate::Workload) execution.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemAccess {
    /// Position of this access in the workload's access stream.
    pub index: u64,
    /// Instruction count at which the access retires.
    pub icount: u64,
    /// The static instruction issuing the access.
    pub pc: Pc,
    /// Byte address accessed.
    pub addr: Addr,
    /// Load or store.
    pub kind: AccessKind,
}

impl MemAccess {
    /// Cacheline touched by this access.
    #[inline]
    pub fn line(&self) -> LineAddr {
        self.addr.line()
    }

    /// Page touched by this access.
    #[inline]
    pub fn page(&self) -> PageAddr {
        self.addr.page()
    }

    /// `true` for stores.
    #[inline]
    pub fn is_store(&self) -> bool {
        self.kind == AccessKind::Store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_math() {
        let a = Addr(4096 + 65);
        assert_eq!(a.line(), LineAddr((4096 + 65) / 64));
        assert_eq!(a.page(), PageAddr(1));
        assert_eq!(a.line().page(), PageAddr(1));
        assert_eq!(LineAddr(10).addr(), Addr(640));
        assert_eq!(PageAddr(2).addr(), Addr(8192));
        assert_eq!(PageAddr(2).first_line(), LineAddr(128));
        assert_eq!(PageAddr::lines_per_page(), 64);
    }

    #[test]
    fn debug_formats_are_nonempty_hex() {
        assert_eq!(format!("{:?}", Addr(255)), "Addr(0xff)");
        assert_eq!(format!("{}", LineAddr(16)), "0x10");
        assert_eq!(format!("{:x}", Pc(255)), "ff");
        assert_eq!(format!("{:X}", PageAddr(255)), "FF");
    }

    #[test]
    fn mem_access_helpers() {
        let m = MemAccess {
            index: 3,
            icount: 9,
            pc: Pc(0x400000),
            addr: Addr(4160),
            kind: AccessKind::Store,
        };
        assert!(m.is_store());
        assert_eq!(m.line(), LineAddr(65));
        assert_eq!(m.page(), PageAddr(1));
    }

    #[test]
    fn addr_conversions() {
        let a: Addr = 128u64.into();
        let v: u64 = a.into();
        assert_eq!(v, 128);
    }
}
