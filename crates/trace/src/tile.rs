//! On-disk trace tiles: the production trace-ingest path.
//!
//! The synthetic suite generates accesses with per-access pattern math;
//! [`RecordedTrace`](crate::RecordedTrace) materializes them in memory.
//! This module adds the third source: a compact binary **tile file** on
//! disk, memory-mapped on open, whose decoded tiles feed the warm loops
//! with plain `memcpy`s — access *generation* stops being a cost at all,
//! which is exactly the remaining term in the PR 4 warm-loop shortfall.
//!
//! # File format (version 1)
//!
//! ```text
//! file   := file-header tile*
//! file-header (128 B, little-endian):
//!     magic       [u8;8] = "DLRNTILE"
//!     version     u32    = 1
//!     tile_records u32          records per full tile
//!     mem_period  u64
//!     record_count u64          total records in the file
//!     branch      u64+u32+u32+u64   BranchModel{period,pcs,biased_permille,seed}
//!     name_len    u32, name [u8;32]  workload name (UTF-8, ≤ 32 bytes)
//!     reserved    [u8;28]       zeros
//!     checksum    u64           over bytes 0..120
//! tile   := tile-header payload
//! tile-header (40 B):
//!     magic       u32 = "TILE"
//!     records     u32           ≤ tile_records; short only in the last tile
//!     first_index u64           global index of the first record
//!     start_instr u64           icount of the first record
//!     end_instr   u64           icount one past the last record
//!     checksum    u64           over the payload bytes
//! payload := record*            records × 17 B
//! record := pc u64, addr u64, kind u8 (0 = load, 1 = store)
//! ```
//!
//! Record `index`/`icount` are *implied by position* (`icount = index ×
//! mem_period`, the invariant every in-tree workload already obeys), so
//! they are never stored; a tile decodes straight into
//! [`MemAccess`] records whose fields match the source
//! workload byte for byte. All tiles but the last have the same byte
//! size, so seeking to any record — and therefore to any per-region
//! cursor slice a [`RegionScheduler`] unit asks for — is O(1) pointer
//! arithmetic into the map.
//!
//! # Three consumers
//!
//! * [`TiledTrace::access_at`] — random access: decode one record in
//!   place (DSW key probes, tests).
//! * [`TiledCursor`] — the default sequential cursor: decodes record
//!   spans straight out of the memory map into the caller's `fill`
//!   buffer, with zero validation in the loop once the file has been
//!   eagerly verified.
//! * [`StreamingTileCursor`] — a background decoder thread streams
//!   decoded tiles over a bounded channel (the crossbeam shim), so
//!   decode overlaps simulation and backpressure caps memory at a few
//!   tiles; `fill` is again a `memcpy`. Spent batches are recycled back
//!   to the decoder to keep the steady state allocation-free.
//!
//! Corrupt or truncated files surface as typed [`TileError`]s — at
//! [`TileFile::open`] for structural damage, at decode time for payload
//! damage. [`TiledTrace::open`] verifies every checksum eagerly so the
//! infallible [`Workload`] surface can never observe a bad tile;
//! [`TiledTrace::open_unverified`] defers the cost, and then a decode
//! error ends the cursor stream early and is reported through
//! [`TiledCursor::error`] / [`StreamingTileCursor::error`].
//!
//! [`RegionScheduler`]: crate::AccessCursor
//!
//! # Example
//!
//! ```
//! use delorean_trace::tile::{pack_workload, TiledTrace};
//! use delorean_trace::{spec_workload, Scale, Workload};
//!
//! let w = spec_workload("mcf", Scale::tiny(), 7).unwrap();
//! let path = std::env::temp_dir().join(format!("doc-mcf-{}.dlt", std::process::id()));
//! pack_workload(&w, 0..10_000, &path).unwrap();
//!
//! let tiled = TiledTrace::open(&path).unwrap();
//! assert_eq!(tiled.name(), "mcf");
//! assert_eq!(tiled.access_at(1234), w.access_at(1234)); // byte-identical
//! std::fs::remove_file(&path).unwrap();
//! ```

use crate::branch::BranchModel;
use crate::cursor::AccessCursor;
use crate::rng::mix64;
use crate::types::{AccessKind, Addr, MemAccess, Pc};
use crate::Workload;
use crossbeam::channel::{bounded, Receiver, Sender};
use memmap2::Mmap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// File magic: the first 8 bytes of every tile file.
pub const FILE_MAGIC: [u8; 8] = *b"DLRNTILE";
/// Per-tile magic ("TILE", little-endian).
pub const TILE_MAGIC: u32 = u32::from_le_bytes(*b"TILE");
/// Format version this module reads and writes.
pub const FORMAT_VERSION: u32 = 1;
/// Fixed file-header size in bytes.
pub const FILE_HEADER_BYTES: usize = 128;
/// Fixed tile-header size in bytes.
pub const TILE_HEADER_BYTES: usize = 40;
/// Packed record width: pc (8) + addr (8) + kind (1).
pub const RECORD_BYTES: usize = 17;
/// Default records per tile (~68 KiB of payload: big enough to amortize
/// the header + checksum, small enough that a decoded tile stays cache-
/// and channel-friendly).
pub const DEFAULT_TILE_RECORDS: u32 = 4096;
/// Maximum workload-name length storable in the header.
pub const NAME_BYTES: usize = 32;

/// Offset of the header checksum field (it checks bytes `0..this`).
const HEADER_CHECKSUM_AT: usize = 120;

/// What went wrong reading, writing, or decoding a tile file.
#[derive(Debug)]
pub enum TileError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not start with [`FILE_MAGIC`].
    BadMagic {
        /// The 8 bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The file is shorter (or longer) than its header implies.
    Truncated {
        /// Byte length the header implies.
        expected: u64,
        /// Byte length actually present.
        found: u64,
    },
    /// The file header fails validation (checksum or field sanity).
    HeaderCorrupt {
        /// Human-readable description of the failed check.
        detail: String,
    },
    /// A tile header or payload fails validation.
    TileCorrupt {
        /// Index of the offending tile.
        tile: u32,
        /// Human-readable description of the failed check.
        detail: String,
    },
    /// A tile payload's checksum does not match its header.
    ChecksumMismatch {
        /// Index of the offending tile.
        tile: u32,
        /// Checksum stored in the tile header.
        stored: u64,
        /// Checksum computed over the payload.
        computed: u64,
    },
    /// The background decoder thread of a streaming cursor died
    /// (panicked or exited early) before producing every record its
    /// range promised.
    DecoderFailed {
        /// Best-effort description of how the decoder died.
        detail: String,
    },
    /// The file (or the range being packed) contains no records.
    EmptyTrace,
    /// Invalid construction parameters (writer side).
    Invalid {
        /// Human-readable description of the invalid parameter.
        detail: String,
    },
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::Io(e) => write!(f, "tile file I/O error: {e}"),
            TileError::BadMagic { found } => {
                write!(f, "not a tile file: bad magic {found:02x?}")
            }
            TileError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported tile format version {found} (expected {FORMAT_VERSION})"
                )
            }
            TileError::Truncated { expected, found } => {
                write!(
                    f,
                    "tile file truncated: header implies {expected} bytes, found {found}"
                )
            }
            TileError::HeaderCorrupt { detail } => write!(f, "tile file header corrupt: {detail}"),
            TileError::TileCorrupt { tile, detail } => write!(f, "tile {tile} corrupt: {detail}"),
            TileError::ChecksumMismatch {
                tile,
                stored,
                computed,
            } => write!(
                f,
                "tile {tile} checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            TileError::DecoderFailed { detail } => {
                write!(f, "streaming decoder thread failed: {detail}")
            }
            TileError::EmptyTrace => write!(f, "tile file contains no records"),
            TileError::Invalid { detail } => write!(f, "invalid tile parameters: {detail}"),
        }
    }
}

impl std::error::Error for TileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TileError {
    fn from(e: io::Error) -> Self {
        TileError::Io(e)
    }
}

/// 64-bit content checksum: `mix64`-folded over 8-byte words (plus a
/// zero-padded tail), seeded with the length so permuted-but-equal-sum
/// payloads and truncations both change the digest.
pub fn tile_checksum(bytes: &[u8]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ bytes.len() as u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        // lint:allow(no-unwrap): chunks_exact(8) yields exactly 8-byte slices, so the array conversion is infallible
        h = mix64(h, u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = mix64(h, u64::from_le_bytes(last));
    }
    h
}

#[inline]
pub(crate) fn read_u32(bytes: &[u8], at: usize) -> u32 {
    // lint:allow(no-unwrap): the slice is exactly 4 bytes by the range on this line
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

#[inline]
pub(crate) fn read_u64(bytes: &[u8], at: usize) -> u64 {
    // lint:allow(no-unwrap): the slice is exactly 8 bytes by the range on this line
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

fn encode_header(
    name: &str,
    mem_period: u64,
    branch: &BranchModel,
    tile_records: u32,
    record_count: u64,
) -> [u8; FILE_HEADER_BYTES] {
    let mut h = [0u8; FILE_HEADER_BYTES];
    h[0..8].copy_from_slice(&FILE_MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..16].copy_from_slice(&tile_records.to_le_bytes());
    h[16..24].copy_from_slice(&mem_period.to_le_bytes());
    h[24..32].copy_from_slice(&record_count.to_le_bytes());
    h[32..40].copy_from_slice(&branch.period.to_le_bytes());
    h[40..44].copy_from_slice(&branch.pcs.to_le_bytes());
    h[44..48].copy_from_slice(&branch.biased_permille.to_le_bytes());
    h[48..56].copy_from_slice(&branch.seed.to_le_bytes());
    let name_bytes = name.as_bytes();
    h[56..60].copy_from_slice(&crate::cast::u32_exact(name_bytes.len() as u64).to_le_bytes());
    h[60..60 + name_bytes.len()].copy_from_slice(name_bytes);
    let sum = tile_checksum(&h[..HEADER_CHECKSUM_AT]);
    h[HEADER_CHECKSUM_AT..HEADER_CHECKSUM_AT + 8].copy_from_slice(&sum.to_le_bytes());
    h
}

/// Summary of a finished pack: what [`TileFileWriter::finish`] and
/// [`pack_workload`] report.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PackSummary {
    /// Records written.
    pub records: u64,
    /// Tiles written.
    pub tiles: u32,
    /// Total file size in bytes.
    pub bytes: u64,
}

/// Streaming writer producing a tile file record by record.
///
/// Records are buffered into tile payloads and flushed with their header
/// (record count, instruction range, checksum) as each tile fills; the
/// file header is patched with the final record count on
/// [`finish`](TileFileWriter::finish).
#[derive(Debug)]
pub struct TileFileWriter {
    out: BufWriter<File>,
    path: PathBuf,
    name: String,
    mem_period: u64,
    branch: BranchModel,
    tile_records: u32,
    payload: Vec<u8>,
    tile_first_index: u64,
    total: u64,
    tiles: u32,
}

impl TileFileWriter {
    /// Create a tile file at `path` with the default tile size.
    ///
    /// # Errors
    ///
    /// [`TileError::Invalid`] for a zero `mem_period` or a name longer
    /// than [`NAME_BYTES`]; [`TileError::Io`] if the file cannot be
    /// created.
    pub fn create(
        path: impl AsRef<Path>,
        name: &str,
        mem_period: u64,
        branch: BranchModel,
    ) -> Result<Self, TileError> {
        Self::create_with(path, name, mem_period, branch, DEFAULT_TILE_RECORDS)
    }

    /// Create a tile file with an explicit records-per-tile.
    ///
    /// # Errors
    ///
    /// As [`create`](Self::create), plus [`TileError::Invalid`] for a
    /// zero `tile_records`.
    pub fn create_with(
        path: impl AsRef<Path>,
        name: &str,
        mem_period: u64,
        branch: BranchModel,
        tile_records: u32,
    ) -> Result<Self, TileError> {
        if mem_period == 0 {
            return Err(TileError::Invalid {
                detail: "mem_period must be ≥ 1".into(),
            });
        }
        if tile_records == 0 {
            return Err(TileError::Invalid {
                detail: "tile_records must be ≥ 1".into(),
            });
        }
        if name.len() > NAME_BYTES {
            return Err(TileError::Invalid {
                detail: format!("name '{name}' exceeds {NAME_BYTES} bytes"),
            });
        }
        let path = path.as_ref().to_path_buf();
        let mut out = BufWriter::new(File::create(&path)?);
        // Placeholder header; the record count is patched in `finish`.
        out.write_all(&encode_header(name, mem_period, &branch, tile_records, 0))?;
        Ok(TileFileWriter {
            out,
            path,
            name: name.to_string(),
            mem_period,
            branch,
            tile_records,
            payload: Vec::with_capacity(tile_records as usize * RECORD_BYTES),
            tile_first_index: 0,
            total: 0,
            tiles: 0,
        })
    }

    /// Path this writer is producing.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record.
    ///
    /// # Errors
    ///
    /// [`TileError::Io`] if flushing a completed tile fails.
    pub fn push(&mut self, pc: Pc, addr: Addr, kind: AccessKind) -> Result<(), TileError> {
        self.payload.extend_from_slice(&pc.0.to_le_bytes());
        self.payload.extend_from_slice(&addr.0.to_le_bytes());
        self.payload.push(kind as u8);
        self.total += 1;
        if self.payload.len() >= self.tile_records as usize * RECORD_BYTES {
            self.flush_tile()?;
        }
        Ok(())
    }

    /// Append one access (its `index`/`icount` are implied by position
    /// and not stored).
    ///
    /// # Errors
    ///
    /// As [`push`](Self::push).
    pub fn push_access(&mut self, a: &MemAccess) -> Result<(), TileError> {
        self.push(a.pc, a.addr, a.kind)
    }

    fn flush_tile(&mut self) -> Result<(), TileError> {
        let records = (self.payload.len() / RECORD_BYTES) as u32;
        if records == 0 {
            return Ok(());
        }
        let first = self.tile_first_index;
        let mut h = [0u8; TILE_HEADER_BYTES];
        h[0..4].copy_from_slice(&TILE_MAGIC.to_le_bytes());
        h[4..8].copy_from_slice(&records.to_le_bytes());
        h[8..16].copy_from_slice(&first.to_le_bytes());
        h[16..24].copy_from_slice(&(first * self.mem_period).to_le_bytes());
        h[24..32].copy_from_slice(&((first + records as u64) * self.mem_period).to_le_bytes());
        h[32..40].copy_from_slice(&tile_checksum(&self.payload).to_le_bytes());
        self.out.write_all(&h)?;
        self.out.write_all(&self.payload)?;
        self.payload.clear();
        self.tile_first_index = first + records as u64;
        self.tiles = self
            .tiles
            .checked_add(1)
            .ok_or_else(|| TileError::Invalid {
                detail: "tile count overflows u32".into(),
            })?;
        Ok(())
    }

    /// Flush the final (possibly short) tile, patch the header with the
    /// record count, and close the file.
    ///
    /// # Errors
    ///
    /// [`TileError::EmptyTrace`] if no records were pushed;
    /// [`TileError::Io`] on write failure.
    pub fn finish(mut self) -> Result<PackSummary, TileError> {
        if self.total == 0 {
            return Err(TileError::EmptyTrace);
        }
        self.flush_tile()?;
        self.out.flush()?;
        let mut file = self
            .out
            .into_inner()
            .map_err(|e| TileError::Io(io::Error::other(e.to_string())))?;
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&encode_header(
            &self.name,
            self.mem_period,
            &self.branch,
            self.tile_records,
            self.total,
        ))?;
        let bytes = file.seek(SeekFrom::End(0))?;
        Ok(PackSummary {
            records: self.total,
            tiles: self.tiles,
            bytes,
        })
    }
}

/// Pack the accesses of `workload` with indices in `range` into a tile
/// file at `path` (default tile size).
///
/// The packed trace is re-based to start at index 0, exactly like
/// [`RecordedTrace::capture`](crate::RecordedTrace::capture): record `i`
/// of the file is access `range.start + i` of the source. Generation
/// streams through the workload's own [`cursor`](Workload::cursor).
///
/// # Errors
///
/// [`TileError::EmptyTrace`] for an empty range, plus anything
/// [`TileFileWriter`] can return.
pub fn pack_workload(
    workload: &dyn Workload,
    range: Range<u64>,
    path: impl AsRef<Path>,
) -> Result<PackSummary, TileError> {
    pack_workload_with(workload, range, path, DEFAULT_TILE_RECORDS)
}

/// [`pack_workload`] with an explicit records-per-tile.
///
/// # Errors
///
/// As [`pack_workload`].
pub fn pack_workload_with(
    workload: &dyn Workload,
    range: Range<u64>,
    path: impl AsRef<Path>,
    tile_records: u32,
) -> Result<PackSummary, TileError> {
    let mut w = TileFileWriter::create_with(
        path,
        workload.name(),
        workload.mem_period(),
        workload.branch_model(),
        tile_records,
    )?;
    let mut cursor = workload.cursor(range);
    let mut buf = Vec::with_capacity(crate::cursor::CURSOR_BATCH);
    while cursor.fill(&mut buf, crate::cursor::CURSOR_BATCH) > 0 {
        for a in &buf {
            w.push_access(a)?;
        }
    }
    w.finish()
}

/// A memory-mapped, seekable tile file.
///
/// [`open`](TileFile::open) validates the structure (magic, version,
/// header checksum, field sanity, exact file length) but not tile
/// payloads; [`verify`](TileFile::verify) adds the full checksum pass.
#[derive(Debug)]
pub struct TileFile {
    map: Mmap,
    name: String,
    mem_period: u64,
    branch: BranchModel,
    tile_records: u32,
    record_count: u64,
    tile_count: u32,
    /// Set once [`verify`](TileFile::verify) has checksummed every tile;
    /// decoders then skip per-tile validation on the hot path.
    verified: AtomicBool,
}

impl TileFile {
    /// Open and structurally validate a tile file.
    ///
    /// # Errors
    ///
    /// [`TileError::Io`] if the file cannot be opened or mapped, and the
    /// structural variants ([`BadMagic`](TileError::BadMagic),
    /// [`UnsupportedVersion`](TileError::UnsupportedVersion),
    /// [`Truncated`](TileError::Truncated),
    /// [`HeaderCorrupt`](TileError::HeaderCorrupt),
    /// [`EmptyTrace`](TileError::EmptyTrace)) if it does not parse.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TileError> {
        let file = File::open(path)?;
        // SAFETY: packed tile files are treated as immutable once
        // written (the `Mmap::map` contract).
        let map = unsafe { Mmap::map(&file) }?;
        Self::parse(map)
    }

    fn parse(map: Mmap) -> Result<Self, TileError> {
        if map.len() < FILE_HEADER_BYTES {
            return Err(TileError::Truncated {
                expected: FILE_HEADER_BYTES as u64,
                found: map.len() as u64,
            });
        }
        let h = &map[..FILE_HEADER_BYTES];
        if h[0..8] != FILE_MAGIC {
            return Err(TileError::BadMagic {
                // lint:allow(no-unwrap): the slice is exactly 8 bytes by the range on this line
                found: h[0..8].try_into().expect("8 bytes"),
            });
        }
        let version = read_u32(h, 8);
        if version != FORMAT_VERSION {
            return Err(TileError::UnsupportedVersion { found: version });
        }
        let stored = read_u64(h, HEADER_CHECKSUM_AT);
        let computed = tile_checksum(&h[..HEADER_CHECKSUM_AT]);
        if stored != computed {
            return Err(TileError::HeaderCorrupt {
                detail: format!(
                    "header checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                ),
            });
        }
        let tile_records = read_u32(h, 12);
        let mem_period = read_u64(h, 16);
        let record_count = read_u64(h, 24);
        if tile_records == 0 || mem_period == 0 {
            return Err(TileError::HeaderCorrupt {
                detail: format!(
                    "tile_records {tile_records} / mem_period {mem_period} must be ≥ 1"
                ),
            });
        }
        if record_count == 0 {
            return Err(TileError::EmptyTrace);
        }
        let branch = BranchModel {
            period: read_u64(h, 32),
            pcs: read_u32(h, 40),
            biased_permille: read_u32(h, 44),
            seed: read_u64(h, 48),
        };
        let name_len = read_u32(h, 56) as usize;
        if name_len > NAME_BYTES {
            return Err(TileError::HeaderCorrupt {
                detail: format!("name length {name_len} exceeds {NAME_BYTES}"),
            });
        }
        let name = std::str::from_utf8(&h[60..60 + name_len])
            .map_err(|e| TileError::HeaderCorrupt {
                detail: format!("name is not UTF-8: {e}"),
            })?
            .to_string();
        let tile_count_u64 = record_count.div_ceil(tile_records as u64);
        let tile_count: u32 = tile_count_u64
            .try_into()
            .map_err(|_| TileError::HeaderCorrupt {
                detail: format!("tile count {tile_count_u64} overflows u32"),
            })?;
        let full_tile_bytes = TILE_HEADER_BYTES as u64 + tile_records as u64 * RECORD_BYTES as u64;
        let last_records = record_count - (tile_count_u64 - 1) * tile_records as u64;
        let expected = FILE_HEADER_BYTES as u64
            + (tile_count_u64 - 1) * full_tile_bytes
            + TILE_HEADER_BYTES as u64
            + last_records * RECORD_BYTES as u64;
        if map.len() as u64 != expected {
            return Err(TileError::Truncated {
                expected,
                found: map.len() as u64,
            });
        }
        Ok(TileFile {
            map,
            name,
            mem_period,
            branch,
            tile_records,
            record_count,
            tile_count,
            verified: AtomicBool::new(false),
        })
    }

    /// Workload name stored in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instructions per access.
    pub fn mem_period(&self) -> u64 {
        self.mem_period
    }

    /// Branch model stored in the header.
    pub fn branch_model(&self) -> BranchModel {
        self.branch
    }

    /// Total records in the file.
    pub fn record_count(&self) -> u64 {
        self.record_count
    }

    /// Records per full tile.
    pub fn tile_records(&self) -> u32 {
        self.tile_records
    }

    /// Number of tiles.
    pub fn tile_count(&self) -> u32 {
        self.tile_count
    }

    /// Mapped file size in bytes.
    pub fn byte_len(&self) -> u64 {
        self.map.len() as u64
    }

    #[inline]
    fn tile_offset(&self, tile: u32) -> usize {
        FILE_HEADER_BYTES
            + tile as usize * (TILE_HEADER_BYTES + self.tile_records as usize * RECORD_BYTES)
    }

    #[inline]
    fn tile_len(&self, tile: u32) -> u32 {
        if tile + 1 == self.tile_count {
            crate::cast::u32_exact(self.record_count - tile as u64 * self.tile_records as u64)
        } else {
            self.tile_records
        }
    }

    /// Validate `tile`'s header and return its payload slice.
    fn tile_payload(&self, tile: u32) -> Result<&[u8], TileError> {
        debug_assert!(tile < self.tile_count);
        let at = self.tile_offset(tile);
        let h = &self.map[at..at + TILE_HEADER_BYTES];
        if read_u32(h, 0) != TILE_MAGIC {
            return Err(TileError::TileCorrupt {
                tile,
                detail: format!("bad tile magic {:#010x}", read_u32(h, 0)),
            });
        }
        let records = read_u32(h, 4);
        let first = read_u64(h, 8);
        let expected_records = self.tile_len(tile);
        let expected_first = tile as u64 * self.tile_records as u64;
        if records != expected_records || first != expected_first {
            return Err(TileError::TileCorrupt {
                tile,
                detail: format!(
                    "header says {records} records from index {first}, \
                     directory implies {expected_records} from {expected_first}"
                ),
            });
        }
        let start_instr = read_u64(h, 16);
        let end_instr = read_u64(h, 24);
        if start_instr != first * self.mem_period
            || end_instr != (first + records as u64) * self.mem_period
        {
            return Err(TileError::TileCorrupt {
                tile,
                detail: format!("instruction range {start_instr}..{end_instr} inconsistent"),
            });
        }
        let payload = &self.map[at + TILE_HEADER_BYTES
            ..at + TILE_HEADER_BYTES + crate::cast::idx(u64::from(records)) * RECORD_BYTES];
        let stored = read_u64(h, 32);
        let computed = tile_checksum(payload);
        if stored != computed {
            return Err(TileError::ChecksumMismatch {
                tile,
                stored,
                computed,
            });
        }
        Ok(payload)
    }

    /// Checksum-validate every tile (the eager integrity pass). On
    /// success the file is marked verified and decoders skip per-tile
    /// validation from then on — the warm-loop hot path pays for the
    /// checksums exactly once.
    ///
    /// # Errors
    ///
    /// The first [`TileError::TileCorrupt`] /
    /// [`TileError::ChecksumMismatch`] encountered.
    pub fn verify(&self) -> Result<(), TileError> {
        for t in 0..self.tile_count {
            self.tile_payload(t)?;
        }
        self.verified.store(true, Ordering::Release);
        Ok(())
    }

    /// Whether [`verify`](TileFile::verify) has passed on this file.
    pub fn is_verified(&self) -> bool {
        self.verified.load(Ordering::Acquire)
    }

    /// Validate one tile's header and checksum — a no-op once the file
    /// is [verified](TileFile::is_verified). The lazy counterpart of
    /// [`verify`](TileFile::verify) used by cursors on unverified files.
    ///
    /// # Errors
    ///
    /// [`TileError::TileCorrupt`] / [`TileError::ChecksumMismatch`] if
    /// the tile fails validation.
    #[inline]
    pub fn check_tile(&self, tile: u32) -> Result<(), TileError> {
        if self.is_verified() {
            return Ok(());
        }
        self.tile_payload(tile).map(|_| ())
    }

    /// Decode `n` records starting `within` records into `tile`,
    /// appending them to `out` with `index`/`icount` rebased to start at
    /// `base` — the validation-free hot path shared by both cursors.
    /// Callers must have validated the tile (eager [`verify`] or
    /// [`check_tile`]) first.
    ///
    /// [`verify`]: TileFile::verify
    /// [`check_tile`]: TileFile::check_tile
    #[inline]
    fn decode_span(&self, tile: u32, within: usize, n: usize, base: u64, out: &mut Vec<MemAccess>) {
        debug_assert!(within + n <= self.tile_len(tile) as usize);
        let at = self.tile_offset(tile) + TILE_HEADER_BYTES + within * RECORD_BYTES;
        let bytes = &self.map[at..at + n * RECORD_BYTES];
        let period = self.mem_period;
        out.reserve(n);
        for (i, rec) in bytes.chunks_exact(RECORD_BYTES).enumerate() {
            let k = base + i as u64;
            out.push(MemAccess {
                index: k,
                icount: k * period,
                pc: Pc(read_u64(rec, 0)),
                addr: Addr(read_u64(rec, 8)),
                kind: if rec[16] == 1 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
            });
        }
    }

    /// Decode `tile` into `out` (cleared first) and return the global
    /// index of its first record. Decoded records carry their final
    /// `index`/`icount`, so in-range consumers can `memcpy` them.
    ///
    /// On a [verified](TileFile::is_verified) file this skips the
    /// per-tile validation entirely; otherwise the tile's header and
    /// checksum are checked first.
    ///
    /// # Errors
    ///
    /// [`TileError::TileCorrupt`] / [`TileError::ChecksumMismatch`] if
    /// the tile fails validation.
    pub fn decode_tile(&self, tile: u32, out: &mut Vec<MemAccess>) -> Result<u64, TileError> {
        let first = tile as u64 * self.tile_records as u64;
        out.clear();
        if self.is_verified() {
            self.decode_span(tile, 0, self.tile_len(tile) as usize, first, out);
            return Ok(first);
        }
        let payload = self.tile_payload(tile)?;
        let records = payload.len() / RECORD_BYTES;
        out.reserve(records);
        for (i, rec) in payload.chunks_exact(RECORD_BYTES).enumerate() {
            let kind = match rec[16] {
                0 => AccessKind::Load,
                1 => AccessKind::Store,
                other => {
                    return Err(TileError::TileCorrupt {
                        tile,
                        detail: format!("record {i} has invalid kind byte {other}"),
                    })
                }
            };
            let k = first + i as u64;
            out.push(MemAccess {
                index: k,
                icount: k * self.mem_period,
                pc: Pc(read_u64(rec, 0)),
                addr: Addr(read_u64(rec, 8)),
                kind,
            });
        }
        Ok(first)
    }

    /// Decode the single record at position `k` (no checksum pass — the
    /// O(1) random-access path).
    ///
    /// # Panics
    ///
    /// Panics if `k ≥ record_count`.
    #[inline]
    pub fn record_at(&self, k: u64) -> MemAccess {
        assert!(k < self.record_count, "record {k} out of range");
        let tile = crate::cast::u32_exact(k / self.tile_records as u64);
        let within = crate::cast::idx(k % self.tile_records as u64);
        let at = self.tile_offset(tile) + TILE_HEADER_BYTES + within * RECORD_BYTES;
        let rec = &self.map[at..at + RECORD_BYTES];
        MemAccess {
            index: k,
            icount: k * self.mem_period,
            pc: Pc(read_u64(rec, 0)),
            addr: Addr(read_u64(rec, 8)),
            kind: if rec[16] == 1 {
                AccessKind::Store
            } else {
                AccessKind::Load
            },
        }
    }
}

/// A tile file exposed as a [`Workload`]: the production ingest path.
///
/// Like [`RecordedTrace`](crate::RecordedTrace), the trace extends
/// cyclically past its recorded length so longer region plans stay
/// valid. Sequential consumers get [`TiledCursor`] by default;
/// [`with_streaming`](TiledTrace::with_streaming) switches multi-tile
/// ranges to the background-decoder [`StreamingTileCursor`] — both are
/// byte-identical to [`access_at`](Workload::access_at), so strategies
/// and [`RegionScheduler`] units consume either transparently.
///
/// [`RegionScheduler`]: crate::AccessCursor
#[derive(Clone, Debug)]
pub struct TiledTrace {
    file: Arc<TileFile>,
    streaming: bool,
    channel_tiles: usize,
    batch_len: usize,
    decoder_retry: crate::fault::FaultPolicy,
}

impl TiledTrace {
    /// Open a tile file and eagerly [`verify`](TileFile::verify) every
    /// checksum, so the infallible [`Workload`] surface can never
    /// observe a corrupt tile.
    ///
    /// # Errors
    ///
    /// Anything [`TileFile::open`] or [`TileFile::verify`] returns.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TileError> {
        let file = TileFile::open(path)?;
        file.verify()?;
        Ok(Self::from_file(file))
    }

    /// Open without the eager checksum pass. Payload corruption then
    /// surfaces at decode time: cursors end their stream early and
    /// report the error through [`TiledCursor::error`] /
    /// [`StreamingTileCursor::error`], and [`Workload::access_at`]
    /// decodes without checksumming.
    ///
    /// # Errors
    ///
    /// Anything [`TileFile::open`] returns (structural validation still
    /// runs).
    pub fn open_unverified(path: impl AsRef<Path>) -> Result<Self, TileError> {
        Ok(Self::from_file(TileFile::open(path)?))
    }

    /// Wrap an already-opened [`TileFile`].
    pub fn from_file(file: TileFile) -> Self {
        TiledTrace {
            file: Arc::new(file),
            streaming: false,
            channel_tiles: 4,
            batch_len: usize::MAX,
            decoder_retry: crate::fault::FaultPolicy { retry_budget: 0 },
        }
    }

    /// Toggle the background-decoder streaming cursor for sequential
    /// ranges spanning more than one tile (default: off — the in-place
    /// [`TiledCursor`] wins whenever decode is cheaper than a thread
    /// handoff, which is the common case on few-core hosts).
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Bound (in tiles) of the streaming cursor's channel: the decoder
    /// runs at most this many tiles ahead of the consumer.
    pub fn with_channel_tiles(mut self, tiles: usize) -> Self {
        self.channel_tiles = tiles.max(1);
        self
    }

    /// Cap (in records) on each batch the streaming decoder hands over
    /// the channel (default: a whole tile span). Smaller batches trade
    /// handoff frequency for lower first-record latency and a smaller
    /// per-batch footprint; `records` is clamped to at least 1.
    pub fn with_batch_len(mut self, records: usize) -> Self {
        self.batch_len = records.max(1);
        self
    }

    /// Retry budget for **decoder-thread deaths** on streaming cursors
    /// handed out by this trace (default: no retries). Within the
    /// budget a cursor whose background decoder dies respawns a fresh
    /// decoder from its exact consumer position and the stream
    /// continues byte-identically; past it the death surfaces as
    /// [`TileError::DecoderFailed`] through
    /// [`StreamingTileCursor::error`] as before. Decode *errors*
    /// (corrupt tiles) are deterministic and are never retried.
    pub fn with_decoder_retry(mut self, policy: crate::fault::FaultPolicy) -> Self {
        self.decoder_retry = policy;
        self
    }

    /// The underlying tile file.
    pub fn file(&self) -> &TileFile {
        &self.file
    }

    /// Number of recorded accesses before the cyclic extension.
    pub fn recorded_len(&self) -> u64 {
        self.file.record_count()
    }

    /// A streaming cursor with its own background decoder thread,
    /// regardless of the [`with_streaming`](Self::with_streaming) mode.
    pub fn streaming_cursor(&self, range: Range<u64>) -> StreamingTileCursor {
        StreamingTileCursor::with_batch_len(
            Arc::clone(&self.file),
            range,
            self.channel_tiles,
            self.batch_len,
        )
        .with_retry(self.decoder_retry)
    }
}

impl Workload for TiledTrace {
    fn name(&self) -> &str {
        self.file.name()
    }

    fn mem_period(&self) -> u64 {
        self.file.mem_period()
    }

    fn branch_model(&self) -> BranchModel {
        self.file.branch_model()
    }

    #[inline]
    fn access_at(&self, k: u64) -> MemAccess {
        let rec = self.file.record_at(k % self.file.record_count());
        MemAccess {
            index: k,
            icount: k * self.file.mem_period(),
            ..rec
        }
    }

    fn cursor<'a>(&'a self, range: Range<u64>) -> Box<dyn AccessCursor + 'a> {
        let len = range.end.saturating_sub(range.start);
        if self.streaming && len > self.file.tile_records() as u64 {
            Box::new(self.streaming_cursor(range))
        } else {
            Box::new(TiledCursor::new(Arc::clone(&self.file), range))
        }
    }
}

/// The default sequential cursor over a [`TiledTrace`]: serves
/// [`fill`](AccessCursor::fill) by decoding record spans straight out
/// of the memory map into the caller's buffer — no intermediate copy,
/// and on a [verified](TileFile::is_verified) file no validation in the
/// loop at all.
#[derive(Debug)]
pub struct TiledCursor {
    file: Arc<TileFile>,
    next: u64,
    end: u64,
    /// Last tile validated by the lazy path (`u64::MAX` = none);
    /// unused once the file is verified.
    checked_tile: u64,
    error: Option<TileError>,
}

impl TiledCursor {
    /// A cursor over `file` accesses with `index ∈ range` (cyclic past
    /// the recorded length).
    pub fn new(file: Arc<TileFile>, range: Range<u64>) -> Self {
        TiledCursor {
            file,
            next: range.start,
            end: range.end.max(range.start),
            checked_tile: u64::MAX,
            error: None,
        }
    }

    /// The decode error that ended this cursor's stream early, if any.
    pub fn error(&self) -> Option<&TileError> {
        self.error.as_ref()
    }

    /// Take the decode error, leaving the cursor exhausted.
    pub fn take_error(&mut self) -> Option<TileError> {
        self.error.take()
    }
}

impl AccessCursor for TiledCursor {
    fn position(&self) -> u64 {
        self.next
    }

    fn end(&self) -> u64 {
        self.end
    }

    fn fill(&mut self, out: &mut Vec<MemAccess>, max: usize) -> usize {
        out.clear();
        if self.error.is_some() {
            return 0;
        }
        let count = self.file.record_count();
        let tile_records = self.file.tile_records() as u64;
        let verified = self.file.is_verified();
        let mut produced = 0usize;
        while produced < max && self.next < self.end {
            let rec = self.next % count;
            let tile = (rec / tile_records) as u32;
            if !verified && self.checked_tile != tile as u64 {
                if let Err(e) = self.file.check_tile(tile) {
                    self.error = Some(e);
                    break;
                }
                self.checked_tile = tile as u64;
            }
            let within = crate::cast::idx(rec - tile as u64 * tile_records);
            let take = (self.file.tile_len(tile) as usize - within)
                .min(max - produced)
                .min((self.end - self.next).min(usize::MAX as u64) as usize);
            // Decode rebases index/icount from `next` directly, so the
            // cyclic wrap needs no separate fix-up pass.
            self.file.decode_span(tile, within, take, self.next, out);
            produced += take;
            self.next += take as u64;
        }
        produced
    }
}

/// A sequential cursor whose tiles are decoded by a background thread
/// and streamed over a bounded channel, so decode overlaps simulation.
///
/// The channel bound (see [`TiledTrace::with_channel_tiles`]) is the
/// backpressure: the decoder blocks once it runs that many tiles ahead.
/// Spent batches are recycled back to the decoder, making the steady
/// state allocation-free. Decode errors arrive in-band: the stream ends
/// early and [`error`](StreamingTileCursor::error) reports the cause.
#[derive(Debug)]
pub struct StreamingTileCursor {
    file: Arc<TileFile>,
    channel_tiles: usize,
    batch_len: usize,
    retry: crate::fault::FaultPolicy,
    retries_used: u32,
    next: u64,
    end: u64,
    rx: Option<Receiver<Result<Vec<MemAccess>, TileError>>>,
    recycle_tx: Option<Sender<Vec<MemAccess>>>,
    cur: Vec<MemAccess>,
    cur_pos: usize,
    error: Option<TileError>,
    decoder: Option<JoinHandle<()>>,
}

/// The decoder half of a streaming cursor: a background thread feeding
/// decoded batches over a bounded channel, recycling spent buffers. A
/// standalone function so the consumer can respawn it from any position
/// after a decoder death ([`StreamingTileCursor::with_retry`]).
#[allow(clippy::type_complexity)]
fn spawn_stream_decoder(
    file: Arc<TileFile>,
    start: u64,
    end: u64,
    channel_tiles: usize,
    batch_len: usize,
) -> (
    Receiver<Result<Vec<MemAccess>, TileError>>,
    Sender<Vec<MemAccess>>,
    JoinHandle<()>,
) {
    let cap = channel_tiles.max(1);
    let (tx, rx) = bounded::<Result<Vec<MemAccess>, TileError>>(cap);
    let (recycle_tx, recycle_rx) = bounded::<Vec<MemAccess>>(cap + 2);
    let decoder = std::thread::spawn(move || {
        let count = file.record_count();
        let tile_records = file.tile_records() as u64;
        let mut pos = start;
        while pos < end {
            let rec = pos % count;
            let tile = (rec / tile_records) as u32;
            // Named fault-injection site: an armed plan can kill
            // the decoder here, exercising the cursor's
            // truncation-detection path below.
            crate::fault::hit(crate::fault::FaultSite::DecoderThread, tile as u64);
            // `check_tile` is a no-op on eagerly-verified files;
            // otherwise errors propagate in-band: the cursor ends
            // its stream and surfaces them.
            if let Err(e) = file.check_tile(tile) {
                let _ = tx.send(Err(e));
                return;
            }
            let within = crate::cast::idx(rec - tile as u64 * tile_records);
            let take = (file.tile_len(tile) as usize - within)
                .min(batch_len)
                .min((end - pos).min(usize::MAX as u64) as usize);
            let mut batch = recycle_rx.try_recv().unwrap_or_default();
            batch.clear();
            file.decode_span(tile, within, take, pos, &mut batch);
            pos += take as u64;
            if tx.send(Ok(batch)).is_err() {
                return; // cursor dropped mid-stream
            }
        }
    });
    (rx, recycle_tx, decoder)
}

impl StreamingTileCursor {
    /// A streaming cursor over `file` accesses with `index ∈ range`,
    /// with the decoder at most `channel_tiles` tiles ahead and whole
    /// tile spans per batch.
    pub fn new(file: Arc<TileFile>, range: Range<u64>, channel_tiles: usize) -> Self {
        Self::with_batch_len(file, range, channel_tiles, usize::MAX)
    }

    /// Like [`new`](Self::new), but each decoded batch is capped at
    /// `batch_len` records (clamped to at least 1), so consumers see
    /// their first records before a whole tile has decoded.
    pub fn with_batch_len(
        file: Arc<TileFile>,
        range: Range<u64>,
        channel_tiles: usize,
        batch_len: usize,
    ) -> Self {
        let batch_len = batch_len.max(1);
        let start = range.start;
        let end = range.end.max(range.start);
        let (rx, recycle_tx, decoder) = if start < end {
            let (rx, recycle_tx, decoder) =
                spawn_stream_decoder(Arc::clone(&file), start, end, channel_tiles, batch_len);
            (Some(rx), Some(recycle_tx), Some(decoder))
        } else {
            (None, None, None)
        };
        StreamingTileCursor {
            file,
            channel_tiles,
            batch_len,
            retry: crate::fault::FaultPolicy { retry_budget: 0 },
            retries_used: 0,
            next: start,
            end,
            rx,
            recycle_tx,
            cur: Vec::new(),
            cur_pos: 0,
            error: None,
            decoder,
        }
    }

    /// Consumer-side auto-retry for **decoder-thread deaths**: within
    /// `policy`'s budget, a dead decoder (the channel disconnects with
    /// records still due) is replaced by a fresh one spawned from the
    /// cursor's exact position, and the stream continues
    /// byte-identically; the budget exhausted, the death surfaces as
    /// [`TileError::DecoderFailed`] exactly as with no retries.
    /// In-band decode *errors* (corrupt tiles) are deterministic —
    /// retrying cannot help — and always surface immediately.
    pub fn with_retry(mut self, policy: crate::fault::FaultPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Decoder respawns consumed so far recovering from decoder
    /// deaths.
    pub fn retries_used(&self) -> u32 {
        self.retries_used
    }

    /// The decode error that ended this cursor's stream early, if any.
    pub fn error(&self) -> Option<&TileError> {
        self.error.as_ref()
    }

    /// Take the decode error, leaving the cursor exhausted.
    pub fn take_error(&mut self) -> Option<TileError> {
        self.error.take()
    }
}

impl AccessCursor for StreamingTileCursor {
    fn position(&self) -> u64 {
        self.next
    }

    fn end(&self) -> u64 {
        self.end
    }

    fn fill(&mut self, out: &mut Vec<MemAccess>, max: usize) -> usize {
        out.clear();
        if self.error.is_some() {
            return 0;
        }
        let mut produced = 0usize;
        while produced < max && self.next < self.end {
            if self.cur_pos == self.cur.len() {
                // Recycle the spent batch (best-effort) and take the
                // next decoded one; `recv` blocks only when the decoder
                // is genuinely behind.
                if !self.cur.is_empty() {
                    let spent = std::mem::take(&mut self.cur);
                    if let Some(tx) = &self.recycle_tx {
                        let _ = tx.try_send(spent);
                    }
                }
                self.cur_pos = 0;
                match self.rx.as_ref().map(|rx| rx.recv()) {
                    Some(Ok(Ok(batch))) => self.cur = batch,
                    Some(Ok(Err(e))) => {
                        self.error = Some(e);
                        break;
                    }
                    // Disconnected or no decoder. With records still
                    // due (`next < end`) this is NOT a clean
                    // end-of-stream: the decoder died before finishing
                    // (it only returns early on a send to a dropped
                    // cursor, which we are not). Join it, then either
                    // respawn from the exact consumer position (within
                    // the retry budget) or surface a typed error
                    // instead of silently truncating.
                    Some(Err(_)) | None => {
                        if self.next < self.end {
                            let detail = match self.decoder.take() {
                                Some(handle) => match handle.join() {
                                    Ok(()) => "decoder thread exited early".to_string(),
                                    Err(payload) => decoder_panic_detail(payload.as_ref()),
                                },
                                None => "decoder thread missing".to_string(),
                            };
                            if self.retries_used < self.retry.retry_budget {
                                self.retries_used += 1;
                                let (rx, recycle_tx, decoder) = spawn_stream_decoder(
                                    Arc::clone(&self.file),
                                    self.next,
                                    self.end,
                                    self.channel_tiles,
                                    self.batch_len,
                                );
                                self.rx = Some(rx);
                                self.recycle_tx = Some(recycle_tx);
                                self.decoder = Some(decoder);
                                continue;
                            }
                            self.error = Some(TileError::DecoderFailed { detail });
                        }
                        break;
                    }
                }
            }
            let take = (self.cur.len() - self.cur_pos)
                .min(max - produced)
                .min((self.end - self.next).min(usize::MAX as u64) as usize);
            out.extend_from_slice(&self.cur[self.cur_pos..self.cur_pos + take]);
            self.cur_pos += take;
            produced += take;
            self.next += take as u64;
        }
        produced
    }
}

/// Best-effort description of a joined decoder thread's panic payload.
fn decoder_panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(e) = payload.downcast_ref::<TileError>() {
        return format!("decoder thread panicked: {e}");
    }
    if let Some(p) = payload.downcast_ref::<crate::fault::InjectedPanic>() {
        return format!("decoder thread panicked: {}", p.0);
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return format!("decoder thread panicked: {s}");
    }
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        return format!("decoder thread panicked: {s}");
    }
    "decoder thread panicked".to_string()
}

impl Drop for StreamingTileCursor {
    fn drop(&mut self) {
        // Dropping the receiver unblocks a decoder stuck in `send`;
        // join afterwards so no thread outlives the cursor.
        self.rx = None;
        self.recycle_tx = None;
        if let Some(handle) = self.decoder.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec_workload, Scale, WorkloadExt};

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("delorean-tile-{}-{tag}.dlt", std::process::id()))
    }

    #[test]
    fn round_trip_preserves_every_record() {
        let w = spec_workload("hmmer", Scale::tiny(), 3).unwrap();
        let path = temp("roundtrip");
        let summary = pack_workload_with(&w, 0..10_000, &path, 256).unwrap();
        assert_eq!(summary.records, 10_000);
        assert_eq!(summary.tiles, 10_000u32.div_ceil(256));
        let t = TiledTrace::open(&path).unwrap();
        assert_eq!(t.name(), "hmmer");
        assert_eq!(t.mem_period(), w.mem_period());
        assert_eq!(t.branch_model(), w.branch_model());
        assert_eq!(t.recorded_len(), 10_000);
        for k in [0u64, 1, 255, 256, 257, 5_000, 9_999] {
            assert_eq!(t.access_at(k), w.access_at(k), "index {k}");
        }
        // Cyclic extension matches RecordedTrace semantics.
        let wrapped = t.access_at(10_003);
        assert_eq!(wrapped.index, 10_003);
        assert_eq!(wrapped.icount, 10_003 * w.mem_period());
        assert_eq!(wrapped.addr, w.access_at(3).addr);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cursors_match_access_at_across_tile_boundaries_and_wrap() {
        let w = spec_workload("mcf", Scale::tiny(), 9).unwrap();
        let path = temp("cursors");
        pack_workload_with(&w, 0..1_000, &path, 128).unwrap();
        let t = TiledTrace::open(&path).unwrap();
        for range in [0..1_000u64, 100..137, 120..130, 900..2_300, 5..5] {
            for streaming in [false, true] {
                let t = t.clone().with_streaming(streaming);
                let mut cur = t.cursor(range.clone());
                let mut buf = Vec::new();
                let mut k = range.start;
                while cur.fill(&mut buf, 97) > 0 {
                    for a in &buf {
                        assert_eq!(*a, t.access_at(k), "index {k} streaming={streaming}");
                        k += 1;
                    }
                }
                assert_eq!(k, range.end.max(range.start));
                assert_eq!(cur.position(), cur.end());
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn decoder_batch_len_is_clamped_and_byte_identical() {
        let w = spec_workload("hmmer", Scale::tiny(), 5).unwrap();
        let path = temp("batchlen");
        pack_workload_with(&w, 0..1_000, &path, 128).unwrap();
        let t = TiledTrace::open(&path).unwrap();
        // Degenerate (0 → clamped to 1), sub-tile, non-divisor and
        // beyond-tile caps must all reproduce access_at byte for byte,
        // including across the cyclic wrap.
        for batch_len in [0usize, 1, 7, 128, 100_000] {
            let t = t.clone().with_streaming(true).with_batch_len(batch_len);
            let mut cur = t.cursor(900..1_400);
            let mut buf = Vec::new();
            let mut k = 900u64;
            while cur.fill(&mut buf, 97) > 0 {
                for a in &buf {
                    assert_eq!(*a, t.access_at(k), "index {k} batch_len={batch_len}");
                    k += 1;
                }
            }
            assert_eq!(k, 1_400, "batch_len={batch_len}");
        }
        // The direct constructor applies the same clamp.
        let file = Arc::new(TileFile::open(&path).unwrap());
        let mut cur = StreamingTileCursor::with_batch_len(file, 0..10, 2, 0);
        let mut buf = Vec::new();
        let mut seen = 0u64;
        while cur.fill(&mut buf, 3) > 0 {
            seen += buf.len() as u64;
        }
        assert_eq!(seen, 10);
        assert!(cur.error().is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn streaming_cursor_can_be_dropped_mid_stream() {
        let w = spec_workload("mcf", Scale::tiny(), 9).unwrap();
        let path = temp("dropped");
        pack_workload_with(&w, 0..5_000, &path, 64).unwrap();
        let t = TiledTrace::open(&path).unwrap();
        let mut cur = t.streaming_cursor(0..5_000);
        let mut buf = Vec::new();
        assert!(cur.fill(&mut buf, 10) > 0);
        drop(cur); // must not hang on the blocked decoder
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_structural_damage() {
        let w = spec_workload("lbm", Scale::tiny(), 1).unwrap();
        let path = temp("damage");
        pack_workload_with(&w, 0..500, &path, 64).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = pristine.clone();
        bad[0] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            TileFile::open(&path),
            Err(TileError::BadMagic { .. })
        ));

        // Unsupported version (checksum re-stamped so the version check
        // is what fires).
        let mut bad = pristine.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        let sum = tile_checksum(&bad[..HEADER_CHECKSUM_AT]);
        bad[HEADER_CHECKSUM_AT..HEADER_CHECKSUM_AT + 8].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            TileFile::open(&path),
            Err(TileError::UnsupportedVersion { found: 99 })
        ));

        // Header bit-flip → checksum mismatch.
        let mut bad = pristine.clone();
        bad[24] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(
            TileFile::open(&path),
            Err(TileError::HeaderCorrupt { .. })
        ));

        // Short read.
        std::fs::write(&path, &pristine[..pristine.len() - 10]).unwrap();
        let err = TileFile::open(&path).unwrap_err();
        assert!(matches!(err, TileError::Truncated { .. }), "{err}");
        assert!(!err.to_string().is_empty());

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn payload_corruption_is_typed_not_a_panic() {
        let w = spec_workload("lbm", Scale::tiny(), 1).unwrap();
        let path = temp("payload");
        pack_workload_with(&w, 0..500, &path, 64).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of tile 2's payload.
        let tile2 = FILE_HEADER_BYTES + 2 * (TILE_HEADER_BYTES + 64 * RECORD_BYTES);
        bytes[tile2 + TILE_HEADER_BYTES + 30] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        // Eager open reports it.
        assert!(matches!(
            TiledTrace::open(&path),
            Err(TileError::ChecksumMismatch { tile: 2, .. })
        ));

        // Unverified open succeeds; both cursors surface the error at
        // decode time instead of panicking, ending the stream early.
        let t = TiledTrace::open_unverified(&path).unwrap();
        let mut sync = TiledCursor::new(Arc::new(TileFile::open(&path).unwrap()), 0..500);
        let mut buf = Vec::new();
        let mut seen = 0u64;
        while sync.fill(&mut buf, 100) > 0 {
            seen += buf.len() as u64;
        }
        assert_eq!(seen, 128, "tiles 0..2 stream, tile 2 stops the cursor");
        assert!(matches!(
            sync.take_error(),
            Some(TileError::ChecksumMismatch { tile: 2, .. })
        ));

        let mut streaming = t.streaming_cursor(0..500);
        let mut seen = 0u64;
        while streaming.fill(&mut buf, 100) > 0 {
            seen += buf.len() as u64;
        }
        assert_eq!(seen, 128);
        assert!(matches!(
            streaming.error(),
            Some(TileError::ChecksumMismatch { tile: 2, .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_invalid_parameters_and_empty_traces() {
        let path = temp("invalid");
        assert!(matches!(
            TileFileWriter::create(&path, "x", 0, BranchModel::new(1)),
            Err(TileError::Invalid { .. })
        ));
        assert!(matches!(
            TileFileWriter::create_with(&path, "x", 1, BranchModel::new(1), 0),
            Err(TileError::Invalid { .. })
        ));
        let long = "n".repeat(NAME_BYTES + 1);
        assert!(matches!(
            TileFileWriter::create(&path, &long, 1, BranchModel::new(1)),
            Err(TileError::Invalid { .. })
        ));
        let w = TileFileWriter::create(&path, "x", 1, BranchModel::new(1)).unwrap();
        assert!(matches!(w.finish(), Err(TileError::EmptyTrace)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_loops_see_identical_streams() {
        // The consumer-level contract: for_each_access over a tiled
        // trace equals the source workload's stream, batch splits and
        // tile boundaries notwithstanding.
        let w = spec_workload("povray", Scale::tiny(), 4).unwrap();
        let path = temp("warmloop");
        pack_workload_with(&w, 0..3_000, &path, 100).unwrap();
        let t = TiledTrace::open(&path).unwrap().with_streaming(true);
        let mut source = Vec::new();
        w.for_each_access(50..2_950, |a| source.push(*a));
        let mut tiled = Vec::new();
        t.for_each_access(50..2_950, |a| tiled.push(*a));
        assert_eq!(source, tiled);
        std::fs::remove_file(&path).unwrap();
    }
}
