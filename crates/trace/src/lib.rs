//! Deterministic, position-addressable synthetic memory-access workloads.
//!
//! This crate is the trace substrate of the DeLorean reproduction. The paper
//! ("Directed Statistical Warming through Time Traveling", MICRO-52 2019)
//! runs real SPEC CPU2006 binaries inside gem5/KVM; neither is available
//! here, so this crate provides the closest synthetic equivalent: a suite of
//! 24 workload generators whose *reuse-distance structure* spans the same
//! qualitative space the paper reports per benchmark (tiny hot working sets
//! with short reuses, giant footprints with very long reuses, strided
//! outliers that cause conflict misses, single-phase anomalies, ...).
//!
//! The one property everything else in the repository depends on is
//! **position addressability**: a [`Workload`] can produce the `k`-th memory
//! access in `O(1)` without generating the `k-1` accesses before it. That is
//! what lets the time-traveling passes of DeLorean jump forward (the Scout
//! fast-forwards to a detailed region) and backward (the Explorers profile
//! windows *before* the region) over the same, perfectly reproducible
//! execution — playing the role that hardware virtualization (KVM) plays in
//! the paper.
//!
//! # Three access paths
//!
//! Consumers reach a workload's accesses through one of three paths:
//!
//! * **Random access** — [`Workload::access_at`]: stateless `O(1)`
//!   regeneration of any single index. Used by DSW key probes, the
//!   detailed-simulation loop, and tests.
//! * **Streaming** — [`Workload::cursor`] / [`AccessCursor`]: batched
//!   sequential generation that hoists per-range work (phase lookup,
//!   permutation setup) out of the loop and advances stream-local state
//!   incrementally. Every warm loop (functional warming, watchpoint
//!   scans, profiling windows) runs on this path, via
//!   [`WorkloadExt::for_each_access`] or [`WorkloadExt::iter_range`].
//! * **Tiled ingest** — [`TiledTrace`] over an on-disk [`tile`] file:
//!   a memory-mapped binary trace whose fixed-size tiles decode
//!   straight into [`MemAccess`] batches (optionally on a background
//!   decoder thread with bounded backpressure), so warm-loop `fill`
//!   calls become plain `memcpy`s. This is the production ingest path;
//!   see the [`tile`] module docs for the format.
//!
//! Both paths are pinned byte-identical by property tests; custom
//! [`Workload`] implementors get a correct (indexed) cursor for free and
//! should override [`Workload::cursor`] only when sequential generation
//! can share work between neighbouring indices — see the [`cursor`
//! module](AccessCursor) docs for guidance.
//!
//! The crate also hosts the **flat lookup substrate** shared by every
//! per-access hot loop: open-addressing [`FlatMap`]/[`FlatSet`] (aliases
//! [`LineMap`], [`LineSet`], [`PageMap`], [`PcMap`]) and the
//! [`InterestFilter`] counting-bitmap prefilter — see the collection
//! types' docs for the probing and fusion rules.
//!
//! # Quick example
//!
//! ```
//! use delorean_trace::{spec2006, Scale, Workload};
//!
//! let suite = spec2006(Scale::tiny(), 42);
//! let lbm = suite.iter().find(|w| w.name() == "lbm").unwrap();
//! let a = lbm.access_at(1_000);
//! let b = lbm.access_at(1_000);
//! assert_eq!(a, b); // deterministic: same index, same access
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod branch;
pub mod cast;
mod collections;
mod cursor;
pub mod fault;
mod iter;
pub mod journal;
mod pattern;
mod phased;
mod recorded;
mod rng;
mod scale;
mod spec;
pub mod tile;
mod types;

pub use branch::{BranchEvent, BranchModel};
pub use collections::{
    FlatKey, FlatMap, FlatSet, InterestFilter, LineMap, LineSet, PageMap, PageSet, PcMap,
};
pub use cursor::{AccessCursor, IndexedCursor, CURSOR_BATCH};
pub use fault::{
    FaultKind, FaultPlan, FaultPolicy, FaultSite, InjectedFault, UnitFailure, UnitFault,
};
pub use iter::AccessIter;
pub use journal::{JournalEntry, JournalError, JournalReader, JournalWriter};
pub use pattern::{Pattern, PatternCursor};
pub use phased::{PhaseSpec, PhasedCursor, PhasedWorkload, PhasedWorkloadBuilder, StreamSpec};
pub use recorded::{RecordedAccess, RecordedCursor, RecordedTrace, RecordedTraceBuilder};
pub use rng::{mix64, CounterRng};
pub use scale::Scale;
pub use spec::{spec2006, spec_workload, SPEC2006_NAMES};
pub use tile::{
    pack_workload, pack_workload_with, PackSummary, StreamingTileCursor, TileError, TileFile,
    TileFileWriter, TiledCursor, TiledTrace,
};
pub use types::{AccessKind, Addr, LineAddr, MemAccess, PageAddr, Pc, LINE_BYTES, PAGE_BYTES};

use std::fmt;
use std::ops::Range;

/// A deterministic, position-addressable stream of memory accesses.
///
/// Implementations must be pure functions of the access index: calling
/// [`Workload::access_at`] twice with the same index must return identical
/// [`MemAccess`] records. This is the contract that makes the DeLorean
/// passes (Scout, Explorers, Analyst) observe a single consistent execution
/// even though they visit it out of order.
///
/// Instructions and memory accesses are related by a fixed
/// [`mem_period`](Workload::mem_period): one access is issued every
/// `mem_period` instructions, so the access with index `k` retires at
/// instruction `k * mem_period`.
pub trait Workload: Send + Sync {
    /// Human-readable workload name (e.g. `"lbm"`).
    fn name(&self) -> &str;

    /// Instructions per memory access (≥ 1). A value of 3 means one out of
    /// every three instructions is a load or store, roughly the SPEC mix.
    fn mem_period(&self) -> u64;

    /// The `k`-th memory access of the execution.
    fn access_at(&self, k: u64) -> MemAccess;

    /// The branch behaviour of this workload, consumed by the CPU timing
    /// model and branch predictor.
    fn branch_model(&self) -> BranchModel;

    /// Number of memory accesses contained in `instrs` instructions.
    fn accesses_in_instrs(&self, instrs: u64) -> u64 {
        instrs / self.mem_period().max(1)
    }

    /// Index of the first access retiring at or after instruction `instr`.
    fn access_index_at_instr(&self, instr: u64) -> u64 {
        instr.div_ceil(self.mem_period().max(1))
    }

    /// Instruction count at which access `k` retires.
    fn instr_of_access(&self, k: u64) -> u64 {
        k * self.mem_period()
    }

    /// A streaming cursor over the accesses with indices in `range` —
    /// the sequential counterpart to [`access_at`](Workload::access_at).
    ///
    /// The default implementation is the [`IndexedCursor`] fallback
    /// (correct for every workload, no faster than `access_at`).
    /// Implementations should override this whenever neighbouring
    /// indices share derivable state — hoisted phase lookups,
    /// incrementally advanced pattern positions — as
    /// [`PhasedWorkload`] and [`RecordedTrace`] do.
    ///
    /// The contract is strict: the cursor must yield **byte-identical**
    /// [`MemAccess`] records to `access_at(k)` for every `k` in `range`
    /// (pinned by the equivalence property tests in
    /// `tests/properties.rs`).
    fn cursor<'a>(&'a self, range: Range<u64>) -> Box<dyn AccessCursor + 'a> {
        Box::new(IndexedCursor::new(self, range))
    }
}

impl<W: Workload + ?Sized> Workload for &W {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn mem_period(&self) -> u64 {
        (**self).mem_period()
    }

    fn access_at(&self, k: u64) -> MemAccess {
        (**self).access_at(k)
    }

    fn branch_model(&self) -> BranchModel {
        (**self).branch_model()
    }

    fn accesses_in_instrs(&self, instrs: u64) -> u64 {
        (**self).accesses_in_instrs(instrs)
    }

    fn access_index_at_instr(&self, instr: u64) -> u64 {
        (**self).access_index_at_instr(instr)
    }

    fn instr_of_access(&self, k: u64) -> u64 {
        (**self).instr_of_access(k)
    }

    fn cursor<'a>(&'a self, range: Range<u64>) -> Box<dyn AccessCursor + 'a> {
        (**self).cursor(range)
    }
}

impl fmt::Debug for dyn Workload + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name())
            .field("mem_period", &self.mem_period())
            .finish()
    }
}

/// Extension helpers available on every [`Workload`], including trait
/// objects.
pub trait WorkloadExt: Workload {
    /// Iterate over the accesses with indices in `range`.
    ///
    /// ```
    /// use delorean_trace::{spec_workload, Scale, WorkloadExt};
    ///
    /// let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
    /// let n = w.iter_range(0..100).count();
    /// assert_eq!(n, 100);
    /// ```
    fn iter_range(&self, range: Range<u64>) -> AccessIter<'_, Self> {
        AccessIter::new(self, range)
    }

    /// Visit every access with index in `range`, in order, through the
    /// workload's streaming cursor in batches of [`CURSOR_BATCH`].
    ///
    /// This is the preferred form for sequential hot loops (functional
    /// warming, watchpoint scans, profiling windows): one virtual call
    /// per batch instead of one per access, and none of the `Option`
    /// plumbing of an iterator.
    ///
    /// ```
    /// use delorean_trace::{spec_workload, Scale, WorkloadExt};
    ///
    /// let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
    /// let mut n = 0u64;
    /// w.for_each_access(0..100, |a| n += u64::from(a.is_store()));
    /// assert!(n <= 100);
    /// ```
    fn for_each_access<F: FnMut(&MemAccess)>(&self, range: Range<u64>, mut f: F) {
        let mut cursor = self.cursor(range);
        let mut buf = Vec::with_capacity(CURSOR_BATCH);
        while cursor.fill(&mut buf, CURSOR_BATCH) > 0 {
            for a in &buf {
                f(a);
            }
        }
    }
}

impl<W: Workload + ?Sized> WorkloadExt for W {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let w = spec_workload("mcf", Scale::tiny(), 7).unwrap();
        let dynw: &dyn Workload = &w;
        assert_eq!(dynw.name(), "mcf");
        assert!(dynw.mem_period() >= 1);
        let _ = dynw.iter_range(0..4).count();
    }

    #[test]
    fn instr_access_round_trip() {
        let w = spec_workload("hmmer", Scale::tiny(), 7).unwrap();
        let p = w.mem_period();
        assert_eq!(w.access_index_at_instr(0), 0);
        assert_eq!(w.access_index_at_instr(p), 1);
        assert_eq!(w.access_index_at_instr(p + 1), 2);
        assert_eq!(w.instr_of_access(5), 5 * p);
        assert_eq!(w.accesses_in_instrs(10 * p), 10);
    }
}
