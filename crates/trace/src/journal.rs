//! The durable run journal: an append-only, checksummed record of
//! completed units of work, with torn-tail recovery.
//!
//! A long sweep writes one entry per completed unit (the bench layer
//! journals each finished strategy×workload cell's reduced report);
//! after a crash or kill, reopening the journal yields the longest
//! valid prefix of completed entries, and the runtime re-executes only
//! what is missing. The format reuses the tile file's idioms
//! ([`crate::tile::tile_checksum`] content digests,
//! a fixed checksummed little-endian header):
//!
//! ```text
//! file   := header entry*                      (little-endian)
//! header (64 B): magic "DLRNJRNL", version u32, reserved u32,
//!     tag u64 (caller-defined binding), 32 B reserved,
//!     checksum u64 over bytes 0..56
//! entry  := len u32, kind u32, checksum u64 (over payload),
//!     payload (len B)
//! ```
//!
//! **Recovery semantics.** Structural damage to the header (bad magic,
//! version, checksum) is a hard [`JournalError`] — the file is not a
//! journal, or not ours (`tag` mismatch). Damage *past* the header —
//! a truncated final entry from a mid-append kill, or a bit flip in
//! any entry — ends the valid prefix at the last intact entry:
//! [`JournalReader::open`] returns the prefix with
//! [`torn`](JournalReader::torn) set, never an error and never a
//! corrupt payload. Entries after a damaged one are dropped even if
//! intact (their order in the prefix can no longer be trusted);
//! re-executing them costs work, not correctness.
//!
//! Journal appends are a named fault-injection site
//! ([`FaultSite::JournalWrite`]) that surfaces as a typed
//! [`JournalError::Injected`] — a failed append must never unwind
//! through (or corrupt) the run it is recording.

use crate::fault::{self, FaultSite, InjectedFault};
use crate::tile::{read_u32, read_u64, tile_checksum};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Journal file magic: the first 8 bytes.
pub const JOURNAL_MAGIC: [u8; 8] = *b"DLRNJRNL";
/// Format version this module reads and writes.
pub const JOURNAL_VERSION: u32 = 1;
/// Fixed header size in bytes.
pub const JOURNAL_HEADER_BYTES: usize = 64;
/// Fixed per-entry header size in bytes (len + kind + checksum).
pub const ENTRY_HEADER_BYTES: usize = 16;

/// Offset of the header checksum (it checks bytes `0..this`).
const HEADER_CHECKSUM_AT: usize = 56;

/// What went wrong opening, reading, or appending to a journal.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not start with [`JOURNAL_MAGIC`].
    BadMagic {
        /// The 8 bytes actually found.
        found: [u8; 8],
    },
    /// The journal's format version is not [`JOURNAL_VERSION`].
    UnsupportedVersion {
        /// The version actually found.
        found: u32,
    },
    /// The header fails validation (truncation or checksum).
    HeaderCorrupt {
        /// Human-readable description of the failed check.
        detail: String,
    },
    /// The journal belongs to a different run configuration.
    TagMismatch {
        /// Tag the caller expected.
        expected: u64,
        /// Tag stored in the journal.
        found: u64,
    },
    /// An injected fault aborted the append (fault harness only).
    Injected {
        /// Entry sequence number the fault fired on.
        seq: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic { found } => {
                write!(f, "not a journal file: bad magic {found:02x?}")
            }
            JournalError::UnsupportedVersion { found } => write!(
                f,
                "unsupported journal version {found} (expected {JOURNAL_VERSION})"
            ),
            JournalError::HeaderCorrupt { detail } => {
                write!(f, "journal header corrupt: {detail}")
            }
            JournalError::TagMismatch { expected, found } => write!(
                f,
                "journal tag mismatch: expected {expected:#018x}, found {found:#018x}"
            ),
            JournalError::Injected { seq } => {
                write!(f, "injected journal-write fault at entry {seq}")
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// One decoded journal entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry {
    /// Caller-defined entry kind.
    pub kind: u32,
    /// Verbatim payload bytes.
    pub payload: Vec<u8>,
}

fn encode_journal_header(tag: u64) -> [u8; JOURNAL_HEADER_BYTES] {
    let mut h = [0u8; JOURNAL_HEADER_BYTES];
    h[0..8].copy_from_slice(&JOURNAL_MAGIC);
    h[8..12].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    h[16..24].copy_from_slice(&tag.to_le_bytes());
    let sum = tile_checksum(&h[..HEADER_CHECKSUM_AT]);
    h[HEADER_CHECKSUM_AT..HEADER_CHECKSUM_AT + 8].copy_from_slice(&sum.to_le_bytes());
    h
}

/// Append-only journal writer.
///
/// Every [`append`](JournalWriter::append) writes one complete entry
/// (header + checksummed payload) straight to the file, so a killed
/// process loses at most the entry being written — which the reader's
/// torn-tail recovery drops cleanly.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    seq: u64,
}

impl JournalWriter {
    /// Create (or truncate) a journal at `path` bound to `tag`.
    pub fn create(path: &Path, tag: u64) -> Result<JournalWriter, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&encode_journal_header(tag))?;
        file.flush()?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            seq: 0,
        })
    }

    /// Reopen `path` for appending after validating it against `tag`,
    /// truncating any torn tail. Returns the writer positioned after
    /// the valid prefix plus the prefix's decoded entries.
    pub fn resume(
        path: &Path,
        tag: u64,
    ) -> Result<(JournalWriter, Vec<JournalEntry>), JournalError> {
        let reader = JournalReader::open(path, Some(tag))?;
        let valid = reader.valid_bytes;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid)?;
        file.seek(SeekFrom::End(0))?;
        Ok((
            JournalWriter {
                file,
                path: path.to_path_buf(),
                seq: reader.entries.len() as u64,
            },
            reader.entries,
        ))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Entries written (or resumed past) so far.
    pub fn entries(&self) -> u64 {
        self.seq
    }

    /// Append one entry. The injected-fault site
    /// [`FaultSite::JournalWrite`] fires here as a typed error before
    /// any byte is written, so a faulted append leaves the journal
    /// exactly as it was.
    pub fn append(&mut self, kind: u32, payload: &[u8]) -> Result<(), JournalError> {
        let seq = self.seq;
        match fault::injected_failure(FaultSite::JournalWrite, seq) {
            Some(InjectedFault::Delay { spins }) => {
                for _ in 0..spins {
                    std::thread::yield_now();
                }
            }
            Some(_) => return Err(JournalError::Injected { seq }),
            None => {}
        }
        let mut head = [0u8; ENTRY_HEADER_BYTES];
        head[0..4].copy_from_slice(&crate::cast::u32_exact(payload.len() as u64).to_le_bytes());
        head[4..8].copy_from_slice(&kind.to_le_bytes());
        head[8..16].copy_from_slice(&tile_checksum(payload).to_le_bytes());
        self.file.write_all(&head)?;
        self.file.write_all(payload)?;
        self.file.flush()?;
        self.seq = seq + 1;
        Ok(())
    }
}

/// The decoded valid prefix of a journal file.
#[derive(Debug)]
pub struct JournalReader {
    /// Caller-defined tag stored in the header.
    pub tag: u64,
    /// The longest valid prefix of entries.
    pub entries: Vec<JournalEntry>,
    /// `true` if damage (truncation or a corrupt entry) ended the
    /// prefix before the end of the file.
    pub torn: bool,
    /// Byte offset at which the valid prefix ends (where
    /// [`JournalWriter::resume`] truncates to).
    pub valid_bytes: u64,
}

impl JournalReader {
    /// Read and validate the journal at `path`. Header damage and a
    /// tag mismatch (when `expected_tag` is given) are hard errors;
    /// entry damage ends the prefix with [`torn`](Self::torn) set.
    pub fn open(path: &Path, expected_tag: Option<u64>) -> Result<JournalReader, JournalError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < JOURNAL_HEADER_BYTES {
            return Err(JournalError::HeaderCorrupt {
                detail: format!(
                    "file is {} bytes, shorter than the {JOURNAL_HEADER_BYTES}-byte header",
                    bytes.len()
                ),
            });
        }
        let mut magic = [0u8; 8];
        magic.copy_from_slice(&bytes[0..8]);
        if magic != JOURNAL_MAGIC {
            return Err(JournalError::BadMagic { found: magic });
        }
        let version = read_u32(&bytes, 8);
        if version != JOURNAL_VERSION {
            return Err(JournalError::UnsupportedVersion { found: version });
        }
        let stored = read_u64(&bytes, HEADER_CHECKSUM_AT);
        let computed = tile_checksum(&bytes[..HEADER_CHECKSUM_AT]);
        if stored != computed {
            return Err(JournalError::HeaderCorrupt {
                detail: format!("checksum stored {stored:#018x}, computed {computed:#018x}"),
            });
        }
        let tag = read_u64(&bytes, 16);
        if let Some(expected) = expected_tag {
            if tag != expected {
                return Err(JournalError::TagMismatch {
                    expected,
                    found: tag,
                });
            }
        }
        let mut entries = Vec::new();
        let mut at = JOURNAL_HEADER_BYTES;
        let mut torn = false;
        while at < bytes.len() {
            if bytes.len() - at < ENTRY_HEADER_BYTES {
                torn = true;
                break;
            }
            let len = read_u32(&bytes, at) as usize;
            let kind = read_u32(&bytes, at + 4);
            let sum = read_u64(&bytes, at + 8);
            let body_at = at + ENTRY_HEADER_BYTES;
            if bytes.len() - body_at < len {
                torn = true;
                break;
            }
            let payload = &bytes[body_at..body_at + len];
            if tile_checksum(payload) != sum {
                torn = true;
                break;
            }
            entries.push(JournalEntry {
                kind,
                payload: payload.to_vec(),
            });
            at = body_at + len;
        }
        Ok(JournalReader {
            tag,
            entries,
            torn,
            valid_bytes: at as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("delorean-journal-{}-{tag}.dlj", std::process::id()))
    }

    fn write_three(path: &Path) {
        let mut w = JournalWriter::create(path, 0xfeed).unwrap();
        w.append(1, b"alpha").unwrap();
        w.append(2, b"").unwrap();
        w.append(1, &[7u8; 300]).unwrap();
        assert_eq!(w.entries(), 3);
    }

    #[test]
    fn round_trips_entries_in_order() {
        let path = temp("roundtrip");
        write_three(&path);
        let r = JournalReader::open(&path, Some(0xfeed)).unwrap();
        assert!(!r.torn);
        assert_eq!(r.tag, 0xfeed);
        assert_eq!(r.entries.len(), 3);
        assert_eq!(r.entries[0].kind, 1);
        assert_eq!(r.entries[0].payload, b"alpha");
        assert_eq!(r.entries[1].payload, b"");
        assert_eq!(r.entries[2].payload, vec![7u8; 300]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_yields_the_valid_prefix() {
        let path = temp("truncated");
        write_three(&path);
        let full = std::fs::read(&path).unwrap();
        // Chop mid-way through the last entry's payload.
        std::fs::write(&path, &full[..full.len() - 100]).unwrap();
        let r = JournalReader::open(&path, Some(0xfeed)).unwrap();
        assert!(r.torn);
        assert_eq!(r.entries.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bit_flip_ends_the_prefix_at_the_damaged_entry() {
        let path = temp("bitflip");
        write_three(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit inside the first entry's payload.
        let at = JOURNAL_HEADER_BYTES + ENTRY_HEADER_BYTES + 2;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let r = JournalReader::open(&path, Some(0xfeed)).unwrap();
        assert!(r.torn);
        assert_eq!(r.entries.len(), 0, "damage drops the entry and its suffix");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_damage_and_tag_mismatch_are_hard_errors() {
        let path = temp("header");
        write_three(&path);
        assert!(matches!(
            JournalReader::open(&path, Some(0xbeef)),
            Err(JournalError::TagMismatch { .. })
        ));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[3] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            JournalReader::open(&path, None),
            Err(JournalError::BadMagic { .. })
        ));
        std::fs::write(&path, &bytes[..10]).unwrap();
        assert!(matches!(
            JournalReader::open(&path, None),
            Err(JournalError::HeaderCorrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn resume_truncates_the_torn_tail_and_appends() {
        let path = temp("resume");
        write_three(&path);
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 100]).unwrap();
        let (mut w, prefix) = JournalWriter::resume(&path, 0xfeed).unwrap();
        assert_eq!(prefix.len(), 2);
        assert_eq!(w.entries(), 2);
        w.append(9, b"recovered").unwrap();
        let r = JournalReader::open(&path, Some(0xfeed)).unwrap();
        assert!(!r.torn);
        assert_eq!(r.entries.len(), 3);
        assert_eq!(r.entries[2].kind, 9);
        assert_eq!(r.entries[2].payload, b"recovered");
        std::fs::remove_file(&path).unwrap();
    }
}
