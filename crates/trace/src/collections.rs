//! Flat lookup substrate for the per-access hot loops.
//!
//! Every warm loop in the repository classifies each generated access
//! against a handful of small keyed tables (watched pages, key lines,
//! armed vicinity samples, per-PC models). `std::collections`' SipHash
//! maps cost tens of cycles per probe — far more than generating the
//! access itself after PR 2 — so this module provides the flat
//! replacements every strategy shares:
//!
//! * [`FlatMap`]/[`FlatSet`] — open-addressing, power-of-two capacity,
//!   linear probing with *backshift* deletion (no tombstones, so probe
//!   chains never rot under churn), hashed with the same [`mix64`]
//!   finalizer the workloads use. Keys are small `Copy` newtypes over
//!   `u64` ([`FlatKey`]); the common aliases are [`LineMap`],
//!   [`LineSet`], [`PageMap`] and [`PcMap`].
//! * [`InterestFilter`] — a counting-bitmap prefilter that fuses several
//!   membership questions ("is this page watched? is this line a key? is
//!   a vicinity sample armed on it?") into one or two hashed bit probes.
//!   The dominant *no-match* access falls out after a couple of loads and
//!   branches; only filter hits fall through to the exact tables.
//!
//! All structures are deterministic: iteration order depends only on the
//! sequence of insertions and removals, never on process-global state —
//! strictly stronger than `std`'s randomized hashing, and what lets the
//! pipelined and serial DeLorean runs stay bit-identical.

use crate::rng::splitmix64;
use crate::types::{LineAddr, PageAddr, Pc};

/// Seed folded into every table hash (an arbitrary odd constant, fixed so
/// results are reproducible across runs and processes).
const TABLE_SEED: u64 = 0x9e6c_63d0_876a_3f6d;

/// Tag mixed into line hashes by [`InterestFilter`].
const FILTER_LINE_TAG: u64 = 0x1b87_3593_21c3_a6b9;

/// Tag mixed into page hashes by [`InterestFilter`].
const FILTER_PAGE_TAG: u64 = 0x60be_e2be_e120_fc15;

#[inline]
fn flat_hash(raw: u64) -> u64 {
    splitmix64(raw ^ TABLE_SEED)
}

/// A key usable in [`FlatMap`]/[`FlatSet`]: a small `Copy` value with a
/// stable 64-bit representation to hash.
pub trait FlatKey: Copy + Eq {
    /// The raw 64-bit value fed to the hash function.
    fn raw(self) -> u64;
}

impl FlatKey for u64 {
    #[inline]
    fn raw(self) -> u64 {
        self
    }
}

impl FlatKey for i64 {
    #[inline]
    fn raw(self) -> u64 {
        self as u64
    }
}

impl FlatKey for LineAddr {
    #[inline]
    fn raw(self) -> u64 {
        self.0
    }
}

impl FlatKey for PageAddr {
    #[inline]
    fn raw(self) -> u64 {
        self.0
    }
}

impl FlatKey for Pc {
    #[inline]
    fn raw(self) -> u64 {
        self.0
    }
}

/// Open-addressing hash map for [`FlatKey`] keys.
///
/// Linear probing over a power-of-two slot array kept at ≤ 50% load, so
/// probe chains stay short and lookups touch one or two cachelines.
/// Deletion backshifts the following cluster instead of leaving a
/// tombstone, keeping lookup cost independent of churn history — the
/// property the Explorer's arm/disarm traffic needs.
///
/// ```
/// use delorean_trace::{LineAddr, LineMap};
///
/// let mut m: LineMap<u64> = LineMap::new();
/// m.insert(LineAddr(7), 42);
/// assert_eq!(m.get(LineAddr(7)), Some(&42));
/// assert_eq!(m.remove(LineAddr(7)), Some(42));
/// assert!(m.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct FlatMap<K: FlatKey, V> {
    slots: Vec<Option<(K, V)>>,
    len: usize,
}

/// Flat map keyed by cacheline address.
pub type LineMap<V> = FlatMap<LineAddr, V>;

/// Flat map keyed by page address.
pub type PageMap<V> = FlatMap<PageAddr, V>;

/// Flat map keyed by program counter.
pub type PcMap<V> = FlatMap<Pc, V>;

impl<K: FlatKey, V> Default for FlatMap<K, V> {
    fn default() -> Self {
        FlatMap {
            slots: Vec::new(),
            len: 0,
        }
    }
}

impl<K: FlatKey, V> FlatMap<K, V> {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty map pre-sized so `expected` entries fit without growing.
    pub fn with_capacity(expected: usize) -> Self {
        let mut m = Self::new();
        if expected > 0 {
            m.allocate(Self::slots_for(expected));
        }
        m
    }

    fn slots_for(expected: usize) -> usize {
        (expected.max(4) * 2).next_power_of_two()
    }

    fn allocate(&mut self, slots: usize) {
        debug_assert!(slots.is_power_of_two());
        self.slots = std::iter::repeat_with(|| None).take(slots).collect();
    }

    #[inline]
    fn bucket(&self, key: K) -> usize {
        debug_assert!(!self.slots.is_empty());
        crate::cast::fold_hash(flat_hash(key.raw())) & (self.slots.len() - 1)
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the map holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value stored under `key`, if any.
    #[inline]
    pub fn get(&self, key: K) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, v)) if *k == key => return Some(v),
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Mutable access to the value stored under `key`, if any.
    #[inline]
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => break,
                _ => i = (i + 1) & mask,
            }
        }
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// `true` if `key` is present.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        self.get(key).is_some()
    }

    /// Probe for `key`: the index of its slot, or of the empty slot that
    /// terminates its cluster. The caller decides whether to fill it
    /// (growing first if the load bound requires — overwrites of present
    /// keys never grow the table).
    #[inline]
    fn probe(&self, key: K) -> usize {
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                None => return i,
                Some((k, _)) if *k == key => return i,
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Make room for one more entry, then return the target slot for
    /// `key` (empty, or holding `key` already).
    fn probe_for_insert(&mut self, key: K) -> usize {
        if self.slots.is_empty() {
            self.allocate(8);
        }
        let i = self.probe(key);
        if self.slots[i].is_some() || (self.len + 1) * 2 <= self.slots.len() {
            return i;
        }
        // Keep load ≤ 50% so linear probing stays short and `remove`'s
        // cluster walk always terminates at an empty slot.
        let old = std::mem::take(&mut self.slots);
        self.allocate(old.len() * 2);
        self.len = 0;
        for (k, v) in old.into_iter().flatten() {
            self.insert(k, v);
        }
        self.probe(key)
    }

    /// Insert `value` under `key`, returning the previous value if the
    /// key was already present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let i = self.probe_for_insert(key);
        match &mut self.slots[i] {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            slot @ None => {
                *slot = Some((key, value));
                self.len += 1;
                None
            }
        }
    }

    /// The value under `key`, inserting `default()` first if absent.
    pub fn or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let i = self.probe_for_insert(key);
        if self.slots[i].is_none() {
            self.slots[i] = Some((key, default()));
            self.len += 1;
        }
        // lint:allow(no-unwrap): the branch above fills slot i when it was empty, so it is always occupied here
        self.slots[i].as_mut().map(|(_, v)| v).expect("just filled")
    }

    /// The value under `key`, inserting `V::default()` first if absent.
    pub fn or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        self.or_insert_with(key, V::default)
    }

    /// Remove `key`, returning its value if present.
    ///
    /// Uses backshift deletion: the probe cluster after the vacated slot
    /// is compacted in place, so no tombstones accumulate.
    pub fn remove(&mut self, key: K) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => break,
                _ => i = (i + 1) & mask,
            }
        }
        // lint:allow(no-unwrap): the probe loop above only breaks on an occupied slot holding `key`
        let (_, value) = self.slots[i].take().expect("found above");
        self.len -= 1;
        // Backshift: walk the cluster after the hole; any entry whose home
        // bucket lies cyclically at or before the hole moves into it.
        let mut hole = i;
        let mut j = (i + 1) & mask;
        while let Some((k, _)) = &self.slots[j] {
            let home = crate::cast::fold_hash(flat_hash(k.raw())) & mask;
            let home_dist = j.wrapping_sub(home) & mask;
            let hole_dist = j.wrapping_sub(hole) & mask;
            if home_dist >= hole_dist {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
            j = (j + 1) & mask;
        }
        Some(value)
    }

    /// Remove every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Iterate over `(key, &value)` pairs in slot order (deterministic
    /// for a given insertion/removal history).
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots.iter().filter_map(|s| {
            let (k, v) = s.as_ref()?;
            Some((*k, v))
        })
    }

    /// Iterate over the keys in slot order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Iterate over the values in slot order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Remove and yield every entry (the allocation is released).
    pub fn drain(&mut self) -> impl Iterator<Item = (K, V)> + '_ {
        self.len = 0;
        std::mem::take(&mut self.slots).into_iter().flatten()
    }

    /// Slot-array size (tests only: growth behaviour).
    #[cfg(test)]
    fn slot_capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<K: FlatKey, V> FromIterator<(K, V)> for FlatMap<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let it = iter.into_iter();
        let mut m = Self::with_capacity(it.size_hint().0);
        for (k, v) in it {
            m.insert(k, v);
        }
        m
    }
}

/// Open-addressing hash set for [`FlatKey`] keys (a [`FlatMap`] with unit
/// values).
///
/// ```
/// use delorean_trace::{LineAddr, LineSet};
///
/// let mut s = LineSet::new();
/// assert!(s.insert(LineAddr(3)));
/// assert!(!s.insert(LineAddr(3)));
/// assert!(s.contains(LineAddr(3)));
/// ```
#[derive(Clone, Debug)]
pub struct FlatSet<K: FlatKey> {
    map: FlatMap<K, ()>,
}

impl<K: FlatKey> Default for FlatSet<K> {
    fn default() -> Self {
        FlatSet {
            map: FlatMap::default(),
        }
    }
}

/// Flat set of cacheline addresses.
pub type LineSet = FlatSet<LineAddr>;

/// Flat set of page addresses.
pub type PageSet = FlatSet<PageAddr>;

impl<K: FlatKey> FlatSet<K> {
    /// An empty set (no allocation until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty set pre-sized so `expected` keys fit without growing.
    pub fn with_capacity(expected: usize) -> Self {
        FlatSet {
            map: FlatMap::with_capacity(expected),
        }
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when the set holds no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `true` if `key` is present.
    #[inline]
    pub fn contains(&self, key: K) -> bool {
        self.map.contains(key)
    }

    /// Insert `key`; `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, key: K) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Remove `key`; `true` if it was present.
    #[inline]
    pub fn remove(&mut self, key: K) -> bool {
        self.map.remove(key).is_some()
    }

    /// Remove every key, keeping the allocation.
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Iterate over the keys in slot order.
    pub fn iter(&self) -> impl Iterator<Item = K> + '_ {
        self.map.keys()
    }
}

impl<K: FlatKey> FromIterator<K> for FlatSet<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        let it = iter.into_iter();
        let mut s = Self::with_capacity(it.size_hint().0);
        for k in it {
            s.insert(k);
        }
        s
    }
}

/// Counting-bitmap interest prefilter over line and page addresses.
///
/// The hot query ([`contains_line`](InterestFilter::contains_line) /
/// [`contains_page`](InterestFilter::contains_page)) is one hash, one
/// word load and one bit test against a compact bitmap; it may report
/// false positives (the caller falls through to its exact tables) but
/// never false negatives. Updates maintain per-bucket counts off the hot
/// path, so members can be removed exactly — the property a Bloom filter
/// lacks and the Explorer's vicinity arm/disarm traffic requires.
///
/// Lines and pages are salted with different tags, so one filter can
/// cover "watched pages ∪ key lines ∪ vicinity-pending lines" at once —
/// the fused per-access question of the time-travel loops.
#[derive(Clone, Debug)]
pub struct InterestFilter {
    bits: Vec<u64>,
    counts: Vec<u32>,
    mask: u64,
}

impl InterestFilter {
    /// Minimum bucket count (a 2 KiB bitmap: one L1 cacheline's worth of
    /// hot words for typical watch densities).
    const MIN_BUCKETS: usize = 1 << 14;
    /// Maximum bucket count (a 2 MiB bitmap).
    const MAX_BUCKETS: usize = 1 << 24;

    /// A filter sized for roughly `expected` simultaneous members: ~8
    /// buckets per member, clamped to \[2^14, 2^24\] buckets.
    pub fn with_capacity_for(expected: usize) -> Self {
        let buckets = (expected.saturating_mul(8))
            .next_power_of_two()
            .clamp(Self::MIN_BUCKETS, Self::MAX_BUCKETS);
        InterestFilter {
            bits: vec![0; buckets / 64],
            counts: vec![0; buckets],
            mask: (buckets - 1) as u64,
        }
    }

    #[inline]
    fn bucket(&self, tag: u64, raw: u64) -> usize {
        (splitmix64(raw ^ tag) & self.mask) as usize
    }

    #[inline]
    fn test(&self, bucket: usize) -> bool {
        (self.bits[bucket >> 6] >> (bucket & 63)) & 1 != 0
    }

    fn add(&mut self, bucket: usize) {
        self.counts[bucket] += 1;
        self.bits[bucket >> 6] |= 1u64 << (bucket & 63);
    }

    fn sub(&mut self, bucket: usize) {
        let c = &mut self.counts[bucket];
        debug_assert!(*c > 0, "interest filter remove without matching add");
        *c = c.saturating_sub(1);
        if *c == 0 {
            self.bits[bucket >> 6] &= !(1u64 << (bucket & 63));
        }
    }

    /// `true` if `line` *may* be a member (exact tables decide); `false`
    /// guarantees it is not.
    #[inline]
    pub fn contains_line(&self, line: LineAddr) -> bool {
        self.test(self.bucket(FILTER_LINE_TAG, line.0))
    }

    /// `true` if `page` *may* be a member; `false` guarantees it is not.
    #[inline]
    pub fn contains_page(&self, page: PageAddr) -> bool {
        self.test(self.bucket(FILTER_PAGE_TAG, page.0))
    }

    /// Register `line` as interesting (one call per logical member; pair
    /// with exactly one [`remove_line`](InterestFilter::remove_line)).
    pub fn insert_line(&mut self, line: LineAddr) {
        self.add(self.bucket(FILTER_LINE_TAG, line.0));
    }

    /// Remove one prior [`insert_line`](InterestFilter::insert_line) of
    /// `line`.
    pub fn remove_line(&mut self, line: LineAddr) {
        self.sub(self.bucket(FILTER_LINE_TAG, line.0));
    }

    /// Register `page` as interesting (one call per logical member; pair
    /// with exactly one [`remove_page`](InterestFilter::remove_page)).
    pub fn insert_page(&mut self, page: PageAddr) {
        self.add(self.bucket(FILTER_PAGE_TAG, page.0));
    }

    /// Remove one prior [`insert_page`](InterestFilter::insert_page) of
    /// `page`.
    pub fn remove_page(&mut self, page: PageAddr) {
        self.sub(self.bucket(FILTER_PAGE_TAG, page.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::mix64;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: LineMap<u64> = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(LineAddr(1), 10), None);
        assert_eq!(m.insert(LineAddr(1), 11), Some(10));
        assert_eq!(m.get(LineAddr(1)), Some(&11));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(LineAddr(1)), Some(11));
        assert_eq!(m.remove(LineAddr(1)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m: FlatMap<u64, u64> = FlatMap::new();
        for i in 0..1000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i), Some(&(i * 3)), "key {i}");
        }
    }

    #[test]
    fn backshift_keeps_chains_reachable() {
        // Small key universe over a small table forces probe clusters;
        // interleave inserts and removes and verify every survivor is
        // still reachable after each removal.
        let mut m: FlatMap<u64, u64> = FlatMap::new();
        let mut present = Vec::new();
        for step in 0..2000u64 {
            let k = mix64(0xbace, step) % 48;
            if mix64(0xfee1, step).is_multiple_of(3) {
                let expect = present.contains(&k);
                assert_eq!(m.remove(k).is_some(), expect, "step {step}");
                present.retain(|&p| p != k);
            } else {
                m.insert(k, step);
                if !present.contains(&k) {
                    present.push(k);
                }
            }
            for &p in &present {
                assert!(m.contains(p), "step {step}: lost key {p}");
            }
            assert_eq!(m.len(), present.len(), "step {step}");
        }
    }

    #[test]
    fn overwrites_at_the_load_threshold_do_not_grow() {
        // Fill to exactly the 50% load bound (4 entries in 8 slots), then
        // hammer the present keys with overwrites and or_default updates:
        // the table must not grow, because len never does.
        let mut m: FlatMap<u64, u64> = FlatMap::new();
        for i in 0..4u64 {
            m.insert(i, i);
        }
        let cap = m.slot_capacity();
        assert!((m.len() + 1) * 2 > cap, "not at threshold");
        for round in 0..10u64 {
            for i in 0..4u64 {
                m.insert(i, round);
                *m.or_default(i) += 1;
            }
        }
        assert_eq!(m.slot_capacity(), cap, "overwrite traffic grew the table");
        assert_eq!(m.len(), 4);
        // The next genuinely new key does grow.
        m.insert(100, 0);
        assert!(m.slot_capacity() > cap);
        assert_eq!(m.len(), 5);
    }

    #[test]
    fn or_insert_with_reuses_existing() {
        let mut m: PcMap<u64> = PcMap::new();
        *m.or_default(Pc(5)) += 1;
        *m.or_default(Pc(5)) += 1;
        assert_eq!(m.get(Pc(5)), Some(&2));
        assert_eq!(m.or_insert_with(Pc(5), || 99), &2);
    }

    #[test]
    fn iteration_is_deterministic_and_complete() {
        let build = || {
            let mut m: LineMap<u64> = LineMap::new();
            for i in 0..100u64 {
                m.insert(LineAddr(mix64(7, i)), i);
            }
            m
        };
        let a: Vec<_> = build().iter().map(|(k, &v)| (k, v)).collect();
        let b: Vec<_> = build().iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
    }

    #[test]
    fn drain_empties_the_map() {
        let mut m: LineMap<u64> = (0..10u64).map(|i| (LineAddr(i), i)).collect();
        let drained: Vec<_> = m.drain().collect();
        assert_eq!(drained.len(), 10);
        assert!(m.is_empty());
        assert_eq!(m.get(LineAddr(3)), None);
        m.insert(LineAddr(3), 4);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn set_semantics() {
        let mut s = LineSet::new();
        assert!(s.insert(LineAddr(9)));
        assert!(!s.insert(LineAddr(9)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(LineAddr(9)));
        assert!(!s.remove(LineAddr(9)));
        let s2: FlatSet<u64> = (0..5u64).collect();
        assert_eq!(s2.iter().count(), 5);
        assert!(!s2.is_empty());
    }

    #[test]
    fn clear_keeps_allocation_usable() {
        let mut m: FlatMap<u64, u64> = (0..50u64).map(|i| (i, i)).collect();
        m.clear();
        assert!(m.is_empty());
        m.insert(1, 2);
        assert_eq!(m.get(1), Some(&2));
    }

    #[test]
    fn filter_has_no_false_negatives_under_churn() {
        let mut f = InterestFilter::with_capacity_for(64);
        let mut lines = Vec::new();
        for step in 0..3000u64 {
            if (step + 1).is_multiple_of(3) {
                if let Some(l) = lines.pop() {
                    f.remove_line(l);
                    f.remove_page(LineAddr(l.0).page());
                }
            } else {
                let l = LineAddr(mix64(0xf1, step) % 10_000);
                f.insert_line(l);
                f.insert_page(l.page());
                if !lines.contains(&l) {
                    lines.push(l);
                }
            }
            for &l in &lines {
                assert!(f.contains_line(l), "step {step}: line false negative");
                assert!(
                    f.contains_page(l.page()),
                    "step {step}: page false negative"
                );
            }
        }
    }

    #[test]
    fn filter_clears_after_balanced_removal() {
        let mut f = InterestFilter::with_capacity_for(8);
        let l = LineAddr(1234);
        f.insert_line(l);
        f.insert_line(l);
        f.remove_line(l);
        assert!(f.contains_line(l), "one reference still live");
        f.remove_line(l);
        assert!(!f.contains_line(l), "all references removed");
        // Pages and lines do not alias even for equal raw values.
        f.insert_page(PageAddr(1234));
        assert!(!f.contains_line(LineAddr(1234)));
    }

    #[test]
    fn filter_false_positive_rate_is_low() {
        let mut f = InterestFilter::with_capacity_for(256);
        for i in 0..256u64 {
            f.insert_line(LineAddr(mix64(0xabc, i)));
        }
        let fp = (0..100_000u64)
            .filter(|&i| f.contains_line(LineAddr(mix64(0xdef, i))))
            .count();
        // 256 members in ≥ 2^14 buckets ⇒ ~1.6% expected.
        assert!(fp < 5_000, "false positive count {fp}");
    }
}
