//! Iteration over a range of workload accesses.

use crate::cursor::{AccessCursor, CURSOR_BATCH};
use crate::types::MemAccess;
use crate::Workload;
use std::fmt;
use std::ops::Range;

/// Iterator over the accesses of a [`Workload`] with indices in a range.
///
/// Produced by [`WorkloadExt::iter_range`](crate::WorkloadExt::iter_range);
/// works with both concrete workloads and `dyn Workload`. Backed by the
/// workload's streaming [`AccessCursor`], refilled in batches of
/// [`CURSOR_BATCH`], so iteration over a `PhasedWorkload` or
/// `RecordedTrace` runs on the streaming fast path rather than
/// regenerating every access through `access_at`.
pub struct AccessIter<'w, W: Workload + ?Sized> {
    workload: &'w W,
    cursor: Box<dyn AccessCursor + 'w>,
    buf: Vec<MemAccess>,
    pos: usize,
}

impl<'w, W: Workload + ?Sized> AccessIter<'w, W> {
    /// Iterate over `workload` accesses with `index ∈ range`.
    pub fn new(workload: &'w W, range: Range<u64>) -> Self {
        AccessIter {
            workload,
            cursor: workload.cursor(range),
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Accesses left to yield (buffered plus not yet generated).
    fn remaining(&self) -> u64 {
        self.cursor.remaining() + (self.buf.len() - self.pos) as u64
    }
}

impl<W: Workload + ?Sized> fmt::Debug for AccessIter<'_, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The cursor prefetches a batch, so its position runs ahead of
        // the iterator; report the index the next `next()` will yield.
        let next = self.cursor.position() - (self.buf.len() - self.pos) as u64;
        f.debug_struct("AccessIter")
            .field("workload", &self.workload.name())
            .field("next", &next)
            .field("end", &self.cursor.end())
            .finish()
    }
}

impl<W: Workload + ?Sized> Iterator for AccessIter<'_, W> {
    type Item = MemAccess;

    #[inline]
    fn next(&mut self) -> Option<MemAccess> {
        if self.pos == self.buf.len() {
            if self.cursor.fill(&mut self.buf, CURSOR_BATCH) == 0 {
                return None;
            }
            self.pos = 0;
        }
        let a = self.buf[self.pos];
        self.pos += 1;
        Some(a)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // The remaining count is a u64; on hosts where usize is narrower
        // the cast must saturate rather than truncate (and the upper
        // bound becomes unknown), otherwise `len` would lie on ranges
        // exceeding usize::MAX.
        match usize::try_from(self.remaining()) {
            Ok(n) => (n, Some(n)),
            Err(_) => (usize::MAX, None),
        }
    }
}

// On 64-bit hosts the u64 remaining count always fits in usize, so the
// size hint is exact and the `ExactSizeIterator` contract holds. On
// narrower hosts a range can exceed usize::MAX, where no honest `len`
// exists — the impl is gated out rather than allowed to lie.
#[cfg(target_pointer_width = "64")]
impl<W: Workload + ?Sized> ExactSizeIterator for AccessIter<'_, W> {}

#[cfg(test)]
mod tests {
    use crate::{spec_workload, Scale, Workload, WorkloadExt};

    #[test]
    fn iterates_exactly_the_range() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let v: Vec<_> = w.iter_range(10..20).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v[0].index, 10);
        assert_eq!(v[9].index, 19);
    }

    #[test]
    fn works_through_a_trait_object() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let dynw: &dyn Workload = &w;
        assert_eq!(dynw.iter_range(0..7).count(), 7);
    }

    #[test]
    fn empty_and_inverted_ranges_yield_nothing() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        assert_eq!(w.iter_range(5..5).count(), 0);
        #[allow(clippy::reversed_empty_ranges)]
        let n = w.iter_range(9..3).count();
        assert_eq!(n, 0);
    }

    #[test]
    fn size_hint_is_exact() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let it = w.iter_range(0..17);
        assert_eq!(it.size_hint(), (17, Some(17)));
        assert_eq!(it.len(), 17);
    }

    #[test]
    fn size_hint_counts_down_across_buffer_refills() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let n = (crate::CURSOR_BATCH as u64) * 2 + 5;
        let mut it = w.iter_range(0..n);
        for left in (0..n).rev() {
            assert!(it.next().is_some());
            assert_eq!(it.size_hint(), (left as usize, Some(left as usize)));
        }
        assert!(it.next().is_none());
    }

    /// Regression test for the unchecked `u64 → usize` cast: a range
    /// whose length exceeds what fits in `usize` must saturate the lower
    /// bound instead of wrapping (on 64-bit hosts it stays exact; either
    /// way `size_hint` must not lie small).
    #[test]
    fn huge_range_size_hint_saturates_instead_of_wrapping() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let it = w.iter_range(0..u64::MAX);
        let (lo, hi) = it.size_hint();
        if let Ok(exact) = usize::try_from(u64::MAX) {
            assert_eq!((lo, hi), (exact, Some(exact)));
        } else {
            assert_eq!((lo, hi), (usize::MAX, None));
        }
    }
}
