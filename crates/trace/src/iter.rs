//! Iteration over a range of workload accesses.

use crate::types::MemAccess;
use crate::Workload;
use std::fmt;
use std::ops::Range;

/// Iterator over the accesses of a [`Workload`] with indices in a range.
///
/// Produced by [`WorkloadExt::iter_range`](crate::WorkloadExt::iter_range);
/// works with both concrete workloads and `dyn Workload`.
pub struct AccessIter<'w, W: Workload + ?Sized> {
    workload: &'w W,
    next: u64,
    end: u64,
}

impl<'w, W: Workload + ?Sized> AccessIter<'w, W> {
    /// Iterate over `workload` accesses with `index ∈ range`.
    pub fn new(workload: &'w W, range: Range<u64>) -> Self {
        AccessIter {
            workload,
            next: range.start,
            end: range.end.max(range.start),
        }
    }
}

impl<W: Workload + ?Sized> fmt::Debug for AccessIter<'_, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessIter")
            .field("workload", &self.workload.name())
            .field("next", &self.next)
            .field("end", &self.end)
            .finish()
    }
}

impl<W: Workload + ?Sized> Iterator for AccessIter<'_, W> {
    type Item = MemAccess;

    #[inline]
    fn next(&mut self) -> Option<MemAccess> {
        if self.next >= self.end {
            return None;
        }
        let a = self.workload.access_at(self.next);
        self.next += 1;
        Some(a)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.end - self.next) as usize;
        (n, Some(n))
    }
}

impl<W: Workload + ?Sized> ExactSizeIterator for AccessIter<'_, W> {}

#[cfg(test)]
mod tests {
    use crate::{spec_workload, Scale, Workload, WorkloadExt};

    #[test]
    fn iterates_exactly_the_range() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let v: Vec<_> = w.iter_range(10..20).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v[0].index, 10);
        assert_eq!(v[9].index, 19);
    }

    #[test]
    fn works_through_a_trait_object() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let dynw: &dyn Workload = &w;
        assert_eq!(dynw.iter_range(0..7).count(), 7);
    }

    #[test]
    fn empty_and_inverted_ranges_yield_nothing() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        assert_eq!(w.iter_range(5..5).count(), 0);
        #[allow(clippy::reversed_empty_ranges)]
        let n = w.iter_range(9..3).count();
        assert_eq!(n, 0);
    }

    #[test]
    fn size_hint_is_exact() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let it = w.iter_range(0..17);
        assert_eq!(it.size_hint(), (17, Some(17)));
        assert_eq!(it.len(), 17);
    }
}
