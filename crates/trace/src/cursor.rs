//! Streaming access cursors: the sequential hot path of every warm loop.
//!
//! [`Workload::access_at`](crate::Workload::access_at) is the *random
//! access* path: stateless, `O(1)`, and exactly what DSW key probes and
//! tests need. But every warm loop in the repository — SMARTS functional
//! warming, CoolSim's watchpoint interval, MRRL's profile and warming
//! windows, checkpoint preparation, and the Explorer/Scout scans — walks
//! strictly *sequential* ranges, where a stateless regeneration redoes a
//! phase binary search, several divide/mod chains, and pattern setup for
//! every single access.
//!
//! [`AccessCursor`] is the streaming counterpart: a batched generator
//! that hoists all per-range work out of the loop and advances
//! stream-local state incrementally. The contract is strict equivalence:
//! a cursor over `range` must produce **byte-identical** [`MemAccess`]
//! records to `access_at(k)` for every `k` in `range`
//! (`tests/properties.rs` pins this for every workload in the suite).
//!
//! Workloads get a cursor for free through [`IndexedCursor`] (the default
//! [`Workload::cursor`](crate::Workload::cursor) implementation simply
//! calls `access_at` per element). Implementors should override
//! [`Workload::cursor`](crate::Workload::cursor) whenever sequential
//! generation can share work between neighbouring indices — see
//! [`PhasedWorkload`](crate::PhasedWorkload) (incremental phase/slot/
//! pattern state) and [`RecordedTrace`](crate::RecordedTrace) (direct
//! slice replay) for the two in-tree examples.

use crate::types::MemAccess;
use crate::Workload;
use std::ops::Range;

/// Batch size used by the cursor-driven helpers ([`AccessIter`]
/// refills and [`WorkloadExt::for_each_access`]). Large enough to
/// amortize the virtual `fill` call, small enough to stay in L1.
///
/// [`AccessIter`]: crate::AccessIter
/// [`WorkloadExt::for_each_access`]: crate::WorkloadExt::for_each_access
pub const CURSOR_BATCH: usize = 1024;

/// A streaming generator over a contiguous range of workload accesses.
///
/// Produced by [`Workload::cursor`](crate::Workload::cursor).
/// Implementations must be deterministic and byte-identical to
/// [`Workload::access_at`](crate::Workload::access_at) over the range —
/// the "same execution across passes" invariant every DeLorean pass
/// relies on.
pub trait AccessCursor {
    /// Global index of the next access the cursor will produce.
    fn position(&self) -> u64;

    /// Exclusive end of the cursor's range.
    fn end(&self) -> u64;

    /// Clear `out` and refill it with up to `max` consecutive accesses,
    /// advancing the cursor. Returns the number produced; `0` means the
    /// cursor is exhausted (or `max == 0`).
    ///
    /// The canonical consumption loop — one reusable buffer, drained
    /// until the cursor is exhausted, byte-identical to indexed
    /// regeneration:
    ///
    /// ```
    /// use delorean_trace::{spec_workload, AccessCursor, Scale, Workload, CURSOR_BATCH};
    ///
    /// let w = spec_workload("mcf", Scale::tiny(), 1).unwrap();
    /// let mut cursor = w.cursor(100..2_600);
    /// let mut batch = Vec::with_capacity(CURSOR_BATCH);
    /// let mut seen = 0u64;
    /// while cursor.fill(&mut batch, CURSOR_BATCH) > 0 {
    ///     for a in &batch {
    ///         assert_eq!(*a, w.access_at(a.index)); // streaming ≡ indexed
    ///         seen += 1;
    ///     }
    /// }
    /// assert_eq!(seen, 2_500);
    /// assert_eq!(cursor.position(), cursor.end());
    /// ```
    fn fill(&mut self, out: &mut Vec<MemAccess>, max: usize) -> usize;

    /// Accesses left before exhaustion.
    fn remaining(&self) -> u64 {
        self.end().saturating_sub(self.position())
    }
}

impl std::fmt::Debug for dyn AccessCursor + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessCursor")
            .field("position", &self.position())
            .field("end", &self.end())
            .finish()
    }
}

/// The indexed fallback cursor: regenerates each access through
/// [`Workload::access_at`]. Correct for every workload; used by the
/// default [`Workload::cursor`](crate::Workload::cursor) implementation
/// and as the baseline in the `warmloop` benchmarks.
#[derive(Debug)]
pub struct IndexedCursor<'w, W: Workload + ?Sized> {
    workload: &'w W,
    next: u64,
    end: u64,
}

impl<'w, W: Workload + ?Sized> IndexedCursor<'w, W> {
    /// A cursor over `workload` accesses with `index ∈ range`.
    pub fn new(workload: &'w W, range: Range<u64>) -> Self {
        IndexedCursor {
            workload,
            next: range.start,
            end: range.end.max(range.start),
        }
    }
}

impl<W: Workload + ?Sized> AccessCursor for IndexedCursor<'_, W> {
    fn position(&self) -> u64 {
        self.next
    }

    fn end(&self) -> u64 {
        self.end
    }

    fn fill(&mut self, out: &mut Vec<MemAccess>, max: usize) -> usize {
        out.clear();
        let n = (self.end - self.next).min(max as u64);
        out.reserve(n as usize);
        for k in self.next..self.next + n {
            out.push(self.workload.access_at(k));
        }
        self.next += n;
        n as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec_workload, Scale, WorkloadExt};

    #[test]
    fn indexed_cursor_matches_access_at() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let mut cur = IndexedCursor::new(&w, 500..560);
        assert_eq!(cur.remaining(), 60);
        let mut buf = Vec::new();
        let mut k = 500u64;
        while cur.fill(&mut buf, 7) > 0 {
            for a in &buf {
                assert_eq!(*a, w.access_at(k));
                k += 1;
            }
        }
        assert_eq!(k, 560);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn empty_and_inverted_ranges_are_exhausted() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let mut buf = Vec::new();
        let mut cur = IndexedCursor::new(&w, 5..5);
        assert_eq!(cur.fill(&mut buf, 16), 0);
        #[allow(clippy::reversed_empty_ranges)]
        let mut cur = IndexedCursor::new(&w, 9..3);
        assert_eq!(cur.fill(&mut buf, 16), 0);
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn default_workload_cursor_is_indexed_fallback() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let dynw: &dyn Workload = &w;
        // Through a trait object the default implementation must still
        // produce the exact access stream.
        let mut cur = crate::Workload::cursor(&dynw, 100..130);
        let mut buf = Vec::new();
        let mut seen = Vec::new();
        while cur.fill(&mut buf, 8) > 0 {
            seen.extend(buf.iter().copied());
        }
        let direct: Vec<_> = w.iter_range(100..130).collect();
        assert_eq!(seen, direct);
    }

    #[test]
    fn for_each_access_visits_the_range_in_order() {
        let w = spec_workload("namd", Scale::tiny(), 3).unwrap();
        let mut indices = Vec::new();
        w.for_each_access(40..80, |a| indices.push(a.index));
        assert_eq!(indices, (40..80).collect::<Vec<_>>());
    }
}
