//! Checked integer narrowing for the hot path.
//!
//! An early `AccessIter::size_hint` silently truncated a `u64` record
//! count through a bare `as usize`; the `lossy-cast` lint now denies
//! that cast class in the hot crates, and these helpers are the
//! sanctioned replacement. Every narrowing states its contract:
//!
//! * **exact** ([`idx`], [`u32_exact`], [`u64_exact`]) — the value is
//!   in range by construction (an index below a `len()`, a remainder
//!   below a `u64` modulus). Debug builds assert the bound; release
//!   builds saturate instead of wrapping, so a violated invariant
//!   degrades to a clamped value rather than an aliased one.
//! * **truncating** ([`fold_hash`]) — only the low bits matter and the
//!   caller says so, e.g. folding a 64-bit hash into a power-of-two
//!   slot mask.
//!
//! None of these panic in release builds, keeping the `no-unwrap`
//! contract for library crates intact.

/// Exact `u64 -> usize` cast for container indices and capacities.
///
/// Debug-asserts that the value fits (it cannot fail on 64-bit
/// targets); saturates to `usize::MAX` in release so an impossible
/// index fails loudly at the container boundary instead of aliasing a
/// valid slot.
#[inline]
#[must_use]
pub fn idx(v: u64) -> usize {
    debug_assert!(
        usize::try_from(v).is_ok(),
        "index {v} exceeds usize::MAX on this target"
    );
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Exact `u64 -> u32` cast for values bounded by construction
/// (way indices, per-tile record counts).
///
/// Debug-asserts the bound; saturates to `u32::MAX` in release.
#[inline]
#[must_use]
pub fn u32_exact(v: u64) -> u32 {
    debug_assert!(u32::try_from(v).is_ok(), "value {v} exceeds u32::MAX");
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// Exact `u128 -> u64` cast for wide-arithmetic results already reduced
/// modulo a `u64` (the `mulmod` in the pattern generators).
///
/// Debug-asserts the bound; saturates to `u64::MAX` in release.
#[inline]
#[must_use]
pub fn u64_exact(v: u128) -> u64 {
    debug_assert!(u64::try_from(v).is_ok(), "value {v} exceeds u64::MAX");
    u64::try_from(v).unwrap_or(u64::MAX)
}

/// Deliberately truncating `u64 -> usize` fold of a hash value.
///
/// Callers immediately mask the result with a power-of-two table mask
/// no wider than `usize`, so discarding high bits on a 32-bit target is
/// part of the addressing scheme, not an accident.
#[inline]
#[must_use]
pub fn fold_hash(h: u64) -> usize {
    h as usize // lint:allow(lossy-cast): truncation is the documented contract of this helper
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_casts_roundtrip_at_the_boundary() {
        assert_eq!(idx(0), 0);
        assert_eq!(idx(u32::MAX as u64), u32::MAX as usize);
        assert_eq!(u32_exact(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(u64_exact(u128::from(u64::MAX)), u64::MAX);
        assert_eq!(u64_exact(0), 0);
    }

    #[test]
    fn fold_hash_keeps_low_bits() {
        let mask = 0xFFusize;
        assert_eq!(fold_hash(0xDEAD_BEEF) & mask, 0xEF);
        assert_eq!(fold_hash(u64::MAX) & mask, 0xFF);
    }

    // The release profile saturates instead of asserting; the two
    // behaviours are profile-exclusive, so each test only compiles in
    // the profile it checks.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn u32_exact_asserts_on_overflow_in_debug() {
        let _ = u32_exact(u64::from(u32::MAX) + 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds u64::MAX")]
    fn u64_exact_asserts_on_overflow_in_debug() {
        let _ = u64_exact(u128::from(u64::MAX) + 1);
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn exact_casts_saturate_in_release() {
        assert_eq!(u32_exact(u64::MAX), u32::MAX);
        assert_eq!(u64_exact(u128::MAX), u64::MAX);
    }
}
