//! Seeded fault injection and the unit fault domain.
//!
//! The fault-tolerant sweep runtime (PR 9) treats every unit of work —
//! a region unit in the scheduler, a strategy×workload cell in the
//! batch executor, a decoded tile batch, a journal append — as a
//! *fault domain*: a failure inside it is caught, classified, retried
//! against a bounded budget, and quarantined when the budget is
//! exhausted, instead of tearing down the whole run. This module owns
//! the three pieces every layer shares:
//!
//! * **The taxonomy** — [`UnitFault`] (what went wrong) and
//!   [`UnitFailure`] (which unit, after how many attempts), plus the
//!   [`FaultPolicy`] retry budget.
//! * **The guarded runner** — [`run_unit_guarded`]: `catch_unwind`
//!   around a unit body, panic-payload classification (a
//!   [`TileError`] payload becomes [`UnitFault::TraceError`], the
//!   timeout marker becomes [`UnitFault::Timeout`], anything else
//!   [`UnitFault::Panicked`]), deterministic re-execution up to the
//!   budget, and a quiet panic hook so injected faults do not spray
//!   backtraces over test output.
//! * **The injection harness** — [`FaultPlan`]: a mix64-seeded,
//!   wall-clock-free description of *which* occurrences of *which*
//!   named [`FaultSite`]s fault and *how* ([`InjectedFault`]).
//!   [`arm`] installs a plan process-globally behind a serializing
//!   guard; instrumented sites call [`hit`] (panicking sites) or
//!   [`injected_failure`] (sites that report typed errors, like
//!   journal appends). When nothing is armed, a site is one relaxed
//!   atomic load.
//!
//! Determinism is the whole point: a plan is a pure function of
//! `(seed, site, unit, occurrence)`, so a faulted-then-retried run
//! recovers along a path that is identical on every execution and at
//! every worker count — which is what lets the oracle tests assert
//! bitwise report equality between clean and faulted runs.
//!
//! Tests that arm plans serialize through the guard automatically, but
//! the registry is process-global: keep arming tests in dedicated
//! integration-test binaries so unrelated concurrent tests never
//! traverse an armed site.

use crate::collections::FlatMap;
use crate::rng::mix64;
use crate::tile::TileError;
use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once, PoisonError};

/// A named code location where the harness can inject a fault.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Entry of a scheduler/executor unit body, before any state is
    /// touched (so retrying the unit is trivially sound).
    UnitEntry,
    /// Entry of one reconciler commit step in the speculative warm
    /// lane, before the carried state advances.
    ReconcilerCommit,
    /// Inside the streaming tile decoder thread, before a batch is
    /// sent — kills the decoder mid-stream.
    DecoderThread,
    /// A journal append; surfaces as a typed error, never a panic.
    JournalWrite,
}

impl FaultSite {
    /// Every site, in a fixed order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::UnitEntry,
        FaultSite::ReconcilerCommit,
        FaultSite::DecoderThread,
        FaultSite::JournalWrite,
    ];

    fn index(self) -> u64 {
        match self {
            FaultSite::UnitEntry => 0,
            FaultSite::ReconcilerCommit => 1,
            FaultSite::DecoderThread => 2,
            FaultSite::JournalWrite => 3,
        }
    }

    fn bit(self) -> u8 {
        match self {
            FaultSite::UnitEntry => 1,
            FaultSite::ReconcilerCommit => 2,
            FaultSite::DecoderThread => 4,
            FaultSite::JournalWrite => 8,
        }
    }

    /// Per-site salt folded into the seed so the same unit index draws
    /// independent decisions at different sites.
    fn salt(self) -> u64 {
        match self {
            FaultSite::UnitEntry => 0x5175_17e0_u64,
            FaultSite::ReconcilerCommit => 0x0c03_3317,
            FaultSite::DecoderThread => 0xdec0_de00,
            FaultSite::JournalWrite => 0x10fa_11ed,
        }
    }
}

/// The kinds of fault a plan can select from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An opaque panic (a `String` payload).
    Panic,
    /// A typed [`TileError`] raised through the panic channel.
    TraceError,
    /// The timeout marker ([`UnitFault::Timeout`] after classification).
    Timeout,
    /// A benign deterministic stall (a fixed-count yield loop) — never
    /// an error; exercises scheduling robustness only.
    Delay,
}

impl FaultKind {
    /// Every kind, in the fixed order menus are drawn from.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Panic,
        FaultKind::TraceError,
        FaultKind::Timeout,
        FaultKind::Delay,
    ];

    fn bit(self) -> u8 {
        match self {
            FaultKind::Panic => 1,
            FaultKind::TraceError => 2,
            FaultKind::Timeout => 4,
            FaultKind::Delay => 8,
        }
    }
}

/// One concrete injected fault, as resolved by a [`FaultPlan`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InjectedFault {
    /// Panic with an opaque message.
    Panic,
    /// Panic carrying a typed [`TileError`] payload.
    TraceError,
    /// Panic carrying the timeout marker.
    Timeout,
    /// Spin `spins` cooperative yields, then continue normally.
    Delay {
        /// Number of `thread::yield_now` iterations.
        spins: u32,
    },
}

/// A deterministic, seeded description of which unit occurrences fault.
///
/// A plan is a pure function of `(seed, site, unit, occurrence)`: no
/// wall clock, no global RNG. `occurrence` counts how many times the
/// armed registry has been consulted for that `(site, unit)` pair, so
/// "the first `strikes` attempts fault, the retry succeeds" falls out
/// without call sites tracking attempts themselves.
///
/// ```
/// use delorean_trace::fault::{FaultKind, FaultPlan, FaultSite};
///
/// let plan = FaultPlan::new(42)
///     .at(FaultSite::UnitEntry)
///     .every(2)
///     .strikes(1)
///     .kinds(&[FaultKind::Panic]);
/// // Pure: the same query always resolves the same way.
/// let a = plan.fault_for(FaultSite::UnitEntry, 3, 0);
/// assert_eq!(a, plan.fault_for(FaultSite::UnitEntry, 3, 0));
/// // Beyond the strike budget the unit succeeds.
/// assert_eq!(plan.fault_for(FaultSite::UnitEntry, 3, 1), None);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    armed_sites: u8,
    period: u64,
    strikes: u32,
    kinds: u8,
}

impl FaultPlan {
    /// A plan with no armed sites: 1-in-1 unit selection, one strike,
    /// drawing from panics and trace errors.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            armed_sites: 0,
            period: 1,
            strikes: 1,
            kinds: FaultKind::Panic.bit() | FaultKind::TraceError.bit(),
        }
    }

    /// Arm `site` (builder; may be called for several sites).
    pub fn at(mut self, site: FaultSite) -> Self {
        self.armed_sites |= site.bit();
        self
    }

    /// Fault roughly 1-in-`period` units per armed site (seed-chosen
    /// which; `period` is clamped to ≥ 1, and 1 means every unit).
    pub fn every(mut self, period: u64) -> Self {
        self.period = period.max(1);
        self
    }

    /// Fault the first `strikes` occurrences of a selected
    /// `(site, unit)` pair; later occurrences succeed. Keep this at or
    /// below the retry budget for recoverable plans, above it to force
    /// quarantine.
    pub fn strikes(mut self, strikes: u32) -> Self {
        self.strikes = strikes;
        self
    }

    /// Restrict the fault menu to `kinds` (the seed picks per
    /// occurrence among them).
    pub fn kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = 0;
        for k in kinds {
            self.kinds |= k.bit();
        }
        self
    }

    /// Whether `site` is armed in this plan.
    pub fn is_armed(&self, site: FaultSite) -> bool {
        self.armed_sites & site.bit() != 0
    }

    /// Resolve the fault (if any) for the `occurrence`-th consultation
    /// of `unit` at `site`. Pure — see the type-level docs.
    pub fn fault_for(&self, site: FaultSite, unit: u64, occurrence: u32) -> Option<InjectedFault> {
        if !self.is_armed(site) {
            return None;
        }
        let r = mix64(self.seed ^ site.salt(), unit);
        if self.period > 1 && !r.is_multiple_of(self.period) {
            return None;
        }
        if occurrence >= self.strikes {
            return None;
        }
        let mut menu = [FaultKind::Panic; 4];
        let mut n = 0usize;
        for k in FaultKind::ALL {
            if self.kinds & k.bit() != 0 {
                menu[n] = k;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let pick = menu[crate::cast::idx(mix64(r, occurrence as u64) % n as u64)];
        Some(match pick {
            FaultKind::Panic => InjectedFault::Panic,
            FaultKind::TraceError => InjectedFault::TraceError,
            FaultKind::Timeout => InjectedFault::Timeout,
            FaultKind::Delay => InjectedFault::Delay {
                spins: crate::cast::u32_exact(16 + r % 48),
            },
        })
    }
}

/// Panic payload marking an injected timeout.
#[derive(Copy, Clone, Debug)]
pub struct InjectedTimeout;

/// Panic payload of an injected opaque panic (kept as a dedicated type
/// so the quiet hook can recognize it on threads outside a guarded
/// unit, e.g. the tile decoder thread).
#[derive(Clone, Debug)]
pub struct InjectedPanic(pub String);

struct Registry {
    plan: FaultPlan,
    /// Occurrence counters keyed by `(unit << 3) | site_index`.
    counts: FlatMap<u64, u32>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);
static GATE: Mutex<()> = Mutex::new(());

thread_local! {
    static GUARDED: Cell<bool> = const { Cell::new(false) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding these mutexes is exactly the scenario the
    // harness induces on purpose; the protected state stays coherent
    // (counters only ever increment), so poisoning is ignored.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info.payload().downcast_ref::<InjectedPanic>().is_some()
                || info.payload().downcast_ref::<InjectedTimeout>().is_some()
                || info.payload().downcast_ref::<TileError>().is_some();
            if !injected && !GUARDED.with(|g| g.get()) {
                prev(info);
            }
        }));
    });
}

/// Serializes fault-armed sections (tests) and disarms on drop.
///
/// Holding the guard keeps the process-global registry exclusive:
/// a second [`arm`] call blocks until the first guard drops.
#[derive(Debug)]
pub struct FaultGuard {
    _gate: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *lock(&REGISTRY) = None;
    }
}

/// Arm `plan` process-globally until the returned guard drops.
///
/// Blocks while another plan is armed (one armed plan at a time), so
/// concurrent fault tests serialize instead of cross-firing.
pub fn arm(plan: FaultPlan) -> FaultGuard {
    install_quiet_hook();
    let gate = lock(&GATE);
    *lock(&REGISTRY) = Some(Registry {
        plan,
        counts: FlatMap::new(),
    });
    ARMED.store(true, Ordering::SeqCst);
    FaultGuard { _gate: gate }
}

/// Whether any plan is currently armed (one relaxed load).
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Consult the armed plan for `(site, unit)`, bumping the occurrence
/// counter. `None` when disarmed or the plan spares this occurrence.
fn consult(site: FaultSite, unit: u64) -> Option<InjectedFault> {
    if !armed() {
        return None;
    }
    let mut reg = lock(&REGISTRY);
    let reg = reg.as_mut()?;
    let key = (unit << 3) | site.index();
    let occurrence = reg.counts.get(key).copied().unwrap_or(0);
    reg.counts.insert(key, occurrence + 1);
    reg.plan.fault_for(site, unit, occurrence)
}

/// Non-executing probe for sites that surface faults as typed errors
/// (journal appends): returns the injected fault instead of raising it.
/// Counts as an occurrence like [`hit`] does.
pub fn injected_failure(site: FaultSite, unit: u64) -> Option<InjectedFault> {
    consult(site, unit)
}

/// A panicking injection point. When the armed plan selects this
/// `(site, unit)` occurrence the fault executes here: panics unwind
/// (with typed payloads the classifier understands), delays stall a
/// deterministic number of yields and return. Disarmed cost: one
/// relaxed atomic load.
pub fn hit(site: FaultSite, unit: u64) {
    let Some(fault) = consult(site, unit) else {
        return;
    };
    match fault {
        InjectedFault::Delay { spins } => {
            for _ in 0..spins {
                std::thread::yield_now();
            }
        }
        InjectedFault::Panic => std::panic::panic_any(InjectedPanic(format!(
            "injected panic at {site:?} unit {unit}"
        ))),
        InjectedFault::TraceError => std::panic::panic_any(TileError::TileCorrupt {
            tile: crate::cast::u32_exact(unit & 0xffff_ffff),
            detail: format!("injected trace error at {site:?} unit {unit}"),
        }),
        InjectedFault::Timeout => std::panic::panic_any(InjectedTimeout),
    }
}

/// What went wrong inside one unit of work.
#[derive(Debug)]
pub enum UnitFault {
    /// The unit body panicked with an opaque payload.
    Panicked {
        /// Best-effort stringified panic payload.
        message: String,
    },
    /// The unit body raised a typed trace/tile error.
    TraceError(TileError),
    /// The unit body exceeded its (injected) deadline.
    Timeout,
    /// The unit never ran: an upstream unit of its sequential chain
    /// was quarantined, so its seed state is unavailable.
    ChainPoisoned {
        /// Index of the quarantined upstream unit.
        upstream: u32,
    },
}

impl fmt::Display for UnitFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnitFault::Panicked { message } => write!(f, "panicked: {message}"),
            UnitFault::TraceError(e) => write!(f, "trace error: {e}"),
            UnitFault::Timeout => write!(f, "timed out"),
            UnitFault::ChainPoisoned { upstream } => {
                write!(f, "chain poisoned by quarantined upstream unit {upstream}")
            }
        }
    }
}

/// A unit that exhausted its retry budget (or could not run at all).
#[derive(Debug)]
pub struct UnitFailure {
    /// Index of the failed unit within its run.
    pub unit: u32,
    /// Attempts made before giving up (0 for chain-poisoned units that
    /// never ran).
    pub attempts: u32,
    /// The last classified fault.
    pub fault: UnitFault,
}

impl fmt::Display for UnitFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unit {} failed after {} attempt{}: {}",
            self.unit,
            self.attempts,
            if self.attempts == 1 { "" } else { "s" },
            self.fault
        )
    }
}

impl std::error::Error for UnitFailure {}

/// Retry discipline for guarded units.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Re-executions allowed after the first failed attempt (so a unit
    /// runs at most `retry_budget + 1` times).
    pub retry_budget: u32,
}

impl Default for FaultPolicy {
    fn default() -> Self {
        FaultPolicy { retry_budget: 2 }
    }
}

impl FaultPolicy {
    /// Total attempts this policy allows.
    pub fn max_attempts(&self) -> u32 {
        self.retry_budget.saturating_add(1)
    }
}

fn classify(payload: Box<dyn Any + Send>) -> UnitFault {
    let payload = match payload.downcast::<TileError>() {
        Ok(e) => return UnitFault::TraceError(*e),
        Err(p) => p,
    };
    let payload = match payload.downcast::<InjectedTimeout>() {
        Ok(_) => return UnitFault::Timeout,
        Err(p) => p,
    };
    let payload = match payload.downcast::<InjectedPanic>() {
        Ok(p) => return UnitFault::Panicked { message: p.0 },
        Err(p) => p,
    };
    let payload = match payload.downcast::<String>() {
        Ok(s) => return UnitFault::Panicked { message: *s },
        Err(p) => p,
    };
    match payload.downcast::<&'static str>() {
        Ok(s) => UnitFault::Panicked {
            message: (*s).to_string(),
        },
        Err(_) => UnitFault::Panicked {
            message: "non-string panic payload".to_string(),
        },
    }
}

struct GuardedScope {
    prev: bool,
}

impl GuardedScope {
    fn enter() -> Self {
        GuardedScope {
            prev: GUARDED.with(|g| g.replace(true)),
        }
    }
}

impl Drop for GuardedScope {
    fn drop(&mut self) {
        let prev = self.prev;
        GUARDED.with(|g| g.set(prev));
    }
}

/// Run `body` as an isolated fault domain: panics are caught and
/// classified, the body is re-executed up to the policy's budget, and
/// exhaustion yields a typed [`UnitFailure`] instead of unwinding.
///
/// The body must be safe to re-run from its entry (the scheduler's
/// instrumented sites fault *before* any shared state mutates, and
/// retried bodies are re-seeded from cloned inputs).
///
/// ```
/// use delorean_trace::fault::{run_unit_guarded, FaultPolicy, UnitFault};
///
/// let mut tries = 0;
/// let out = run_unit_guarded(7, &FaultPolicy::default(), || {
///     tries += 1;
///     if tries < 2 {
///         std::panic::panic_any("flaky once".to_string());
///     }
///     tries
/// });
/// assert_eq!(out.unwrap(), 2);
///
/// let exhausted = run_unit_guarded(8, &FaultPolicy { retry_budget: 1 }, || -> u32 {
///     std::panic::panic_any("always".to_string())
/// });
/// let failure = exhausted.unwrap_err();
/// assert_eq!(failure.unit, 8);
/// assert_eq!(failure.attempts, 2);
/// assert!(matches!(failure.fault, UnitFault::Panicked { .. }));
/// ```
pub fn run_unit_guarded<R>(
    unit: u32,
    policy: &FaultPolicy,
    mut body: impl FnMut() -> R,
) -> Result<R, UnitFailure> {
    install_quiet_hook();
    let max_attempts = policy.max_attempts();
    let mut last: Option<UnitFault> = None;
    for _attempt in 0..max_attempts {
        let outcome = {
            let _scope = GuardedScope::enter();
            catch_unwind(AssertUnwindSafe(&mut body))
        };
        match outcome {
            Ok(r) => return Ok(r),
            Err(payload) => last = Some(classify(payload)),
        }
    }
    Err(UnitFailure {
        unit,
        attempts: max_attempts,
        fault: last.unwrap_or(UnitFault::Panicked {
            message: "no attempt executed".to_string(),
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: tests here never `arm()` — the registry is process-global
    // and other trace unit tests (tile decoding) run concurrently.
    // Arming tests live in the dedicated `crates/trace/tests` binaries.

    #[test]
    fn plans_are_pure_functions() {
        let plan = FaultPlan::new(99)
            .at(FaultSite::UnitEntry)
            .at(FaultSite::DecoderThread)
            .every(3)
            .strikes(2);
        for site in FaultSite::ALL {
            for unit in 0..64u64 {
                for occ in 0..4u32 {
                    assert_eq!(
                        plan.fault_for(site, unit, occ),
                        plan.fault_for(site, unit, occ),
                    );
                }
            }
        }
        // Unarmed sites never fault.
        for unit in 0..64u64 {
            assert_eq!(plan.fault_for(FaultSite::JournalWrite, unit, 0), None);
        }
        // Strikes bound every armed unit's fault count.
        for unit in 0..64u64 {
            assert_eq!(plan.fault_for(FaultSite::UnitEntry, unit, 2), None);
        }
    }

    #[test]
    fn period_selects_a_strict_subset() {
        let plan = FaultPlan::new(1234).at(FaultSite::UnitEntry).every(4);
        let armed: Vec<u64> = (0..256u64)
            .filter(|&u| plan.fault_for(FaultSite::UnitEntry, u, 0).is_some())
            .collect();
        assert!(!armed.is_empty(), "period 4 should arm some of 256 units");
        assert!(armed.len() < 256, "period 4 should spare some units");
    }

    #[test]
    fn kind_menu_restricts_the_draw() {
        let plan = FaultPlan::new(5)
            .at(FaultSite::UnitEntry)
            .kinds(&[FaultKind::Timeout]);
        for unit in 0..64u64 {
            match plan.fault_for(FaultSite::UnitEntry, unit, 0) {
                Some(InjectedFault::Timeout) | None => {}
                other => panic!("unexpected fault {other:?}"),
            }
        }
        // An empty menu never faults.
        let none = plan.kinds(&[]);
        for unit in 0..64u64 {
            assert_eq!(none.fault_for(FaultSite::UnitEntry, unit, 0), None);
        }
    }

    #[test]
    fn guarded_runner_classifies_payloads() {
        let policy = FaultPolicy { retry_budget: 0 };
        let trace = run_unit_guarded(1, &policy, || -> () {
            std::panic::panic_any(TileError::EmptyTrace)
        });
        assert!(matches!(
            trace.unwrap_err().fault,
            UnitFault::TraceError(TileError::EmptyTrace)
        ));
        let timeout = run_unit_guarded(2, &policy, || -> () {
            std::panic::panic_any(InjectedTimeout)
        });
        assert!(matches!(timeout.unwrap_err().fault, UnitFault::Timeout));
        let message = run_unit_guarded(3, &policy, || -> () {
            std::panic::panic_any(InjectedPanic("boom".to_string()))
        });
        match message.unwrap_err().fault {
            UnitFault::Panicked { message } => assert_eq!(message, "boom"),
            other => panic!("expected Panicked, got {other}"),
        }
    }

    #[test]
    fn guarded_runner_retries_within_budget() {
        let mut tries = 0u32;
        let out = run_unit_guarded(0, &FaultPolicy { retry_budget: 3 }, || {
            tries += 1;
            if tries <= 3 {
                std::panic::panic_any(InjectedPanic("transient".to_string()));
            }
            tries
        });
        assert_eq!(out.unwrap(), 4);

        let mut tries = 0u32;
        let err = run_unit_guarded(9, &FaultPolicy { retry_budget: 1 }, || -> u32 {
            tries += 1;
            std::panic::panic_any(InjectedPanic(format!("attempt {tries}")));
        })
        .unwrap_err();
        assert_eq!(err.attempts, 2);
        assert_eq!(tries, 2);
    }

    #[test]
    fn failure_display_names_unit_and_cause() {
        let f = UnitFailure {
            unit: 4,
            attempts: 3,
            fault: UnitFault::ChainPoisoned { upstream: 2 },
        };
        let s = f.to_string();
        assert!(s.contains("unit 4"), "{s}");
        assert!(s.contains("upstream unit 2"), "{s}");
    }
}
