//! Offline stand-in for the subset of `memmap2` this workspace uses:
//! read-only file mappings backing the on-disk trace-tile reader.
//!
//! The build environment has no crates.io access, so the real `memmap2`
//! cannot be vendored. On Linux/x86-64 this shim issues the `mmap(2)` /
//! `munmap(2)` syscalls directly (no libc needed), so [`Mmap`] is a true
//! zero-copy, demand-paged mapping — opening a multi-gigabyte trace file
//! costs one syscall, and untouched tiles never leave the page cache. On
//! any other target it degrades to reading the whole file into an owned
//! buffer (the `pread`-style fallback), which is slower to open but
//! byte-for-byte equivalent to consumers.
//!
//! When network access is available, replace the `path` dependency with
//! the real `memmap2` — the [`Mmap::map`] signature and the
//! slice-deref/`AsRef<[u8]>` surface below match it.

use std::fs::File;
use std::io;
use std::ops::Deref;

/// An immutable memory map of an entire file.
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    /// A live kernel mapping (Linux/x86-64 fast path).
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    Mapped { ptr: *const u8, len: usize },
    /// The whole file read into memory (portable fallback, empty files).
    Owned(Vec<u8>),
}

// SAFETY: the mapping is read-only (PROT_READ, MAP_PRIVATE) and the
// pages are never mutated through it, so sharing the pointer across
// threads is sound — matching the real memmap2's `Mmap: Send + Sync`.
unsafe impl Send for Mmap {}
// SAFETY: shared references only ever read the PROT_READ pages (see the
// Send justification above); there is no interior mutability.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `file` read-only in its entirety.
    ///
    /// # Safety
    ///
    /// As with the real `memmap2`, the caller must ensure the underlying
    /// file is not truncated or rewritten while the map is alive —
    /// shrinking a mapped file can turn later reads into faults. The
    /// trace-tile reader upholds this by treating packed tile files as
    /// immutable once written.
    pub unsafe fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len: usize = len
            .try_into()
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large to map"))?;
        if len == 0 {
            // mmap(2) rejects zero-length mappings; an empty buffer is
            // the observable equivalent.
            return Ok(Mmap {
                inner: Inner::Owned(Vec::new()),
            });
        }
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            // SAFETY: `len` is the file's current nonzero size, and the
            // caller upholds this fn's contract that the file stays
            // unmodified for the mapping's lifetime.
            let ptr = unsafe { sys::mmap_readonly(file, len)? };
            Ok(Mmap {
                inner: Inner::Mapped { ptr, len },
            })
        }
        #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
        {
            use std::io::Read;
            let mut buf = Vec::with_capacity(len);
            // `&File` implements `Read`; position-independence does not
            // matter here because the map covers the whole file.
            let mut f = file;
            f.read_to_end(&mut buf)?;
            Ok(Mmap {
                inner: Inner::Owned(buf),
            })
        }
    }

    /// The mapped bytes.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
            Inner::Mapped { ptr, len } => {
                // SAFETY: `ptr` is a live PROT_READ mapping of exactly
                // `len` bytes, unmapped only in `Drop`.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Owned(v) => v,
        }
    }

    /// Length of the mapping in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` for a zero-length mapping.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Deref for Mmap {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Mmap {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: `ptr`/`len` came from a successful mmap and are
            // unmapped exactly once.
            unsafe { sys::munmap(ptr, len) };
        }
    }
}

/// Raw Linux/x86-64 syscalls: the workspace has no libc crate, so the
/// two calls this shim needs are issued directly.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::arch::asm;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const SYS_MMAP: u64 = 9;
    const SYS_MUNMAP: u64 = 11;
    const PROT_READ: u64 = 0x1;
    const MAP_PRIVATE: u64 = 0x2;

    /// Issue a 6-argument syscall; returns the raw `rax` result
    /// (negative errno on failure, per the Linux ABI).
    ///
    /// # Safety
    ///
    /// The caller must pass a syscall number and arguments whose kernel
    /// side effects are sound for the program — this fn forwards them
    /// verbatim with no checking.
    #[inline]
    unsafe fn syscall6(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64, a6: u64) -> i64 {
        let ret: i64;
        // SAFETY: the x86-64 Linux syscall ABI clobbers only rcx/r11
        // (declared) and returns in rax; argument registers match the
        // kernel's expected order. Soundness of the requested syscall
        // itself is the caller's contract, per this fn's # Safety.
        unsafe {
            asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            in("r9") a6,
            lateout("rcx") _,
            lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// Map `len` bytes of `file` read-only. `len` must be nonzero.
    ///
    /// # Safety
    ///
    /// The file must not be truncated or rewritten while the returned
    /// mapping is alive; `len` must not exceed the file's size.
    pub unsafe fn mmap_readonly(file: &File, len: usize) -> io::Result<*const u8> {
        // SAFETY: a PROT_READ, MAP_PRIVATE mapping of a readable fd has
        // no side effects beyond address-space reservation; the fd is
        // live for the duration of the call (borrowed `&File`).
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0, // addr: let the kernel choose
                len as u64,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd() as u64,
                0, // offset
            )
        };
        // Values in [-4095, -1] are -errno; anything else is the address.
        if (-4095..0).contains(&ret) {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as *const u8)
        }
    }

    /// Unmap a region previously returned by [`mmap_readonly`].
    ///
    /// # Safety
    ///
    /// `ptr`/`len` must describe a live mapping returned by
    /// [`mmap_readonly`], with no outstanding references into it, and
    /// must not be unmapped twice.
    pub unsafe fn munmap(ptr: *const u8, len: usize) {
        // SAFETY: per this fn's contract the region is a live private
        // mapping owned by the caller, so releasing it cannot invalidate
        // memory any safe reference still points into.
        let _ = unsafe { syscall6(SYS_MUNMAP, ptr as u64, len as u64, 0, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("memmap2-shim-{}-{tag}", std::process::id()))
    }

    #[test]
    fn mapping_matches_file_contents() {
        let path = temp_path("contents");
        let data: Vec<u8> = (0..100_000u32).flat_map(|i| i.to_le_bytes()).collect();
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(&data))
            .expect("write temp file");
        let file = File::open(&path).expect("open");
        // SAFETY: the temp file is private to this test and unmodified
        // while mapped.
        let map = unsafe { Mmap::map(&file) }.expect("map");
        assert_eq!(map.len(), data.len());
        assert!(!map.is_empty());
        assert_eq!(&map[..], &data[..]);
        assert_eq!(map.as_ref(), &data[..]);
        drop(map);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).expect("create");
        let file = File::open(&path).expect("open");
        // SAFETY: the temp file is private to this test and unmodified
        // while mapped.
        let map = unsafe { Mmap::map(&file) }.expect("map");
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn maps_are_shareable_across_threads() {
        let path = temp_path("threads");
        let data = vec![0xabu8; 1 << 16];
        std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(&data))
            .expect("write temp file");
        let file = File::open(&path).expect("open");
        // SAFETY: the temp file is private to this test and unmodified
        // while mapped.
        let map = std::sync::Arc::new(unsafe { Mmap::map(&file) }.expect("map"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&map);
                std::thread::spawn(move || m.iter().map(|&b| b as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 0xab * (1u64 << 16));
        }
        let _ = std::fs::remove_file(&path);
    }
}
