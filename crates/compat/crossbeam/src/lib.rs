//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! bounded channels wiring the time-traveling pipeline stages together.
//!
//! Every channel in the pipeline has exactly one producer and one
//! consumer, so `std::sync::mpsc::sync_channel` provides identical
//! semantics (bounded capacity, blocking send, iteration until the
//! sender is dropped). When network access is available, replace the
//! `path` dependency with the real `crossbeam` — the names and
//! signatures below match its `channel` module.

pub mod channel {
    //! Multi-producer channels with bounded capacity.

    pub use std::sync::mpsc::{Receiver, SendError, SyncSender as Sender};

    /// Create a bounded channel: sends block once `cap` messages are in
    /// flight, providing the backpressure the pipeline relies on.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn bounded_channel_delivers_in_order_until_disconnect() {
        let (tx, rx) = bounded::<u32>(2);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().expect("producer ok");
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
