//! Offline stand-in for the subset of `serde` this workspace names.
//!
//! The build environment has no access to crates.io, so the real `serde`
//! cannot be vendored. The workspace only *declares* serializability
//! (`#[derive(Serialize, Deserialize)]` on configs and reports); nothing
//! serializes yet. This shim keeps those declarations compiling:
//!
//! * [`Serialize`] / [`Deserialize`] are marker traits with blanket
//!   implementations, so bounds like `T: Serialize` are always satisfied.
//! * The re-exported derives (from the sibling `serde_derive` shim) parse
//!   and emit nothing.
//!
//! When network access is available, replace the `path` dependencies with
//! the real `serde = { version = "1", features = ["derive"] }` — no
//! source changes are required.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[derive(super::Serialize, super::Deserialize)]
    struct Probe<T> {
        _field: T,
    }

    fn assert_serialize<T: super::Serialize>() {}

    #[test]
    fn blanket_impls_cover_generic_types() {
        assert_serialize::<Probe<Vec<u64>>>();
    }
}
