//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! The build environment has no crates.io access, so this crate provides
//! the rayon API shape — `par_iter().map(..).collect()`, plus
//! `ThreadPoolBuilder`/`ThreadPool::install` for bounding worker counts —
//! implemented over `std::thread::scope` with a shared work queue
//! (atomic index claim) for load balance under uneven item costs.
//! Results are collected in input order, so `collect` is deterministic
//! regardless of worker count, matching rayon's indexed parallel
//! iterators. When network access is available, replace the `path`
//! dependency with the real `rayon`; call sites compile unchanged.

use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    //! Traits that make `.par_iter()` available on slices and vectors.
    pub use crate::IntoParallelRefIterator;
}

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`] for the
    /// duration of a closure on the current thread.
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations started from this thread
/// will use: the installed pool's size, or the machine's parallelism.
pub fn current_num_threads() -> usize {
    INSTALLED_THREADS.with(|t| t.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with the default (machine-sized) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count; `0` means the machine's parallelism.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Build the pool. Never fails in this stand-in; the `Result` matches
    /// the real rayon signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            } else {
                self.num_threads
            },
        })
    }
}

/// Error type for [`ThreadPoolBuilder::build`] (never produced here).
pub struct ThreadPoolBuildError;

impl fmt::Debug for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ThreadPoolBuildError")
    }
}

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A bounded worker pool. Unlike real rayon this holds no threads; it
/// only records the worker count that scoped parallel operations spawn.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's worker count governing any parallel
    /// iterators it executes on the current thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = INSTALLED_THREADS.with(|t| t.replace(Some(self.num_threads)));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                INSTALLED_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// `.par_iter()` on shared slices, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: Sync + 'data;

    /// A parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// Parallel iterator over a slice.
#[derive(Debug)]
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Map every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The result of [`ParIter::map`]; consumed by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<T, F> fmt::Debug for ParMap<'_, T, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParMap")
            .field("len", &self.items.len())
            .finish()
    }
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Evaluate the map across the governing worker count and collect the
    /// results **in input order** — deterministic for any thread count.
    ///
    /// Work distribution is a shared queue (one atomic fetch-add per
    /// item), not static chunking, so a straggler item — a long
    /// time-travel region next to short ones, say — only occupies the
    /// worker that claimed it while the rest keep draining the queue.
    /// This mirrors rayon's work-stealing balance closely enough for the
    /// region-sized tasks this workspace runs. Only the *claim order* is
    /// racy; results land in their input slot, so `collect` stays
    /// deterministic.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let workers = current_num_threads().min(self.items.len().max(1));
        if workers <= 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let slots = Slots::new(self.items.len());
        let next = AtomicUsize::new(0);
        let f = &self.f;
        let items = self.items;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    // SAFETY: the fetch-add hands index `i` to exactly
                    // one worker, so this is the only writer of slot `i`.
                    unsafe { slots.put(i, f(&items[i])) };
                });
            }
        });
        slots.into_values().collect()
    }
}

/// Per-index result slots shared across workers. The atomic queue in
/// [`ParMap::collect`] guarantees each index is claimed by exactly one
/// worker, which makes the disjoint unsynchronized writes sound.
struct Slots<R> {
    cells: Vec<UnsafeCell<Option<R>>>,
}

// SAFETY: workers only touch disjoint cells (one claimed index each),
// and the scope join forms a happens-before edge to the reader.
unsafe impl<R: Send> Sync for Slots<R> {}

impl<R> Slots<R> {
    fn new(len: usize) -> Self {
        let mut cells = Vec::with_capacity(len);
        cells.resize_with(len, || UnsafeCell::new(None));
        Slots { cells }
    }

    /// Write the result for index `i`.
    ///
    /// # Safety
    ///
    /// The caller must be the sole writer of index `i`, with no
    /// concurrent reader.
    unsafe fn put(&self, i: usize, value: R) {
        // SAFETY: the cell pointer comes from a live UnsafeCell in
        // `self.cells`, and the caller's contract (sole writer, no
        // concurrent reader of index `i`) rules out aliasing.
        unsafe { *self.cells[i].get() = Some(value) };
    }

    fn into_values(self) -> impl Iterator<Item = R> {
        self.cells
            .into_iter()
            .map(|c| c.into_inner().expect("every slot filled by a worker"))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn collect_preserves_input_order() {
        let input: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn result_is_identical_across_worker_counts() {
        let input: Vec<u64> = (0..257).collect();
        let reference: Vec<u64> = input.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let got: Vec<u64> = pool.install(|| input.par_iter().map(|&x| x * x).collect());
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn install_restores_previous_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let before = super::current_num_threads();
        pool.install(|| assert_eq!(super::current_num_threads(), 3));
        assert_eq!(super::current_num_threads(), before);
    }

    #[test]
    fn empty_input_collects_empty() {
        let input: Vec<u64> = Vec::new();
        let out: Vec<u64> = input.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn work_queue_handles_many_more_items_than_workers() {
        // Far more items than workers, with wildly uneven per-item cost:
        // the queue must hand out every index exactly once and results
        // must still land in input order.
        let input: Vec<u64> = (0..10_007).collect();
        let reference: Vec<u64> = input.iter().map(|&x| x.wrapping_mul(x) ^ 7).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let got: Vec<u64> = pool.install(|| {
            input
                .par_iter()
                .map(|&x| {
                    if x % 1000 == 0 {
                        // Straggler items: ~1k spins to skew claim order.
                        std::hint::black_box((0..1_000).sum::<u64>());
                    }
                    x.wrapping_mul(x) ^ 7
                })
                .collect()
        });
        assert_eq!(got, reference);
    }
}
