//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace builds in an offline environment where the real
//! `serde_derive` cannot be fetched. The companion `serde` shim defines
//! `Serialize`/`Deserialize` as marker traits with blanket
//! implementations, so these derives only need to parse — they emit no
//! code. Swapping in the real crates later requires no source changes.

use proc_macro::TokenStream;

/// Accepts and discards the input; the blanket impl in the `serde` shim
/// already covers every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards the input; the blanket impl in the `serde` shim
/// already covers every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
