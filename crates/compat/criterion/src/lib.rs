//! Offline stand-in for the subset of the `criterion` API the
//! `delorean_bench` microbenchmarks use.
//!
//! No statistics, no plots: each benchmark is warmed up briefly, then
//! timed over enough iterations to fill a fixed measurement window, and
//! the mean ns/iteration (plus derived throughput) is printed. The
//! macros and type names match criterion 0.5, so swapping in the real
//! crate when network access is available requires no source changes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Warm-up before measuring.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Throughput annotation for a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measurement driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, first over a warm-up window, then over the measurement
    /// window, recording iterations and total elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_until = Instant::now() + WARMUP_WINDOW;
        while Instant::now() < warm_until {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_WINDOW {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!(" ({:.1} Melem/s)", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!(" ({:.1} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
            }
            None => String::new(),
        };
        println!("bench {name:<40} {ns:>12.0} ns/iter{rate}");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&name.into(), None);
    }
}

/// A group of benchmarks sharing a throughput annotation.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()), self.throughput);
    }

    /// End the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $bench(&mut criterion); )+
        }
    };
}

/// Emit `main` for a set of groups, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
