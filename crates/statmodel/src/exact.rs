//! Exact stack- and reuse-distance measurement.
//!
//! The classic Mattson stack algorithm, implemented with a last-seen map
//! plus a Fenwick (binary indexed) tree over access positions: each line is
//! marked at its most recent position, so the number of marks strictly
//! between two accesses to the same line is exactly the number of unique
//! intervening lines — the stack distance.
//!
//! This is the *expensive* measurement the paper's statistical models
//! avoid; it exists here as the validation oracle for StatStack and as the
//! substrate for exact working-set analysis in tests.

use delorean_trace::{LineAddr, LineMap};

/// Exact distances of one access, as measured by [`ExactStackProcessor`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ExactDistances {
    /// Unique lines strictly between this access and the previous access to
    /// the same line; `None` for the first access to a line.
    pub stack: Option<u64>,
    /// Total accesses strictly between; `None` for first accesses.
    pub reuse: Option<u64>,
}

/// Streaming exact stack/reuse-distance processor.
///
/// ```
/// use delorean_statmodel::exact::ExactStackProcessor;
/// use delorean_trace::LineAddr;
///
/// let mut p = ExactStackProcessor::new();
/// assert_eq!(p.access(LineAddr(1)), None);      // cold
/// assert_eq!(p.access(LineAddr(2)), None);      // cold
/// assert_eq!(p.access(LineAddr(1)), Some(1));   // one unique line between
/// ```
#[derive(Debug, Default)]
pub struct ExactStackProcessor {
    /// Fenwick tree over positions; `tree[i]` covers a range ending at `i`.
    tree: Vec<i64>,
    /// Most recent position (1-based) of each line.
    last: LineMap<usize>,
    /// Next access position (1-based).
    now: usize,
}

impl ExactStackProcessor {
    /// A fresh processor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of accesses processed so far.
    pub fn len(&self) -> usize {
        self.now
    }

    /// `true` before the first access.
    pub fn is_empty(&self) -> bool {
        self.now == 0
    }

    /// Number of distinct lines seen so far.
    pub fn unique_lines(&self) -> usize {
        self.last.len()
    }

    fn tree_add(&mut self, mut i: usize, v: i64) {
        while i < self.tree.len() {
            self.tree[i] += v;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of marks at positions `1..=i`.
    fn tree_sum(&self, mut i: usize) -> i64 {
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Process the next access; returns its stack distance (`None` = cold).
    pub fn access(&mut self, line: LineAddr) -> Option<u64> {
        self.access_full(line).stack
    }

    /// Process the next access, returning both distances.
    pub fn access_full(&mut self, line: LineAddr) -> ExactDistances {
        self.now += 1;
        let t = self.now;
        if self.tree.len() <= t {
            // Fenwick nodes cover position ranges, so appending zeroed nodes
            // would corrupt prefix sums; rebuild from the mark set (the
            // most recent position of every line) instead. Amortized cost:
            // one O(u log n) rebuild per doubling.
            self.tree = vec![0; (t + 1).next_power_of_two().max(1024)];
            let marks: Vec<usize> = self.last.values().copied().collect();
            for p in marks {
                self.tree_add(p, 1);
            }
        }
        let prev = self.last.insert(line, t);
        let result = match prev {
            None => ExactDistances {
                stack: None,
                reuse: None,
            },
            Some(p) => {
                // Marks strictly between p and t = distinct lines whose most
                // recent access was in (p, t).
                let between = self.tree_sum(t - 1) - self.tree_sum(p);
                ExactDistances {
                    stack: Some(between as u64),
                    reuse: Some((t - p - 1) as u64),
                }
            }
        };
        if let Some(p) = prev {
            self.tree_add(p, -1);
        }
        self.tree_add(t, 1);
        result
    }
}

/// Simulate a fully-associative LRU cache of `cache_lines` lines over a
/// line stream, returning the number of misses.
///
/// A convenience wrapper over [`ExactStackProcessor`] used throughout the
/// test suites.
pub fn lru_misses<I: IntoIterator<Item = LineAddr>>(stream: I, cache_lines: u64) -> u64 {
    let mut p = ExactStackProcessor::new();
    let mut misses = 0;
    for line in stream {
        match p.access(line) {
            Some(sd) if sd < cache_lines => {}
            _ => misses += 1,
        }
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_trace::mix64;

    fn brute_force_stack(stream: &[LineAddr], i: usize) -> Option<u64> {
        let target = stream[i];
        let prev = stream[..i].iter().rposition(|&l| l == target)?;
        let mut uniq = delorean_trace::LineSet::new();
        for &l in &stream[prev + 1..i] {
            uniq.insert(l);
        }
        Some(uniq.len() as u64)
    }

    #[test]
    fn matches_brute_force_on_random_streams() {
        for seed in 0..3u64 {
            let stream: Vec<LineAddr> =
                (0..500u64).map(|i| LineAddr(mix64(seed, i) % 40)).collect();
            let mut p = ExactStackProcessor::new();
            for (i, &l) in stream.iter().enumerate() {
                let got = p.access(l);
                let want = brute_force_stack(&stream, i);
                assert_eq!(got, want, "seed {seed} position {i}");
            }
        }
    }

    #[test]
    fn reuse_distance_counts_all_accesses() {
        let mut p = ExactStackProcessor::new();
        p.access(LineAddr(1));
        p.access(LineAddr(2));
        p.access(LineAddr(2));
        let d = p.access_full(LineAddr(1));
        assert_eq!(d.reuse, Some(2));
        assert_eq!(d.stack, Some(1)); // line 2 accessed twice, once unique
    }

    #[test]
    fn immediate_reuse_has_zero_distances() {
        let mut p = ExactStackProcessor::new();
        p.access(LineAddr(9));
        let d = p.access_full(LineAddr(9));
        assert_eq!(d.stack, Some(0));
        assert_eq!(d.reuse, Some(0));
    }

    #[test]
    fn cyclic_sweep_has_stack_distance_n_minus_1() {
        let n = 64u64;
        let mut p = ExactStackProcessor::new();
        for i in 0..n {
            assert_eq!(p.access(LineAddr(i)), None);
        }
        for i in 0..n {
            assert_eq!(p.access(LineAddr(i)), Some(n - 1));
        }
        assert_eq!(p.unique_lines(), n as usize);
        assert_eq!(p.len(), 2 * n as usize);
    }

    #[test]
    fn lru_misses_helper_matches_expectations() {
        // Sweep of 100 lines twice: 100 cold misses, then either all hit
        // (cache ≥ 100) or all miss (cache < 100).
        let sweep: Vec<LineAddr> = (0..200u64).map(|i| LineAddr(i % 100)).collect();
        assert_eq!(lru_misses(sweep.iter().copied(), 100), 100);
        assert_eq!(lru_misses(sweep.iter().copied(), 64), 200);
    }
}
