//! Log-bucketed distance histograms.

use serde::{Deserialize, Serialize};

/// Distances below this are stored exactly, one bucket per value.
const EXACT_LIMIT: u64 = 128;
/// Sub-buckets per octave above the exact range.
const SUBS_PER_OCTAVE: u64 = 8;
/// log2 of `EXACT_LIMIT`.
const EXACT_BITS: u32 = EXACT_LIMIT.trailing_zeros();
/// Largest representable distance (2^48 accesses ≈ far beyond any window).
const MAX_BITS: u32 = 48;
/// Total number of buckets.
const NUM_BUCKETS: usize =
    EXACT_LIMIT as usize + ((MAX_BITS - EXACT_BITS) as usize) * SUBS_PER_OCTAVE as usize + 1;

/// A weighted histogram over distances with exact small buckets and
/// logarithmic large buckets (8 sub-buckets per octave).
///
/// The resolution matches what statistical cache modeling needs: exact for
/// short reuses (where one line decides hit/miss in a small cache) and
/// ~9% relative error for long reuses (where miss-ratio curves are smooth).
///
/// ```
/// use delorean_statmodel::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// h.add(3, 2.0);
/// h.add(1_000_000, 1.0);
/// assert_eq!(h.total(), 3.0);
/// assert!(h.p_ge(4) > 0.3 && h.p_ge(4) < 0.4);
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: Vec<f64>,
    total: f64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0.0; NUM_BUCKETS],
            total: 0.0,
        }
    }

    /// Bucket index for a distance.
    #[inline]
    fn bucket_of(d: u64) -> usize {
        if d < EXACT_LIMIT {
            return d as usize;
        }
        if d >= 1u64 << MAX_BITS {
            // Overflow bucket: distances beyond 2^48 accesses.
            return NUM_BUCKETS - 1;
        }
        let bits = 63 - d.leading_zeros() as u64; // floor(log2 d) >= EXACT_BITS
        let octave = bits - EXACT_BITS as u64;
        // Position within the octave, quantized into SUBS_PER_OCTAVE.
        let base = 1u64 << bits;
        let sub = ((d - base) * SUBS_PER_OCTAVE) >> bits;
        (EXACT_LIMIT + octave * SUBS_PER_OCTAVE + sub) as usize
    }

    /// Smallest distance mapping to bucket `b`.
    #[inline]
    fn bucket_lo(b: usize) -> u64 {
        if b < EXACT_LIMIT as usize {
            return b as u64;
        }
        let rel = b as u64 - EXACT_LIMIT;
        let octave = rel / SUBS_PER_OCTAVE;
        let sub = rel % SUBS_PER_OCTAVE;
        let base = 1u64 << (EXACT_BITS as u64 + octave);
        base + (sub * base) / SUBS_PER_OCTAVE
    }

    /// Representative (midpoint) distance of bucket `b`.
    #[inline]
    pub fn bucket_rep(b: usize) -> u64 {
        if b < EXACT_LIMIT as usize {
            return b as u64;
        }
        let lo = Self::bucket_lo(b);
        let hi = if b + 1 < NUM_BUCKETS {
            Self::bucket_lo(b + 1)
        } else {
            lo * 2
        };
        lo + (hi - lo) / 2
    }

    /// Add `weight` samples at distance `d`.
    #[inline]
    pub fn add(&mut self, d: u64, weight: f64) {
        self.counts[Self::bucket_of(d)] += weight;
        self.total += weight;
    }

    /// Total weight recorded.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0.0
    }

    /// Fraction of recorded weight at distances `≥ d`.
    ///
    /// Returns 0 for an empty histogram.
    pub fn p_ge(&self, d: u64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let b = Self::bucket_of(d);
        let mut acc: f64 = self.counts[b + 1..].iter().sum();
        // Within bucket `b`, assume uniform spread between lo and next lo.
        let lo = Self::bucket_lo(b);
        let hi = if b + 1 < NUM_BUCKETS {
            Self::bucket_lo(b + 1)
        } else {
            lo + 1
        };
        let frac_ge = if hi > lo {
            (hi - d.min(hi)) as f64 / (hi - lo) as f64
        } else {
            0.0
        };
        acc += self.counts[b] * frac_ge;
        acc / self.total
    }

    /// Expected value of `min(distance, cap)` under the recorded
    /// distribution — the StatStack kernel. Returns 0 for an empty
    /// histogram.
    pub fn expected_min(&self, cap: u64) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            acc += c * Self::bucket_rep(b).min(cap) as f64;
        }
        acc / self.total
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Iterate over non-empty buckets as `(representative_distance, weight)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0.0)
            .map(|(b, &c)| (Self::bucket_rep(b), c))
    }

    /// Weighted mean distance (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0.0 {
            return 0.0;
        }
        self.iter().map(|(d, c)| d as f64 * c).sum::<f64>() / self.total
    }

    /// Smallest distance `d` such that at least `q` of the weight lies at
    /// distances `≤ d`. `q` is clamped to `[0, 1]`. Returns 0 if empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0.0 {
            return 0;
        }
        let target = self.total * q.clamp(0.0, 1.0);
        // `acc` sums in bucket order while `total` was accumulated in
        // insertion order, so float rounding can leave `acc` a hair below
        // `target` even after the last occupied bucket. Never answer past
        // the last non-empty bucket — falling through to the overflow
        // bucket would report a ~2^48 distance for a histogram whose
        // weight sits entirely in low buckets.
        let mut acc = 0.0;
        let mut last_nonempty = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            if c == 0.0 {
                continue;
            }
            acc += c;
            last_nonempty = b;
            if acc >= target {
                return Self::bucket_rep(b);
            }
        }
        Self::bucket_rep(last_nonempty)
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("total", &self.total)
            .field("mean", &self.mean())
            .field("nonempty_buckets", &self.iter().count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_distances_are_exact() {
        let mut h = LogHistogram::new();
        for d in 0..EXACT_LIMIT {
            h.add(d, 1.0);
        }
        for d in 0..EXACT_LIMIT {
            assert_eq!(LogHistogram::bucket_of(d), d as usize);
            assert_eq!(LogHistogram::bucket_rep(d as usize), d);
        }
        assert_eq!(h.total(), EXACT_LIMIT as f64);
    }

    #[test]
    fn buckets_are_monotonic_and_cover_range() {
        let mut prev = 0;
        for d in [
            1u64,
            100,
            128,
            129,
            1000,
            4096,
            100_000,
            1 << 30,
            1 << 47,
            u64::MAX,
        ] {
            let b = LogHistogram::bucket_of(d);
            assert!(b >= prev, "bucket order violated at {d}");
            assert!(b < NUM_BUCKETS);
            prev = b;
        }
    }

    #[test]
    fn bucket_lo_inverts_bucket_of() {
        for b in 0..NUM_BUCKETS {
            let lo = LogHistogram::bucket_lo(b);
            assert_eq!(
                LogHistogram::bucket_of(lo),
                b,
                "bucket_of(bucket_lo({b})) mismatch (lo = {lo})"
            );
        }
    }

    #[test]
    fn relative_error_of_representatives_is_bounded() {
        for d in [200u64, 1_000, 50_000, 1_000_000, 1 << 35] {
            let rep = LogHistogram::bucket_rep(LogHistogram::bucket_of(d));
            let rel = (rep as f64 - d as f64).abs() / d as f64;
            assert!(rel < 0.13, "distance {d}: rep {rep}, rel err {rel}");
        }
    }

    #[test]
    fn p_ge_is_a_complementary_cdf() {
        let mut h = LogHistogram::new();
        h.add(10, 1.0);
        h.add(20, 1.0);
        h.add(40, 2.0);
        assert!((h.p_ge(0) - 1.0).abs() < 1e-12);
        assert!((h.p_ge(11) - 0.75).abs() < 1e-12);
        assert!((h.p_ge(21) - 0.5).abs() < 1e-12);
        assert!((h.p_ge(41) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn expected_min_saturates() {
        let mut h = LogHistogram::new();
        h.add(10, 1.0);
        h.add(100, 1.0);
        assert!((h.expected_min(1_000) - 55.0).abs() < 1.0);
        assert!((h.expected_min(50) - 30.0).abs() < 1.0);
        assert!((h.expected_min(5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogHistogram::new();
        a.add(5, 1.0);
        let mut b = LogHistogram::new();
        b.add(500, 3.0);
        a.merge(&b);
        assert_eq!(a.total(), 4.0);
        assert!((a.p_ge(100) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let mut h = LogHistogram::new();
        for d in 1..=100u64 {
            h.add(d, 1.0);
        }
        assert!(h.quantile(0.5) >= 49 && h.quantile(0.5) <= 51);
        assert_eq!(h.quantile(0.0), 1);
        assert!(h.quantile(1.0) >= 99);
    }

    #[test]
    fn quantile_boundaries_and_single_bucket() {
        // Single-bucket histogram: every quantile is that bucket.
        let mut h = LogHistogram::new();
        for _ in 0..3 {
            h.add(42, 0.1);
        }
        assert_eq!(h.quantile(0.0), 42);
        assert_eq!(h.quantile(0.5), 42);
        assert_eq!(h.quantile(1.0), 42);
        // Out-of-range q is clamped.
        assert_eq!(h.quantile(-1.0), 42);
        assert_eq!(h.quantile(7.0), 42);

        // Two buckets: q = 0 answers the first, q = 1 the last.
        let mut h = LogHistogram::new();
        h.add(3, 1.0);
        h.add(90, 2.0);
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(1.0), 90);
    }

    /// Regression: `quantile(1.0)` must never fall through to the
    /// overflow bucket (a ~2^48 representative) on float rounding. The
    /// bucket-order accumulation can round below the insertion-order
    /// `total`; sweep many adversarial weight mixes to exercise it.
    #[test]
    fn quantile_one_never_exceeds_the_last_nonempty_bucket() {
        for case in 0..200u64 {
            let mut h = LogHistogram::new();
            let mut max_d = 0;
            for i in 0..(3 + case % 17) {
                // Weights like 0.1/0.3/0.7 accumulate differently in
                // insertion vs bucket order.
                let w = 0.1 + ((case * 31 + i * 7) % 13) as f64 * 0.1;
                let d = 1 + (case * 97 + i * 41) % 500;
                h.add(d, w);
                max_d = max_d.max(d);
            }
            let q1 = h.quantile(1.0);
            assert!(
                q1 <= LogHistogram::bucket_rep(LogHistogram::bucket_of(max_d)),
                "case {case}: quantile(1.0) = {q1} beyond max distance {max_d}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p_ge(10), 0.0);
        assert_eq!(h.expected_min(10), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn mean_is_weighted() {
        let mut h = LogHistogram::new();
        h.add(10, 3.0);
        h.add(20, 1.0);
        assert!((h.mean() - 12.5).abs() < 1e-9);
    }
}
