//! Working-set curve analysis (§6.4.1).
//!
//! "A working set curve ... typically incurs a point (cache size), or
//! multiple points, at which the miss rate falls off. This is commonly
//! referred to as the 'knee' of the curve. This knee indicates the
//! working set size of the application."
//!
//! [`find_knees`] locates those fall-off points in a (cache size,
//! miss-metric) series, and [`WorkingSetCurve`] bundles the series with
//! its analysis.

use serde::{Deserialize, Serialize};

/// A detected knee: the sweep step where the miss metric fell off.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Knee {
    /// Index into the sweep where the drop completes (the first size that
    /// enjoys the lower miss level).
    pub index: usize,
    /// Cache size (bytes or lines — whatever unit the sweep used).
    pub size: u64,
    /// Relative drop: `(before − after) / before`, in `(0, 1]`.
    pub relative_drop: f64,
}

/// Find the knees of a miss curve: consecutive-point drops of at least
/// `min_relative_drop` (e.g. 0.25 = the miss metric fell by a quarter).
///
/// Returns knees in sweep order. Flat and rising segments never produce a
/// knee; neither do drops from an already-negligible level (below
/// `noise_floor`).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn find_knees(
    sizes: &[u64],
    misses: &[f64],
    min_relative_drop: f64,
    noise_floor: f64,
) -> Vec<Knee> {
    assert_eq!(sizes.len(), misses.len(), "series length mismatch");
    let mut knees = Vec::new();
    for i in 1..misses.len() {
        let before = misses[i - 1];
        let after = misses[i];
        if before <= noise_floor {
            continue;
        }
        let drop = (before - after) / before;
        if drop >= min_relative_drop {
            knees.push(Knee {
                index: i,
                size: sizes[i],
                relative_drop: drop,
            });
        }
    }
    knees
}

/// A working-set curve: cache-size sweep with miss metrics and knee
/// analysis.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkingSetCurve {
    /// Cache sizes in sweep order.
    pub sizes: Vec<u64>,
    /// Miss metric (MPKI or miss ratio) per size.
    pub misses: Vec<f64>,
}

impl WorkingSetCurve {
    /// A curve from parallel series.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn new(sizes: Vec<u64>, misses: Vec<f64>) -> Self {
        assert_eq!(sizes.len(), misses.len(), "series length mismatch");
        WorkingSetCurve { sizes, misses }
    }

    /// Knees at the default sensitivity (25% drop, 1% of the curve
    /// maximum as the noise floor).
    pub fn knees(&self) -> Vec<Knee> {
        let floor = 0.01 * self.misses.iter().copied().fold(0.0f64, f64::max);
        find_knees(&self.sizes, &self.misses, 0.25, floor)
    }

    /// The working-set size suggested by the *last* knee (the size at
    /// which the application's footprint finally fits), if any.
    pub fn working_set_size(&self) -> Option<u64> {
        self.knees().last().map(|k| k.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lbm_shaped_curve_has_two_knees() {
        // MPKI ≈ 40 below 8, ≈ 18 between 16 and 256, ≈ 2 at 512 — the
        // paper's lbm shape.
        let sizes = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512];
        let misses = vec![40.0, 40.0, 40.0, 40.0, 19.0, 18.3, 18.3, 18.3, 18.3, 2.3];
        let knees = find_knees(&sizes, &misses, 0.25, 0.4);
        assert_eq!(knees.len(), 2, "{knees:?}");
        assert_eq!(knees[0].size, 16);
        assert_eq!(knees[1].size, 512);
        let curve = WorkingSetCurve::new(sizes, misses);
        assert_eq!(curve.working_set_size(), Some(512));
    }

    #[test]
    fn gradual_curves_have_no_knee() {
        // cactusADM-like: each step drops < 25%.
        let sizes: Vec<u64> = (0..10).map(|i| 1 << i).collect();
        let misses: Vec<f64> = (0..10).map(|i| 8.0 * 0.85f64.powi(i)).collect();
        let curve = WorkingSetCurve::new(sizes, misses);
        assert!(curve.knees().is_empty());
        assert_eq!(curve.working_set_size(), None);
    }

    #[test]
    fn noise_floor_suppresses_tail_flicker() {
        let sizes = vec![1, 2, 4, 8];
        let misses = vec![10.0, 0.05, 0.01, 0.002];
        // The 0.05 → 0.01 drop is below the floor: only one knee.
        let knees = find_knees(&sizes, &misses, 0.25, 0.1);
        assert_eq!(knees.len(), 1);
        assert_eq!(knees[0].size, 2);
        assert!(knees[0].relative_drop > 0.99);
    }

    #[test]
    fn rising_curves_never_knee() {
        let sizes = vec![1, 2, 4];
        let misses = vec![1.0, 2.0, 3.0];
        assert!(find_knees(&sizes, &misses, 0.1, 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn mismatched_series_panic() {
        let _ = find_knees(&[1, 2], &[1.0], 0.2, 0.0);
    }
}
