//! Reuse-distance profiles and the StatStack reuse→stack conversion.

use crate::histogram::LogHistogram;
use serde::{Deserialize, Serialize};

/// A sampled reuse-distance distribution plus the StatStack machinery to
/// turn it into stack distances and miss-ratio predictions.
///
/// Distances are in *memory accesses strictly between* two accesses to the
/// same cacheline (the paper's definition). "Cold" weight accounts for
/// accesses whose line was never referenced before; they miss in any cache.
///
/// ```
/// use delorean_statmodel::ReuseProfile;
///
/// let mut p = ReuseProfile::new();
/// // A cyclic sweep over 100 lines: every reuse distance is 99.
/// for _ in 0..1000 {
///     p.record(99, 1.0);
/// }
/// // The estimated stack distance for rd=99 is then also ~99 ...
/// assert!((p.stack_distance(99) - 99.0).abs() < 2.0);
/// // ... so a 64-line cache misses and a 128-line cache hits.
/// assert!(p.miss_ratio(64) > 0.95);
/// assert!(p.miss_ratio(128) < 0.05);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ReuseProfile {
    hist: LogHistogram,
    cold_weight: f64,
}

impl ReuseProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sampled reuse distance with the given weight.
    #[inline]
    pub fn record(&mut self, reuse_distance: u64, weight: f64) {
        self.hist.add(reuse_distance, weight);
    }

    /// Record weight for accesses with no earlier access to their line.
    #[inline]
    pub fn record_cold(&mut self, weight: f64) {
        self.cold_weight += weight;
    }

    /// Total recorded weight (reuses + cold).
    pub fn total_weight(&self) -> f64 {
        self.hist.total() + self.cold_weight
    }

    /// Number of recorded (non-cold) reuse samples by weight.
    pub fn reuse_weight(&self) -> f64 {
        self.hist.total()
    }

    /// Fraction of recorded accesses that were cold.
    pub fn cold_fraction(&self) -> f64 {
        let t = self.total_weight();
        if t == 0.0 {
            0.0
        } else {
            self.cold_weight / t
        }
    }

    /// `P(rd ≥ d)` among non-cold reuses.
    pub fn p_reuse_ge(&self, d: u64) -> f64 {
        self.hist.p_ge(d)
    }

    /// The underlying reuse-distance histogram.
    pub fn histogram(&self) -> &LogHistogram {
        &self.hist
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &ReuseProfile) {
        self.hist.merge(&other.hist);
        self.cold_weight += other.cold_weight;
    }

    /// StatStack: expected stack distance of an access with reuse distance
    /// `d`, i.e. the expected number of *unique* lines among the `d`
    /// intervening accesses.
    ///
    /// Each of the `d` intervening accesses contributes a unique line iff
    /// its own forward reuse crosses the window end; for the access `j`
    /// positions before the end that is `P(rd ≥ j)`. Summing over `j`
    /// yields `Σ_{j=1..d} P(rd ≥ j) = E[min(rd, d)]`, computed from the
    /// histogram in one pass.
    ///
    /// An **empty profile degrades conservatively**: with no vicinity
    /// information every intervening access is assumed unique
    /// (`sd = d`), the upper bound.
    pub fn stack_distance(&self, d: u64) -> f64 {
        if self.hist.is_empty() {
            return d as f64;
        }
        // Cold accesses in the window also occupy a unique line each; fold
        // them in as "infinite reuse" mass.
        let cold = self.cold_fraction();
        let em = self.hist.expected_min(d);
        em * (1.0 - cold) + d as f64 * cold
    }

    /// Largest reuse distance whose expected stack distance still fits in a
    /// cache of `cache_lines` lines (the inverse of
    /// [`stack_distance`](Self::stack_distance)). Returns `u64::MAX` when
    /// even unbounded reuse fits (tiny working sets).
    pub fn critical_reuse_distance(&self, cache_lines: u64) -> u64 {
        if self.stack_distance(u64::MAX >> 16) <= cache_lines as f64 {
            return u64::MAX;
        }
        // stack_distance is monotone in d: binary search.
        let (mut lo, mut hi) = (0u64, u64::MAX >> 16);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.stack_distance(mid) <= cache_lines as f64 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.saturating_sub(1)
    }

    /// Predicted miss ratio of a fully-associative LRU cache with
    /// `cache_lines` lines, over the recorded access population.
    ///
    /// An access misses iff its stack distance is ≥ the cache size; cold
    /// accesses always miss.
    pub fn miss_ratio(&self, cache_lines: u64) -> f64 {
        let t = self.total_weight();
        if t == 0.0 {
            return 0.0;
        }
        let d_crit = self.critical_reuse_distance(cache_lines);
        let reuse_misses = if d_crit == u64::MAX {
            0.0
        } else {
            self.hist.p_ge(d_crit.saturating_add(1)) * self.hist.total()
        };
        (reuse_misses + self.cold_weight) / t
    }

    /// Miss-ratio curve over a set of cache sizes (in lines), e.g. for
    /// working-set characterization (Figure 13's substrate).
    pub fn miss_ratio_curve(&self, cache_lines: &[u64]) -> Vec<f64> {
        cache_lines.iter().map(|&c| self.miss_ratio(c)).collect()
    }

    /// A copy of this profile with every reuse distance multiplied by
    /// `factor` — how StatCC models cache sharing: a co-runner issuing
    /// accesses interleaves into every reuse window, stretching the
    /// application's *solo* distances by the combined access rate over its
    /// own (§4.2).
    pub fn scaled(&self, factor: f64) -> ReuseProfile {
        assert!(factor.is_finite() && factor > 0.0, "invalid scale factor");
        let mut out = ReuseProfile::new();
        for (d, w) in self.hist.iter() {
            out.record((d as f64 * factor).round() as u64, w);
        }
        out.cold_weight = self.cold_weight;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_profile_is_conservative() {
        let p = ReuseProfile::new();
        assert_eq!(p.stack_distance(100), 100.0);
        assert_eq!(p.miss_ratio(64), 0.0);
        assert_eq!(p.total_weight(), 0.0);
    }

    #[test]
    fn uniform_short_reuses_compress_stack_distance() {
        // If every reuse distance is 10, a window of 100 accesses contains
        // only ~10 unique lines.
        let mut p = ReuseProfile::new();
        p.record(10, 100.0);
        let sd = p.stack_distance(100);
        assert!((sd - 10.0).abs() < 1.5, "sd = {sd}");
    }

    #[test]
    fn stack_distance_is_monotonic() {
        let mut p = ReuseProfile::new();
        for d in [1u64, 5, 50, 500, 5000] {
            p.record(d, 1.0);
        }
        let mut prev = -1.0;
        for d in [0u64, 1, 2, 10, 100, 1_000, 10_000, 100_000] {
            let sd = p.stack_distance(d);
            assert!(sd >= prev, "sd({d}) = {sd} < {prev}");
            prev = sd;
        }
    }

    #[test]
    fn critical_reuse_distance_inverts_stack_distance() {
        let mut p = ReuseProfile::new();
        p.record(100, 50.0);
        p.record(10_000, 50.0);
        let c = 300;
        let d = p.critical_reuse_distance(c);
        assert!(p.stack_distance(d) <= c as f64 + 1.0);
        assert!(p.stack_distance(d + d / 8 + 2) >= c as f64 - 1.0);
    }

    #[test]
    fn tiny_working_set_never_misses() {
        let mut p = ReuseProfile::new();
        p.record(5, 100.0);
        assert_eq!(p.critical_reuse_distance(1000), u64::MAX);
        assert_eq!(p.miss_ratio(1000), 0.0);
    }

    #[test]
    fn cold_weight_always_misses() {
        let mut p = ReuseProfile::new();
        p.record(5, 80.0);
        p.record_cold(20.0);
        assert!((p.cold_fraction() - 0.2).abs() < 1e-12);
        assert!((p.miss_ratio(1_000_000) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn merge_combines_profiles() {
        let mut a = ReuseProfile::new();
        a.record(10, 1.0);
        let mut b = ReuseProfile::new();
        b.record_cold(1.0);
        a.merge(&b);
        assert_eq!(a.total_weight(), 2.0);
        assert!((a.cold_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bimodal_miss_curve_has_two_levels() {
        // 70% short reuses (10), 30% long reuses (100_000).
        let mut p = ReuseProfile::new();
        p.record(10, 70.0);
        p.record(100_000, 30.0);
        let small = p.miss_ratio(100);
        let large = p.miss_ratio(1 << 20);
        assert!(small > 0.25 && small < 0.35, "small-cache ratio {small}");
        assert!(large < 0.01, "large-cache ratio {large}");
    }
}
