//! Per-PC reuse profiles — the statistical backbone of randomized
//! statistical warming (CoolSim).
//!
//! CoolSim predicts hit/miss *per load PC*: it needs "a sufficiently large
//! number of reuse distances per PC for an accurate prediction" (§2.3).
//! Because random samples land on PCs in proportion to their execution
//! frequency — not their importance in the detailed region — rare PCs end
//! up with few or no samples, and CoolSim must fall back to a pessimistic
//! default. That sampling inefficiency is exactly the gap DeLorean's
//! directed warming closes, so this module models it faithfully.

use crate::reuse::ReuseProfile;
use delorean_trace::{Pc, PcMap};
use serde::{Deserialize, Serialize};

/// Outcome of a per-PC miss prediction.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PcPrediction {
    /// The PC had samples; predicted hit.
    Hit,
    /// The PC had samples; predicted miss.
    Miss,
    /// No samples for this PC — the caller must apply a policy default.
    NoData,
}

/// Reuse profiles keyed by program counter, plus a pooled global profile.
///
/// The global profile drives the reuse→stack conversion (stack distance is
/// a property of the whole access stream), while the per-PC histograms
/// drive the per-access hit/miss verdicts.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PcProfiles {
    per_pc: PcMap<ReuseProfile>,
    global: ReuseProfile,
}

impl PcProfiles {
    /// Empty profile set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sampled reuse distance for `pc`.
    pub fn record(&mut self, pc: Pc, reuse_distance: u64, weight: f64) {
        self.per_pc.or_default(pc).record(reuse_distance, weight);
        self.global.record(reuse_distance, weight);
    }

    /// Record a cold (never-before-seen) sample for `pc`.
    pub fn record_cold(&mut self, pc: Pc, weight: f64) {
        self.per_pc.or_default(pc).record_cold(weight);
        self.global.record_cold(weight);
    }

    /// The pooled profile across all PCs.
    pub fn global(&self) -> &ReuseProfile {
        &self.global
    }

    /// The profile of one PC, if any samples were recorded for it.
    pub fn pc(&self, pc: Pc) -> Option<&ReuseProfile> {
        self.per_pc.get(pc)
    }

    /// Number of PCs with at least one sample.
    pub fn pcs_with_samples(&self) -> usize {
        self.per_pc.len()
    }

    /// Total sampled weight across all PCs.
    pub fn total_weight(&self) -> f64 {
        self.global.total_weight()
    }

    /// Predict whether an access issued by `pc` hits a fully-associative
    /// LRU cache of `cache_lines` lines, assuming a perfectly warm cache.
    ///
    /// The per-PC reuse distribution is compared against the *global*
    /// critical reuse distance (the largest reuse whose expected stack
    /// distance fits the cache): the access is predicted to miss when more
    /// than half of the PC's sampled weight lies beyond it.
    pub fn predict(&self, pc: Pc, cache_lines: u64) -> PcPrediction {
        let Some(profile) = self.per_pc.get(pc) else {
            return PcPrediction::NoData;
        };
        if profile.total_weight() == 0.0 {
            return PcPrediction::NoData;
        }
        let d_crit = self.global.critical_reuse_distance(cache_lines);
        let p_miss = if d_crit == u64::MAX {
            profile.cold_fraction()
        } else {
            let reuse_part = 1.0 - profile.cold_fraction();
            profile.cold_fraction() + reuse_part * profile.p_reuse_ge(d_crit.saturating_add(1))
        };
        if p_miss >= 0.5 {
            PcPrediction::Miss
        } else {
            PcPrediction::Hit
        }
    }

    /// Merge another profile set into this one.
    pub fn merge(&mut self, other: &PcProfiles) {
        for (pc, prof) in other.per_pc.iter() {
            self.per_pc.or_default(pc).merge(prof);
        }
        self.global.merge(&other.global);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_pc_yields_no_data() {
        let p = PcProfiles::new();
        assert_eq!(p.predict(Pc(0x1000), 64), PcPrediction::NoData);
    }

    #[test]
    fn short_reuse_pc_predicts_hit_long_predicts_miss() {
        let mut p = PcProfiles::new();
        // Build a global distribution where stack ≈ reuse (all unique).
        for i in 0..100 {
            p.record(Pc(0x9999), 1_000_000 + i, 1.0);
        }
        for _ in 0..20 {
            p.record(Pc(0x1), 4, 1.0);
            p.record(Pc(0x2), 5_000_000, 1.0);
        }
        assert_eq!(p.predict(Pc(0x1), 1024), PcPrediction::Hit);
        assert_eq!(p.predict(Pc(0x2), 1024), PcPrediction::Miss);
    }

    #[test]
    fn cold_heavy_pc_predicts_miss() {
        let mut p = PcProfiles::new();
        p.record(Pc(0x3), 2, 1.0);
        p.record_cold(Pc(0x3), 9.0);
        assert_eq!(p.predict(Pc(0x3), 1 << 30), PcPrediction::Miss);
    }

    #[test]
    fn global_pools_all_pcs() {
        let mut p = PcProfiles::new();
        p.record(Pc(0x1), 10, 2.0);
        p.record(Pc(0x2), 20, 3.0);
        p.record_cold(Pc(0x3), 1.0);
        assert_eq!(p.total_weight(), 6.0);
        assert_eq!(p.pcs_with_samples(), 3);
        assert!((p.global().cold_fraction() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_per_pc() {
        let mut a = PcProfiles::new();
        a.record(Pc(0x1), 10, 1.0);
        let mut b = PcProfiles::new();
        b.record(Pc(0x1), 12, 1.0);
        b.record(Pc(0x2), 9, 1.0);
        a.merge(&b);
        assert_eq!(a.pcs_with_samples(), 2);
        assert_eq!(a.pc(Pc(0x1)).unwrap().total_weight(), 2.0);
    }
}
