//! The limited-associativity (dominant-stride) conflict model.
//!
//! §3.1.2 of the paper: "some load PCs exhibit a dominant large stride,
//! which results in uneven usage of the cache sets. For example, a 512-byte
//! stride will only touch upon one eighth of the cache sets assuming a
//! 64-byte cacheline." Such strides shrink the *effective* cache an access
//! stream can use, turning what the capacity model would call hits into
//! conflict misses. DeLorean inherits this model from CoolSim (reference
//! \[23\] of the paper).

use delorean_trace::{FlatMap, LineAddr, Pc, PcMap};
use serde::{Deserialize, Serialize};

/// Effective number of cachelines usable by an access stream with a
/// dominant stride of `stride_lines` lines, in a cache of `sets` sets ×
/// `ways` ways.
///
/// An arithmetic progression with step `s` over `Z_sets` visits
/// `sets / gcd(s, sets)` distinct sets; each contributes `ways` lines.
/// A stride of 0 mod `sets` pins the stream to a single set.
pub fn effective_cache_lines(sets: u64, ways: u64, stride_lines: u64) -> u64 {
    assert!(sets > 0 && ways > 0, "degenerate cache geometry");
    let s = stride_lines % sets;
    if s == 0 {
        return ways;
    }
    (sets / gcd(s, sets)) * ways
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Minimum observations before a stride verdict is attempted.
const MIN_OBSERVATIONS: u32 = 8;
/// Fraction (per mille) of deltas that must agree for a stride to be
/// "dominant".
const DOMINANCE_PERMILLE: u32 = 600;

/// Online dominant-stride detector for a single PC.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StrideDetector {
    last_line: Option<u64>,
    deltas: FlatMap<i64, u32>,
    total_deltas: u32,
}

impl StrideDetector {
    /// Fresh detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe the next line touched by this PC.
    pub fn observe(&mut self, line: LineAddr) {
        if let Some(prev) = self.last_line {
            let delta = line.0 as i64 - prev as i64;
            *self.deltas.or_default(delta) += 1;
            self.total_deltas += 1;
        }
        self.last_line = Some(line.0);
    }

    /// Number of observed deltas.
    pub fn observations(&self) -> u32 {
        self.total_deltas
    }

    /// The dominant stride in lines, if one exists: at least
    /// `MIN_OBSERVATIONS` (8) deltas, ≥ 60% agreeing, and magnitude > 1
    /// (unit strides use sets evenly and need no correction).
    pub fn dominant_stride(&self) -> Option<u64> {
        if self.total_deltas < MIN_OBSERVATIONS {
            return None;
        }
        let (delta, &count) = self.deltas.iter().max_by_key(|&(_, &c)| c)?;
        if count * 1000 < self.total_deltas * DOMINANCE_PERMILLE {
            return None;
        }
        let mag = delta.unsigned_abs();
        if mag <= 1 {
            return None;
        }
        Some(mag)
    }
}

/// Per-PC limited-associativity model: detects dominant strides and shrinks
/// the effective cache size used by capacity classification.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LimitedAssocModel {
    per_pc: PcMap<StrideDetector>,
}

impl LimitedAssocModel {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe an access (typically key-cacheline first accesses or
    /// sampled vicinity accesses).
    pub fn observe(&mut self, pc: Pc, line: LineAddr) {
        self.per_pc.or_default(pc).observe(line);
    }

    /// The dominant stride of `pc`, if detected.
    pub fn dominant_stride(&self, pc: Pc) -> Option<u64> {
        self.per_pc.get(pc).and_then(|d| d.dominant_stride())
    }

    /// Effective cache size (in lines) available to accesses from `pc` in
    /// a `sets` × `ways` cache. Full size unless a dominant stride shrinks
    /// the usable sets.
    pub fn effective_lines(&self, pc: Pc, sets: u64, ways: u64) -> u64 {
        match self.dominant_stride(pc) {
            Some(stride) => effective_cache_lines(sets, ways, stride),
            None => sets * ways,
        }
    }

    /// Number of PCs with a detected dominant stride.
    pub fn strided_pcs(&self) -> usize {
        self.per_pc
            .values()
            .filter(|d| d.dominant_stride().is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_lines_for_paper_example() {
        // 512-byte stride = 8 lines; with 128 sets only 1/8 of sets used.
        let sets = 128;
        let ways = 8;
        assert_eq!(effective_cache_lines(sets, ways, 8), sets / 8 * ways);
        // Unit stride uses everything.
        assert_eq!(effective_cache_lines(sets, ways, 1), sets * ways);
        // Stride equal to the set count pins one set.
        assert_eq!(effective_cache_lines(sets, ways, 128), ways);
        // Odd strides are coprime with power-of-two sets: full usage.
        assert_eq!(effective_cache_lines(sets, ways, 7), sets * ways);
    }

    #[test]
    #[should_panic(expected = "degenerate cache geometry")]
    fn effective_lines_rejects_zero_sets() {
        effective_cache_lines(0, 8, 1);
    }

    #[test]
    fn detector_finds_constant_stride() {
        let mut d = StrideDetector::new();
        for i in 0..20u64 {
            d.observe(LineAddr(i * 8));
        }
        assert_eq!(d.dominant_stride(), Some(8));
    }

    #[test]
    fn detector_ignores_unit_stride_and_noise() {
        let mut unit = StrideDetector::new();
        for i in 0..20u64 {
            unit.observe(LineAddr(i));
        }
        assert_eq!(unit.dominant_stride(), None);

        let mut noisy = StrideDetector::new();
        for i in 0..40u64 {
            noisy.observe(LineAddr(delorean_trace::mix64(1, i) % 1000));
        }
        assert_eq!(noisy.dominant_stride(), None);
    }

    #[test]
    fn detector_needs_enough_observations() {
        let mut d = StrideDetector::new();
        for i in 0..4u64 {
            d.observe(LineAddr(i * 16));
        }
        assert_eq!(d.dominant_stride(), None, "too few observations");
    }

    #[test]
    fn detector_tolerates_minority_noise() {
        let mut d = StrideDetector::new();
        let mut line = 0u64;
        for i in 0..50u64 {
            line = if i % 5 == 4 {
                delorean_trace::mix64(2, i) % 512
            } else {
                line + 8
            };
            d.observe(LineAddr(line));
        }
        assert_eq!(d.dominant_stride(), Some(8));
    }

    #[test]
    fn model_applies_per_pc() {
        let mut m = LimitedAssocModel::new();
        for i in 0..20u64 {
            m.observe(Pc(0x1), LineAddr(i * 8));
            m.observe(Pc(0x2), LineAddr(delorean_trace::mix64(3, i) % 4096));
        }
        assert_eq!(m.effective_lines(Pc(0x1), 128, 8), 128);
        assert_eq!(m.effective_lines(Pc(0x2), 128, 8), 1024);
        assert_eq!(m.effective_lines(Pc(0x999), 128, 8), 1024);
        assert_eq!(m.strided_pcs(), 1);
    }
}
