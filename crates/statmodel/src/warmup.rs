//! Directed warm-window sizing: the statistical model as a *warming
//! proxy* (the DeLorean thesis applied to SMARTS's chained warm lane).
//!
//! A region's warm state under LRU-class replacement is a function of a
//! bounded window of recent history — the last `C` *distinct* lines per
//! cache, in last-touch order. [`ReuseProfile::critical_reuse_distance`]
//! already answers "how many accesses back must I look so that the
//! intervening stack distance covers the cache?"; this module probes a
//! short suffix of the access stream before a region boundary, converts
//! it into a reuse profile, and turns the critical distance into a
//! directed warm window. A speculative worker then warms only
//! `[boundary - window, boundary)` from cold instead of replaying the
//! blind prefix `[0, boundary)`.

use crate::ReuseProfile;
use delorean_trace::{LineAddr, LineMap};

/// The outcome of sizing a directed warm window for one region boundary.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WindowPlan {
    /// Accesses inspected by the probe.
    pub probe_len: u64,
    /// Critical reuse distance for the target cache (`u64::MAX` when the
    /// probe's working set fits entirely — no eviction pressure).
    pub critical_rd: u64,
    /// Chosen warm-window length in accesses (never exceeds the prefix).
    pub window: u64,
}

/// Build a [`ReuseProfile`] from a full (unsampled) stream of line
/// addresses: every reuse is recorded at weight 1, first touches as cold.
pub fn profile_from_lines(lines: impl IntoIterator<Item = LineAddr>) -> ReuseProfile {
    let mut profile = ReuseProfile::new();
    let mut last: LineMap<u64> = LineMap::new();
    for (t, line) in lines.into_iter().enumerate() {
        let t = t as u64;
        match last.insert(line, t) {
            Some(prev) => profile.record(t - prev - 1, 1.0),
            None => profile.record_cold(1.0),
        }
    }
    profile
}

/// Size a directed warm window from a probe of the accesses immediately
/// preceding a region boundary.
///
/// `cache_lines` is the capacity of the largest cache that must converge
/// (the LLC); `prefix_len` is the full warm-chain prefix the window may
/// never exceed; `margin` multiplies the critical distance so the window
/// also covers smaller caches' recency state and rides out probe noise
/// (2–4 is a good range; the PR 8 bench uses 3).
///
/// When the probe shows no eviction pressure (`critical_rd == u64::MAX`,
/// tiny working set), the window falls back to `margin` probe lengths —
/// the live state is then "everything recently touched", and a few
/// probe-spans of history reproduce every live line's last touch for
/// phase-structured workloads.
///
/// # Panics
///
/// Panics if `margin` is zero.
pub fn plan_warm_window(
    probe: &[LineAddr],
    cache_lines: u64,
    prefix_len: u64,
    margin: u64,
) -> WindowPlan {
    assert!(margin > 0, "window margin must be positive");
    let probe_len = probe.len() as u64;
    let profile = profile_from_lines(probe.iter().copied());
    let critical_rd = profile.critical_reuse_distance(cache_lines);
    let bound = if critical_rd == u64::MAX {
        probe_len
    } else {
        critical_rd.min(probe_len)
    };
    let window = bound.saturating_mul(margin).min(prefix_len);
    WindowPlan {
        probe_len,
        critical_rd,
        window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_trace::mix64;

    #[test]
    fn tiny_working_set_windows_fall_back_to_probe_spans() {
        // 32 lines cycling: fits any realistic LLC, no eviction pressure.
        let probe: Vec<LineAddr> = (0..4_000u64).map(|i| LineAddr(i % 32)).collect();
        let plan = plan_warm_window(&probe, 1024, 1_000_000, 3);
        // Cold mass keeps the critical distance finite, but it sits far
        // beyond the probe, so the probe span bounds the window.
        assert!(plan.critical_rd > plan.probe_len);
        assert_eq!(plan.window, 12_000);
    }

    #[test]
    fn eviction_pressure_directs_the_window() {
        // Random traffic over 4096 lines against a 512-line cache: the
        // critical distance is far below the probe length, so the window
        // tracks it instead of the probe span.
        let probe: Vec<LineAddr> = (0..50_000u64)
            .map(|i| LineAddr(mix64(11, i) % 4096))
            .collect();
        let plan = plan_warm_window(&probe, 512, 10_000_000, 3);
        assert_ne!(plan.critical_rd, u64::MAX);
        assert!(plan.critical_rd < 50_000, "rd = {}", plan.critical_rd);
        assert_eq!(plan.window, 3 * plan.critical_rd);
    }

    #[test]
    fn window_never_exceeds_the_prefix() {
        let probe: Vec<LineAddr> = (0..1_000u64).map(|i| LineAddr(i % 8)).collect();
        let plan = plan_warm_window(&probe, 64, 500, 4);
        assert_eq!(plan.window, 500);
    }

    #[test]
    fn profile_from_lines_counts_reuses_and_colds() {
        let p = profile_from_lines([1, 2, 1, 3, 2].map(LineAddr));
        assert_eq!(p.total_weight(), 5.0);
        assert_eq!(p.reuse_weight(), 2.0);
        // line 1 reused at distance 1 (one access between), line 2 at 2.
        assert!(p.p_reuse_ge(1) > 0.99);
        assert!((p.p_reuse_ge(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "margin must be positive")]
    fn zero_margin_panics() {
        let _ = plan_warm_window(&[LineAddr(1)], 64, 100, 0);
    }
}
