//! StatCC: statistical cache-contention modeling for multiprogrammed
//! workloads (§4.2).
//!
//! Eklov et al.'s StatCC predicts how independent applications interact
//! when sharing a cache, from *solo* reuse profiles only: each
//! application's reuse distances are stretched by the ratio of the
//! combined access rate to its own rate (co-runners' accesses interleave
//! into every reuse window), the shared-cache miss ratios follow from
//! StatStack, the miss ratios update each application's CPI, and the new
//! CPIs change the access rates — a small fixpoint that converges in a
//! few iterations.
//!
//! The paper (§4.2) notes that combining StatCC with DeLorean would
//! replace StatCC's simplistic CPI estimate with detailed simulation; the
//! solver below exposes the CPI model as an input so either can be
//! plugged in.

use crate::reuse::ReuseProfile;
use serde::{Deserialize, Serialize};

/// One application's solo characterization.
#[derive(Clone, Debug)]
pub struct StatCcApp {
    /// Display name.
    pub name: String,
    /// Solo reuse profile (distances in the application's own accesses).
    pub profile: ReuseProfile,
    /// Memory accesses per kilo-instruction.
    pub apki: f64,
    /// CPI with a perfect (never-missing) shared cache.
    pub base_cpi: f64,
    /// CPI added per miss (memory latency after overlap).
    pub miss_penalty_cycles: f64,
}

/// Converged sharing prediction.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct StatCcSolution {
    /// Predicted CPI per application, input order.
    pub cpi: Vec<f64>,
    /// Predicted shared-cache miss ratio per application.
    pub miss_ratio: Vec<f64>,
    /// Effective reuse-stretch factor applied to each application.
    pub stretch: Vec<f64>,
    /// Iterations to convergence.
    pub iterations: u32,
}

/// StatCC fixpoint solver.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct StatCc {
    /// Maximum fixpoint iterations.
    pub max_iterations: u32,
    /// Convergence tolerance on CPI.
    pub tolerance: f64,
}

impl Default for StatCc {
    fn default() -> Self {
        StatCc {
            max_iterations: 50,
            tolerance: 1e-6,
        }
    }
}

impl StatCc {
    /// A solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predict per-application CPI and miss ratio when `apps` share an
    /// LRU cache of `shared_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or any rate parameter is non-positive.
    pub fn solve(&self, apps: &[StatCcApp], shared_lines: u64) -> StatCcSolution {
        assert!(!apps.is_empty(), "need at least one application");
        for a in apps {
            assert!(
                a.apki > 0.0 && a.base_cpi > 0.0,
                "{}: rates must be positive",
                a.name
            );
        }
        let n = apps.len();
        let mut cpi: Vec<f64> = apps.iter().map(|a| a.base_cpi).collect();
        let mut miss = vec![0.0; n];
        let mut stretch = vec![1.0; n];
        let mut iterations = 0;
        for _ in 0..self.max_iterations {
            iterations += 1;
            // Access rates in accesses per cycle.
            let rates: Vec<f64> = apps
                .iter()
                .zip(&cpi)
                .map(|(a, &c)| a.apki / (1000.0 * c))
                .collect();
            let total_rate: f64 = rates.iter().sum();
            let mut max_delta = 0.0f64;
            for i in 0..n {
                stretch[i] = (total_rate / rates[i]).max(1.0);
                let shared_profile = apps[i].profile.scaled(stretch[i]);
                miss[i] = shared_profile.miss_ratio(shared_lines);
                let new_cpi = apps[i].base_cpi
                    + miss[i] * apps[i].apki * apps[i].miss_penalty_cycles / 1000.0;
                max_delta = max_delta.max((new_cpi - cpi[i]).abs());
                // Damping keeps the rate/CPI loop stable.
                cpi[i] = 0.5 * cpi[i] + 0.5 * new_cpi;
            }
            if max_delta < self.tolerance {
                break;
            }
        }
        StatCcSolution {
            cpi,
            miss_ratio: miss,
            stretch,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(name: &str, rd: u64, weight: f64, apki: f64) -> StatCcApp {
        let mut profile = ReuseProfile::new();
        profile.record(rd, weight);
        profile.record_cold(weight / 100.0);
        StatCcApp {
            name: name.into(),
            profile,
            apki,
            base_cpi: 0.5,
            miss_penalty_cycles: 60.0,
        }
    }

    #[test]
    fn symmetric_pair_splits_the_cache_evenly() {
        let a = app("a", 1_000, 100.0, 300.0);
        let b = app("b", 1_000, 100.0, 300.0);
        let sol = StatCc::new().solve(&[a, b], 4_096);
        assert!((sol.cpi[0] - sol.cpi[1]).abs() < 1e-9, "{:?}", sol.cpi);
        // Equal rates → each sees its distances doubled.
        assert!((sol.stretch[0] - 2.0).abs() < 0.05, "{:?}", sol.stretch);
    }

    #[test]
    fn sharing_never_helps() {
        let solo = app("solo", 2_000, 100.0, 300.0);
        let solo_miss = solo.profile.miss_ratio(4_096);
        let streamer = app("streamer", 1 << 22, 100.0, 400.0);
        let sol = StatCc::new().solve(&[solo, streamer], 4_096);
        assert!(
            sol.miss_ratio[0] >= solo_miss - 1e-9,
            "sharing reduced misses: {} < {solo_miss}",
            sol.miss_ratio[0]
        );
    }

    #[test]
    fn aggressive_corunner_hurts_cache_friendly_app() {
        // The friendly app fits the cache alone (rd 3k < 4096 lines), but
        // a streaming co-runner stretches its reuses past capacity. (rd
        // values near capacity/2 sit on a knife edge where the mutual-
        // slowdown feedback oscillates between fit and thrash — a real
        // property of the fixpoint, avoided here by picking rd = 3000,
        // which misses under any stretch ≥ 1.4.)
        let friendly = app("friendly", 3_000, 100.0, 300.0);
        let alone = friendly.profile.miss_ratio(4_096);
        let streamer = app("streamer", 1 << 22, 100.0, 900.0);
        let sol = StatCc::new().solve(&[friendly, streamer], 4_096);
        assert!(alone < 0.05, "friendly app should fit alone: {alone}");
        assert!(
            sol.miss_ratio[0] > alone + 0.2,
            "contention should evict the friendly app: {} vs {alone}",
            sol.miss_ratio[0]
        );
        // And its CPI rises accordingly.
        assert!(sol.cpi[0] > 0.5 + 0.2 * 300.0 * 60.0 / 1000.0 * 0.5);
    }

    #[test]
    fn single_app_reduces_to_statstack() {
        let a = app("a", 10_000, 100.0, 300.0);
        let expected = a.profile.miss_ratio(1_024);
        let sol = StatCc::new().solve(&[a], 1_024);
        assert!((sol.miss_ratio[0] - expected).abs() < 1e-9);
        assert!((sol.stretch[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn converges_quickly() {
        let apps: Vec<StatCcApp> = (0..4)
            .map(|i| {
                app(
                    &format!("app{i}"),
                    500 * (i + 1) as u64,
                    100.0,
                    200.0 + 50.0 * i as f64,
                )
            })
            .collect();
        let sol = StatCc::new().solve(&apps, 8_192);
        assert!(sol.iterations < 50, "iterations {}", sol.iterations);
        assert_eq!(sol.cpi.len(), 4);
        assert!(sol.cpi.iter().all(|&c| c.is_finite() && c > 0.0));
    }

    #[test]
    #[should_panic(expected = "need at least one application")]
    fn empty_input_rejected() {
        let _ = StatCc::new().solve(&[], 1024);
    }
}
