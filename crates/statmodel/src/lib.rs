//! Statistical cache modeling: the machinery beneath both randomized
//! (CoolSim) and directed (DeLorean) statistical warming.
//!
//! The chain the paper relies on (§2.2):
//!
//! 1. **Reuse distance** — number of memory accesses (not necessarily
//!    unique) strictly between two accesses to the same cacheline. Cheap to
//!    sample with watchpoints at near-native speed.
//! 2. **Stack distance** — number of *unique* cachelines accessed strictly
//!    between the two accesses. Expensive to measure directly, but
//!    StatStack (Eklov & Hagersten) estimates it from a sampled
//!    reuse-distance distribution: `E[sd | rd = D] ≈ Σ_{j=1..D} P(rd ≥ j)
//!    = E[min(rd, D)]`.
//! 3. **Miss prediction** — a fully-associative LRU cache of `C` lines
//!    misses exactly when the stack distance is ≥ `C` (Mattson). The
//!    limited-associativity model ([`assoc`]) corrects for set conflicts
//!    caused by dominant large strides, and [`StatCacheModel`] covers
//!    random replacement.
//!
//! [`exact`] provides a brute-force-checked exact stack-distance oracle
//! used by the test suite to validate the statistical estimates.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod assoc;
pub mod exact;
mod histogram;
pub mod per_pc;
mod reuse;
mod statcache;
pub mod statcc;
mod warmup;
pub mod wss;

pub use histogram::LogHistogram;
pub use reuse::ReuseProfile;
pub use statcache::StatCacheModel;
pub use warmup::{plan_warm_window, profile_from_lines, WindowPlan};

#[cfg(test)]
mod model_validation {
    //! Cross-module validation: StatStack estimates vs the exact oracle.

    use crate::exact::ExactStackProcessor;
    use crate::ReuseProfile;
    use delorean_trace::{mix64, LineAddr};

    /// Generate a synthetic line stream, feed *every* reuse into StatStack,
    /// and compare the predicted miss ratio against exact LRU simulation.
    fn validate_stream(lines: &[LineAddr], cache_lines: u64, tolerance: f64) {
        // Exact: count accesses with stack distance >= cache_lines (or cold).
        let mut exact = ExactStackProcessor::new();
        let mut misses = 0u64;
        for &l in lines {
            match exact.access(l) {
                Some(sd) if sd < cache_lines => {}
                _ => misses += 1,
            }
        }
        let exact_ratio = misses as f64 / lines.len() as f64;

        // Statistical: build a reuse profile from the same stream.
        let mut profile = ReuseProfile::new();
        let mut last = delorean_trace::LineMap::new();
        for (t, &l) in lines.iter().enumerate() {
            if let Some(p) = last.insert(l, t) {
                profile.record((t - p - 1) as u64, 1.0);
            } else {
                profile.record_cold(1.0);
            }
        }
        let est = profile.miss_ratio(cache_lines);
        assert!(
            (est - exact_ratio).abs() <= tolerance,
            "cache {cache_lines}: exact {exact_ratio:.4} vs statstack {est:.4}"
        );
    }

    #[test]
    fn statstack_matches_exact_on_random_traffic() {
        let lines: Vec<LineAddr> = (0..40_000u64)
            .map(|i| LineAddr(mix64(7, i) % 512))
            .collect();
        for c in [64, 128, 256, 512, 1024] {
            validate_stream(&lines, c, 0.08);
        }
    }

    #[test]
    fn statstack_matches_exact_on_cyclic_sweep() {
        let lines: Vec<LineAddr> = (0..30_000u64).map(|i| LineAddr(i % 300)).collect();
        // Sweep of 300 lines: all-miss below 300 lines, all-hit above.
        validate_stream(&lines, 200, 0.05);
        validate_stream(&lines, 400, 0.05);
    }

    #[test]
    fn statstack_matches_exact_on_hot_cold_mix() {
        let lines: Vec<LineAddr> = (0..60_000u64)
            .map(|i| {
                if mix64(3, i) % 10 < 8 {
                    LineAddr(mix64(5, i) % 32)
                } else {
                    LineAddr(64 + mix64(9, i) % 4096)
                }
            })
            .collect();
        for c in [16, 64, 512, 4096] {
            validate_stream(&lines, c, 0.08);
        }
    }
}
