//! StatCache: statistical modeling of random-replacement caches.
//!
//! The earliest statistical cache model (Berg & Hagersten, §4.1 of the
//! paper's lineage) targets caches with *random* replacement, where hit
//! probability depends only on reuse distance and the cache's miss rate
//! itself: a line survives one eviction round with probability `1 − 1/L`,
//! and evictions happen once per miss, so an access with reuse distance `d`
//! misses with probability `1 − (1 − 1/L)^{m·d}` where `m` is the overall
//! miss ratio. The model solves this fixpoint.
//!
//! DeLorean's generality argument (§4.1) rests on models like this one
//! existing for non-LRU policies; including it lets the reproduction
//! evaluate DSW classification under random replacement too.

use crate::reuse::ReuseProfile;
use serde::{Deserialize, Serialize};

/// Fixpoint solver for the random-replacement miss ratio.
#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
pub struct StatCacheModel {
    /// Maximum fixpoint iterations.
    pub max_iterations: u32,
    /// Convergence tolerance on the miss ratio.
    pub tolerance: f64,
}

impl Default for StatCacheModel {
    fn default() -> Self {
        StatCacheModel {
            max_iterations: 200,
            tolerance: 1e-7,
        }
    }
}

impl StatCacheModel {
    /// A solver with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Predicted miss ratio of a random-replacement cache of `cache_lines`
    /// lines for the accesses described by `profile`.
    ///
    /// Returns 0 for an empty profile.
    pub fn miss_ratio(&self, profile: &ReuseProfile, cache_lines: u64) -> f64 {
        let total = profile.total_weight();
        if total == 0.0 || cache_lines == 0 {
            return if cache_lines == 0 && total > 0.0 {
                1.0
            } else {
                0.0
            };
        }
        let cold = profile.cold_fraction();
        let hist = profile.histogram();
        let l = cache_lines as f64;
        // ln(1 - 1/L), stable even for L = 1.
        let ln_survive = if cache_lines == 1 {
            f64::NEG_INFINITY
        } else {
            (1.0 - 1.0 / l).ln()
        };
        let reuse_frac = 1.0 - cold;
        let mut m = 0.5; // initial guess
        for _ in 0..self.max_iterations {
            let mut reuse_miss = 0.0;
            if hist.total() > 0.0 {
                for (d, w) in hist.iter() {
                    let p_miss = 1.0 - (ln_survive * m * d as f64).exp();
                    reuse_miss += w * p_miss;
                }
                reuse_miss /= hist.total();
            }
            let next = cold + reuse_frac * reuse_miss;
            if (next - m).abs() < self.tolerance {
                return next.clamp(0.0, 1.0);
            }
            // Damped update: the map is monotone, damping guarantees
            // convergence to the unique fixpoint.
            m = 0.5 * m + 0.5 * next;
        }
        m.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_of(pairs: &[(u64, f64)], cold: f64) -> ReuseProfile {
        let mut p = ReuseProfile::new();
        for &(d, w) in pairs {
            p.record(d, w);
        }
        if cold > 0.0 {
            p.record_cold(cold);
        }
        p
    }

    #[test]
    fn tiny_working_set_hits() {
        let p = profile_of(&[(4, 100.0)], 0.0);
        let m = StatCacheModel::new().miss_ratio(&p, 1024);
        assert!(m < 0.01, "m = {m}");
    }

    #[test]
    fn giant_reuses_miss() {
        let p = profile_of(&[(10_000_000, 100.0)], 0.0);
        let m = StatCacheModel::new().miss_ratio(&p, 64);
        assert!(m > 0.95, "m = {m}");
    }

    #[test]
    fn miss_ratio_monotone_in_cache_size() {
        let p = profile_of(&[(10, 30.0), (1_000, 40.0), (100_000, 30.0)], 0.0);
        let model = StatCacheModel::new();
        let mut prev = 1.1;
        for c in [16u64, 64, 256, 1024, 4096, 1 << 14, 1 << 16, 1 << 18] {
            let m = model.miss_ratio(&p, c);
            assert!(m <= prev + 1e-9, "non-monotone at {c}: {m} > {prev}");
            prev = m;
        }
    }

    #[test]
    fn cold_fraction_is_a_floor() {
        let p = profile_of(&[(4, 80.0)], 20.0);
        let m = StatCacheModel::new().miss_ratio(&p, 1 << 20);
        assert!((m - 0.2).abs() < 0.01, "m = {m}");
    }

    #[test]
    fn random_replacement_is_softer_than_lru_at_the_knee() {
        // A cyclic sweep slightly larger than the cache: LRU thrashes
        // (every reuse evicted just before it would hit), while random
        // replacement keeps a good fraction resident. Cache is set a bit
        // below the sweep so the comparison is robust to the histogram's
        // log-bucket quantization (~±7%).
        let p = profile_of(&[(1023, 100.0)], 0.0);
        let lru = p.miss_ratio(900);
        let rnd = StatCacheModel::new().miss_ratio(&p, 900);
        assert!(lru > 0.9, "LRU should thrash: {lru}");
        assert!(rnd < 0.8, "random should be softer: {rnd}");
        assert!(rnd > 0.1, "but not free: {rnd}");
    }

    #[test]
    fn degenerate_caches() {
        let p = profile_of(&[(10, 10.0)], 0.0);
        assert_eq!(StatCacheModel::new().miss_ratio(&p, 0), 1.0);
        let empty = ReuseProfile::new();
        assert_eq!(StatCacheModel::new().miss_ratio(&empty, 64), 0.0);
    }
}
