//! Region placement.

use delorean_trace::Scale;
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Sampled-simulation layout parameters.
///
/// Defaults follow §5 of the paper: 10 detailed regions of 10 k
/// instructions spread uniformly (1 B instructions apart at paper scale),
/// each preceded by 30 k instructions of detailed warming. Region and
/// warming lengths are *not* scaled — the paper argues small regions are
/// the accuracy-critical case.
///
/// The embedded [`Scale`] also drives **representative cost accounting**:
/// a demo-scale run stands in for the paper-scale experiment, so host-cost
/// charges for warm-up-interval work (fast-forwarding, functional warming,
/// directed profiling windows) are multiplied by `scale.instr_div` to
/// reflect the *represented* work. Per-event costs (traps) and unscaled
/// work (detailed regions) are charged at face value. At
/// [`Scale::paper`] the multiplier is 1 and accounting is exact.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Number of detailed regions.
    pub regions: u32,
    /// Instructions between region starts.
    pub spacing_instrs: u64,
    /// Length of each detailed region, instructions.
    pub detailed_instrs: u64,
    /// Detailed warming before each region, instructions.
    pub warming_instrs: u64,
    /// The experiment scale this plan was derived from.
    pub scale: Scale,
}

impl SamplingConfig {
    /// The paper's layout at the given scale.
    pub fn for_scale(scale: Scale) -> Self {
        SamplingConfig {
            regions: 10,
            spacing_instrs: scale.instrs(1_000_000_000),
            detailed_instrs: 10_000,
            warming_instrs: 30_000,
            scale,
        }
    }

    /// Work multiplier for representative cost accounting of
    /// warm-up-interval work.
    pub fn work_multiplier(&self) -> u64 {
        self.scale.instr_div
    }

    /// Override the region count.
    pub fn with_regions(mut self, regions: u32) -> Self {
        self.regions = regions;
        self
    }

    /// Validate the layout.
    pub fn validate(&self) -> Result<(), String> {
        if self.regions == 0 {
            return Err("need at least one region".into());
        }
        if self.detailed_instrs == 0 {
            return Err("detailed region must be non-empty".into());
        }
        if self.spacing_instrs < self.warming_instrs + self.detailed_instrs {
            return Err(format!(
                "spacing {} too small for warming {} + detailed {}",
                self.spacing_instrs, self.warming_instrs, self.detailed_instrs
            ));
        }
        Ok(())
    }

    /// Materialize the region plan.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn plan(&self) -> RegionPlan {
        // lint:allow(no-unwrap): documented # Panics contract — planning fails fast on an invalid config
        self.validate().expect("invalid sampling config");
        let regions = (0..self.regions)
            .map(|i| {
                let start = (i as u64 + 1) * self.spacing_instrs;
                Region {
                    index: i,
                    start_instr: start,
                    warming: start - self.warming_instrs..start,
                    detailed: start..start + self.detailed_instrs,
                }
            })
            .collect();
        RegionPlan {
            config: *self,
            regions,
        }
    }
}

/// One detailed region with its warming window.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Region number (0-based).
    pub index: u32,
    /// First instruction of the detailed region.
    pub start_instr: u64,
    /// Detailed-warming instruction range (immediately before the region).
    pub warming: Range<u64>,
    /// Detailed (measured) instruction range.
    pub detailed: Range<u64>,
}

impl Region {
    /// The instruction range available for cache warm-up: everything from
    /// the end of the previous region to the start of detailed warming.
    pub fn warmup_interval(&self, spacing: u64) -> Range<u64> {
        self.start_instr.saturating_sub(spacing)..self.warming.start
    }
}

/// The materialized set of regions.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionPlan {
    /// The generating configuration.
    pub config: SamplingConfig,
    /// Regions in execution order.
    pub regions: Vec<Region>,
}

impl RegionPlan {
    /// Total instructions from program start to the end of the last
    /// detailed region, at run scale.
    pub fn total_instrs(&self) -> u64 {
        self.regions
            .last()
            .map(|r| r.detailed.end)
            .unwrap_or_default()
    }

    /// Paper-equivalent instructions this run represents (run-scale
    /// coverage times the work multiplier) — the numerator of every MIPS
    /// figure.
    pub fn represented_instrs(&self) -> u64 {
        self.total_instrs() * self.config.work_multiplier()
    }

    /// Total instructions measured in detail.
    pub fn detailed_instrs(&self) -> u64 {
        self.config.detailed_instrs * self.regions.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout() {
        let p = SamplingConfig::for_scale(Scale::paper()).plan();
        assert_eq!(p.regions.len(), 10);
        assert_eq!(p.regions[0].start_instr, 1_000_000_000);
        assert_eq!(p.regions[9].start_instr, 10_000_000_000);
        assert_eq!(p.regions[0].detailed.clone().count(), 10_000);
        assert_eq!(p.regions[0].warming.clone().count(), 30_000);
        assert_eq!(p.total_instrs(), 10_000_000_000 + 10_000);
        assert_eq!(p.detailed_instrs(), 100_000);
    }

    #[test]
    fn warming_abuts_detailed() {
        let p = SamplingConfig::for_scale(Scale::demo()).plan();
        for r in &p.regions {
            assert_eq!(r.warming.end, r.detailed.start);
            assert_eq!(r.detailed.start, r.start_instr);
        }
    }

    #[test]
    fn warmup_interval_spans_the_gap() {
        let cfg = SamplingConfig::for_scale(Scale::demo());
        let p = cfg.plan();
        let r1 = &p.regions[1];
        let iv = r1.warmup_interval(cfg.spacing_instrs);
        assert_eq!(iv.start, p.regions[0].start_instr);
        assert_eq!(iv.end, r1.warming.start);
    }

    #[test]
    fn validation_rejects_tight_spacing() {
        let bad = SamplingConfig {
            regions: 2,
            spacing_instrs: 20_000,
            detailed_instrs: 10_000,
            warming_instrs: 30_000,
            scale: Scale::paper(),
        };
        assert!(bad.validate().is_err());
        assert!(SamplingConfig::for_scale(Scale::tiny()).validate().is_ok());
    }

    #[test]
    fn with_regions_override() {
        let p = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan();
        assert_eq!(p.regions.len(), 3);
    }
}
