//! Shared evaluation metrics.

/// `|value − reference| / reference`; 0 when the reference is 0 and the
/// value is too, 1 when only the reference is 0.
pub fn relative_error(value: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if value == 0.0 {
            0.0
        } else {
            1.0
        }
    } else {
        (value - reference).abs() / reference.abs()
    }
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        // lint:allow(float-accum): the mean folds in slice order, which callers fix per plan; no worker schedule is involved
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Geometric mean; 0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is negative.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v >= 0.0),
        "geomean of negative value"
    );
    let log_sum: f64 = values.iter().map(|&v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.9, 1.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), 1.0);
    }

    #[test]
    fn mean_and_geomean() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "geomean of negative")]
    fn geomean_rejects_negative() {
        let _ = geomean(&[-1.0]);
    }
}
