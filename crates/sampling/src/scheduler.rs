//! The region-parallel execution runtime.
//!
//! The paper's central observation is that time-traveling removes the
//! sequential dependency between sampling units: each detailed region's
//! explore→warm→measure chain is a pure function of the (position
//! addressable) execution and the region plan, so regions can be
//! evaluated in any order — and therefore in parallel. [`RegionScheduler`]
//! is the runtime for that observation: it partitions a strategy's
//! sampling plan into per-region **units**, fans the units out across a
//! rayon worker pool, and hands the results back **in plan order** so the
//! strategy's reduction (and hence its [`StrategyReport`]) is
//! byte-identical for every worker count.
//!
//! Two unit shapes cover all five strategies:
//!
//! * [`run_units`](RegionScheduler::run_units) — fully independent
//!   units. CoolSim (per-region watchpoint profiling), MRRL (per-region
//!   reuse-latency windows), checkpoint evaluation (restore + measure)
//!   and DeLorean (Scout → Explorers → Analyst per region) each own
//!   their cursor slices and per-region state outright, so every region
//!   is one independent unit.
//! * [`run_seeded`](RegionScheduler::run_seeded) — units seeded by a
//!   sequential carried-state lane. SMARTS-style functional warming
//!   *cannot* decouple regions completely: the hierarchy state at a
//!   region's warming boundary depends on every access before it. The
//!   seed pass runs in plan order on a producer lane (cumulatively
//!   warming one hierarchy and handing each unit a
//!   [`fork`](delorean_cache::Hierarchy::fork) of it), while the
//!   measure bodies fan out across the remaining workers as their seeds
//!   become available — a producer/consumer pipeline over the bounded
//!   channel shim, mirroring the paper's OS-pipe pass pipeline at region
//!   granularity.
//!
//! Determinism contract: unit bodies must be pure functions of
//! `(unit index, region, seed)`. The scheduler never lets the worker
//! count influence what a unit computes — only *when* it computes it —
//! and reduces results by unit index, so `workers = 1` and `workers = N`
//! produce bitwise-equal outputs (asserted for all five strategies by
//! `tests/determinism.rs`).
//!
//! [`StrategyReport`]: crate::StrategyReport

use crate::config::Region;
use crossbeam::channel::bounded;
use delorean_trace::fault::{self, FaultPolicy, FaultSite, UnitFailure, UnitFault};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The scheduler lost unit results it cannot explain: a worker
/// terminated before sending, outside the fault-isolated paths that
/// would have classified the failure. Raised as a typed panic payload
/// (via `std::panic::panic_any`) so the report names exactly which
/// units are missing instead of the old anonymous
/// `expect("every unit completed")`.
#[derive(Debug)]
pub struct LostUnits {
    /// Plan indices of the units whose results never arrived.
    pub units: Vec<u32>,
}

impl std::fmt::Display for LostUnits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "region scheduler lost the result of unit(s) {:?}: a worker \
             terminated before sending (body panicked or was killed); run \
             the plan through an *_isolated entry point to capture the \
             per-unit fault instead",
            self.units
        )
    }
}

impl std::error::Error for LostUnits {}

/// Split guarded per-unit results into plan-ordered slots and the list
/// of quarantined failures.
fn split_results<R>(results: Vec<Result<R, UnitFailure>>) -> (Vec<Option<R>>, Vec<UnitFailure>) {
    let mut out = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for res in results {
        match res {
            Ok(r) => out.push(Some(r)),
            Err(f) => {
                out.push(None);
                failures.push(f);
            }
        }
    }
    (out, failures)
}

/// Fans a region plan's independent units out across a worker pool and
/// collects results in plan order.
///
/// The worker count is fixed at construction — results never depend on
/// it, so harness code is free to pick any bound (the batch executor
/// divides the machine between strategy×workload cells and region
/// workers to avoid oversubscription).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RegionScheduler {
    workers: usize,
}

impl RegionScheduler {
    /// A scheduler fanning units across `workers` workers (clamped ≥ 1).
    pub fn new(workers: usize) -> Self {
        RegionScheduler {
            workers: workers.max(1),
        }
    }

    /// The sequential scheduler: one worker, units in plan order. This is
    /// the reference execution the determinism tests compare against.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// A scheduler sized to the host's available parallelism.
    pub fn host() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// This scheduler's worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluate one fully independent unit per region, in parallel, and
    /// return the results in plan order.
    ///
    /// `unit` must be a pure function of `(index, region)` (plus
    /// captured immutable context); the scheduler guarantees the output
    /// vector is identical for every worker count.
    pub fn run_units<R: Send>(
        &self,
        regions: &[Region],
        unit: impl Fn(u32, &Region) -> R + Sync,
    ) -> Vec<R> {
        if self.workers <= 1 || regions.len() <= 1 {
            return regions
                .iter()
                .enumerate()
                .map(|(i, r)| unit(i as u32, r))
                .collect();
        }
        let jobs: Vec<(u32, &Region)> = regions
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u32, r))
            .collect();
        // Building a pool per call is free with the offline rayon shim
        // (its ThreadPool holds no threads — it only records the worker
        // count that scoped parallel operations spawn). If the shim is
        // swapped for the registry rayon, hoist the pool into the
        // scheduler to avoid per-call thread churn.
        ThreadPoolBuilder::new()
            .num_threads(self.workers)
            .build()
            // lint:allow(no-unwrap): the offline rayon shim's pool build is infallible; with registry rayon a failure here is unrecoverable
            .expect("region worker pool")
            .install(|| jobs.par_iter().map(|&(i, r)| unit(i, r)).collect())
    }

    /// Evaluate units whose seeds come off a sequential carried-state
    /// lane: `seed` runs in plan order (it may fold mutable state across
    /// calls — the cumulative warm hierarchy), `body` runs on any worker
    /// once its unit's seed exists. Results come back in plan order.
    ///
    /// With more than one worker, the seed lane runs on a dedicated
    /// producer thread and bodies drain from a bounded channel on the
    /// remaining workers, so seed production overlaps body evaluation —
    /// the region-granular analogue of the paper's pass pipeline. With
    /// one worker the two interleave exactly like the classic sequential
    /// driver: seed(0), body(0), seed(1), body(1), …
    pub fn run_seeded<S: Send, R: Send>(
        &self,
        regions: &[Region],
        mut seed: impl FnMut(u32, &Region) -> S + Send,
        body: impl Fn(u32, &Region, S) -> R + Sync,
    ) -> Vec<R> {
        let n = regions.len();
        if self.workers <= 1 || n <= 1 {
            return regions
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let s = seed(i as u32, r);
                    body(i as u32, r, s)
                })
                .collect();
        }
        let consumers = (self.workers - 1).min(n);
        // The seed channel's bound is the pipeline depth: the producer
        // lane may run at most one seed per consumer ahead of the
        // slowest body, modeling a finite pipe buffer.
        let (seed_tx, seed_rx) = bounded::<(u32, S)>(consumers.max(2));
        let (done_tx, done_rx) = bounded::<(u32, R)>(n);
        let seed_rx = Mutex::new(seed_rx);
        let body = &body;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for (i, r) in regions.iter().enumerate() {
                    let s = seed(i as u32, r);
                    if seed_tx.send((i as u32, s)).is_err() {
                        return; // consumers gone (a body panicked)
                    }
                }
            });
            for _ in 0..consumers {
                let done_tx = done_tx.clone();
                let seed_rx = &seed_rx;
                scope.spawn(move || loop {
                    // lint:allow(no-unwrap): a poisoned lock means a sibling worker panicked; propagating is the only sound recovery
                    let msg = seed_rx.lock().expect("seed channel lock").recv();
                    match msg {
                        Ok((i, s)) => {
                            let out = body(i, &regions[i as usize], s);
                            if done_tx.send((i, out)).is_err() {
                                return;
                            }
                        }
                        Err(_) => return, // producer done, channel drained
                    }
                });
            }
            drop(done_tx);
            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (i, out) in done_rx.iter() {
                slots[i as usize] = Some(out);
            }
            // A missing slot means a consumer died before reporting; name
            // the units instead of failing anonymously (the fault-isolated
            // paths below classify the failure rather than panicking).
            let mut lost = Vec::new();
            let mut out = Vec::with_capacity(n);
            for (i, s) in slots.into_iter().enumerate() {
                match s {
                    Some(r) => out.push(r),
                    None => lost.push(i as u32),
                }
            }
            if !lost.is_empty() {
                std::panic::panic_any(LostUnits { units: lost });
            }
            out
        })
    }

    /// Evaluate **speculative** units: `spec` bodies are fully
    /// independent (each builds its own proxy state — no chain
    /// dependency, which is the entire point of the speculative warm
    /// lane) and fan out across `workers − 1` workers immediately, while
    /// `reconcile` runs on the calling thread **in plan order**, folding
    /// the sequential carried state and deciding commit vs re-measure
    /// for each unit as its speculation arrives.
    ///
    /// Out-of-order speculation results are buffered until the
    /// reconciler catches up, so `reconcile(i, …)` always observes units
    /// `0..i` already reconciled — exactly the sequential fold. With one
    /// worker the two interleave: spec(0), reconcile(0), spec(1), …
    ///
    /// Determinism contract: `spec` must be a pure function of
    /// `(index, region)`, and `reconcile` must not depend on *when* a
    /// speculation arrived — then the outputs (and every commit/miss
    /// decision) are bitwise identical for every worker count.
    pub fn run_speculative<S: Send, R: Send>(
        &self,
        regions: &[Region],
        spec: impl Fn(u32, &Region) -> S + Sync,
        mut reconcile: impl FnMut(u32, &Region, S) -> R + Send,
    ) -> Vec<R> {
        let n = regions.len();
        if self.workers <= 1 || n <= 1 {
            return regions
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let s = spec(i as u32, r);
                    reconcile(i as u32, r, s)
                })
                .collect();
        }
        let pool = (self.workers - 1).min(n);
        let next = AtomicUsize::new(0);
        let (done_tx, done_rx) = bounded::<(u32, S)>(n);
        let spec = &spec;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..pool {
                let done_tx = done_tx.clone();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let s = spec(i as u32, &regions[i]);
                    if done_tx.send((i as u32, s)).is_err() {
                        return; // reconciler gone (a sibling panicked)
                    }
                });
            }
            drop(done_tx);
            let mut pending: Vec<Option<S>> = (0..n).map(|_| None).collect();
            let mut out = Vec::with_capacity(n);
            for (i, s) in done_rx.iter() {
                pending[i as usize] = Some(s);
                while out.len() < n {
                    match pending[out.len()].take() {
                        Some(s) => {
                            let i = out.len() as u32;
                            out.push(reconcile(i, &regions[i as usize], s));
                        }
                        None => break,
                    }
                }
            }
            assert_eq!(out.len(), n, "every speculation must arrive");
            out
        })
    }

    /// [`run_units`](Self::run_units) with **panic isolation**: each
    /// unit body runs inside
    /// [`fault::run_unit_guarded`] — a panic (or injected fault at the
    /// [`FaultSite::UnitEntry`] site) is caught and classified, the
    /// unit is retried up to the policy's budget, and exhaustion
    /// quarantines the unit instead of unwinding the run.
    ///
    /// Returns plan-ordered result slots (`None` = quarantined) plus
    /// the plan-ordered failure list. A fully clean run returns all
    /// `Some` with no failures, and its results are bitwise identical
    /// to [`run_units`](Self::run_units) at every worker count —
    /// isolation is pure scheduling, never semantics.
    ///
    /// `unit` must stay a pure function of `(index, region)`: retries
    /// re-enter it from the top, which is only sound because it owns no
    /// carried state.
    pub fn run_units_isolated<R: Send>(
        &self,
        regions: &[Region],
        policy: &FaultPolicy,
        unit: impl Fn(u32, &Region) -> R + Sync,
    ) -> (Vec<Option<R>>, Vec<UnitFailure>) {
        let guarded = |i: u32, r: &Region| -> Result<R, UnitFailure> {
            fault::run_unit_guarded(i, policy, || {
                fault::hit(FaultSite::UnitEntry, u64::from(i));
                unit(i, r)
            })
        };
        let results: Vec<Result<R, UnitFailure>> = if self.workers <= 1 || regions.len() <= 1 {
            regions
                .iter()
                .enumerate()
                .map(|(i, r)| guarded(i as u32, r))
                .collect()
        } else {
            let jobs: Vec<(u32, &Region)> = regions
                .iter()
                .enumerate()
                .map(|(i, r)| (i as u32, r))
                .collect();
            ThreadPoolBuilder::new()
                .num_threads(self.workers)
                .build()
                // lint:allow(no-unwrap): the offline rayon shim's pool build is infallible; with registry rayon a failure here is unrecoverable
                .expect("region worker pool")
                .install(|| jobs.par_iter().map(|&(i, r)| guarded(i, r)).collect())
        };
        split_results(results)
    }

    /// [`run_seeded`](Self::run_seeded) with **panic isolation**.
    ///
    /// The two lanes fail differently:
    ///
    /// * **Body** failures are local. Each body runs guarded with a
    ///   [`FaultSite::UnitEntry`] injection site and retries from a
    ///   fresh [`Clone`] of its seed (which is why `S: Clone` here);
    ///   exhaustion quarantines that unit alone — the seed lane has
    ///   already moved past it.
    /// * **Seed** failures poison the chain. A failed seed call leaves
    ///   the carried state (the cumulative warm hierarchy) half-mutated,
    ///   so it is *not* retried: unit *i* is quarantined with its
    ///   classified fault and every unit after it with
    ///   [`UnitFault::ChainPoisoned`]. Seeds carry no injection site for
    ///   the same reason — injected faults must stay recoverable.
    ///
    /// A fully clean run's results are bitwise identical to
    /// [`run_seeded`](Self::run_seeded) at every worker count.
    pub fn run_seeded_isolated<S: Send + Clone, R: Send>(
        &self,
        regions: &[Region],
        policy: &FaultPolicy,
        mut seed: impl FnMut(u32, &Region) -> S + Send,
        body: impl Fn(u32, &Region, S) -> R + Sync,
    ) -> (Vec<Option<R>>, Vec<UnitFailure>) {
        let n = regions.len();
        let seed_once = FaultPolicy { retry_budget: 0 };
        let guarded_body = |i: u32, r: &Region, s: &S| -> Result<R, UnitFailure> {
            fault::run_unit_guarded(i, policy, || {
                fault::hit(FaultSite::UnitEntry, u64::from(i));
                body(i, r, s.clone())
            })
        };
        if self.workers <= 1 || n <= 1 {
            let mut out = Vec::with_capacity(n);
            let mut failures = Vec::new();
            let mut poisoned: Option<u32> = None;
            for (i, r) in regions.iter().enumerate() {
                let iu = i as u32;
                if let Some(upstream) = poisoned {
                    out.push(None);
                    failures.push(UnitFailure {
                        unit: iu,
                        attempts: 0,
                        fault: UnitFault::ChainPoisoned { upstream },
                    });
                    continue;
                }
                match fault::run_unit_guarded(iu, &seed_once, || seed(iu, r)) {
                    Ok(s) => match guarded_body(iu, r, &s) {
                        Ok(v) => out.push(Some(v)),
                        Err(f) => {
                            out.push(None);
                            failures.push(f);
                        }
                    },
                    Err(f) => {
                        out.push(None);
                        failures.push(f);
                        poisoned = Some(iu);
                    }
                }
            }
            return (out, failures);
        }
        let consumers = (self.workers - 1).min(n);
        let (seed_tx, seed_rx) = bounded::<(u32, S)>(consumers.max(2));
        let (done_tx, done_rx) = bounded::<(u32, Result<R, UnitFailure>)>(n);
        let seed_rx = Mutex::new(seed_rx);
        let guarded_body = &guarded_body;
        std::thread::scope(|scope| {
            let producer = scope.spawn(move || -> Option<(u32, UnitFailure)> {
                for (i, r) in regions.iter().enumerate() {
                    let iu = i as u32;
                    match fault::run_unit_guarded(iu, &seed_once, || seed(iu, r)) {
                        Ok(s) => {
                            if seed_tx.send((iu, s)).is_err() {
                                return None; // consumers gone
                            }
                        }
                        // The chain cannot continue past a dead seed.
                        Err(f) => return Some((iu, f)),
                    }
                }
                None
            });
            for _ in 0..consumers {
                let done_tx = done_tx.clone();
                let seed_rx = &seed_rx;
                scope.spawn(move || loop {
                    // lint:allow(no-unwrap): a poisoned lock means a sibling worker panicked; propagating is the only sound recovery
                    let msg = seed_rx.lock().expect("seed channel lock").recv();
                    match msg {
                        Ok((i, s)) => {
                            let res = guarded_body(i, &regions[i as usize], &s);
                            if done_tx.send((i, res)).is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                });
            }
            drop(done_tx);
            let mut slots: Vec<Option<Result<R, UnitFailure>>> = (0..n).map(|_| None).collect();
            for (i, res) in done_rx.iter() {
                slots[i as usize] = Some(res);
            }
            let (poisoned_at, mut seed_fault) = match producer.join() {
                Ok(Some((u, f))) => (Some(u), Some(f)),
                _ => (None, None),
            };
            let mut out = Vec::with_capacity(n);
            let mut failures = Vec::new();
            let mut lost = Vec::new();
            for (i, slot) in slots.into_iter().enumerate() {
                let iu = i as u32;
                match slot {
                    Some(Ok(r)) => out.push(Some(r)),
                    Some(Err(f)) => {
                        out.push(None);
                        failures.push(f);
                    }
                    None => {
                        out.push(None);
                        match poisoned_at {
                            Some(u) if iu == u => {
                                if let Some(f) = seed_fault.take() {
                                    failures.push(f);
                                }
                            }
                            Some(u) if iu > u => failures.push(UnitFailure {
                                unit: iu,
                                attempts: 0,
                                fault: UnitFault::ChainPoisoned { upstream: u },
                            }),
                            _ => lost.push(iu),
                        }
                    }
                }
            }
            if !lost.is_empty() {
                std::panic::panic_any(LostUnits { units: lost });
            }
            (out, failures)
        })
    }

    /// [`run_speculative`](Self::run_speculative) with **panic
    /// isolation**.
    ///
    /// Speculation bodies are free to die: a `spec` failure (after its
    /// guarded retries at the [`FaultSite::UnitEntry`] site) simply
    /// degrades that unit's speculation to `None`, and the reconciler —
    /// which now receives `Option<S>` — takes its miss path and redoes
    /// the unit from the true carried state. **Spec faults therefore
    /// never quarantine anything**; they only cost modeled speedup.
    ///
    /// The reconciler is the chain: each call is preceded by a guarded
    /// [`FaultSite::ReconcilerCommit`] gate (injected faults fire here,
    /// *before* any chain mutation, so they are retryable), and the
    /// `reconcile` call itself runs caught-but-unretried — a genuine
    /// reconciler panic may have half-mutated the carried state, so it
    /// quarantines unit *i* and poisons every later unit.
    ///
    /// A fully clean run's results are bitwise identical to
    /// [`run_speculative`](Self::run_speculative) at every worker count.
    pub fn run_speculative_isolated<S: Send, R: Send>(
        &self,
        regions: &[Region],
        policy: &FaultPolicy,
        spec: impl Fn(u32, &Region) -> S + Sync,
        mut reconcile: impl FnMut(u32, &Region, Option<S>) -> R + Send,
    ) -> (Vec<Option<R>>, Vec<UnitFailure>) {
        let n = regions.len();
        let reconcile_once = FaultPolicy { retry_budget: 0 };
        let guarded_spec = |i: u32, r: &Region| -> Option<S> {
            fault::run_unit_guarded(i, policy, || {
                fault::hit(FaultSite::UnitEntry, u64::from(i));
                spec(i, r)
            })
            .ok()
        };
        let mut guarded_reconcile = |i: u32, r: &Region, s: Option<S>| -> Result<R, UnitFailure> {
            // Injection gate first: it faults before reconcile mutates
            // anything, so the retry loop is sound here...
            fault::run_unit_guarded(i, policy, || {
                fault::hit(FaultSite::ReconcilerCommit, u64::from(i))
            })?;
            // ...but the reconcile body itself gets exactly one attempt.
            let mut slot = Some(s);
            fault::run_unit_guarded(i, &reconcile_once, || {
                reconcile(i, r, slot.take().flatten())
            })
        };
        if self.workers <= 1 || n <= 1 {
            let mut out = Vec::with_capacity(n);
            let mut failures = Vec::new();
            let mut poisoned: Option<u32> = None;
            for (i, r) in regions.iter().enumerate() {
                let iu = i as u32;
                if let Some(upstream) = poisoned {
                    out.push(None);
                    failures.push(UnitFailure {
                        unit: iu,
                        attempts: 0,
                        fault: UnitFault::ChainPoisoned { upstream },
                    });
                    continue;
                }
                let s = guarded_spec(iu, r);
                match guarded_reconcile(iu, r, s) {
                    Ok(v) => out.push(Some(v)),
                    Err(f) => {
                        out.push(None);
                        failures.push(f);
                        poisoned = Some(iu);
                    }
                }
            }
            return (out, failures);
        }
        let pool = (self.workers - 1).min(n);
        let next = AtomicUsize::new(0);
        let (done_tx, done_rx) = bounded::<(u32, Option<S>)>(n);
        let guarded_spec = &guarded_spec;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..pool {
                let done_tx = done_tx.clone();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let s = guarded_spec(i as u32, &regions[i]);
                    if done_tx.send((i as u32, s)).is_err() {
                        return;
                    }
                });
            }
            drop(done_tx);
            let mut pending: Vec<Option<Option<S>>> = (0..n).map(|_| None).collect();
            let mut out: Vec<Option<R>> = Vec::with_capacity(n);
            let mut failures = Vec::new();
            let mut poisoned: Option<u32> = None;
            for (i, s) in done_rx.iter() {
                pending[i as usize] = Some(s);
                while out.len() < n {
                    let k = out.len();
                    match pending[k].take() {
                        Some(sopt) => {
                            let iu = k as u32;
                            if let Some(upstream) = poisoned {
                                out.push(None);
                                failures.push(UnitFailure {
                                    unit: iu,
                                    attempts: 0,
                                    fault: UnitFault::ChainPoisoned { upstream },
                                });
                                continue;
                            }
                            match guarded_reconcile(iu, &regions[k], sopt) {
                                Ok(v) => out.push(Some(v)),
                                Err(f) => {
                                    out.push(None);
                                    failures.push(f);
                                    poisoned = Some(iu);
                                }
                            }
                        }
                        None => break,
                    }
                }
            }
            assert_eq!(out.len(), n, "every speculation must arrive");
            (out, failures)
        })
    }
}

impl Default for RegionScheduler {
    /// The sequential scheduler — parallelism is always an explicit
    /// opt-in (via [`RegionScheduler::new`] or a runner's
    /// `with_region_workers`).
    fn default() -> Self {
        Self::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SamplingConfig;
    use delorean_trace::Scale;

    fn regions(n: u32) -> Vec<Region> {
        SamplingConfig::for_scale(Scale::tiny())
            .with_regions(n)
            .plan()
            .regions
    }

    #[test]
    fn independent_units_come_back_in_plan_order() {
        let rs = regions(7);
        let reference: Vec<u64> = rs.iter().map(|r| r.start_instr * 3).collect();
        for workers in [1, 2, 4, 8] {
            let got = RegionScheduler::new(workers).run_units(&rs, |_, r| r.start_instr * 3);
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn seeded_units_see_the_sequential_fold() {
        let rs = regions(6);
        // The seed lane folds a running sum; every worker count must
        // observe the same per-unit prefix.
        let reference: Vec<u64> = {
            let mut acc = 0u64;
            rs.iter()
                .map(|r| {
                    acc += r.start_instr;
                    acc
                })
                .collect()
        };
        for workers in [1, 2, 3, 8] {
            let mut acc = 0u64;
            let got = RegionScheduler::new(workers).run_seeded(
                &rs,
                move |_, r| {
                    acc += r.start_instr;
                    acc
                },
                |_, _, s| s,
            );
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn worker_count_is_clamped_and_reported() {
        assert_eq!(RegionScheduler::new(0).workers(), 1);
        assert_eq!(RegionScheduler::new(5).workers(), 5);
        assert_eq!(RegionScheduler::sequential().workers(), 1);
        assert_eq!(RegionScheduler::default(), RegionScheduler::sequential());
        assert!(RegionScheduler::host().workers() >= 1);
    }

    #[test]
    fn speculative_units_reconcile_in_plan_order() {
        let rs = regions(6);
        // The reconciler folds a running product over (index, spec value);
        // any arrival order must yield the sequential fold.
        let reference: Vec<u64> = {
            let mut acc = 1u64;
            rs.iter()
                .enumerate()
                .map(|(i, r)| {
                    acc = acc.wrapping_mul(r.start_instr + i as u64 + 2);
                    acc
                })
                .collect()
        };
        for workers in [1, 2, 3, 8] {
            let mut acc = 1u64;
            let got = RegionScheduler::new(workers).run_speculative(
                &rs,
                |i, r| r.start_instr + u64::from(i) + 2,
                |_, _, s| {
                    acc = acc.wrapping_mul(s);
                    acc
                },
            );
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn isolated_units_match_plain_results_when_clean() {
        let rs = regions(7);
        let reference: Vec<u64> = rs.iter().map(|r| r.start_instr * 3).collect();
        let policy = FaultPolicy::default();
        for workers in [1, 2, 4, 8] {
            let (got, failures) =
                RegionScheduler::new(workers)
                    .run_units_isolated(&rs, &policy, |_, r| r.start_instr * 3);
            assert!(failures.is_empty(), "workers={workers}");
            let got: Vec<u64> = got.into_iter().flatten().collect();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn a_poisonous_unit_is_quarantined_with_its_attempts() {
        let rs = regions(5);
        let policy = FaultPolicy { retry_budget: 1 };
        for workers in [1, 4] {
            let (got, failures) =
                RegionScheduler::new(workers).run_units_isolated(&rs, &policy, |i, _| {
                    if i == 2 {
                        std::panic::panic_any("unit 2 always dies".to_string());
                    }
                    u64::from(i)
                });
            assert_eq!(got.len(), 5);
            assert!(got[2].is_none(), "workers={workers}");
            assert_eq!(got.iter().filter(|s| s.is_some()).count(), 4);
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].unit, 2);
            assert_eq!(failures[0].attempts, 2);
            assert!(matches!(
                failures[0].fault,
                UnitFault::Panicked { ref message } if message.contains("unit 2")
            ));
        }
    }

    #[test]
    fn seeded_isolation_keeps_the_sequential_fold_when_clean() {
        let rs = regions(6);
        let reference: Vec<u64> = {
            let mut acc = 0u64;
            rs.iter()
                .map(|r| {
                    acc += r.start_instr;
                    acc
                })
                .collect()
        };
        let policy = FaultPolicy::default();
        for workers in [1, 2, 3, 8] {
            let mut acc = 0u64;
            let (got, failures) = RegionScheduler::new(workers).run_seeded_isolated(
                &rs,
                &policy,
                move |_, r| {
                    acc += r.start_instr;
                    acc
                },
                |_, _, s| s,
            );
            assert!(failures.is_empty(), "workers={workers}");
            let got: Vec<u64> = got.into_iter().flatten().collect();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn a_dead_seed_poisons_the_rest_of_the_chain() {
        let rs = regions(5);
        let policy = FaultPolicy::default();
        for workers in [1, 3] {
            let (got, failures) = RegionScheduler::new(workers).run_seeded_isolated(
                &rs,
                &policy,
                |i, _| {
                    if i == 2 {
                        std::panic::panic_any("seed 2 dies".to_string());
                    }
                    u64::from(i)
                },
                |_, _, s| s,
            );
            assert_eq!(
                got.iter().map(|s| s.is_some()).collect::<Vec<_>>(),
                [true, true, false, false, false],
                "workers={workers}"
            );
            assert_eq!(failures.len(), 3, "workers={workers}");
            assert_eq!(failures[0].unit, 2);
            // Seeds are never retried: the chain state is unusable.
            assert_eq!(failures[0].attempts, 1);
            for (f, unit) in failures[1..].iter().zip([3u32, 4]) {
                assert_eq!(f.unit, unit);
                assert_eq!(f.attempts, 0);
                assert!(matches!(f.fault, UnitFault::ChainPoisoned { upstream: 2 }));
            }
        }
    }

    #[test]
    fn a_dead_body_quarantines_only_its_own_unit() {
        let rs = regions(5);
        let policy = FaultPolicy { retry_budget: 0 };
        for workers in [1, 3] {
            let (got, failures) = RegionScheduler::new(workers).run_seeded_isolated(
                &rs,
                &policy,
                |i, _| u64::from(i),
                |i, _, s| {
                    if i == 1 {
                        std::panic::panic_any("body 1 dies".to_string());
                    }
                    s
                },
            );
            assert_eq!(
                got.iter().map(|s| s.is_some()).collect::<Vec<_>>(),
                [true, false, true, true, true],
                "workers={workers}"
            );
            assert_eq!(failures.len(), 1);
            assert_eq!(failures[0].unit, 1);
        }
    }

    #[test]
    fn dead_speculations_degrade_to_the_miss_path() {
        let rs = regions(6);
        let policy = FaultPolicy { retry_budget: 0 };
        // Reference: the reconciler's fold where every unit takes the
        // miss path value when its speculation is unavailable.
        let reference: Vec<u64> = rs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                if i == 3 {
                    r.start_instr + 1_000 // miss path
                } else {
                    r.start_instr
                }
            })
            .collect();
        for workers in [1, 2, 8] {
            let (got, failures) = RegionScheduler::new(workers).run_speculative_isolated(
                &rs,
                &policy,
                |i, r| {
                    if i == 3 {
                        std::panic::panic_any("spec 3 dies".to_string());
                    }
                    r.start_instr
                },
                |_, r, s: Option<u64>| s.unwrap_or(r.start_instr + 1_000),
            );
            // Spec faults never quarantine.
            assert!(failures.is_empty(), "workers={workers}");
            let got: Vec<u64> = got.into_iter().flatten().collect();
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn a_dead_reconciler_poisons_downstream_units() {
        let rs = regions(5);
        let policy = FaultPolicy::default();
        for workers in [1, 3] {
            let (got, failures) = RegionScheduler::new(workers).run_speculative_isolated(
                &rs,
                &policy,
                |i, _| u64::from(i),
                |i, _, s: Option<u64>| {
                    if i == 2 {
                        std::panic::panic_any("reconcile 2 dies".to_string());
                    }
                    s.unwrap_or(0)
                },
            );
            assert_eq!(
                got.iter().map(|s| s.is_some()).collect::<Vec<_>>(),
                [true, true, false, false, false],
                "workers={workers}"
            );
            assert_eq!(failures.len(), 3);
            assert_eq!(failures[0].unit, 2);
            assert_eq!(failures[0].attempts, 1);
            assert!(matches!(
                failures[2].fault,
                UnitFault::ChainPoisoned { upstream: 2 }
            ));
        }
    }

    #[test]
    fn empty_and_single_region_plans_work() {
        let rs = regions(1);
        let got = RegionScheduler::new(4).run_units(&rs, |i, _| i);
        assert_eq!(got, vec![0]);
        let got = RegionScheduler::new(4).run_seeded(&rs, |i, _| i, |_, _, s| s);
        assert_eq!(got, vec![0]);
        let none: Vec<Region> = Vec::new();
        let got: Vec<u32> = RegionScheduler::new(4).run_units(&none, |i, _| i);
        assert!(got.is_empty());
    }
}
