//! The region-parallel execution runtime.
//!
//! The paper's central observation is that time-traveling removes the
//! sequential dependency between sampling units: each detailed region's
//! explore→warm→measure chain is a pure function of the (position
//! addressable) execution and the region plan, so regions can be
//! evaluated in any order — and therefore in parallel. [`RegionScheduler`]
//! is the runtime for that observation: it partitions a strategy's
//! sampling plan into per-region **units**, fans the units out across a
//! rayon worker pool, and hands the results back **in plan order** so the
//! strategy's reduction (and hence its [`StrategyReport`]) is
//! byte-identical for every worker count.
//!
//! Two unit shapes cover all five strategies:
//!
//! * [`run_units`](RegionScheduler::run_units) — fully independent
//!   units. CoolSim (per-region watchpoint profiling), MRRL (per-region
//!   reuse-latency windows), checkpoint evaluation (restore + measure)
//!   and DeLorean (Scout → Explorers → Analyst per region) each own
//!   their cursor slices and per-region state outright, so every region
//!   is one independent unit.
//! * [`run_seeded`](RegionScheduler::run_seeded) — units seeded by a
//!   sequential carried-state lane. SMARTS-style functional warming
//!   *cannot* decouple regions completely: the hierarchy state at a
//!   region's warming boundary depends on every access before it. The
//!   seed pass runs in plan order on a producer lane (cumulatively
//!   warming one hierarchy and handing each unit a
//!   [`fork`](delorean_cache::Hierarchy::fork) of it), while the
//!   measure bodies fan out across the remaining workers as their seeds
//!   become available — a producer/consumer pipeline over the bounded
//!   channel shim, mirroring the paper's OS-pipe pass pipeline at region
//!   granularity.
//!
//! Determinism contract: unit bodies must be pure functions of
//! `(unit index, region, seed)`. The scheduler never lets the worker
//! count influence what a unit computes — only *when* it computes it —
//! and reduces results by unit index, so `workers = 1` and `workers = N`
//! produce bitwise-equal outputs (asserted for all five strategies by
//! `tests/determinism.rs`).
//!
//! [`StrategyReport`]: crate::StrategyReport

use crate::config::Region;
use crossbeam::channel::bounded;
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Fans a region plan's independent units out across a worker pool and
/// collects results in plan order.
///
/// The worker count is fixed at construction — results never depend on
/// it, so harness code is free to pick any bound (the batch executor
/// divides the machine between strategy×workload cells and region
/// workers to avoid oversubscription).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RegionScheduler {
    workers: usize,
}

impl RegionScheduler {
    /// A scheduler fanning units across `workers` workers (clamped ≥ 1).
    pub fn new(workers: usize) -> Self {
        RegionScheduler {
            workers: workers.max(1),
        }
    }

    /// The sequential scheduler: one worker, units in plan order. This is
    /// the reference execution the determinism tests compare against.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// A scheduler sized to the host's available parallelism.
    pub fn host() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// This scheduler's worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluate one fully independent unit per region, in parallel, and
    /// return the results in plan order.
    ///
    /// `unit` must be a pure function of `(index, region)` (plus
    /// captured immutable context); the scheduler guarantees the output
    /// vector is identical for every worker count.
    pub fn run_units<R: Send>(
        &self,
        regions: &[Region],
        unit: impl Fn(u32, &Region) -> R + Sync,
    ) -> Vec<R> {
        if self.workers <= 1 || regions.len() <= 1 {
            return regions
                .iter()
                .enumerate()
                .map(|(i, r)| unit(i as u32, r))
                .collect();
        }
        let jobs: Vec<(u32, &Region)> = regions
            .iter()
            .enumerate()
            .map(|(i, r)| (i as u32, r))
            .collect();
        // Building a pool per call is free with the offline rayon shim
        // (its ThreadPool holds no threads — it only records the worker
        // count that scoped parallel operations spawn). If the shim is
        // swapped for the registry rayon, hoist the pool into the
        // scheduler to avoid per-call thread churn.
        ThreadPoolBuilder::new()
            .num_threads(self.workers)
            .build()
            // lint:allow(no-unwrap): the offline rayon shim's pool build is infallible; with registry rayon a failure here is unrecoverable
            .expect("region worker pool")
            .install(|| jobs.par_iter().map(|&(i, r)| unit(i, r)).collect())
    }

    /// Evaluate units whose seeds come off a sequential carried-state
    /// lane: `seed` runs in plan order (it may fold mutable state across
    /// calls — the cumulative warm hierarchy), `body` runs on any worker
    /// once its unit's seed exists. Results come back in plan order.
    ///
    /// With more than one worker, the seed lane runs on a dedicated
    /// producer thread and bodies drain from a bounded channel on the
    /// remaining workers, so seed production overlaps body evaluation —
    /// the region-granular analogue of the paper's pass pipeline. With
    /// one worker the two interleave exactly like the classic sequential
    /// driver: seed(0), body(0), seed(1), body(1), …
    pub fn run_seeded<S: Send, R: Send>(
        &self,
        regions: &[Region],
        mut seed: impl FnMut(u32, &Region) -> S + Send,
        body: impl Fn(u32, &Region, S) -> R + Sync,
    ) -> Vec<R> {
        let n = regions.len();
        if self.workers <= 1 || n <= 1 {
            return regions
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let s = seed(i as u32, r);
                    body(i as u32, r, s)
                })
                .collect();
        }
        let consumers = (self.workers - 1).min(n);
        // The seed channel's bound is the pipeline depth: the producer
        // lane may run at most one seed per consumer ahead of the
        // slowest body, modeling a finite pipe buffer.
        let (seed_tx, seed_rx) = bounded::<(u32, S)>(consumers.max(2));
        let (done_tx, done_rx) = bounded::<(u32, R)>(n);
        let seed_rx = Mutex::new(seed_rx);
        let body = &body;
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for (i, r) in regions.iter().enumerate() {
                    let s = seed(i as u32, r);
                    if seed_tx.send((i as u32, s)).is_err() {
                        return; // consumers gone (a body panicked)
                    }
                }
            });
            for _ in 0..consumers {
                let done_tx = done_tx.clone();
                let seed_rx = &seed_rx;
                scope.spawn(move || loop {
                    // lint:allow(no-unwrap): a poisoned lock means a sibling worker panicked; propagating is the only sound recovery
                    let msg = seed_rx.lock().expect("seed channel lock").recv();
                    match msg {
                        Ok((i, s)) => {
                            let out = body(i, &regions[i as usize], s);
                            if done_tx.send((i, out)).is_err() {
                                return;
                            }
                        }
                        Err(_) => return, // producer done, channel drained
                    }
                });
            }
            drop(done_tx);
            let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
            for (i, out) in done_rx.iter() {
                slots[i as usize] = Some(out);
            }
            slots
                .into_iter()
                // lint:allow(no-unwrap): the consumer loop sends exactly one result per unit before the channel closes
                .map(|s| s.expect("every unit completed"))
                .collect()
        })
    }

    /// Evaluate **speculative** units: `spec` bodies are fully
    /// independent (each builds its own proxy state — no chain
    /// dependency, which is the entire point of the speculative warm
    /// lane) and fan out across `workers − 1` workers immediately, while
    /// `reconcile` runs on the calling thread **in plan order**, folding
    /// the sequential carried state and deciding commit vs re-measure
    /// for each unit as its speculation arrives.
    ///
    /// Out-of-order speculation results are buffered until the
    /// reconciler catches up, so `reconcile(i, …)` always observes units
    /// `0..i` already reconciled — exactly the sequential fold. With one
    /// worker the two interleave: spec(0), reconcile(0), spec(1), …
    ///
    /// Determinism contract: `spec` must be a pure function of
    /// `(index, region)`, and `reconcile` must not depend on *when* a
    /// speculation arrived — then the outputs (and every commit/miss
    /// decision) are bitwise identical for every worker count.
    pub fn run_speculative<S: Send, R: Send>(
        &self,
        regions: &[Region],
        spec: impl Fn(u32, &Region) -> S + Sync,
        mut reconcile: impl FnMut(u32, &Region, S) -> R + Send,
    ) -> Vec<R> {
        let n = regions.len();
        if self.workers <= 1 || n <= 1 {
            return regions
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    let s = spec(i as u32, r);
                    reconcile(i as u32, r, s)
                })
                .collect();
        }
        let pool = (self.workers - 1).min(n);
        let next = AtomicUsize::new(0);
        let (done_tx, done_rx) = bounded::<(u32, S)>(n);
        let spec = &spec;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..pool {
                let done_tx = done_tx.clone();
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let s = spec(i as u32, &regions[i]);
                    if done_tx.send((i as u32, s)).is_err() {
                        return; // reconciler gone (a sibling panicked)
                    }
                });
            }
            drop(done_tx);
            let mut pending: Vec<Option<S>> = (0..n).map(|_| None).collect();
            let mut out = Vec::with_capacity(n);
            for (i, s) in done_rx.iter() {
                pending[i as usize] = Some(s);
                while out.len() < n {
                    match pending[out.len()].take() {
                        Some(s) => {
                            let i = out.len() as u32;
                            out.push(reconcile(i, &regions[i as usize], s));
                        }
                        None => break,
                    }
                }
            }
            assert_eq!(out.len(), n, "every speculation must arrive");
            out
        })
    }
}

impl Default for RegionScheduler {
    /// The sequential scheduler — parallelism is always an explicit
    /// opt-in (via [`RegionScheduler::new`] or a runner's
    /// `with_region_workers`).
    fn default() -> Self {
        Self::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SamplingConfig;
    use delorean_trace::Scale;

    fn regions(n: u32) -> Vec<Region> {
        SamplingConfig::for_scale(Scale::tiny())
            .with_regions(n)
            .plan()
            .regions
    }

    #[test]
    fn independent_units_come_back_in_plan_order() {
        let rs = regions(7);
        let reference: Vec<u64> = rs.iter().map(|r| r.start_instr * 3).collect();
        for workers in [1, 2, 4, 8] {
            let got = RegionScheduler::new(workers).run_units(&rs, |_, r| r.start_instr * 3);
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn seeded_units_see_the_sequential_fold() {
        let rs = regions(6);
        // The seed lane folds a running sum; every worker count must
        // observe the same per-unit prefix.
        let reference: Vec<u64> = {
            let mut acc = 0u64;
            rs.iter()
                .map(|r| {
                    acc += r.start_instr;
                    acc
                })
                .collect()
        };
        for workers in [1, 2, 3, 8] {
            let mut acc = 0u64;
            let got = RegionScheduler::new(workers).run_seeded(
                &rs,
                move |_, r| {
                    acc += r.start_instr;
                    acc
                },
                |_, _, s| s,
            );
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn worker_count_is_clamped_and_reported() {
        assert_eq!(RegionScheduler::new(0).workers(), 1);
        assert_eq!(RegionScheduler::new(5).workers(), 5);
        assert_eq!(RegionScheduler::sequential().workers(), 1);
        assert_eq!(RegionScheduler::default(), RegionScheduler::sequential());
        assert!(RegionScheduler::host().workers() >= 1);
    }

    #[test]
    fn speculative_units_reconcile_in_plan_order() {
        let rs = regions(6);
        // The reconciler folds a running product over (index, spec value);
        // any arrival order must yield the sequential fold.
        let reference: Vec<u64> = {
            let mut acc = 1u64;
            rs.iter()
                .enumerate()
                .map(|(i, r)| {
                    acc = acc.wrapping_mul(r.start_instr + i as u64 + 2);
                    acc
                })
                .collect()
        };
        for workers in [1, 2, 3, 8] {
            let mut acc = 1u64;
            let got = RegionScheduler::new(workers).run_speculative(
                &rs,
                |i, r| r.start_instr + u64::from(i) + 2,
                |_, _, s| {
                    acc = acc.wrapping_mul(s);
                    acc
                },
            );
            assert_eq!(got, reference, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_single_region_plans_work() {
        let rs = regions(1);
        let got = RegionScheduler::new(4).run_units(&rs, |i, _| i);
        assert_eq!(got, vec![0]);
        let got = RegionScheduler::new(4).run_seeded(&rs, |i, _| i, |_, _, s| s);
        assert_eq!(got, vec![0]);
        let none: Vec<Region> = Vec::new();
        let got: Vec<u32> = RegionScheduler::new(4).run_units(&none, |i, _| i);
        assert!(got.is_empty());
    }
}
