//! Sampled-simulation framework: the strategy execution layer and the
//! paper's baselines.
//!
//! * [`SamplingStrategy`] / [`StrategyReport`] — the unified interface
//!   every warming strategy implements; harness code executes any mix of
//!   strategies through `Box<dyn SamplingStrategy>` trait objects (the
//!   parallel batch executor lives in `delorean_bench`).
//! * [`SamplingConfig`] / [`RegionPlan`] — where the detailed regions sit
//!   (§5: 10 regions spread 1 B instructions apart, 10 k-instruction
//!   regions, 30 k instructions of detailed warming before each).
//! * [`SmartsRunner`] — SMARTS: functional warming of *every* memory
//!   access between regions. Slow, but the accuracy **reference** for
//!   every figure.
//! * [`CoolSimRunner`] — CoolSim: randomized statistical warming with the
//!   paper's best adaptive schedule (sample 1/40 k memory instructions for
//!   the first 75% of the interval, 1/20 k for the next 20%, 1/10 k for
//!   the last 5%), per-PC reuse profiles, and statistical hit/miss
//!   prediction in the detailed region.
//! * [`CheckpointWarmingRunner`] — checkpointed warming (TurboSMARTS /
//!   Live points, §7): exact SMARTS state restored from per-region
//!   snapshots; fast after preparation but storage-bound and invalidated
//!   by software changes.
//! * [`MrrlRunner`] — adaptive functional warming (MRRL, §7): shortens
//!   the warming window to a reuse-latency percentile.
//! * [`SimulationReport`] — per-region and aggregate CPI/MPKI plus cost
//!   accounting, shared with DeLorean so every strategy is compared with
//!   identical metrics.
//!
//! The shared per-region scaffolding (cost clock, detailed tail, report
//! assembly) lives in the private `driver` module; strategies implement
//! only the warming work that actually differs between them.
//!
//! All five strategies execute through the **region-parallel runtime**:
//! [`RegionScheduler`] partitions a plan into per-region units — fully
//! independent for CoolSim/MRRL/checkpoint-evaluation/DeLorean, seeded
//! off a sequential warm lane for SMARTS/checkpoint-preparation — fans
//! them across a worker pool, and reduces results in plan order, so
//! every report is byte-identical for every worker count. Per-unit
//! costs are recorded on the report
//! ([`RunCost::units`](delorean_virt::RunCost::units)), from which
//! [`RunCost::region_parallel_wallclock`](delorean_virt::RunCost::region_parallel_wallclock)
//! models wallclock at any worker count.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod checkpoint;
mod config;
mod coolsim;
mod driver;
pub mod metrics;
mod mrrl;
mod proxy;
mod report;
mod scheduler;
mod smarts;
mod strategy;

pub use checkpoint::{CheckpointExtras, CheckpointSet, CheckpointWarmingRunner};
pub use config::{Region, RegionPlan, SamplingConfig};
pub use coolsim::{CoolSimConfig, CoolSimRunner};
pub use driver::{reduce_region_units, RegionUnit};
pub use mrrl::MrrlRunner;
pub use proxy::{ProxyStateSource, SpeculationExtras};
pub use report::{RegionReport, SimulationReport};
pub use scheduler::{LostUnits, RegionScheduler};
pub use smarts::SmartsRunner;
pub use strategy::{PartialReport, SamplingStrategy, StrategyReport};

// Fault-isolation vocabulary, re-exported so harness code can configure
// retry budgets and inspect quarantines without a direct trace-crate
// dependency.
pub use delorean_trace::fault::{FaultPolicy, UnitFailure, UnitFault};

use delorean_cpu::{
    simulate_detailed, DetailedResult, OutcomeSource, TimingConfig, TournamentPredictor,
};
use delorean_trace::Workload;

/// Run one region's detailed warming + detailed simulation with a fresh
/// pipeline (predictor) and an arbitrary outcome source.
///
/// This is the shared tail of every strategy: 30 k instructions of
/// detailed warm-up (which builds the *lukewarm* cache state inside
/// `source`) followed by the measured detailed region.
pub fn run_region_detailed(
    workload: &dyn Workload,
    region: &Region,
    timing: &TimingConfig,
    source: &mut dyn OutcomeSource,
) -> DetailedResult {
    let mut predictor = TournamentPredictor::new();
    let _warm = simulate_detailed(
        workload,
        region.warming.clone(),
        timing,
        &mut predictor,
        source,
    );
    simulate_detailed(
        workload,
        region.detailed.clone(),
        timing,
        &mut predictor,
        source,
    )
}
