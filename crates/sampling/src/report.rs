//! Unified result reporting across sampling strategies.

use delorean_cpu::DetailedResult;
use delorean_virt::{mips, RunCost};
use serde::{Deserialize, Serialize};

/// Detailed result of a single region.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegionReport {
    /// Region number.
    pub region: u32,
    /// Measured detailed result.
    pub detailed: DetailedResult,
}

/// The full outcome of one sampled-simulation run — shared by SMARTS,
/// CoolSim and DeLorean so strategies are compared with identical metrics.
///
/// `PartialEq` compares every field, cost accounting included — the
/// region scheduler's determinism contract (*worker count never changes
/// the report*) is asserted with plain `==`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Workload name.
    pub workload: String,
    /// Strategy name ("smarts", "coolsim", "delorean").
    pub strategy: String,
    /// Per-region results.
    pub regions: Vec<RegionReport>,
    /// Reuse distances collected during warm-up (Figure 6; 0 for SMARTS).
    pub collected_reuse_distances: u64,
    /// Host cost, by pass.
    pub cost: RunCost,
    /// Instructions covered by the run (for MIPS arithmetic).
    pub covered_instrs: u64,
}

impl SimulationReport {
    /// Merged detailed results across regions.
    pub fn total(&self) -> DetailedResult {
        let mut t = DetailedResult::default();
        for r in &self.regions {
            t.merge(&r.detailed);
        }
        t
    }

    /// Aggregate CPI over all regions.
    ///
    /// Returns 0 for an empty plan or zero simulated instructions —
    /// never NaN, so degenerate runs stay plottable.
    pub fn cpi(&self) -> f64 {
        self.total().cpi()
    }

    /// Aggregate LLC MPKI over all regions (0 for zero instructions).
    pub fn llc_mpki(&self) -> f64 {
        self.total().llc_mpki()
    }

    /// Relative CPI error against a reference report, in `[0, ∞)`.
    ///
    /// Both reports empty (CPI 0 vs CPI 0) compares equal: error 0.
    pub fn cpi_error_vs(&self, reference: &SimulationReport) -> f64 {
        crate::metrics::relative_error(self.cpi(), reference.cpi())
    }

    /// Effective simulation speed in MIPS under pipelined execution
    /// (0 for a zero-cost run).
    pub fn mips_pipelined(&self) -> f64 {
        mips(self.covered_instrs, self.cost.pipelined_wallclock())
    }

    /// Effective simulation speed in MIPS under serial execution
    /// (0 for a zero-cost run).
    pub fn mips_serial(&self) -> f64 {
        mips(self.covered_instrs, self.cost.serial_wallclock())
    }

    /// Effective simulation speed in MIPS when the run's region units
    /// execute on `workers` region-scheduler workers (see
    /// [`RunCost::region_parallel_wallclock`]; serial speed for runs
    /// with no recorded units).
    pub fn mips_at_workers(&self, workers: usize) -> f64 {
        mips(
            self.covered_instrs,
            self.cost.region_parallel_wallclock(workers),
        )
    }

    /// Speed relative to a reference report (both pipelined).
    ///
    /// Degenerate zero-cost reports (empty plans) stay finite: two
    /// zero-cost runs compare equal (1.0), and a zero-cost run measured
    /// against a real one reports 0.0 — conservative, and safe to feed
    /// into geomeans — rather than ±∞.
    pub fn speedup_vs(&self, reference: &SimulationReport) -> f64 {
        let mine = self.cost.pipelined_wallclock();
        let theirs = reference.cost.pipelined_wallclock();
        if mine <= 0.0 {
            if theirs <= 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            theirs / mine
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_virt::HostClock;

    fn report_with(cpi_cycles: f64, instrs: u64, seconds: f64, covered: u64) -> SimulationReport {
        let mut cost = RunCost::new(1);
        let mut clock = HostClock::new();
        clock.charge(seconds);
        cost.push("run", clock);
        SimulationReport {
            workload: "w".into(),
            strategy: "s".into(),
            regions: vec![RegionReport {
                region: 0,
                detailed: DetailedResult {
                    instructions: instrs,
                    cycles: cpi_cycles,
                    ..Default::default()
                },
            }],
            collected_reuse_distances: 0,
            cost,
            covered_instrs: covered,
        }
    }

    #[test]
    fn cpi_and_errors() {
        let a = report_with(1000.0, 1000, 1.0, 1_000_000);
        let b = report_with(1100.0, 1000, 2.0, 1_000_000);
        assert!((a.cpi() - 1.0).abs() < 1e-12);
        assert!((b.cpi_error_vs(&a) - 0.1).abs() < 1e-12);
        assert!((a.speedup_vs(&b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mips_is_covered_over_wallclock() {
        let a = report_with(1000.0, 1000, 2.0, 10_000_000);
        assert!((a.mips_pipelined() - 5.0).abs() < 1e-9);
        assert!((a.mips_serial() - 5.0).abs() < 1e-9);
    }

    /// Empty plans and zero-instruction regions must yield well-defined
    /// (finite, zero) metrics — never NaN/∞ leaking into figure output.
    #[test]
    fn empty_and_zero_instruction_reports_stay_finite() {
        let empty = SimulationReport::default();
        assert_eq!(empty.cpi(), 0.0);
        assert_eq!(empty.llc_mpki(), 0.0);
        assert_eq!(empty.mips_pipelined(), 0.0);
        assert_eq!(empty.mips_serial(), 0.0);
        assert_eq!(empty.cpi_error_vs(&empty), 0.0);
        assert_eq!(empty.speedup_vs(&empty), 1.0);

        // Zero-instruction region (e.g. a degenerate plan entry).
        let zero_region = report_with(0.0, 0, 0.0, 0);
        assert_eq!(zero_region.cpi(), 0.0);
        assert_eq!(zero_region.llc_mpki(), 0.0);
        assert!(zero_region.cpi().is_finite());

        // Zero-cost vs real-cost comparisons stay finite and ordered.
        let real = report_with(1000.0, 1000, 1.0, 1_000_000);
        assert_eq!(empty.speedup_vs(&real), 0.0);
        assert!((real.speedup_vs(&empty) - 0.0).abs() < 1e-12);
        assert_eq!(empty.cpi_error_vs(&real), 1.0);
        assert!(real.cpi_error_vs(&empty).is_finite());
    }

    #[test]
    fn totals_merge_regions() {
        let mut r = report_with(500.0, 1000, 1.0, 1);
        r.regions.push(RegionReport {
            region: 1,
            detailed: DetailedResult {
                instructions: 1000,
                cycles: 1500.0,
                ..Default::default()
            },
        });
        assert!((r.cpi() - 1.0).abs() < 1e-12);
    }
}
