//! Proxy state sources for the speculative warm lane.
//!
//! SMARTS's warm chain is sequential because the hierarchy at a region
//! boundary depends on every access before it. The speculative lane
//! breaks the chain by *guessing* that state: each worker builds a cheap
//! **proxy** of the hierarchy at its region's chain position, records the
//! proxy's [`Hierarchy::state_digest`], and warms/measures from it in
//! parallel. A sequential reconciler later compares the digest against
//! the true carried state — on a match the speculative measurement is
//! committed as-is; on a mismatch the region is re-measured from the
//! true state, so the final report is bitwise identical to sequential
//! SMARTS either way.
//!
//! A proxy source must be a **deterministic function of
//! `(workload, plan, region index)`** — never of runtime timing —
//! so the commit/miss pattern (and with it the modeled speedup and the
//! speculation extras) is identical at every worker count.

use delorean_cache::{Hierarchy, MachineConfig};
use delorean_statmodel::plan_warm_window;
use delorean_trace::{LineAddr, Pc, Workload, WorkloadExt};
use delorean_virt::{CostModel, SpecUnit, WorkKind};

/// Accesses probed per LLC line when sizing a statmodel-directed window.
const STATMODEL_PROBE_PER_LINE: u64 = 8;

/// Safety margin multiplying the critical reuse distance: the window
/// must also converge the L1 recency state and the MSHR/no-pressure
/// corners the LLC-level critical distance underestimates (empirically,
/// hmmer-class workloads need ~7× their critical distance; 8 adds slack
/// without eroding the win — the window stays ~25× shorter than the
/// blind prefix at demo scale).
const STATMODEL_MARGIN: u64 = 8;

/// A line address no synthetic workload ever touches — the poisoned
/// proxy's sentinel.
const POISON_LINE: u64 = u64::MAX - 1;

/// Where a speculative worker gets its starting hierarchy state.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProxyStateSource {
    /// A cold hierarchy. Free to build; commits exactly the regions
    /// whose true boundary state happens to be cold (always region 0).
    Cold,
    /// Warm from cold over the span since the nearest preceding region
    /// boundary — a deterministic stand-in for "resume from the nearest
    /// completed true state" that keeps the commit pattern independent
    /// of runtime completion order.
    NearestBoundary,
    /// Statmodel-directed window: probe the reuse behaviour just before
    /// the boundary, invert it into the critical reuse distance for the
    /// LLC ([`delorean_statmodel::plan_warm_window`]), and warm only
    /// that window from cold — the DeLorean thesis (directed beats
    /// blind) applied to the warm chain itself.
    StatModel,
    /// A deliberately wrong proxy (a sentinel line is planted after
    /// construction), guaranteeing a digest mismatch for every region.
    /// Exists for tests: reconciliation must re-measure everything and
    /// still produce the sequential report.
    Poisoned,
}

impl ProxyStateSource {
    /// Stable lowercase identifier for reports and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ProxyStateSource::Cold => "cold",
            ProxyStateSource::NearestBoundary => "nearest-boundary",
            ProxyStateSource::StatModel => "statmodel",
            ProxyStateSource::Poisoned => "poisoned",
        }
    }

    /// Build the proxy hierarchy approximating the warm chain at access
    /// position `pos`, with `prev_pos` the nearest preceding region
    /// boundary. Returns the hierarchy plus the modeled host seconds of
    /// building it (the context's `p`/`mult` convert spans to
    /// represented instructions, exactly like the chain's own charges).
    pub(crate) fn build(
        &self,
        ctx: &ProxyContext<'_>,
        pos: u64,
        prev_pos: u64,
    ) -> (Hierarchy, f64) {
        let ProxyContext {
            machine,
            cost,
            workload,
            p,
            mult,
        } = *ctx;
        let mut h = Hierarchy::new(machine);
        match self {
            ProxyStateSource::Cold => (h, 0.0),
            ProxyStateSource::NearestBoundary => {
                let span = pos.saturating_sub(prev_pos);
                h.warm_range(workload, prev_pos..pos);
                (h, cost.instr_seconds(WorkKind::Functional, span * p * mult))
            }
            ProxyStateSource::StatModel => {
                let llc_lines = machine.hierarchy.llc.lines();
                let probe_len = (llc_lines * STATMODEL_PROBE_PER_LINE).min(pos);
                let mut probe: Vec<LineAddr> = Vec::with_capacity(probe_len as usize);
                workload.for_each_access(pos - probe_len..pos, |a| probe.push(a.line()));
                let plan = plan_warm_window(&probe, llc_lines, pos, STATMODEL_MARGIN);
                h.warm_range(workload, pos - plan.window..pos);
                // The probe is a near-native scan (watchpoint-style);
                // only the window is warmed at functional speed.
                let seconds = cost.instr_seconds(WorkKind::Vff, probe_len * p * mult)
                    + cost.instr_seconds(WorkKind::Functional, plan.window * p * mult);
                (h, seconds)
            }
            ProxyStateSource::Poisoned => {
                h.access_data(Pc(0), LineAddr(POISON_LINE), 0);
                (h, 0.0)
            }
        }
    }
}

/// Everything a proxy build needs that does not vary per region: the
/// machine, the cost model, the workload and the span-to-instruction
/// conversion factors (`p` = memory period, `mult` = plan work
/// multiplier).
#[derive(Copy, Clone)]
pub(crate) struct ProxyContext<'a> {
    pub machine: &'a MachineConfig,
    pub cost: &'a CostModel,
    pub workload: &'a dyn Workload,
    pub p: u64,
    pub mult: u64,
}

/// Speculation statistics attached to a speculative run's
/// [`StrategyReport`](crate::StrategyReport) — kept *outside* the
/// [`SimulationReport`](crate::SimulationReport) so the report stays
/// bitwise identical to the sequential run's.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeculationExtras {
    /// The proxy source the run speculated from.
    pub proxy: ProxyStateSource,
    /// Per-region outcome, in plan order — feeds
    /// [`RunCost::speculative_wallclock`](delorean_virt::RunCost::speculative_wallclock).
    pub outcomes: Vec<SpecUnit>,
}

impl SpeculationExtras {
    /// Number of regions whose speculative measurement was committed.
    pub fn hits(&self) -> usize {
        self.outcomes.iter().filter(|o| o.committed).count()
    }

    /// Fraction of regions committed (1.0 for an empty plan).
    pub fn hit_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            1.0
        } else {
            self.hits() as f64 / self.outcomes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_trace::{spec_workload, Scale};

    #[test]
    fn proxy_sources_have_stable_names() {
        assert_eq!(ProxyStateSource::Cold.name(), "cold");
        assert_eq!(ProxyStateSource::NearestBoundary.name(), "nearest-boundary");
        assert_eq!(ProxyStateSource::StatModel.name(), "statmodel");
        assert_eq!(ProxyStateSource::Poisoned.name(), "poisoned");
    }

    #[test]
    fn statmodel_proxy_converges_to_the_chain_state() {
        let scale = Scale::tiny();
        let w = spec_workload("hmmer", scale, 1).unwrap();
        let machine = MachineConfig::for_scale(scale);
        let cost = CostModel::paper_host();
        let pos = 60_000u64;
        let mut chain = Hierarchy::new(&machine);
        chain.warm_range(&w, 0..pos);
        let ctx = ProxyContext {
            machine: &machine,
            cost: &cost,
            workload: &w,
            p: 3,
            mult: 4000,
        };
        let (proxy, seconds) = ProxyStateSource::StatModel.build(&ctx, pos, 30_000);
        assert_eq!(proxy.state_digest(), chain.state_digest());
        // The directed window is a small fraction of the blind prefix.
        let blind = cost.instr_seconds(WorkKind::Functional, pos * 3 * 4000);
        assert!(seconds < blind / 2.0, "directed {seconds} vs blind {blind}");
    }

    #[test]
    fn cold_proxy_is_free_and_cold() {
        let scale = Scale::tiny();
        let w = spec_workload("mcf", scale, 1).unwrap();
        let machine = MachineConfig::for_scale(scale);
        let cost = CostModel::paper_host();
        let ctx = ProxyContext {
            machine: &machine,
            cost: &cost,
            workload: &w,
            p: 3,
            mult: 1,
        };
        let (proxy, seconds) = ProxyStateSource::Cold.build(&ctx, 50_000, 0);
        assert_eq!(seconds, 0.0);
        assert_eq!(
            proxy.state_digest(),
            Hierarchy::new(&machine).state_digest()
        );
    }

    #[test]
    fn poisoned_proxy_never_matches_cold_or_warm_state() {
        let scale = Scale::tiny();
        let w = spec_workload("hmmer", scale, 1).unwrap();
        let machine = MachineConfig::for_scale(scale);
        let cost = CostModel::paper_host();
        let ctx = ProxyContext {
            machine: &machine,
            cost: &cost,
            workload: &w,
            p: 3,
            mult: 1,
        };
        let (proxy, _) = ProxyStateSource::Poisoned.build(&ctx, 0, 0);
        assert_ne!(
            proxy.state_digest(),
            Hierarchy::new(&machine).state_digest(),
            "poison must differ from cold"
        );
        let mut warm = Hierarchy::new(&machine);
        warm.warm_range(&w, 0..10_000);
        assert_ne!(proxy.state_digest(), warm.state_digest());
    }

    #[test]
    fn extras_count_hits() {
        let outcomes = vec![
            SpecUnit {
                unit: 0,
                committed: true,
                proxy_seconds: 0.0,
                speculative_seconds: 1.0,
            },
            SpecUnit {
                unit: 1,
                committed: false,
                proxy_seconds: 0.0,
                speculative_seconds: 1.0,
            },
        ];
        let e = SpeculationExtras {
            proxy: ProxyStateSource::Cold,
            outcomes,
        };
        assert_eq!(e.hits(), 1);
        assert!((e.hit_rate() - 0.5).abs() < 1e-12);
    }
}
