//! Per-unit scaffolding and input-ordered reduction for sampling
//! strategies.
//!
//! Every warming strategy evaluates the same skeleton per detailed
//! region: charge host cost for the warm-up work, run detailed warming
//! plus the measured region against a strategy-specific outcome source,
//! and record the region result. Under the region-parallel runtime
//! ([`RegionScheduler`](crate::RegionScheduler)) that skeleton is one
//! **unit**: [`UnitDriver`] owns a single region's clock and result, and
//! [`reduce_units`] folds the finished units back into a
//! [`SimulationReport`] **in plan order** — so the assembled report (its
//! `f64` cost sums included) is bitwise identical for every worker
//! count, and the sequential driver is simply the scheduler at one
//! worker.

use crate::config::{Region, RegionPlan};
use crate::report::{RegionReport, SimulationReport};
use crate::run_region_detailed;
use delorean_cpu::{OutcomeSource, TimingConfig};
use delorean_trace::Workload;
use delorean_virt::{CostModel, HostClock, RunCost, WorkKind};

/// Drives one region unit: its parallel-lane cost clock, the detailed
/// simulation of its region, and the unit result.
#[derive(Debug)]
pub(crate) struct UnitDriver<'a> {
    workload: &'a dyn Workload,
    timing: &'a TimingConfig,
    cost: &'a CostModel,
    clock: HostClock,
    collected: u64,
}

impl<'a> UnitDriver<'a> {
    /// A driver for one unit, with an empty clock.
    pub fn new(workload: &'a dyn Workload, timing: &'a TimingConfig, cost: &'a CostModel) -> Self {
        UnitDriver {
            workload,
            timing,
            cost,
            clock: HostClock::new(),
            collected: 0,
        }
    }

    /// Charge `instrs` instructions of `kind` work to the unit clock.
    pub fn charge_work(&mut self, kind: WorkKind, instrs: u64) {
        self.clock.charge(self.cost.instr_seconds(kind, instrs));
    }

    /// Charge raw host seconds (per-event costs such as traps).
    pub fn charge_seconds(&mut self, seconds: f64) {
        self.clock.charge(seconds);
    }

    /// Count reuse distances collected during warm-up (Figure 6).
    pub fn record_collected(&mut self, n: u64) {
        self.collected += n;
    }

    /// Charge the detailed span (warming + measured region, at face
    /// value), run it against `source`, and finish the unit.
    pub fn measure_region(mut self, region: &Region, source: &mut dyn OutcomeSource) -> RegionUnit {
        let span = region.detailed.end.saturating_sub(region.warming.start);
        self.clock
            .charge(self.cost.instr_seconds(WorkKind::Detailed, span));
        let result = run_region_detailed(self.workload, region, self.timing, source);
        RegionUnit {
            report: RegionReport {
                region: region.index,
                detailed: result,
            },
            seconds: self.clock.seconds(),
            collected: self.collected,
        }
    }
}

/// The finished output of one region unit.
///
/// This is the serialization boundary of the region-parallel runtime:
/// a unit is a plain value — region result, parallel-lane seconds,
/// collected reuse distances — so decomposable strategies can evaluate
/// units anywhere (another thread, another process, another host) and
/// ship them back for the plan-ordered fold
/// ([`reduce_region_units`]). Producing units out of order, in
/// batches, or redundantly never changes the folded report.
#[derive(Clone, Debug, PartialEq)]
pub struct RegionUnit {
    /// The measured region result.
    pub report: RegionReport,
    /// Parallel-lane host seconds this unit consumed.
    pub seconds: f64,
    /// Reuse distances the unit collected.
    pub collected: u64,
}

/// Fold finished units (plus optional per-unit chained-lane seconds)
/// into the final report, in plan order.
///
/// `chained` holds the sequential carried-state lane's per-unit cost
/// (empty for strategies whose regions are fully independent). The fold
/// charges `chained[i]` then `units[i].seconds` for each region in
/// order, so the resulting pass total has one fixed `f64` summation
/// tree regardless of how the units were scheduled.
pub(crate) fn reduce_units(
    workload: &dyn Workload,
    plan: &RegionPlan,
    strategy: &str,
    chained: &[f64],
    units: Vec<RegionUnit>,
) -> SimulationReport {
    reduce_units_partial(
        workload,
        plan,
        strategy,
        chained,
        units.into_iter().map(Some).collect(),
    )
}

/// [`reduce_units`] over a plan with **quarantined holes**: `None`
/// slots (units the fault-isolated scheduler gave up on) are skipped
/// entirely — no region report, no cost unit, no chained charge. With
/// every slot `Some` the fold is *the* fold of [`reduce_units`] (which
/// delegates here), so a clean isolated run's report is bitwise
/// identical to the plain path's.
///
/// `covered_instrs` intentionally stays the full plan's figure: the
/// report still describes the same sampling design, and the caller's
/// [`PartialReport`](crate::PartialReport) names exactly which units
/// are missing from it.
pub(crate) fn reduce_units_partial(
    workload: &dyn Workload,
    plan: &RegionPlan,
    strategy: &str,
    chained: &[f64],
    units: Vec<Option<RegionUnit>>,
) -> SimulationReport {
    reduce_named(workload.name(), plan, strategy, chained, units)
}

/// Fold independently-evaluated units back into a [`SimulationReport`]
/// in plan order — the public face of the in-process fold, for callers
/// (the shard broker) that hold serialized units and the workload's
/// *name* rather than the workload itself.
///
/// For strategies whose regions are fully independent (empty chained
/// lane: CoolSim, MRRL), feeding this the units produced by
/// [`SamplingStrategy::run_unit_span`](crate::SamplingStrategy::run_unit_span)
/// over the whole plan yields a report **bitwise identical** to
/// [`SamplingStrategy::run`](crate::SamplingStrategy::run) — the fold
/// is literally the same code with the same fixed `f64` summation
/// tree. `None` slots are quarantined holes, skipped exactly as the
/// fault-isolated in-process path skips them.
pub fn reduce_region_units(
    workload_name: &str,
    plan: &RegionPlan,
    strategy: &str,
    units: Vec<Option<RegionUnit>>,
) -> SimulationReport {
    reduce_named(workload_name, plan, strategy, &[], units)
}

/// The one fold every reduce path shares.
fn reduce_named(
    workload_name: &str,
    plan: &RegionPlan,
    strategy: &str,
    chained: &[f64],
    units: Vec<Option<RegionUnit>>,
) -> SimulationReport {
    let mut clock = HostClock::new();
    let mut cost = RunCost::new(plan.regions.len() as u64);
    let mut regions = Vec::with_capacity(units.len());
    let mut collected = 0u64;
    for (i, unit) in units.into_iter().enumerate() {
        let Some(unit) = unit else { continue };
        let chain = chained.get(i).copied().unwrap_or(0.0);
        clock.charge(chain);
        clock.charge(unit.seconds);
        cost.push_unit(unit.report.region, chain, unit.seconds);
        collected += unit.collected;
        regions.push(unit.report);
    }
    cost.push(strategy, clock);
    SimulationReport {
        workload: workload_name.to_string(),
        strategy: strategy.into(),
        regions,
        collected_reuse_distances: collected,
        cost,
        covered_instrs: plan.represented_instrs(),
    }
}
