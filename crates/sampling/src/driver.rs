//! Shared region-loop scaffolding for sampling strategies.
//!
//! Every warming strategy walks the same skeleton: iterate the plan's
//! regions in order, charge host cost for the warm-up work between
//! regions, run detailed warming plus the measured detailed region
//! against a strategy-specific outcome source, and assemble the
//! per-region results into a [`SimulationReport`] with cost accounting.
//! [`RegionDriver`] owns that skeleton; strategies only contribute the
//! warming work and the outcome source — the parts that actually differ.

use crate::config::{Region, RegionPlan};
use crate::report::{RegionReport, SimulationReport};
use crate::run_region_detailed;
use delorean_cpu::{OutcomeSource, TimingConfig};
use delorean_trace::Workload;
use delorean_virt::{CostModel, HostClock, RunCost, WorkKind};

/// Drives the per-region loop of one strategy run: cost clock, detailed
/// simulation of each region, and final report assembly.
#[derive(Debug)]
pub(crate) struct RegionDriver<'a> {
    workload: &'a dyn Workload,
    plan: &'a RegionPlan,
    timing: &'a TimingConfig,
    cost: &'a CostModel,
    clock: HostClock,
    regions: Vec<RegionReport>,
    collected: u64,
}

impl<'a> RegionDriver<'a> {
    /// A driver at the start of the run, with an empty clock.
    pub fn new(
        workload: &'a dyn Workload,
        plan: &'a RegionPlan,
        timing: &'a TimingConfig,
        cost: &'a CostModel,
    ) -> Self {
        RegionDriver {
            workload,
            plan,
            timing,
            cost,
            clock: HostClock::new(),
            regions: Vec::with_capacity(plan.regions.len()),
            collected: 0,
        }
    }

    /// Charge `instrs` instructions of `kind` work to the run clock.
    pub fn charge_work(&mut self, kind: WorkKind, instrs: u64) {
        self.clock.charge(self.cost.instr_seconds(kind, instrs));
    }

    /// Charge raw host seconds (per-event costs such as traps).
    pub fn charge_seconds(&mut self, seconds: f64) {
        self.clock.charge(seconds);
    }

    /// Count reuse distances collected during warm-up (Figure 6).
    pub fn record_collected(&mut self, n: u64) {
        self.collected += n;
    }

    /// Charge the detailed span (warming + measured region, at face
    /// value) and run it against `source`, recording the region result.
    pub fn measure_region(&mut self, region: &Region, source: &mut dyn OutcomeSource) {
        let span = region.detailed.end.saturating_sub(region.warming.start);
        self.clock
            .charge(self.cost.instr_seconds(WorkKind::Detailed, span));
        let result = run_region_detailed(self.workload, region, self.timing, source);
        self.regions.push(RegionReport {
            region: region.index,
            detailed: result,
        });
    }

    /// Assemble the final report; `strategy` names both the report and
    /// its single cost pass.
    pub fn finish(self, strategy: &str) -> SimulationReport {
        let mut cost = RunCost::new(self.plan.regions.len() as u64);
        cost.push(strategy, self.clock);
        SimulationReport {
            workload: self.workload.name().to_string(),
            strategy: strategy.into(),
            regions: self.regions,
            collected_reuse_distances: self.collected,
            cost,
            covered_instrs: self.plan.represented_instrs(),
        }
    }
}
