//! SMARTS: sampled simulation with functional warming.
//!
//! The reference methodology (Wunderlich et al., ISCA 2003): between
//! detailed regions, *every* memory access is run through the simulated
//! cache hierarchy so that cache state is always perfectly warm. Accurate
//! and storage-free, but slow — the cost model charges every warm-up
//! instruction at functional-simulation speed, which is why the paper
//! measures SMARTS at 1.3 MIPS.

use crate::config::RegionPlan;
use crate::driver::RegionDriver;
use crate::strategy::{SamplingStrategy, StrategyReport};
use delorean_cache::{Hierarchy, MachineConfig};
use delorean_cpu::TimingConfig;
use delorean_trace::{MemAccess, Workload};
use delorean_virt::{CostModel, WorkKind};

/// The SMARTS (functional warming) runner.
#[derive(Clone, Debug)]
pub struct SmartsRunner {
    machine: MachineConfig,
    timing: TimingConfig,
    cost: CostModel,
}

impl SmartsRunner {
    /// A runner with Table 1 timing and the paper-host cost model.
    pub fn new(machine: MachineConfig) -> Self {
        SmartsRunner {
            machine,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
        }
    }

    /// Override the timing configuration.
    pub fn with_timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Override the host cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }
}

impl SamplingStrategy for SmartsRunner {
    fn name(&self) -> &str {
        "smarts"
    }

    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport {
        let mut driver = RegionDriver::new(workload, plan, &self.timing, &self.cost);
        let mut hierarchy = Hierarchy::new(&self.machine);
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();
        let mut pos_access: u64 = 0;

        for region in &plan.regions {
            // Functional warming: simulate every access up to the start of
            // detailed warming, batched slice-at-a-time straight into the
            // hierarchy. Interval work is charged at represented
            // (paper-equivalent) magnitude.
            let warm_end_access = region.warming.start / p;
            let span = warm_end_access.saturating_sub(pos_access);
            driver.charge_work(WorkKind::Functional, span * p * mult);
            hierarchy.warm_range(workload, pos_access..warm_end_access);

            // Detailed warming + detailed region on the (fully warm)
            // hierarchy.
            let mut source = |a: &MemAccess, now: u64| hierarchy.access_data(a.pc, a.line(), now);
            driver.measure_region(region, &mut source);
            pos_access = region.detailed.end / p;
        }
        driver.finish(self.name()).into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SamplingConfig;
    use delorean_trace::{spec_workload, Scale};

    fn quick_plan() -> RegionPlan {
        SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan()
    }

    #[test]
    fn produces_region_results_and_cost() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let report =
            SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        assert_eq!(report.regions.len(), 3);
        assert!(report.cpi() > 0.0);
        assert!(report.cost.total_resources() > 0.0);
        assert_eq!(report.strategy, "smarts");
        assert_eq!(report.collected_reuse_distances, 0);
        assert!(report.extras::<()>().is_none());
    }

    #[test]
    fn warm_caches_make_hot_workloads_fast() {
        // bwaves is hot-set dominated: with full functional warming, most
        // region accesses must be L1 hits and CPI must be near base.
        let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
        let report =
            SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        let t = report.total();
        let l1_rate = t.level_counts[0] as f64 / t.mem_accesses as f64;
        assert!(l1_rate > 0.8, "bwaves L1 hit rate {l1_rate}");
        assert!(report.cpi() < 1.5, "bwaves CPI {}", report.cpi());
    }

    #[test]
    fn speed_is_dominated_by_functional_warming() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let report = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &plan);
        // Effective speed must be within 2× of raw functional speed.
        let mips = report.mips_pipelined();
        assert!(
            mips > 0.6 && mips < 3.0,
            "SMARTS speed should sit near functional-simulation speed, got {mips}"
        );
    }

    #[test]
    fn determinism_across_runs() {
        let w = spec_workload("namd", Scale::tiny(), 1).unwrap();
        let r1 = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        let r2 = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        assert_eq!(r1.cpi(), r2.cpi());
        assert_eq!(r1.total(), r2.total());
    }
}
