//! SMARTS: sampled simulation with functional warming.
//!
//! The reference methodology (Wunderlich et al., ISCA 2003): between
//! detailed regions, *every* memory access is run through the simulated
//! cache hierarchy so that cache state is always perfectly warm. Accurate
//! and storage-free, but slow — the cost model charges every warm-up
//! instruction at functional-simulation speed, which is why the paper
//! measures SMARTS at 1.3 MIPS.

use crate::config::{Region, RegionPlan};
use crate::driver::{reduce_units, reduce_units_partial, RegionUnit, UnitDriver};
use crate::proxy::{ProxyStateSource, SpeculationExtras};
use crate::scheduler::RegionScheduler;
use crate::strategy::{PartialReport, SamplingStrategy, StrategyReport};
use delorean_cache::{Hierarchy, MachineConfig};
use delorean_cpu::TimingConfig;
use delorean_trace::fault::FaultPolicy;
use delorean_trace::{MemAccess, Workload};
use delorean_virt::{CostModel, HostClock, SpecUnit, WorkKind};

/// The SMARTS (functional warming) runner.
#[derive(Clone, Debug)]
pub struct SmartsRunner {
    machine: MachineConfig,
    timing: TimingConfig,
    cost: CostModel,
    workers: usize,
    proxy: Option<ProxyStateSource>,
}

impl SmartsRunner {
    /// A runner with Table 1 timing and the paper-host cost model.
    pub fn new(machine: MachineConfig) -> Self {
        SmartsRunner {
            machine,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
            workers: 1,
            proxy: None,
        }
    }

    /// Enable the speculative warm lane: [`run`] and
    /// [`run_with_workers`] go through
    /// [`run_speculative_with_workers`](Self::run_speculative_with_workers)
    /// with this proxy source, attaching [`SpeculationExtras`] to the
    /// report. The report itself stays bitwise identical to the
    /// non-speculative run — speculation is a scheduling strategy, not a
    /// semantic one.
    ///
    /// [`run`]: SamplingStrategy::run
    /// [`run_with_workers`]: SamplingStrategy::run_with_workers
    pub fn with_speculation(mut self, proxy: ProxyStateSource) -> Self {
        self.proxy = Some(proxy);
        self
    }

    /// Override the timing configuration.
    pub fn with_timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Override the host cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Set the region-scheduler worker count [`run`] uses. Results are
    /// byte-identical for every value.
    ///
    /// [`run`]: SamplingStrategy::run
    pub fn with_region_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// SMARTS through the **speculative warm lane**.
    ///
    /// Every region becomes an independent speculation task: build a
    /// proxy of the chain state at the region's boundary (see
    /// [`ProxyStateSource`]), record its digest, then warm and measure
    /// in place from it — no chain dependency, so tasks fan out across
    /// `workers − 1` workers at once. The reconciler advances the true
    /// carried state in plan order: when its digest equals the proxy's,
    /// the worker's start state was behaviourally identical to the
    /// chain's, so its measurement *and its end state* are adopted
    /// verbatim (the chain skips the region's warm work entirely — the
    /// source of the modeled speedup); otherwise the region is
    /// re-warmed and re-measured from the true state.
    ///
    /// Either way every unit's chained charge is
    /// `chain_step`'s — identical arithmetic to the sequential path —
    /// so the [`SimulationReport`](crate::SimulationReport) is bitwise
    /// identical to sequential SMARTS at every worker count and for
    /// every proxy source (pinned by `tests/determinism.rs`). The
    /// speculation outcomes ride along as [`SpeculationExtras`], from
    /// which
    /// [`RunCost::speculative_wallclock`](delorean_virt::RunCost::speculative_wallclock)
    /// models the lane's wall-clock.
    pub fn run_speculative_with_workers(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        proxy: ProxyStateSource,
        workers: usize,
    ) -> StrategyReport {
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();
        let positions = &chain_positions(plan, p);
        let spec = |i: u32, region: &Region| {
            self.speculate(workload, positions, proxy, p, mult, i, region)
        };

        let mut hierarchy = Hierarchy::new(&self.machine);
        let mut pos_access = 0u64;
        let mut chained = Vec::with_capacity(plan.regions.len());
        let mut outcomes: Vec<SpecUnit> = Vec::with_capacity(plan.regions.len());
        let units = RegionScheduler::new(workers).run_speculative(
            &plan.regions,
            spec,
            |i: u32, region: &Region, s: Speculation| -> RegionUnit {
                debug_assert_eq!(pos_access, positions[i as usize]);
                let step = chain_step(&self.cost, workload, region, pos_access, p, mult);
                chained.push(step.seconds);
                let committed = hierarchy.state_digest() == s.digest;
                let unit = if committed {
                    hierarchy.copy_state_from(&s.end_state);
                    s.unit
                } else {
                    hierarchy.warm_range(workload, step.warm);
                    let driver = UnitDriver::new(workload, &self.timing, &self.cost);
                    let mut source =
                        |a: &MemAccess, now: u64| hierarchy.access_data(a.pc, a.line(), now);
                    driver.measure_region(region, &mut source)
                };
                pos_access = step.next_pos;
                outcomes.push(SpecUnit {
                    unit: i,
                    committed,
                    proxy_seconds: s.proxy_seconds,
                    speculative_seconds: s.total_seconds,
                });
                unit
            },
        );
        let report = reduce_units(workload, plan, self.name(), &chained, units);
        StrategyReport::new(report).with_extras(SpeculationExtras { proxy, outcomes })
    }

    /// One speculation task: build the proxy state for region `i`'s
    /// boundary, record its digest, then warm and measure in place.
    /// Shared verbatim by the plain and fault-isolated speculative
    /// lanes — a pure function of `(i, region)`, which is what makes it
    /// safe for the isolated lane to retry from the top.
    #[allow(clippy::too_many_arguments)] // mirrors the chain-step tuple one-for-one
    fn speculate(
        &self,
        workload: &dyn Workload,
        positions: &[u64],
        proxy: ProxyStateSource,
        p: u64,
        mult: u64,
        i: u32,
        region: &Region,
    ) -> Speculation {
        let ctx = crate::proxy::ProxyContext {
            machine: &self.machine,
            cost: &self.cost,
            workload,
            p,
            mult,
        };
        let at = positions[i as usize];
        let prev = if i == 0 { 0 } else { positions[i as usize - 1] };
        let (mut h, proxy_seconds) = proxy.build(&ctx, at, prev);
        let digest = h.state_digest();
        let step = chain_step(&self.cost, workload, region, at, p, mult);
        h.warm_range(workload, step.warm);
        // Measure in place: the shared access core mutates the
        // hierarchy through the measured span exactly as the
        // chain's functional replay would, so `h` ends at the next
        // boundary's state.
        let driver = UnitDriver::new(workload, &self.timing, &self.cost);
        let mut source = |a: &MemAccess, now: u64| h.access_data(a.pc, a.line(), now);
        let unit = driver.measure_region(region, &mut source);
        let total_seconds = proxy_seconds + step.seconds + unit.seconds;
        Speculation {
            digest,
            end_state: h,
            unit,
            proxy_seconds,
            total_seconds,
        }
    }

    /// The speculative warm lane under **panic isolation**: spec tasks
    /// whose retries are exhausted degrade to the reconciler's miss
    /// path (full redo from the true chain state — never a quarantine),
    /// while reconciler-commit faults are retried at the injection gate
    /// and genuine reconciler deaths poison the rest of the chain. A
    /// clean run's report is bitwise identical to
    /// [`run_speculative_with_workers`](Self::run_speculative_with_workers)'s
    /// (speculation extras are not carried by partial reports).
    pub fn run_speculative_isolated_with_workers(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        proxy: ProxyStateSource,
        workers: usize,
        policy: &FaultPolicy,
    ) -> PartialReport {
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();
        let positions = &chain_positions(plan, p);
        let spec = |i: u32, region: &Region| {
            self.speculate(workload, positions, proxy, p, mult, i, region)
        };

        let mut hierarchy = Hierarchy::new(&self.machine);
        let mut pos_access = 0u64;
        let mut chained = Vec::with_capacity(plan.regions.len());
        let (outputs, quarantined) = RegionScheduler::new(workers).run_speculative_isolated(
            &plan.regions,
            policy,
            spec,
            |i: u32, region: &Region, s: Option<Speculation>| -> RegionUnit {
                debug_assert_eq!(pos_access, positions[i as usize]);
                let step = chain_step(&self.cost, workload, region, pos_access, p, mult);
                chained.push(step.seconds);
                let unit = match s {
                    Some(sp) if hierarchy.state_digest() == sp.digest => {
                        hierarchy.copy_state_from(&sp.end_state);
                        sp.unit
                    }
                    _ => {
                        // Miss path — taken both for a digest mismatch
                        // and for a degraded (faulted-out) speculation:
                        // identical chain arithmetic either way, which
                        // is why spec faults cannot move the report.
                        hierarchy.warm_range(workload, step.warm);
                        let driver = UnitDriver::new(workload, &self.timing, &self.cost);
                        let mut source =
                            |a: &MemAccess, now: u64| hierarchy.access_data(a.pc, a.line(), now);
                        driver.measure_region(region, &mut source)
                    }
                };
                pos_access = step.next_pos;
                unit
            },
        );
        let report = reduce_units_partial(workload, plan, self.name(), &chained, outputs);
        PartialReport {
            report,
            quarantined,
        }
    }
}

/// One region's speculation outcome: the proxy digest, the end state to
/// adopt on commit, the measured unit, and the lane's modeled seconds.
struct Speculation {
    digest: u64,
    end_state: Hierarchy,
    unit: RegionUnit,
    proxy_seconds: f64,
    total_seconds: f64,
}

/// Chain access positions at each region boundary — pure plan
/// arithmetic, so neither the worker count nor speculation outcomes can
/// shift them.
fn chain_positions(plan: &RegionPlan, p: u64) -> Vec<u64> {
    let mut positions = Vec::with_capacity(plan.regions.len());
    let mut pos = 0u64;
    for region in &plan.regions {
        positions.push(pos);
        pos = region.detailed.end / p;
    }
    positions
}

impl SamplingStrategy for SmartsRunner {
    fn name(&self) -> &str {
        "smarts"
    }

    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport {
        self.run_with_workers(workload, plan, self.workers)
    }

    /// SMARTS under the region scheduler: functional warming is the
    /// **chained lane** — the hierarchy at a region's warming boundary
    /// depends on every access before it, so the warm pass runs in plan
    /// order on the seed lane — while the measure bodies (detailed
    /// warming + measured region, each on a [`Hierarchy::fork`] of the
    /// boundary state) fan out across workers.
    ///
    /// To keep the carried state exact, the seed lane *replays* each
    /// measured span functionally after forking: `simulate_detailed`
    /// issues precisely the data accesses `(pc, line, index)` of the
    /// span through the shared access core, so the functional replay
    /// leaves the chain hierarchy bit-identical to what the classic
    /// sequential driver's in-place measurement left behind (the PR 4
    /// oracle in `bench_pr5` pins this). The replay is charged to the
    /// chained lane at functional speed, face value — the honest price
    /// a region-parallel SMARTS pays for decoupling.
    ///
    /// At one worker the fork and replay would be pure overhead, so the
    /// sequential path measures in place on the chain hierarchy — with
    /// the *same* charge structure, so the report stays byte-identical
    /// to every parallel execution (asserted by `tests/determinism.rs`).
    fn run_with_workers(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
    ) -> StrategyReport {
        if let Some(proxy) = self.proxy {
            return self.run_speculative_with_workers(workload, plan, proxy, workers);
        }
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();
        let mut hierarchy = Hierarchy::new(&self.machine);
        let mut pos_access: u64 = 0;

        if workers <= 1 {
            // In-place sequential path: identical access sequence, state
            // evolution and cost charges as the decomposed path below —
            // measuring on the chain mutates it exactly as the replay
            // would (one shared access core) — minus the per-region
            // hierarchy copy and the second traversal of the measured
            // span. The replay seconds are still charged so the cost
            // accounting does not depend on the worker count.
            let mut chained = Vec::with_capacity(plan.regions.len());
            let mut units = Vec::with_capacity(plan.regions.len());
            for region in &plan.regions {
                let step = chain_step(&self.cost, workload, region, pos_access, p, mult);
                hierarchy.warm_range(workload, step.warm);
                pos_access = step.next_pos;
                chained.push(step.seconds);

                let driver = UnitDriver::new(workload, &self.timing, &self.cost);
                let mut source =
                    |a: &MemAccess, now: u64| hierarchy.access_data(a.pc, a.line(), now);
                units.push(driver.measure_region(region, &mut source));
            }
            return reduce_units(workload, plan, self.name(), &chained, units).into();
        }

        let seed = move |_i: u32, region: &Region| {
            // Functional warming: simulate every access up to the start
            // of detailed warming, batched slice-at-a-time straight into
            // the hierarchy, then fork the boundary state for the unit
            // and replay the measured span so the next region's warm
            // state matches the sequential driver exactly.
            let step = chain_step(&self.cost, workload, region, pos_access, p, mult);
            hierarchy.warm_range(workload, step.warm);
            let unit_state = hierarchy.fork();
            hierarchy.warm_range(workload, step.measured);
            pos_access = step.next_pos;
            (unit_state, step.seconds)
        };

        let body = |_i: u32, region: &Region, (mut warm, chain_seconds): (Hierarchy, f64)| {
            // Detailed warming + detailed region on the (fully warm)
            // forked hierarchy.
            let driver = UnitDriver::new(workload, &self.timing, &self.cost);
            let mut source = |a: &MemAccess, now: u64| warm.access_data(a.pc, a.line(), now);
            (chain_seconds, driver.measure_region(region, &mut source))
        };

        let outputs = RegionScheduler::new(workers).run_seeded(&plan.regions, seed, body);
        let (chained, units): (Vec<f64>, Vec<_>) = outputs.into_iter().unzip();
        reduce_units(workload, plan, self.name(), &chained, units).into()
    }

    /// SMARTS with per-unit panic isolation.
    ///
    /// Always takes the **fork-based seeded path** — even at one worker,
    /// where the plain run measures in place on the chain hierarchy. An
    /// in-place measurement mutates the carried state as it goes, so a
    /// mid-flight fault would leave the chain unrecoverable; the fork
    /// path hands each body its own [`Hierarchy::fork`], making bodies
    /// retryable from a cloned seed and keeping the chain pristine. The
    /// two paths charge identical costs by construction (see
    /// [`run_with_workers`](SamplingStrategy::run_with_workers)), so a
    /// clean isolated run is still bitwise identical to the plain run.
    ///
    /// With speculation enabled the run goes through
    /// [`run_speculative_isolated_with_workers`](SmartsRunner::run_speculative_isolated_with_workers)
    /// instead.
    fn run_isolated(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
        policy: &FaultPolicy,
    ) -> PartialReport {
        if let Some(proxy) = self.proxy {
            return self
                .run_speculative_isolated_with_workers(workload, plan, proxy, workers, policy);
        }
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();
        let mut hierarchy = Hierarchy::new(&self.machine);
        let mut pos_access: u64 = 0;

        let seed = move |_i: u32, region: &Region| {
            let step = chain_step(&self.cost, workload, region, pos_access, p, mult);
            hierarchy.warm_range(workload, step.warm);
            let unit_state = hierarchy.fork();
            hierarchy.warm_range(workload, step.measured);
            pos_access = step.next_pos;
            (unit_state, step.seconds)
        };

        let body = |_i: u32, region: &Region, (mut warm, chain_seconds): (Hierarchy, f64)| {
            let driver = UnitDriver::new(workload, &self.timing, &self.cost);
            let mut source = |a: &MemAccess, now: u64| warm.access_data(a.pc, a.line(), now);
            (chain_seconds, driver.measure_region(region, &mut source))
        };

        let (outputs, quarantined) =
            RegionScheduler::new(workers).run_seeded_isolated(&plan.regions, policy, seed, body);
        let mut chained = vec![0.0; outputs.len()];
        let mut units = Vec::with_capacity(outputs.len());
        for (i, o) in outputs.into_iter().enumerate() {
            match o {
                Some((c, u)) => {
                    chained[i] = c;
                    units.push(Some(u));
                }
                None => units.push(None),
            }
        }
        let report = reduce_units_partial(workload, plan, self.name(), &chained, units);
        PartialReport {
            report,
            quarantined,
        }
    }

    fn internal_parallelism(&self) -> usize {
        self.workers
    }
}

/// One warm-chain step's boundary and charge arithmetic.
struct ChainStep {
    /// Access range of the functional warm span (chain position up to
    /// the detailed-warming boundary).
    warm: std::ops::Range<u64>,
    /// Access range the detailed simulator will issue for this region
    /// (detailed warming + measured region) — the span the decomposed
    /// chain replays functionally.
    measured: std::ops::Range<u64>,
    /// Chain position after this region.
    next_pos: u64,
    /// Chained-lane seconds: the warm span at represented magnitude
    /// plus the replay at face value.
    seconds: f64,
}

/// Compute one region's chain step. Both SMARTS paths (in-place
/// sequential and fork-and-replay decomposed) take their boundaries and
/// charges from this one function, which is what keeps their reports
/// byte-identical by construction.
fn chain_step(
    cost: &CostModel,
    workload: &dyn Workload,
    region: &Region,
    pos_access: u64,
    p: u64,
    mult: u64,
) -> ChainStep {
    let mut chain = HostClock::new();
    let warm_end_access = region.warming.start / p;
    let span = warm_end_access.saturating_sub(pos_access);
    chain.charge(cost.instr_seconds(WorkKind::Functional, span * p * mult));
    let measured = workload.access_index_at_instr(region.warming.start)
        ..workload.access_index_at_instr(region.detailed.end);
    chain.charge(cost.instr_seconds(
        WorkKind::Functional,
        measured.end.saturating_sub(measured.start) * p,
    ));
    ChainStep {
        warm: pos_access..warm_end_access,
        measured,
        next_pos: region.detailed.end / p,
        seconds: chain.seconds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SamplingConfig;
    use delorean_trace::{spec_workload, Scale};

    fn quick_plan() -> RegionPlan {
        SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan()
    }

    #[test]
    fn produces_region_results_and_cost() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let report =
            SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        assert_eq!(report.regions.len(), 3);
        assert!(report.cpi() > 0.0);
        assert!(report.cost.total_resources() > 0.0);
        assert_eq!(report.strategy, "smarts");
        assert_eq!(report.collected_reuse_distances, 0);
        assert!(report.extras::<()>().is_none());
    }

    #[test]
    fn warm_caches_make_hot_workloads_fast() {
        // bwaves is hot-set dominated: with full functional warming, most
        // region accesses must be L1 hits and CPI must be near base.
        let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
        let report =
            SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        let t = report.total();
        let l1_rate = t.level_counts[0] as f64 / t.mem_accesses as f64;
        assert!(l1_rate > 0.8, "bwaves L1 hit rate {l1_rate}");
        assert!(report.cpi() < 1.5, "bwaves CPI {}", report.cpi());
    }

    #[test]
    fn speed_is_dominated_by_functional_warming() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let report = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &plan);
        // Effective speed must be within 2× of raw functional speed.
        let mips = report.mips_pipelined();
        assert!(
            mips > 0.6 && mips < 3.0,
            "SMARTS speed should sit near functional-simulation speed, got {mips}"
        );
    }

    #[test]
    fn speculative_reports_are_bitwise_sequential() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let runner = SmartsRunner::new(machine);
        let sequential = runner.run(&w, &plan);
        for proxy in [
            ProxyStateSource::Cold,
            ProxyStateSource::NearestBoundary,
            ProxyStateSource::StatModel,
            ProxyStateSource::Poisoned,
        ] {
            for workers in [1usize, 4] {
                let spec = runner.run_speculative_with_workers(&w, &plan, proxy, workers);
                assert_eq!(
                    spec.report,
                    sequential.report,
                    "proxy {} workers {workers}",
                    proxy.name()
                );
            }
        }
    }

    #[test]
    fn statmodel_proxy_commits_on_hmmer() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let spec = SmartsRunner::new(machine).run_speculative_with_workers(
            &w,
            &plan,
            ProxyStateSource::StatModel,
            4,
        );
        let extras = spec.extras::<SpeculationExtras>().expect("extras");
        assert!(
            extras.hit_rate() > 0.5,
            "statmodel hit rate {} on hmmer",
            extras.hit_rate()
        );
        let speedup = spec.report.cost.speculative_speedup(4, &extras.outcomes);
        assert!(speedup > 1.0, "modeled speedup {speedup}");
    }

    #[test]
    fn poisoned_proxy_never_commits_but_still_reports_sequential() {
        let w = spec_workload("mcf", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let spec = SmartsRunner::new(machine).run_speculative_with_workers(
            &w,
            &plan,
            ProxyStateSource::Poisoned,
            4,
        );
        let extras = spec.extras::<SpeculationExtras>().expect("extras");
        assert_eq!(extras.hits(), 0, "poison must never commit");
        let sequential = SmartsRunner::new(machine).run(&w, &plan);
        assert_eq!(spec.report, sequential.report);
    }

    #[test]
    fn with_speculation_routes_the_strategy_entry_points() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let runner = SmartsRunner::new(machine)
            .with_speculation(ProxyStateSource::Cold)
            .with_region_workers(2);
        let report = runner.run(&w, &plan);
        assert!(report.extras::<SpeculationExtras>().is_some());
        assert_eq!(
            report.report,
            SmartsRunner::new(machine).run(&w, &plan).report
        );
    }

    #[test]
    fn determinism_across_runs() {
        let w = spec_workload("namd", Scale::tiny(), 1).unwrap();
        let r1 = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        let r2 = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        assert_eq!(r1.cpi(), r2.cpi());
        assert_eq!(r1.total(), r2.total());
    }
}
