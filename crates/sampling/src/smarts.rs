//! SMARTS: sampled simulation with functional warming.
//!
//! The reference methodology (Wunderlich et al., ISCA 2003): between
//! detailed regions, *every* memory access is run through the simulated
//! cache hierarchy so that cache state is always perfectly warm. Accurate
//! and storage-free, but slow — the cost model charges every warm-up
//! instruction at functional-simulation speed, which is why the paper
//! measures SMARTS at 1.3 MIPS.

use crate::config::{Region, RegionPlan};
use crate::driver::{reduce_units, UnitDriver};
use crate::scheduler::RegionScheduler;
use crate::strategy::{SamplingStrategy, StrategyReport};
use delorean_cache::{Hierarchy, MachineConfig};
use delorean_cpu::TimingConfig;
use delorean_trace::{MemAccess, Workload};
use delorean_virt::{CostModel, HostClock, WorkKind};

/// The SMARTS (functional warming) runner.
#[derive(Clone, Debug)]
pub struct SmartsRunner {
    machine: MachineConfig,
    timing: TimingConfig,
    cost: CostModel,
    workers: usize,
}

impl SmartsRunner {
    /// A runner with Table 1 timing and the paper-host cost model.
    pub fn new(machine: MachineConfig) -> Self {
        SmartsRunner {
            machine,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
            workers: 1,
        }
    }

    /// Override the timing configuration.
    pub fn with_timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Override the host cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Set the region-scheduler worker count [`run`] uses. Results are
    /// byte-identical for every value.
    ///
    /// [`run`]: SamplingStrategy::run
    pub fn with_region_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

impl SamplingStrategy for SmartsRunner {
    fn name(&self) -> &str {
        "smarts"
    }

    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport {
        self.run_with_workers(workload, plan, self.workers)
    }

    /// SMARTS under the region scheduler: functional warming is the
    /// **chained lane** — the hierarchy at a region's warming boundary
    /// depends on every access before it, so the warm pass runs in plan
    /// order on the seed lane — while the measure bodies (detailed
    /// warming + measured region, each on a [`Hierarchy::fork`] of the
    /// boundary state) fan out across workers.
    ///
    /// To keep the carried state exact, the seed lane *replays* each
    /// measured span functionally after forking: `simulate_detailed`
    /// issues precisely the data accesses `(pc, line, index)` of the
    /// span through the shared access core, so the functional replay
    /// leaves the chain hierarchy bit-identical to what the classic
    /// sequential driver's in-place measurement left behind (the PR 4
    /// oracle in `bench_pr5` pins this). The replay is charged to the
    /// chained lane at functional speed, face value — the honest price
    /// a region-parallel SMARTS pays for decoupling.
    ///
    /// At one worker the fork and replay would be pure overhead, so the
    /// sequential path measures in place on the chain hierarchy — with
    /// the *same* charge structure, so the report stays byte-identical
    /// to every parallel execution (asserted by `tests/determinism.rs`).
    fn run_with_workers(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
    ) -> StrategyReport {
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();
        let mut hierarchy = Hierarchy::new(&self.machine);
        let mut pos_access: u64 = 0;

        if workers <= 1 {
            // In-place sequential path: identical access sequence, state
            // evolution and cost charges as the decomposed path below —
            // measuring on the chain mutates it exactly as the replay
            // would (one shared access core) — minus the per-region
            // hierarchy copy and the second traversal of the measured
            // span. The replay seconds are still charged so the cost
            // accounting does not depend on the worker count.
            let mut chained = Vec::with_capacity(plan.regions.len());
            let mut units = Vec::with_capacity(plan.regions.len());
            for region in &plan.regions {
                let step = chain_step(&self.cost, workload, region, pos_access, p, mult);
                hierarchy.warm_range(workload, step.warm);
                pos_access = step.next_pos;
                chained.push(step.seconds);

                let driver = UnitDriver::new(workload, &self.timing, &self.cost);
                let mut source =
                    |a: &MemAccess, now: u64| hierarchy.access_data(a.pc, a.line(), now);
                units.push(driver.measure_region(region, &mut source));
            }
            return reduce_units(workload, plan, self.name(), &chained, units).into();
        }

        let seed = move |_i: u32, region: &Region| {
            // Functional warming: simulate every access up to the start
            // of detailed warming, batched slice-at-a-time straight into
            // the hierarchy, then fork the boundary state for the unit
            // and replay the measured span so the next region's warm
            // state matches the sequential driver exactly.
            let step = chain_step(&self.cost, workload, region, pos_access, p, mult);
            hierarchy.warm_range(workload, step.warm);
            let unit_state = hierarchy.fork();
            hierarchy.warm_range(workload, step.measured);
            pos_access = step.next_pos;
            (unit_state, step.seconds)
        };

        let body = |_i: u32, region: &Region, (mut warm, chain_seconds): (Hierarchy, f64)| {
            // Detailed warming + detailed region on the (fully warm)
            // forked hierarchy.
            let driver = UnitDriver::new(workload, &self.timing, &self.cost);
            let mut source = |a: &MemAccess, now: u64| warm.access_data(a.pc, a.line(), now);
            (chain_seconds, driver.measure_region(region, &mut source))
        };

        let outputs = RegionScheduler::new(workers).run_seeded(&plan.regions, seed, body);
        let (chained, units): (Vec<f64>, Vec<_>) = outputs.into_iter().unzip();
        reduce_units(workload, plan, self.name(), &chained, units).into()
    }

    fn internal_parallelism(&self) -> usize {
        self.workers
    }
}

/// One warm-chain step's boundary and charge arithmetic.
struct ChainStep {
    /// Access range of the functional warm span (chain position up to
    /// the detailed-warming boundary).
    warm: std::ops::Range<u64>,
    /// Access range the detailed simulator will issue for this region
    /// (detailed warming + measured region) — the span the decomposed
    /// chain replays functionally.
    measured: std::ops::Range<u64>,
    /// Chain position after this region.
    next_pos: u64,
    /// Chained-lane seconds: the warm span at represented magnitude
    /// plus the replay at face value.
    seconds: f64,
}

/// Compute one region's chain step. Both SMARTS paths (in-place
/// sequential and fork-and-replay decomposed) take their boundaries and
/// charges from this one function, which is what keeps their reports
/// byte-identical by construction.
fn chain_step(
    cost: &CostModel,
    workload: &dyn Workload,
    region: &Region,
    pos_access: u64,
    p: u64,
    mult: u64,
) -> ChainStep {
    let mut chain = HostClock::new();
    let warm_end_access = region.warming.start / p;
    let span = warm_end_access.saturating_sub(pos_access);
    chain.charge(cost.instr_seconds(WorkKind::Functional, span * p * mult));
    let measured = workload.access_index_at_instr(region.warming.start)
        ..workload.access_index_at_instr(region.detailed.end);
    chain.charge(cost.instr_seconds(
        WorkKind::Functional,
        measured.end.saturating_sub(measured.start) * p,
    ));
    ChainStep {
        warm: pos_access..warm_end_access,
        measured,
        next_pos: region.detailed.end / p,
        seconds: chain.seconds(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SamplingConfig;
    use delorean_trace::{spec_workload, Scale};

    fn quick_plan() -> RegionPlan {
        SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan()
    }

    #[test]
    fn produces_region_results_and_cost() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let report =
            SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        assert_eq!(report.regions.len(), 3);
        assert!(report.cpi() > 0.0);
        assert!(report.cost.total_resources() > 0.0);
        assert_eq!(report.strategy, "smarts");
        assert_eq!(report.collected_reuse_distances, 0);
        assert!(report.extras::<()>().is_none());
    }

    #[test]
    fn warm_caches_make_hot_workloads_fast() {
        // bwaves is hot-set dominated: with full functional warming, most
        // region accesses must be L1 hits and CPI must be near base.
        let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
        let report =
            SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        let t = report.total();
        let l1_rate = t.level_counts[0] as f64 / t.mem_accesses as f64;
        assert!(l1_rate > 0.8, "bwaves L1 hit rate {l1_rate}");
        assert!(report.cpi() < 1.5, "bwaves CPI {}", report.cpi());
    }

    #[test]
    fn speed_is_dominated_by_functional_warming() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let report = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &plan);
        // Effective speed must be within 2× of raw functional speed.
        let mips = report.mips_pipelined();
        assert!(
            mips > 0.6 && mips < 3.0,
            "SMARTS speed should sit near functional-simulation speed, got {mips}"
        );
    }

    #[test]
    fn determinism_across_runs() {
        let w = spec_workload("namd", Scale::tiny(), 1).unwrap();
        let r1 = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        let r2 = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &quick_plan());
        assert_eq!(r1.cpi(), r2.cpi());
        assert_eq!(r1.total(), r2.total());
    }
}
