//! The unified strategy-execution interface.
//!
//! Every warming strategy in the workspace — SMARTS, CoolSim, MRRL,
//! checkpointed warming and DeLorean itself — implements
//! [`SamplingStrategy`], so harness code (the parallel batch executor in
//! `delorean_bench`, the experiment drivers, integration tests) can hold
//! a `Box<dyn SamplingStrategy>` and run any mix of strategies through
//! one code path.
//!
//! A strategy returns a [`StrategyReport`]: the strategy-agnostic
//! [`SimulationReport`] every comparison is built on, plus optional
//! strategy-specific *extras* (DeLorean attaches its time-traveling
//! statistics and DSW classification counters; checkpointed warming its
//! storage footprint). Extras are type-erased so this crate does not
//! need to know downstream types; consumers recover them with
//! [`StrategyReport::extras`] or [`StrategyReport::split`].

use crate::config::RegionPlan;
use crate::driver::RegionUnit;
use crate::report::SimulationReport;
use delorean_trace::fault::{self, FaultPolicy, UnitFailure};
use delorean_trace::Workload;
use std::any::Any;
use std::fmt;
use std::ops::{Deref, Range};

/// A sampled-simulation warming strategy, executable through a trait
/// object.
///
/// Implementations must be deterministic pure functions of
/// `(self, workload, plan)`: the batch executor runs strategies from
/// worker threads in arbitrary order and asserts that results are
/// byte-identical to serial execution.
///
/// # Example
///
/// Any mix of strategies runs through one trait-object code path:
///
/// ```
/// use delorean_cache::MachineConfig;
/// use delorean_sampling::{MrrlRunner, SamplingConfig, SamplingStrategy, SmartsRunner};
/// use delorean_trace::{spec_workload, Scale};
///
/// let scale = Scale::tiny();
/// let machine = MachineConfig::for_scale(scale);
/// let plan = SamplingConfig::for_scale(scale).with_regions(1).plan();
/// let w = spec_workload("hmmer", scale, 1).unwrap();
///
/// let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
///     Box::new(SmartsRunner::new(machine)),
///     Box::new(MrrlRunner::new(machine)),
/// ];
/// for s in &strategies {
///     let report = s.run(&w, &plan);
///     assert_eq!(report.strategy, s.name());
///     assert!(report.cpi() > 0.0);
///     // Scheduling is not semantics: any worker count, same bytes.
///     let parallel = s.run_with_workers(&w, &plan, 4);
///     assert_eq!(parallel.report, report.report);
/// }
/// ```
pub trait SamplingStrategy: Send + Sync {
    /// Stable lowercase identifier (`"smarts"`, `"coolsim"`, `"mrrl"`,
    /// `"checkpoint"`, `"delorean"`); also the `strategy` field of the
    /// returned report.
    fn name(&self) -> &str;

    /// Run the full sampled simulation over `plan`'s regions.
    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport;

    /// Run with an explicit region-scheduler worker count, overriding
    /// whatever the runner was configured with.
    ///
    /// The determinism contract makes this a pure scheduling knob: the
    /// returned report must be byte-identical for every `workers` value
    /// (`tests/determinism.rs` asserts it for all five strategies).
    /// Strategies that have not adopted the region scheduler fall back
    /// to [`run`](SamplingStrategy::run) and ignore `workers`.
    fn run_with_workers(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
    ) -> StrategyReport {
        let _ = workers;
        self.run(workload, plan)
    }

    /// Run with **panic isolation and deterministic retry**: unit
    /// faults are caught, retried within `policy`'s budget, and
    /// quarantined on exhaustion, so the run always completes with a
    /// typed [`PartialReport`] instead of unwinding.
    ///
    /// The contract mirrors
    /// [`run_with_workers`](SamplingStrategy::run_with_workers): on a
    /// fully clean run (no faults, or only faults that retries
    /// absorbed) the returned report must be **bitwise identical** to
    /// the plain run at every worker count — isolation is scheduling,
    /// never semantics (`tests/fault_injection.rs` pins this for all
    /// five strategies).
    ///
    /// Scheduler-backed strategies override this with per-unit
    /// isolation through the `RegionScheduler`'s `*_isolated` runners;
    /// the default guards the whole run as a single unit (one retryable
    /// fault domain — sound because strategies are pure functions of
    /// their inputs). Strategy extras are not carried by partial
    /// reports.
    fn run_isolated(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
        policy: &FaultPolicy,
    ) -> PartialReport {
        match fault::run_unit_guarded(0, policy, || {
            self.run_with_workers(workload, plan, workers).into_report()
        }) {
            Ok(report) => PartialReport {
                report,
                quarantined: Vec::new(),
            },
            Err(failure) => PartialReport {
                report: SimulationReport {
                    workload: workload.name().to_string(),
                    strategy: self.name().to_string(),
                    ..Default::default()
                },
                quarantined: vec![failure],
            },
        }
    }

    /// Evaluate the plan regions with `span` indices as standalone
    /// [`RegionUnit`]s, or `None` if this strategy does not decompose.
    ///
    /// This is the shard layer's unit-granular lease surface: a
    /// strategy whose regions are **fully independent** (the unit body
    /// is a pure function of `(index, region)` and the chained lane is
    /// empty — CoolSim, MRRL) returns the exact units its in-process
    /// [`run`](SamplingStrategy::run) would produce for that span, so
    /// a broker may fan spans across processes and fold them with
    /// [`reduce_region_units`](crate::reduce_region_units) into a
    /// report bitwise identical to the in-process one. Strategies with
    /// carried state between regions (SMARTS's warm chain, checkpoint
    /// preparation, DeLorean's multi-pass cost structure) return
    /// `None` (the default) and are leased as whole cells instead.
    ///
    /// `span` is clamped to the plan; an empty clamped span yields an
    /// empty vector, not `None`.
    fn run_unit_span(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        span: Range<u32>,
    ) -> Option<Vec<RegionUnit>> {
        let _ = (workload, plan, span);
        None
    }

    /// Number of threads one [`run`](SamplingStrategy::run) call spawns
    /// internally (1 for single-threaded strategies; the configured
    /// region-worker count for scheduler-backed runners). Batch
    /// executors divide their worker pools by the batch's maximum so
    /// nested parallelism does not oversubscribe the host.
    fn internal_parallelism(&self) -> usize {
        1
    }
}

/// The outcome of a fault-isolated run
/// ([`SamplingStrategy::run_isolated`]): the report assembled from
/// every unit that completed, plus the plan-ordered list of units that
/// exhausted their retries and were quarantined.
///
/// A clean run has an empty quarantine list and a report bitwise
/// identical to the plain (non-isolated) run's; a partial run's report
/// simply omits the quarantined regions (its `regions` vector and cost
/// units skip them, while `covered_instrs` still describes the full
/// sampling design).
#[derive(Debug)]
pub struct PartialReport {
    /// The report over the units that completed.
    pub report: SimulationReport,
    /// Units that exhausted their retry budget (or were chain-poisoned
    /// by one that did), in plan order. Empty for a clean run.
    pub quarantined: Vec<UnitFailure>,
}

impl PartialReport {
    /// Whether every unit completed (the report is a full run).
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The report, discarding the quarantine list.
    pub fn into_report(self) -> SimulationReport {
        self.report
    }
}

impl fmt::Debug for dyn SamplingStrategy + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SamplingStrategy")
            .field("name", &self.name())
            .finish()
    }
}

/// The outcome of one [`SamplingStrategy::run`]: the comparable report
/// plus optional type-erased strategy extras.
///
/// Dereferences to [`SimulationReport`], so metric helpers (`cpi()`,
/// `speedup_vs(..)`, …) are available directly.
pub struct StrategyReport {
    /// The strategy-agnostic report (CPI/MPKI per region, host cost).
    pub report: SimulationReport,
    extras: Option<Box<dyn Any + Send + Sync>>,
}

impl StrategyReport {
    /// A report without extras.
    pub fn new(report: SimulationReport) -> Self {
        StrategyReport {
            report,
            extras: None,
        }
    }

    /// Attach strategy-specific extras.
    pub fn with_extras<T: Any + Send + Sync>(mut self, extras: T) -> Self {
        self.extras = Some(Box::new(extras));
        self
    }

    /// Borrow the extras, if present and of type `T`.
    pub fn extras<T: Any>(&self) -> Option<&T> {
        self.extras.as_ref()?.downcast_ref::<T>()
    }

    /// Split into the plain report and the extras, if of type `T`.
    /// Extras of a different type are dropped.
    pub fn split<T: Any>(self) -> (SimulationReport, Option<T>) {
        let extras = self
            .extras
            .and_then(|b| (b as Box<dyn Any>).downcast::<T>().ok())
            .map(|b| *b);
        (self.report, extras)
    }

    /// Discard any extras and return the plain report.
    pub fn into_report(self) -> SimulationReport {
        self.report
    }
}

impl From<SimulationReport> for StrategyReport {
    fn from(report: SimulationReport) -> Self {
        StrategyReport::new(report)
    }
}

impl Deref for StrategyReport {
    type Target = SimulationReport;

    fn deref(&self) -> &SimulationReport {
        &self.report
    }
}

impl fmt::Debug for StrategyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategyReport")
            .field("report", &self.report)
            .field("has_extras", &self.extras.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Extra(u32);

    fn report() -> SimulationReport {
        SimulationReport {
            workload: "w".into(),
            strategy: "s".into(),
            ..Default::default()
        }
    }

    #[test]
    fn extras_round_trip_by_type() {
        let r = StrategyReport::new(report()).with_extras(Extra(7));
        assert_eq!(r.extras::<Extra>(), Some(&Extra(7)));
        assert_eq!(r.extras::<String>(), None);
        let (rep, extra) = r.split::<Extra>();
        assert_eq!(rep.strategy, "s");
        assert_eq!(extra, Some(Extra(7)));
    }

    #[test]
    fn deref_exposes_report_metrics() {
        let r = StrategyReport::new(report());
        assert_eq!(r.workload, "w");
        assert_eq!(r.regions.len(), 0);
    }

    #[test]
    fn split_with_wrong_type_drops_extras() {
        let r = StrategyReport::new(report()).with_extras(Extra(7));
        let (_, extra) = r.split::<String>();
        assert_eq!(extra, None);
    }
}
