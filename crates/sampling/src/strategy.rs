//! The unified strategy-execution interface.
//!
//! Every warming strategy in the workspace — SMARTS, CoolSim, MRRL,
//! checkpointed warming and DeLorean itself — implements
//! [`SamplingStrategy`], so harness code (the parallel batch executor in
//! `delorean_bench`, the experiment drivers, integration tests) can hold
//! a `Box<dyn SamplingStrategy>` and run any mix of strategies through
//! one code path.
//!
//! A strategy returns a [`StrategyReport`]: the strategy-agnostic
//! [`SimulationReport`] every comparison is built on, plus optional
//! strategy-specific *extras* (DeLorean attaches its time-traveling
//! statistics and DSW classification counters; checkpointed warming its
//! storage footprint). Extras are type-erased so this crate does not
//! need to know downstream types; consumers recover them with
//! [`StrategyReport::extras`] or [`StrategyReport::split`].

use crate::config::RegionPlan;
use crate::report::SimulationReport;
use delorean_trace::Workload;
use std::any::Any;
use std::fmt;
use std::ops::Deref;

/// A sampled-simulation warming strategy, executable through a trait
/// object.
///
/// Implementations must be deterministic pure functions of
/// `(self, workload, plan)`: the batch executor runs strategies from
/// worker threads in arbitrary order and asserts that results are
/// byte-identical to serial execution.
pub trait SamplingStrategy: Send + Sync {
    /// Stable lowercase identifier (`"smarts"`, `"coolsim"`, `"mrrl"`,
    /// `"checkpoint"`, `"delorean"`); also the `strategy` field of the
    /// returned report.
    fn name(&self) -> &str;

    /// Run the full sampled simulation over `plan`'s regions.
    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport;

    /// Number of threads one [`run`](SamplingStrategy::run) call spawns
    /// internally (1 for single-threaded strategies). Batch executors
    /// divide their worker pools by the batch's maximum so nested
    /// parallelism does not oversubscribe the host.
    fn internal_parallelism(&self) -> usize {
        1
    }
}

impl fmt::Debug for dyn SamplingStrategy + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SamplingStrategy")
            .field("name", &self.name())
            .finish()
    }
}

/// The outcome of one [`SamplingStrategy::run`]: the comparable report
/// plus optional type-erased strategy extras.
///
/// Dereferences to [`SimulationReport`], so metric helpers (`cpi()`,
/// `speedup_vs(..)`, …) are available directly.
pub struct StrategyReport {
    /// The strategy-agnostic report (CPI/MPKI per region, host cost).
    pub report: SimulationReport,
    extras: Option<Box<dyn Any + Send + Sync>>,
}

impl StrategyReport {
    /// A report without extras.
    pub fn new(report: SimulationReport) -> Self {
        StrategyReport {
            report,
            extras: None,
        }
    }

    /// Attach strategy-specific extras.
    pub fn with_extras<T: Any + Send + Sync>(mut self, extras: T) -> Self {
        self.extras = Some(Box::new(extras));
        self
    }

    /// Borrow the extras, if present and of type `T`.
    pub fn extras<T: Any>(&self) -> Option<&T> {
        self.extras.as_ref()?.downcast_ref::<T>()
    }

    /// Split into the plain report and the extras, if of type `T`.
    /// Extras of a different type are dropped.
    pub fn split<T: Any>(self) -> (SimulationReport, Option<T>) {
        let extras = self
            .extras
            .and_then(|b| (b as Box<dyn Any>).downcast::<T>().ok())
            .map(|b| *b);
        (self.report, extras)
    }

    /// Discard any extras and return the plain report.
    pub fn into_report(self) -> SimulationReport {
        self.report
    }
}

impl From<SimulationReport> for StrategyReport {
    fn from(report: SimulationReport) -> Self {
        StrategyReport::new(report)
    }
}

impl Deref for StrategyReport {
    type Target = SimulationReport;

    fn deref(&self) -> &SimulationReport {
        &self.report
    }
}

impl fmt::Debug for StrategyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StrategyReport")
            .field("report", &self.report)
            .field("has_extras", &self.extras.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Extra(u32);

    fn report() -> SimulationReport {
        SimulationReport {
            workload: "w".into(),
            strategy: "s".into(),
            ..Default::default()
        }
    }

    #[test]
    fn extras_round_trip_by_type() {
        let r = StrategyReport::new(report()).with_extras(Extra(7));
        assert_eq!(r.extras::<Extra>(), Some(&Extra(7)));
        assert_eq!(r.extras::<String>(), None);
        let (rep, extra) = r.split::<Extra>();
        assert_eq!(rep.strategy, "s");
        assert_eq!(extra, Some(Extra(7)));
    }

    #[test]
    fn deref_exposes_report_metrics() {
        let r = StrategyReport::new(report());
        assert_eq!(r.workload, "w");
        assert_eq!(r.regions.len(), 0);
    }

    #[test]
    fn split_with_wrong_type_drops_extras() {
        let r = StrategyReport::new(report()).with_extras(Extra(7));
        let (_, extra) = r.split::<String>();
        assert_eq!(extra, None);
    }
}
