//! MRRL: adaptive functional warming (Haskins & Skadron, §7 related
//! work).
//!
//! Memory Reference Reuse Latency warming shortens functional warming
//! instead of replacing it: profile the distribution of *reuse latencies*
//! (instructions between consecutive references to the same line), pick
//! the warming window that covers a target percentile, and only
//! functionally warm that window before each region — fast-forwarding the
//! rest.
//!
//! It sits between SMARTS and the statistical strategies: cheaper than
//! full functional warming, but it still simulates *every* access inside
//! the chosen window — the inherent limitation the paper's §7 calls out
//! ("even though the interval is shortened, these techniques still need
//! to simulate all of them").

use crate::config::{Region, RegionPlan};
use crate::driver::{reduce_units, reduce_units_partial, RegionUnit, UnitDriver};
use crate::scheduler::RegionScheduler;
use crate::strategy::{PartialReport, SamplingStrategy, StrategyReport};
use delorean_cache::{Hierarchy, MachineConfig};
use delorean_cpu::TimingConfig;
use delorean_statmodel::LogHistogram;
use delorean_trace::fault::FaultPolicy;
use delorean_trace::{LineMap, MemAccess, Workload, WorkloadExt};
use delorean_virt::{CostModel, WorkKind};

/// The MRRL adaptive-functional-warming runner.
#[derive(Clone, Debug)]
pub struct MrrlRunner {
    machine: MachineConfig,
    timing: TimingConfig,
    cost: CostModel,
    workers: usize,
    /// Reuse-latency coverage target (the original work uses ~99.9%).
    pub percentile: f64,
    /// Accesses profiled per region to estimate the latency distribution.
    pub profile_accesses: u64,
}

impl MrrlRunner {
    /// A runner with Table 1 timing, paper-host costs and 99.9% coverage.
    pub fn new(machine: MachineConfig) -> Self {
        MrrlRunner {
            machine,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
            workers: 1,
            percentile: 0.999,
            profile_accesses: 50_000,
        }
    }

    /// Set the region-scheduler worker count [`run`] uses. MRRL warms a
    /// fresh hierarchy over a per-region window, so every region is one
    /// independent parallel unit; results are byte-identical for every
    /// value.
    ///
    /// [`run`]: SamplingStrategy::run
    pub fn with_region_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the coverage percentile.
    pub fn with_percentile(mut self, percentile: f64) -> Self {
        self.percentile = percentile.clamp(0.5, 1.0);
        self
    }

    /// Override the host cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Estimate the warming window (in instructions) covering the target
    /// percentile of reuse latencies near `around_access`.
    fn warming_window(&self, workload: &dyn Workload, around_access: u64) -> u64 {
        let p = workload.mem_period();
        let start = around_access.saturating_sub(self.profile_accesses);
        let mut hist = LogHistogram::new();
        let mut last: LineMap<u64> = LineMap::new();
        workload.for_each_access(start..around_access, |a| {
            if let Some(prev) = last.insert(a.line(), a.index) {
                hist.add((a.index - prev) * p, 1.0);
            }
        });
        if hist.is_empty() {
            return self.profile_accesses * p;
        }
        hist.quantile(self.percentile)
    }

    /// The per-region unit body shared by the plain and fault-isolated
    /// paths: a pure function of `(index, region)` — the fast-forward
    /// skip comes from the *plan*, and each unit warms its own fresh
    /// hierarchy — so the isolated path may retry it from the top.
    fn region_unit<'a>(
        &'a self,
        workload: &'a dyn Workload,
        plan: &'a RegionPlan,
    ) -> impl Fn(u32, &Region) -> RegionUnit + Sync + 'a {
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();

        move |i: u32, region: &Region| {
            let mut driver = UnitDriver::new(workload, &self.timing, &self.cost);
            let prev_end = if i == 0 {
                0
            } else {
                plan.regions[i as usize - 1].detailed.end
            };
            // Pick this region's warming window from local reuse latencies
            // (profiling cost: functional over the profile slice).
            let region_first = workload.access_index_at_instr(region.detailed.start);
            driver.charge_work(WorkKind::Functional, self.profile_accesses * p);
            let window = self
                .warming_window(workload, region_first)
                .clamp(p, region.warming.start);

            // Fast-forward to the window, then functionally warm a FRESH
            // hierarchy (state before the window is assumed covered by the
            // percentile choice).
            let warm_start = region.warming.start.saturating_sub(window);
            let skip = warm_start.saturating_sub(prev_end);
            driver.charge_work(WorkKind::Vff, skip * mult);
            driver.charge_work(WorkKind::Functional, window * mult);
            let mut hierarchy = Hierarchy::new(&self.machine);
            let from = workload.access_index_at_instr(warm_start);
            let to = workload.access_index_at_instr(region.warming.start);
            hierarchy.warm_range(workload, from..to);

            let mut source = |a: &MemAccess, now: u64| hierarchy.access_data(a.pc, a.line(), now);
            driver.measure_region(region, &mut source)
        }
    }
}

impl SamplingStrategy for MrrlRunner {
    fn name(&self) -> &str {
        "mrrl"
    }

    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport {
        self.run_with_workers(workload, plan, self.workers)
    }

    /// MRRL under the region scheduler: each region profiles its own
    /// reuse latencies and warms a **fresh** hierarchy over its own
    /// window, and the fast-forward skip is derived from the *plan*
    /// (the previous region's end), not from execution state — so every
    /// region is one independent parallel unit.
    fn run_with_workers(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
    ) -> StrategyReport {
        let units = RegionScheduler::new(workers)
            .run_units(&plan.regions, self.region_unit(workload, plan));
        reduce_units(workload, plan, self.name(), &[], units).into()
    }

    /// MRRL with per-unit panic isolation: the same independent unit
    /// body, retried from the top on a fault and quarantined on
    /// exhaustion.
    fn run_isolated(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
        policy: &FaultPolicy,
    ) -> PartialReport {
        let (units, quarantined) = RegionScheduler::new(workers).run_units_isolated(
            &plan.regions,
            policy,
            self.region_unit(workload, plan),
        );
        PartialReport {
            report: reduce_units_partial(workload, plan, self.name(), &[], units),
            quarantined,
        }
    }

    /// MRRL decomposes fully: the unit body is a pure function of
    /// `(index, region)` — the fast-forward skip comes from the *plan*
    /// (the previous region's end), never from execution state — so
    /// any span of plan regions evaluates anywhere and folds back
    /// bitwise identically.
    fn run_unit_span(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        span: std::ops::Range<u32>,
    ) -> Option<Vec<RegionUnit>> {
        let hi = (span.end as usize).min(plan.regions.len());
        let lo = (span.start as usize).min(hi);
        let unit = self.region_unit(workload, plan);
        Some(
            plan.regions[lo..hi]
                .iter()
                .map(|r| unit(r.index, r))
                .collect(),
        )
    }

    fn internal_parallelism(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SamplingConfig, SmartsRunner};
    use delorean_trace::{spec_workload, Scale};

    fn setup() -> (impl Workload, MachineConfig, RegionPlan) {
        let scale = Scale::tiny();
        (
            spec_workload("hmmer", scale, 1).unwrap(),
            MachineConfig::for_scale(scale),
            SamplingConfig::for_scale(scale).with_regions(3).plan(),
        )
    }

    #[test]
    fn mrrl_is_faster_than_smarts_and_roughly_accurate() {
        let (w, machine, plan) = setup();
        let smarts = SmartsRunner::new(machine).run(&w, &plan);
        let mrrl = MrrlRunner::new(machine).run(&w, &plan);
        assert!(
            mrrl.speedup_vs(&smarts) > 1.0,
            "speedup {}",
            mrrl.speedup_vs(&smarts)
        );
        let err = mrrl.cpi_error_vs(&smarts);
        assert!(err < 0.25, "MRRL error {err}");
    }

    #[test]
    fn lower_percentile_means_shorter_warming() {
        let (w, machine, plan) = setup();
        let strict = MrrlRunner::new(machine).with_percentile(0.999);
        let loose = MrrlRunner::new(machine).with_percentile(0.5);
        let region_first = w.access_index_at_instr(plan.regions[0].detailed.start);
        let ws = strict.warming_window(&w, region_first);
        let wl = loose.warming_window(&w, region_first);
        assert!(wl <= ws, "loose {wl} > strict {ws}");
    }

    #[test]
    fn percentile_is_clamped() {
        let (_, machine, _) = setup();
        let r = MrrlRunner::new(machine).with_percentile(7.0);
        assert_eq!(r.percentile, 1.0);
        let r = MrrlRunner::new(machine).with_percentile(0.0);
        assert_eq!(r.percentile, 0.5);
    }
}
