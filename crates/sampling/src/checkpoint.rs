//! Checkpointed warming (CW): the TurboSMARTS / Live-points family.
//!
//! The paper's §7 contrasts DeLorean with checkpoint-based warming:
//! snapshot the microarchitectural state before each detailed region once,
//! then reuse the snapshots for later evaluation runs. CW is fast after
//! the (expensive, functional-warming) preparation run and exactly as
//! accurate as SMARTS — but it pays storage per region and the
//! checkpoints are invalidated by *any* software change and by hardware
//! changes to the structures they capture, which is precisely why the
//! paper pursues statistical warming instead.
//!
//! This module reproduces the trade-off quantitatively: preparation cost,
//! per-region storage (Live-points-style valid-lines serialization — the
//! paper cites 142 KiB per Live point vs 20–100 MiB per Flex point), and
//! evaluation-run speed including checkpoint load time.

use crate::config::{Region, RegionPlan};
use crate::driver::{reduce_units, reduce_units_partial, RegionUnit, UnitDriver};
use crate::proxy::{ProxyStateSource, SpeculationExtras};
use crate::report::SimulationReport;
use crate::scheduler::RegionScheduler;
use crate::strategy::{PartialReport, SamplingStrategy, StrategyReport};
use delorean_cache::{Hierarchy, HierarchySnapshot, MachineConfig};
use delorean_cpu::TimingConfig;
use delorean_trace::fault::{self, FaultPolicy};
use delorean_trace::{MemAccess, Workload};
use delorean_virt::{CostModel, HostClock, SpecUnit, WorkKind};

/// The checkpoints of one (workload, plan, machine) combination.
#[derive(Clone, Debug)]
pub struct CheckpointSet {
    snapshots: Vec<HierarchySnapshot>,
    /// Host seconds spent producing the checkpoints (one functional-
    /// warming pass over the whole program).
    pub preparation_seconds: f64,
}

impl CheckpointSet {
    /// Number of checkpoints (= regions).
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` if no checkpoints were captured.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Total storage across all regions, bytes.
    pub fn storage_bytes(&self) -> u64 {
        self.snapshots.iter().map(|s| s.storage_bytes()).sum()
    }
}

/// Strategy extras attached by [`CheckpointWarmingRunner`]'s
/// [`SamplingStrategy::run`]: the preparation-run trade-off the
/// evaluation report deliberately excludes.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointExtras {
    /// Total checkpoint storage, bytes.
    pub storage_bytes: u64,
    /// Host seconds of the preparation (functional-warming) run.
    pub preparation_seconds: f64,
}

/// Checkpointed-warming runner: prepare once, evaluate cheaply.
#[derive(Clone, Debug)]
pub struct CheckpointWarmingRunner {
    machine: MachineConfig,
    timing: TimingConfig,
    cost: CostModel,
    workers: usize,
    /// Modeled checkpoint-load bandwidth (2009-era disk, bytes/second).
    pub load_bytes_per_second: f64,
}

impl CheckpointWarmingRunner {
    /// A runner with Table 1 timing and paper-host costs.
    pub fn new(machine: MachineConfig) -> Self {
        CheckpointWarmingRunner {
            machine,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
            workers: 1,
            load_bytes_per_second: 100.0e6,
        }
    }

    /// Override the host cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Set the region-scheduler worker count evaluation runs use.
    /// Checkpoint **evaluation** is embarrassingly region-parallel —
    /// each unit restores its own snapshot — while the preparation pass
    /// stays a sequential warm chain; results are byte-identical for
    /// every value.
    pub fn with_region_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The preparation run: functional warming across the whole program,
    /// snapshotting the hierarchy at each region's warming start.
    ///
    /// This costs as much as one SMARTS run minus the detailed regions —
    /// checkpointing only pays off when the snapshots are reused.
    pub fn prepare(&self, workload: &dyn Workload, plan: &RegionPlan) -> CheckpointSet {
        let mut hierarchy = Hierarchy::new(&self.machine);
        let mut clock = HostClock::new();
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();
        let mut pos_access = 0u64;
        let mut snapshots = Vec::with_capacity(plan.regions.len());
        for region in &plan.regions {
            let warm_end_access = region.warming.start / p;
            let span = warm_end_access.saturating_sub(pos_access);
            clock.charge(
                self.cost
                    .instr_seconds(WorkKind::Functional, span * p * mult),
            );
            hierarchy.warm_range(workload, pos_access..warm_end_access);
            snapshots.push(hierarchy.snapshot());
            pos_access = warm_end_access;
        }
        CheckpointSet {
            snapshots,
            preparation_seconds: clock.seconds(),
        }
    }

    /// The preparation run through the **speculative warm lane**: the
    /// warm chain between snapshots is the same chain SMARTS walks, so
    /// the same protocol applies — each worker builds a proxy of the
    /// chain state at its region's boundary, digests it, warms its span
    /// and snapshots; the reconciler advances the true state and on a
    /// digest match adopts the worker's snapshot and end state, else
    /// re-warms the span itself.
    ///
    /// One wrinkle: [`Hierarchy::snapshot`] drains the MSHRs, so the
    /// chain state at every boundary after the first is post-drain. The
    /// spec worker mirrors that by draining its proxy before digesting,
    /// keeping the comparison apples-to-apples.
    ///
    /// Committed snapshots may differ from sequentially-prepared ones in
    /// *dead* bytes (absolute recency stamps) — but storage accounting
    /// (valid lines) and every evaluation run built on them are
    /// functions of the live state only, so `preparation_seconds`,
    /// [`CheckpointSet::storage_bytes`] and the evaluation
    /// [`SimulationReport`] are all identical to sequential preparation
    /// (pinned by `tests/determinism.rs`).
    pub fn prepare_speculative(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        proxy: ProxyStateSource,
        workers: usize,
    ) -> (CheckpointSet, SpeculationExtras) {
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();
        let mut positions = Vec::with_capacity(plan.regions.len());
        let mut pos = 0u64;
        for region in &plan.regions {
            positions.push(pos);
            pos = region.warming.start / p;
        }
        let positions = &positions;

        struct Speculation {
            digest: u64,
            end_state: Hierarchy,
            snapshot: HierarchySnapshot,
            proxy_seconds: f64,
            total_seconds: f64,
        }

        let ctx = crate::proxy::ProxyContext {
            machine: &self.machine,
            cost: &self.cost,
            workload,
            p,
            mult,
        };
        let spec = |i: u32, region: &crate::config::Region| -> Speculation {
            let at = positions[i as usize];
            let prev = if i == 0 { 0 } else { positions[i as usize - 1] };
            let (mut h, proxy_seconds) = proxy.build(&ctx, at, prev);
            // The chain drained its MSHRs when it snapshotted at `at`.
            h.drain_mshrs();
            let digest = h.state_digest();
            let warm_end = region.warming.start / p;
            let span = warm_end.saturating_sub(at);
            let warm_seconds = self
                .cost
                .instr_seconds(WorkKind::Functional, span * p * mult);
            h.warm_range(workload, at..warm_end);
            let snapshot = h.snapshot();
            Speculation {
                digest,
                end_state: h,
                snapshot,
                proxy_seconds,
                total_seconds: proxy_seconds + warm_seconds,
            }
        };

        let mut hierarchy = Hierarchy::new(&self.machine);
        let mut pos_access = 0u64;
        let mut clock = HostClock::new();
        let mut outcomes: Vec<SpecUnit> = Vec::with_capacity(plan.regions.len());
        let snapshots = RegionScheduler::new(workers).run_speculative(
            &plan.regions,
            spec,
            |i: u32, region: &crate::config::Region, s: Speculation| -> HierarchySnapshot {
                debug_assert_eq!(pos_access, positions[i as usize]);
                let warm_end = region.warming.start / p;
                let span = warm_end.saturating_sub(pos_access);
                clock.charge(
                    self.cost
                        .instr_seconds(WorkKind::Functional, span * p * mult),
                );
                // drain_mshrs is idempotent on the already-drained chain
                // (and a no-op on the cold start), so digesting after it
                // matches the spec worker's comparison point exactly.
                hierarchy.drain_mshrs();
                let committed = hierarchy.state_digest() == s.digest;
                let snapshot = if committed {
                    hierarchy.copy_state_from(&s.end_state);
                    s.snapshot
                } else {
                    hierarchy.warm_range(workload, pos_access..warm_end);
                    hierarchy.snapshot()
                };
                pos_access = warm_end;
                outcomes.push(SpecUnit {
                    unit: i,
                    committed,
                    proxy_seconds: s.proxy_seconds,
                    speculative_seconds: s.total_seconds,
                });
                snapshot
            },
        );
        (
            CheckpointSet {
                snapshots,
                preparation_seconds: clock.seconds(),
            },
            SpeculationExtras { proxy, outcomes },
        )
    }

    /// An evaluation run from existing checkpoints: load, detailed-warm,
    /// simulate. Accuracy is identical to SMARTS by construction (the
    /// state is the real functional-warming state).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint count does not match the plan.
    pub fn run_with(
        &self,
        checkpoints: &CheckpointSet,
        workload: &dyn Workload,
        plan: &RegionPlan,
    ) -> SimulationReport {
        self.run_with_at(checkpoints, workload, plan, self.workers)
    }

    /// [`run_with`](CheckpointWarmingRunner::run_with) at an explicit
    /// region-scheduler worker count: every region unit restores its own
    /// snapshot into its own hierarchy, so evaluation fans out freely.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint count does not match the plan.
    pub fn run_with_at(
        &self,
        checkpoints: &CheckpointSet,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
    ) -> SimulationReport {
        assert_eq!(
            checkpoints.len(),
            plan.regions.len(),
            "checkpoint/plan mismatch"
        );
        let units = RegionScheduler::new(workers)
            .run_units(&plan.regions, self.eval_unit(checkpoints, workload));
        reduce_units(workload, plan, "checkpoint", &[], units)
    }

    /// The per-region evaluation unit shared by the plain and
    /// fault-isolated paths: restore the region's snapshot into a fresh
    /// hierarchy, then detailed-warm and measure — a pure function of
    /// `(index, region)` given the checkpoint set, so the isolated path
    /// may retry it from the top.
    fn eval_unit<'a>(
        &'a self,
        checkpoints: &'a CheckpointSet,
        workload: &'a dyn Workload,
    ) -> impl Fn(u32, &Region) -> RegionUnit + Sync + 'a {
        move |i: u32, region: &Region| {
            let mut driver = UnitDriver::new(workload, &self.timing, &self.cost);
            let snap = &checkpoints.snapshots[i as usize];
            // Load the checkpoint from storage.
            driver.charge_seconds(snap.storage_bytes() as f64 / self.load_bytes_per_second);
            let mut hierarchy = Hierarchy::new(&self.machine);
            hierarchy.restore(snap);
            // Detailed warming + region on the restored state.
            let mut source = |a: &MemAccess, now: u64| hierarchy.access_data(a.pc, a.line(), now);
            driver.measure_region(region, &mut source)
        }
    }
}

impl SamplingStrategy for CheckpointWarmingRunner {
    fn name(&self) -> &str {
        "checkpoint"
    }

    /// Prepare and evaluate in one call. The returned report covers the
    /// **evaluation run only** (checkpointing's selling point); the
    /// preparation cost and storage footprint — the trade-off against
    /// statistical warming — ride along as [`CheckpointExtras`].
    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport {
        self.run_with_workers(workload, plan, self.workers)
    }

    /// Prepare (sequential warm chain) and evaluate (region-parallel at
    /// `workers`) in one call; see [`SamplingStrategy::run`] for the
    /// report/extras split.
    fn run_with_workers(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
    ) -> StrategyReport {
        let checkpoints = self.prepare(workload, plan);
        let report = self.run_with_at(&checkpoints, workload, plan, workers);
        StrategyReport::new(report).with_extras(CheckpointExtras {
            storage_bytes: checkpoints.storage_bytes(),
            preparation_seconds: checkpoints.preparation_seconds,
        })
    }

    /// Checkpointed warming with per-unit panic isolation.
    ///
    /// Preparation is a sequential warm chain over a locally owned
    /// hierarchy — a pure function of the workload and plan — so the
    /// *whole* prepare step is one guarded, retryable unit. Once the
    /// checkpoint set exists, evaluation units restore independent
    /// snapshots and are retried/quarantined individually.
    fn run_isolated(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
        policy: &FaultPolicy,
    ) -> PartialReport {
        let checkpoints = match fault::run_unit_guarded(0, policy, || self.prepare(workload, plan))
        {
            Ok(set) => set,
            Err(failure) => {
                // Preparation never completed: no region has a snapshot,
                // so the whole sweep is quarantined behind unit 0.
                let report = SimulationReport {
                    workload: workload.name().to_string(),
                    strategy: self.name().to_string(),
                    ..Default::default()
                };
                return PartialReport {
                    report,
                    quarantined: vec![failure],
                };
            }
        };
        let (units, quarantined) = RegionScheduler::new(workers).run_units_isolated(
            &plan.regions,
            policy,
            self.eval_unit(&checkpoints, workload),
        );
        PartialReport {
            report: reduce_units_partial(workload, plan, self.name(), &[], units),
            quarantined,
        }
    }

    fn internal_parallelism(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SamplingConfig, SmartsRunner};
    use delorean_trace::{spec_workload, Scale};

    fn setup() -> (impl Workload, MachineConfig, RegionPlan) {
        let scale = Scale::tiny();
        (
            spec_workload("hmmer", scale, 1).unwrap(),
            MachineConfig::for_scale(scale),
            SamplingConfig::for_scale(scale).with_regions(3).plan(),
        )
    }

    #[test]
    fn checkpoint_accuracy_matches_smarts_exactly() {
        let (w, machine, plan) = setup();
        let runner = CheckpointWarmingRunner::new(machine);
        let checkpoints = runner.prepare(&w, &plan);
        let cw = runner.run_with(&checkpoints, &w, &plan);
        let smarts = SmartsRunner::new(machine).run(&w, &plan);
        // CW restores the exact functional-warming state, so region
        // results are identical, not merely close.
        assert_eq!(cw.total(), smarts.total());
    }

    #[test]
    fn checkpoints_cost_storage() {
        let (w, machine, plan) = setup();
        let runner = CheckpointWarmingRunner::new(machine);
        let checkpoints = runner.prepare(&w, &plan);
        assert_eq!(checkpoints.len(), 3);
        assert!(!checkpoints.is_empty());
        // Later regions have warmer caches, so storage is non-trivial.
        assert!(
            checkpoints.storage_bytes() > 1_000,
            "storage {}",
            checkpoints.storage_bytes()
        );
        assert!(checkpoints.preparation_seconds > 0.0);
    }

    #[test]
    fn evaluation_runs_are_fast_after_preparation() {
        let (w, machine, plan) = setup();
        let runner = CheckpointWarmingRunner::new(machine);
        let checkpoints = runner.prepare(&w, &plan);
        let cw = runner.run_with(&checkpoints, &w, &plan);
        // The evaluation run avoids all functional warming: orders of
        // magnitude cheaper than preparation.
        assert!(
            cw.cost.serial_wallclock() * 10.0 < checkpoints.preparation_seconds,
            "eval {} vs prep {}",
            cw.cost.serial_wallclock(),
            checkpoints.preparation_seconds
        );
    }

    #[test]
    fn strategy_run_is_prepare_plus_eval_with_extras() {
        let (w, machine, plan) = setup();
        let runner = CheckpointWarmingRunner::new(machine);
        let via_trait = runner.run(&w, &plan);
        let checkpoints = runner.prepare(&w, &plan);
        let direct = runner.run_with(&checkpoints, &w, &plan);
        assert_eq!(via_trait.total(), direct.total());
        let extras = via_trait.extras::<CheckpointExtras>().expect("extras");
        assert_eq!(extras.storage_bytes, checkpoints.storage_bytes());
        assert_eq!(extras.preparation_seconds, checkpoints.preparation_seconds);
    }

    #[test]
    fn speculative_preparation_matches_sequential() {
        let (w, machine, plan) = setup();
        let runner = CheckpointWarmingRunner::new(machine);
        let sequential = runner.prepare(&w, &plan);
        let seq_eval = runner.run_with(&sequential, &w, &plan);
        for proxy in [
            ProxyStateSource::Cold,
            ProxyStateSource::StatModel,
            ProxyStateSource::Poisoned,
        ] {
            for workers in [1usize, 4] {
                let (set, extras) = runner.prepare_speculative(&w, &plan, proxy, workers);
                assert_eq!(set.len(), sequential.len());
                assert_eq!(set.preparation_seconds, sequential.preparation_seconds);
                assert_eq!(set.storage_bytes(), sequential.storage_bytes());
                let eval = runner.run_with(&set, &w, &plan);
                assert_eq!(eval, seq_eval, "proxy {} workers {workers}", proxy.name());
                if proxy == ProxyStateSource::Poisoned {
                    assert_eq!(extras.hits(), 0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "checkpoint/plan mismatch")]
    fn mismatched_plan_is_rejected() {
        let (w, machine, plan) = setup();
        let runner = CheckpointWarmingRunner::new(machine);
        let checkpoints = runner.prepare(&w, &plan);
        let other = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(5)
            .plan();
        let _ = runner.run_with(&checkpoints, &w, &other);
    }
}
