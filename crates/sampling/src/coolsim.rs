//! CoolSim: randomized statistical warming (RSW).
//!
//! The state of the art the paper improves on (Nikoleris et al., SAMOS
//! 2016). Instead of warming caches, CoolSim samples *random* reuse
//! distances in the warm-up interval with page-protection watchpoints,
//! builds per-PC reuse profiles, and statistically predicts hit/miss for
//! each access of the detailed region that misses the lukewarm cache.
//!
//! The configuration here is the paper's "best possible" adaptive
//! schedule (§6): sample one memory location every 40 k memory
//! instructions during the first 750 M instructions of the interval, one
//! every 20 k for the next 200 M, and one every 10 k for the last 50 M —
//! denser sampling closer to the region, where reuses matter most.
//!
//! Two modeled inefficiencies are the point of comparison with DeLorean:
//! most sampled reuses belong to PCs that never appear in the detailed
//! region (wasted traps), and PCs *in* the region may end up with no
//! samples at all, forcing a pessimistic miss default (the source of
//! CoolSim's CPI overestimation for soplex and GemsFDTD in Figures 9/10).

use crate::config::{Region, RegionPlan};
use crate::driver::{reduce_units, reduce_units_partial, RegionUnit, UnitDriver};
use crate::scheduler::RegionScheduler;
use crate::strategy::{PartialReport, SamplingStrategy, StrategyReport};
use delorean_cache::{Hierarchy, MachineConfig, MemLevel};
use delorean_cpu::TimingConfig;
use delorean_statmodel::per_pc::{PcPrediction, PcProfiles};
use delorean_trace::fault::FaultPolicy;
use delorean_trace::{
    CounterRng, InterestFilter, LineMap, MemAccess, Scale, Workload, CURSOR_BATCH,
};
use delorean_virt::{CostModel, Trap, WatchSet, WorkKind};
use serde::{Deserialize, Serialize};

/// One phase of the adaptive sampling schedule.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulePhase {
    /// Share of the warm-up interval, in per mille (phases are laid out in
    /// order from the interval start).
    pub span_permille: u32,
    /// Sampling period: one sample per this many instructions.
    pub period_instrs: u64,
}

/// CoolSim configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoolSimConfig {
    /// Adaptive schedule phases, covering the interval in order.
    pub schedule: Vec<SchedulePhase>,
    /// Seed for sampling decisions.
    pub seed: u64,
}

impl CoolSimConfig {
    /// The paper's best adaptive configuration, scaled.
    pub fn for_scale(scale: Scale) -> Self {
        CoolSimConfig {
            schedule: vec![
                SchedulePhase {
                    span_permille: 750,
                    period_instrs: scale.sample_period(40_000),
                },
                SchedulePhase {
                    span_permille: 200,
                    period_instrs: scale.sample_period(20_000),
                },
                SchedulePhase {
                    span_permille: 50,
                    period_instrs: scale.sample_period(10_000),
                },
            ],
            seed: 0xc001_517e,
        }
    }

    /// Sampling period (in accesses) at `offset` accesses into an interval
    /// of `len` accesses, given the workload's instructions-per-access.
    fn period_at(&self, offset: u64, len: u64, mem_period: u64) -> u64 {
        let mut acc = 0u64;
        let pos_permille = (offset * 1000).checked_div(len).unwrap_or(0);
        for ph in &self.schedule {
            acc += ph.span_permille as u64;
            if pos_permille < acc {
                return (ph.period_instrs / mem_period).max(1);
            }
        }
        // Past the declared schedule: keep the densest (last) phase.
        self.schedule
            .last()
            .map(|p| (p.period_instrs / mem_period).max(1))
            .unwrap_or(1)
    }
}

/// The CoolSim (randomized statistical warming) runner.
#[derive(Clone, Debug)]
pub struct CoolSimRunner {
    machine: MachineConfig,
    timing: TimingConfig,
    cost: CostModel,
    config: CoolSimConfig,
    workers: usize,
}

impl CoolSimRunner {
    /// A runner with Table 1 timing, paper-host costs and the scaled
    /// adaptive schedule.
    pub fn new(machine: MachineConfig, config: CoolSimConfig) -> Self {
        CoolSimRunner {
            machine,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
            config,
            workers: 1,
        }
    }

    /// Override the timing configuration.
    pub fn with_timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Override the host cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Set the region-scheduler worker count [`run`] uses. CoolSim's
    /// regions are fully independent (per-region watchpoint profiles and
    /// a fresh lukewarm hierarchy), so every region is one parallel
    /// unit; results are byte-identical for every value.
    ///
    /// [`run`]: SamplingStrategy::run
    pub fn with_region_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The per-region unit body shared by the plain and fault-isolated
    /// paths. A pure function of `(index, region)` — each call owns its
    /// watchpoint set, pending-sample map, per-PC profiles and lukewarm
    /// hierarchy outright, and sampling decisions come from a stateless
    /// counter RNG — so the isolated path may retry it from the top.
    fn region_unit<'a>(
        &'a self,
        workload: &'a dyn Workload,
        plan: &RegionPlan,
    ) -> impl Fn(u32, &Region) -> RegionUnit + Sync + 'a {
        let p = workload.mem_period();
        let mult = plan.config.work_multiplier();
        let rng = CounterRng::new(self.config.seed);
        let spacing = plan.config.spacing_instrs;
        let llc_lines = self.machine.hierarchy.llc.lines();
        let trap_seconds = self.cost.trap_seconds;

        move |_i: u32, region: &Region| {
            let mut driver = UnitDriver::new(workload, &self.timing, &self.cost);
            // --- Profile the warm-up interval with random watchpoints. ---
            let interval = region.warmup_interval(spacing);
            let first = interval.start.div_ceil(p);
            let last = interval.end / p;
            let len = last.saturating_sub(first);
            let mut profiles = PcProfiles::new();
            let mut watch = WatchSet::new();
            let mut pending: LineMap<u64> = LineMap::new();
            // Interest prefilter over the watched pages: the dominant
            // unwatched access is one hashed bit probe; the exact page
            // table decides only on a filter hit.
            let mut filter = InterestFilter::with_capacity_for(1024);

            // The interval runs under VFF (charged at represented
            // magnitude); traps are charged per event at face value. The
            // scan consumes cursor-filled slices directly — the watch
            // classification is the whole loop body, so there is no
            // per-access closure boundary left.
            driver.charge_work(WorkKind::Vff, len * p * mult);
            let mut cursor = workload.cursor(first..last);
            let mut batch = Vec::with_capacity(CURSOR_BATCH);
            while cursor.fill(&mut batch, CURSOR_BATCH) > 0 {
                for a in &batch {
                    let k = a.index;
                    if filter.contains_page(a.page()) {
                        match watch.classify(a) {
                            Trap::None => {}
                            Trap::FalsePositive => driver.charge_seconds(trap_seconds),
                            Trap::Hit(line) => {
                                driver.charge_seconds(trap_seconds);
                                if let Some(set_at) = pending.remove(line) {
                                    // Reuse found: distance is the accesses
                                    // strictly between; attributed to the
                                    // reusing PC.
                                    profiles.record(a.pc, k - set_at - 1, 1.0);
                                    driver.record_collected(1);
                                    watch.unwatch_line(line);
                                    filter.remove_page(line.page());
                                }
                            }
                        }
                    }
                    // Random sampling decision at the schedule's current
                    // rate.
                    let period = self.config.period_at(k - first, len, p);
                    if rng.chance_one_in(k, period) && !pending.contains(a.line()) {
                        pending.insert(a.line(), k);
                        watch.watch_line(a.line());
                        filter.insert_page(a.page());
                    }
                }
            }
            // Unresolved samples: reuse longer than the remaining interval.
            // CoolSim has no better information than "very long"; attribute
            // cold weight to the sampled access's PC.
            for (line, set_at) in pending.drain() {
                let pc = workload.access_at(set_at).pc;
                profiles.record_cold(pc, 1.0);
                watch.unwatch_line(line);
            }

            // --- Lukewarm detailed warming + statistically-warmed region. ---
            let mut lukewarm = Hierarchy::new(&self.machine);
            let mut source = |a: &MemAccess, now: u64| {
                let simulated = lukewarm.access_data(a.pc, a.line(), now);
                if simulated != MemLevel::Memory {
                    return simulated;
                }
                // Missed the lukewarm hierarchy: ask the statistical model
                // whether a perfectly warm cache would have hit.
                match profiles.predict(a.pc, llc_lines) {
                    PcPrediction::Hit => MemLevel::Llc,
                    // No samples for this PC: predict pessimistically.
                    PcPrediction::Miss | PcPrediction::NoData => MemLevel::Memory,
                }
            };
            driver.measure_region(region, &mut source)
        }
    }
}

impl SamplingStrategy for CoolSimRunner {
    fn name(&self) -> &str {
        "coolsim"
    }

    fn run(&self, workload: &dyn Workload, plan: &RegionPlan) -> StrategyReport {
        self.run_with_workers(workload, plan, self.workers)
    }

    /// CoolSim under the region scheduler: every region is one fully
    /// independent unit — it owns its watchpoint set, pending-sample
    /// map, per-PC profiles and lukewarm hierarchy outright, and the
    /// sampling decisions come from a stateless counter-based RNG — so
    /// the whole plan fans out with no carried lane at all.
    fn run_with_workers(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
    ) -> StrategyReport {
        let units = RegionScheduler::new(workers)
            .run_units(&plan.regions, self.region_unit(workload, plan));
        reduce_units(workload, plan, self.name(), &[], units).into()
    }

    /// CoolSim with per-unit panic isolation: the same independent unit
    /// body, retried from the top on a fault and quarantined on
    /// exhaustion.
    fn run_isolated(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        workers: usize,
        policy: &FaultPolicy,
    ) -> PartialReport {
        let (units, quarantined) = RegionScheduler::new(workers).run_units_isolated(
            &plan.regions,
            policy,
            self.region_unit(workload, plan),
        );
        PartialReport {
            report: reduce_units_partial(workload, plan, self.name(), &[], units),
            quarantined,
        }
    }

    /// CoolSim decomposes fully: the unit body is a pure function of
    /// `(index, region)`, so any span of plan regions evaluates
    /// anywhere and folds back bitwise identically.
    fn run_unit_span(
        &self,
        workload: &dyn Workload,
        plan: &RegionPlan,
        span: std::ops::Range<u32>,
    ) -> Option<Vec<RegionUnit>> {
        let hi = (span.end as usize).min(plan.regions.len());
        let lo = (span.start as usize).min(hi);
        let unit = self.region_unit(workload, plan);
        Some(
            plan.regions[lo..hi]
                .iter()
                .map(|r| unit(r.index, r))
                .collect(),
        )
    }

    fn internal_parallelism(&self) -> usize {
        self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SamplingConfig, SmartsRunner};
    use delorean_trace::spec_workload;

    fn quick_plan() -> RegionPlan {
        SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan()
    }

    fn runner() -> CoolSimRunner {
        CoolSimRunner::new(
            MachineConfig::for_scale(Scale::tiny()),
            CoolSimConfig::for_scale(Scale::tiny()),
        )
    }

    #[test]
    fn schedule_gets_denser_toward_the_region() {
        let cfg = CoolSimConfig::for_scale(Scale::paper());
        let p = 3;
        let len = 1_000_000;
        let early = cfg.period_at(0, len, p);
        let mid = cfg.period_at(800_000, len, p);
        let late = cfg.period_at(990_000, len, p);
        assert!(early > mid && mid > late, "{early} {mid} {late}");
        assert_eq!(early, 40_000 / 3);
    }

    #[test]
    fn collects_reuse_distances() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let report = runner().run(&w, &quick_plan());
        assert!(
            report.collected_reuse_distances > 10,
            "collected {}",
            report.collected_reuse_distances
        );
    }

    #[test]
    fn is_faster_than_smarts() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let cool = runner().run(&w, &plan);
        let smarts = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &plan);
        assert!(
            cool.speedup_vs(&smarts) > 2.0,
            "speedup {}",
            cool.speedup_vs(&smarts)
        );
    }

    #[test]
    fn cpi_is_in_the_reference_ballpark() {
        let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let cool = runner().run(&w, &plan);
        let smarts = SmartsRunner::new(MachineConfig::for_scale(Scale::tiny())).run(&w, &plan);
        let err = cool.cpi_error_vs(&smarts);
        assert!(
            err < 0.5,
            "CoolSim error {err} (cool {} vs ref {})",
            cool.cpi(),
            smarts.cpi()
        );
    }

    #[test]
    fn deterministic() {
        let w = spec_workload("namd", Scale::tiny(), 1).unwrap();
        let plan = quick_plan();
        let a = runner().run(&w, &plan);
        let b = runner().run(&w, &plan);
        assert_eq!(a.cpi(), b.cpi());
        assert_eq!(a.collected_reuse_distances, b.collected_reuse_distances);
    }
}
