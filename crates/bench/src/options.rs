//! Experiment options and a dependency-free CLI argument parser.

use delorean_trace::Scale;

/// Options shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExpOptions {
    /// Experiment scale (default: demo).
    pub scale: Scale,
    /// Workload suite seed.
    pub seed: u64,
    /// Restrict the suite to names containing this substring.
    pub filter: Option<String>,
    /// Override the region count.
    pub regions: Option<u32>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: Scale::demo(),
            seed: 42,
            filter: None,
            regions: None,
        }
    }
}

impl ExpOptions {
    /// Quick options for tests: tiny scale, 3 regions.
    pub fn tiny() -> Self {
        ExpOptions {
            scale: Scale::tiny(),
            regions: Some(3),
            ..Default::default()
        }
    }

    /// Parse from `std::env::args`-style strings:
    /// `--scale demo|tiny|paper`, `--seed N`, `--filter NAME`,
    /// `--regions N`.
    ///
    /// # Errors
    ///
    /// Returns a usage message on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = ExpOptions::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match flag.as_str() {
                "--scale" => {
                    opts.scale = match value("--scale")?.as_str() {
                        "paper" => Scale::paper(),
                        "demo" => Scale::demo(),
                        "tiny" => Scale::tiny(),
                        other => return Err(format!("unknown scale '{other}'")),
                    };
                }
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad seed: {e}"))?;
                }
                "--filter" => opts.filter = Some(value("--filter")?),
                "--regions" => {
                    opts.regions = Some(
                        value("--regions")?
                            .parse()
                            .map_err(|e| format!("bad region count: {e}"))?,
                    );
                }
                other => {
                    return Err(format!(
                        "unknown flag '{other}'; supported: --scale demo|tiny|paper, \
                         --seed N, --filter NAME, --regions N"
                    ))
                }
            }
        }
        Ok(opts)
    }

    /// Parse the process arguments, exiting with a usage message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// `true` if `name` passes the filter.
    pub fn selected(&self, name: &str) -> bool {
        match self.filter.as_deref() {
            None => true,
            Some(f) => name.contains(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<ExpOptions, String> {
        ExpOptions::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::demo());
        assert_eq!(o.seed, 42);
        assert!(o.selected("anything"));
    }

    #[test]
    fn full_flags() {
        let o = parse(&[
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--filter",
            "lbm",
            "--regions",
            "4",
        ])
        .unwrap();
        assert_eq!(o.scale, Scale::tiny());
        assert_eq!(o.seed, 7);
        assert!(o.selected("lbm"));
        assert!(!o.selected("mcf"));
        assert_eq!(o.regions, Some(4));
    }

    #[test]
    fn rejects_unknown() {
        assert!(parse(&["--nope"]).is_err());
        assert!(parse(&["--scale", "giant"]).is_err());
        assert!(parse(&["--seed"]).is_err());
        assert!(parse(&["--seed", "abc"]).is_err());
    }
}
