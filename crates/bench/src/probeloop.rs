//! Explorer-loop perf measurement: std-map probes vs the fused interest
//! filter + flat line tables (PR 3).
//!
//! PR 2 made access *generation* fast; after it, the explorer loop's wall
//! clock is dominated by the per-access lookups that classify each access
//! against the watch set, the key table and the armed vicinity samples.
//! This module measures exactly that loop both ways: through a faithful
//! replica of the pre-PR 3 implementation (nested `std::collections`
//! probes per access) and through the production [`run_explorer`]
//! (interest filter + `LineMap`/refcounted `WatchSet`). Both paths run the same
//! streaming cursor, charge the same cost model and must produce the same
//! resolved keys and vicinity samples — only the lookup substrate
//! differs, so the rate ratio isolates the probe cost.

use delorean_core::explorer::{run_explorer, ExplorerOutcome, PendingKey};
use delorean_sampling::Region;
use delorean_statmodel::ReuseProfile;
use delorean_trace::{CounterRng, LineAddr, PageAddr, Workload, WorkloadExt};
use delorean_virt::{CostModel, HostClock, WatchScanStats, WorkKind};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Which lookup substrate an explorer-loop measurement exercised.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ProbePath {
    /// Pre-PR 3 replica: nested `std` hash probes per access.
    StdMaps,
    /// The production loop: interest filter + flat tables.
    FlatFused,
}

/// Replica of the pre-PR 3 `WatchSet`: nested std maps, no refcounts.
#[derive(Default)]
struct StdWatchSet {
    pages: HashMap<PageAddr, HashSet<LineAddr>>,
}

impl StdWatchSet {
    fn watch_line(&mut self, line: LineAddr) {
        self.pages.entry(line.page()).or_default().insert(line);
    }

    fn unwatch_line(&mut self, line: LineAddr) -> bool {
        let page = line.page();
        let Some(lines) = self.pages.get_mut(&page) else {
            return false;
        };
        let removed = lines.remove(&line);
        if lines.is_empty() {
            self.pages.remove(&page);
        }
        removed
    }

    /// 0 = no trap, 1 = false positive, 2 = hit.
    #[inline]
    fn classify(&self, line: LineAddr) -> u8 {
        match self.pages.get(&line.page()) {
            None => 0,
            Some(lines) => {
                if lines.contains(&line) {
                    2
                } else {
                    1
                }
            }
        }
    }
}

/// The pre-PR 3 explorer loop, verbatim: per-access probes of the nested
/// watch map, the key-line map and the vicinity map, all on
/// `std::collections`. Kept as the measurement baseline (and equivalence
/// oracle) for [`measure_explorer_loop`].
#[allow(clippy::too_many_arguments)]
pub fn run_explorer_std_baseline(
    workload: &dyn Workload,
    cost: &CostModel,
    clock: &mut HostClock,
    index: usize,
    window_instrs: u64,
    prev_window_instrs: u64,
    region: &Region,
    pending: &[PendingKey],
    vicinity_period_accesses: u64,
    seed: u64,
    work_multiplier: u64,
) -> ExplorerOutcome {
    let start_instr = region.start_instr.saturating_sub(window_instrs);
    let end_instr = region.start_instr.saturating_sub(prev_window_instrs);
    let first = workload.access_index_at_instr(start_instr);
    let end = workload.access_index_at_instr(end_instr);
    let p = workload.mem_period();
    let functional = index == 0;

    let span_accesses = end.saturating_sub(first);
    clock.charge(cost.instr_seconds(
        if functional {
            WorkKind::Functional
        } else {
            WorkKind::Vff
        },
        span_accesses * p * work_multiplier,
    ));

    let mut last_seen: HashMap<LineAddr, u64> = HashMap::with_capacity(pending.len());
    let mut watch = StdWatchSet::default();
    if !functional {
        for k in pending {
            watch.watch_line(k.line);
        }
    }
    let key_lines: HashMap<LineAddr, u64> = pending
        .iter()
        .map(|k| (k.line, k.first_access_index))
        .collect();

    let rng = CounterRng::new(seed ^ ((index as u64 + 1) << 48) ^ region.index as u64);
    let mut vicinity = ReuseProfile::new();
    let mut vicinity_count = 0u64;
    let mut vicinity_pending: HashMap<LineAddr, u64> = HashMap::new();
    let mut scan = WatchScanStats {
        accesses_scanned: span_accesses,
        ..Default::default()
    };

    workload.for_each_access(first..end, |a| {
        let line = a.line();
        if !functional {
            match watch.classify(line) {
                0 => {}
                1 => {
                    scan.false_positives += 1;
                    clock.charge(cost.trap_seconds);
                }
                _ => {
                    scan.true_hits += 1;
                    clock.charge(cost.trap_seconds);
                }
            }
        }
        if key_lines.contains_key(&line) {
            last_seen.insert(line, a.index);
        }
        if let Some(set_at) = vicinity_pending.remove(&line) {
            vicinity.record(a.index - set_at - 1, 1.0);
            vicinity_count += 1;
            if !functional {
                watch.unwatch_line(line);
            }
        }
        if rng.chance_one_in(a.index, vicinity_period_accesses)
            && !vicinity_pending.contains_key(&line)
        {
            vicinity_pending.insert(line, a.index);
            if !functional {
                watch.watch_line(line);
            }
        }
    });
    for (_, set_at) in vicinity_pending.drain() {
        vicinity.record(end.saturating_sub(set_at + 1).max(1), 1.0);
    }

    let mut resolved = Vec::new();
    let mut remaining = Vec::new();
    for k in pending {
        match last_seen.get(&k.line) {
            Some(&pos) if pos < k.first_access_index => {
                resolved.push((k.line, k.first_access_index - pos - 1));
            }
            _ => remaining.push(*k),
        }
    }
    ExplorerOutcome {
        resolved,
        remaining,
        vicinity,
        vicinity_count,
        scan,
    }
}

/// One measured explorer-loop rate.
#[derive(Clone, Debug)]
pub struct ExplorerLoopRate {
    /// Accesses scanned per wall-clock second (best of the repeats).
    pub accesses_per_sec: f64,
    /// The outcome of the last run (for equivalence checks).
    pub outcome: ExplorerOutcome,
}

/// Parameters of one explorer-loop measurement point.
#[derive(Clone, Debug)]
pub struct ExplorerLoopCase<'a> {
    /// The workload to scan.
    pub workload: &'a dyn Workload,
    /// The region whose pre-history is profiled.
    pub region: &'a Region,
    /// Pending key watchpoints (density axis 1).
    pub pending: &'a [PendingKey],
    /// Vicinity sampling period in accesses (density axis 2).
    pub vicinity_period_accesses: u64,
    /// Explorer window in instructions.
    pub window_instrs: u64,
    /// Explorer index (0 = functional, ≥ 1 = VDP).
    pub explorer_index: usize,
}

/// Measure accesses/second of the explorer loop through `path`, best of
/// `repeats` runs.
pub fn measure_explorer_loop(
    case: &ExplorerLoopCase<'_>,
    path: ProbePath,
    repeats: u32,
) -> ExplorerLoopRate {
    let cost = CostModel::paper_host();
    let span = {
        let first = case
            .workload
            .access_index_at_instr(case.region.start_instr.saturating_sub(case.window_instrs));
        let end = case.workload.access_index_at_instr(case.region.start_instr);
        end.saturating_sub(first)
    };
    let mut best = f64::MAX;
    let mut outcome = None;
    for _ in 0..repeats.max(1) {
        let mut clock = HostClock::new();
        let t = Instant::now();
        let out = match path {
            ProbePath::StdMaps => run_explorer_std_baseline(
                case.workload,
                &cost,
                &mut clock,
                case.explorer_index,
                case.window_instrs,
                0,
                case.region,
                case.pending,
                case.vicinity_period_accesses,
                7,
                1,
            ),
            ProbePath::FlatFused => run_explorer(
                case.workload,
                &cost,
                &mut clock,
                case.explorer_index,
                case.window_instrs,
                0,
                case.region,
                case.pending,
                case.vicinity_period_accesses,
                7,
                1,
            ),
        };
        best = best.min(t.elapsed().as_secs_f64());
        outcome = Some(out);
    }
    ExplorerLoopRate {
        accesses_per_sec: span as f64 / best.max(1e-12),
        outcome: outcome.expect("at least one repeat"),
    }
}

/// Assert that two explorer outcomes agree on everything the analyst
/// consumes: resolved keys, remaining keys and vicinity sample count.
/// (Trap statistics may legitimately differ: the std baseline carries the
/// pre-PR 3 key/vicinity watchpoint clash.)
pub fn assert_outcomes_equivalent(std: &ExplorerOutcome, flat: &ExplorerOutcome) {
    let sort = |v: &[(LineAddr, u64)]| {
        let mut v = v.to_vec();
        v.sort_unstable();
        v
    };
    assert_eq!(
        sort(&std.resolved),
        sort(&flat.resolved),
        "resolved keys diverged between std and flat explorer loops"
    );
    assert_eq!(
        std.remaining.len(),
        flat.remaining.len(),
        "remaining keys diverged"
    );
    assert_eq!(
        std.vicinity_count, flat.vicinity_count,
        "vicinity sample count diverged"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_sampling::SamplingConfig;
    use delorean_trace::{spec_workload, Scale};

    fn case_setup() -> (impl Workload, Region, Vec<PendingKey>) {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let plan = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(2)
            .plan();
        let region = plan.regions[1].clone();
        let region_first = w.access_index_at_instr(region.detailed.start);
        let pending: Vec<PendingKey> = (0..32)
            .map(|i| w.access_at(region_first + i * 3))
            .map(|a| PendingKey {
                line: a.line(),
                first_access_index: a.index,
            })
            .collect();
        (w, region, pending)
    }

    #[test]
    fn std_and_flat_loops_agree_functionally() {
        let (w, region, pending) = case_setup();
        for explorer_index in [0usize, 1] {
            let case = ExplorerLoopCase {
                workload: &w,
                region: &region,
                pending: &pending,
                vicinity_period_accesses: 500,
                window_instrs: 30_000,
                explorer_index,
            };
            let std = measure_explorer_loop(&case, ProbePath::StdMaps, 1);
            let flat = measure_explorer_loop(&case, ProbePath::FlatFused, 1);
            assert_outcomes_equivalent(&std.outcome, &flat.outcome);
            assert!(std.accesses_per_sec > 0.0 && flat.accesses_per_sec > 0.0);
        }
    }

    #[test]
    fn vicinity_profiles_match_exactly() {
        // The recorded vicinity distributions (resolved + censored) must
        // be bit-identical — same distances, same weights.
        let (w, region, pending) = case_setup();
        let case = ExplorerLoopCase {
            workload: &w,
            region: &region,
            pending: &pending,
            vicinity_period_accesses: 200,
            window_instrs: 25_000,
            explorer_index: 1,
        };
        let std = measure_explorer_loop(&case, ProbePath::StdMaps, 1);
        let flat = measure_explorer_loop(&case, ProbePath::FlatFused, 1);
        assert_eq!(
            std.outcome.vicinity.total_weight(),
            flat.outcome.vicinity.total_weight()
        );
        for lines in [64u64, 1024, 65_536] {
            assert_eq!(
                std.outcome.vicinity.stack_distance(lines),
                flat.outcome.vicinity.stack_distance(lines),
                "stack distance diverged at {lines}"
            );
        }
    }
}
