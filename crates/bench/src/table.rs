//! Plain-text result tables (markdown and CSV).

use std::fmt;

/// A titled table of experiment results.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title (figure/table id plus description).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; each must match the header arity.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes rendered under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// A table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the headers.
    pub fn push_row<I: IntoIterator<Item = String>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity mismatch in table '{}'",
            self.title
        );
        self.rows.push(row);
    }

    /// Append a free-form note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as GitHub-flavored markdown.
    pub fn markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {n}\n"));
        }
        out
    }

    /// Render as CSV (headers first; notes omitted).
    pub fn csv(&self) -> String {
        let mut out = self.headers.join(",") + "\n";
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.markdown())
    }
}

/// Format a float with 2 decimals.
pub(crate) fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 1 decimal.
pub(crate) fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a fraction as a percentage with 1 decimal.
pub(crate) fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Fig X", &["a", "b"]);
        t.push_row(["1".into(), "2".into()]);
        t.note("hello");
        let md = t.markdown();
        assert!(md.contains("### Fig X"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("> hello"));
    }

    #[test]
    fn csv_rendering() {
        let mut t = Table::new("t", &["x", "y"]);
        t.push_row(["3".into(), "4".into()]);
        assert_eq!(t.csv(), "x,y\n3,4\n");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("t", &["x", "y"]);
        t.push_row(["3".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(pct(0.035), "3.5%");
    }
}
