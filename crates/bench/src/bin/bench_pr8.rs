//! Speculative warm lane harness: writes `BENCH_PR8.json`, the fifth
//! point of the repository's perf trajectory.
//!
//! `BENCH_PR5.json` records SMARTS at an honest 1.0× for every worker
//! count — its warm chain is sequential. PR 8 breaks the chain by
//! speculation: each worker warms its region from a cheap proxy state
//! (`ProxyStateSource`), a sequential reconciler digest-compares the
//! proxy against the true carried state, commits matches and re-measures
//! mismatches. For every workload × machine × proxy cell this harness:
//!
//! 1. runs the **verbatim pre-PR 5 sequential SMARTS driver**
//!    (`delorean_bench::seqdriver::smarts_sequential`) as the accuracy
//!    oracle;
//! 2. runs the speculative lane at 1/2/4/8 workers and asserts the
//!    **equivalence oracle**: bitwise-identical reports across all
//!    worker counts and proxies, and identical CPI / per-region
//!    counters against the sequential driver;
//! 3. records the measured **speculation hit-rate** (identical at every
//!    worker count by construction — the commit decision is a pure
//!    function of workload × plan × proxy) and the **modeled**
//!    speculative wallclock curve
//!    (`RunCost::speculative_wallclock`), which charges committed
//!    regions at their parallel speculative cost and missed regions at
//!    the full sequential re-measure cost.
//!
//! Machines: the baseline demo hierarchy, plus (full mode) the same
//! hierarchy with the stride prefetcher enabled — the hard case: the
//! digest canonicalizes the prefetcher's absolute trigger tick away, so
//! a window proxy commits when the window reproduces the live streams
//! in recency order, and honestly misses when streams formed before the
//! window. mcf is the hard case on the workload axis (its streaming
//! reuse never converges inside a directed window).
//!
//! Flags: `--quick` (CI smoke: hmmer × baseline machine, 4 regions,
//! gated at ≥1.15× modeled statmodel speedup at 4 workers), `--out PATH`
//! (default `BENCH_PR8.json`).

use delorean_bench::seqdriver;
use delorean_cache::MachineConfig;
use delorean_sampling::{
    ProxyStateSource, SamplingConfig, SamplingStrategy, SimulationReport, SmartsRunner,
    SpeculationExtras,
};
use delorean_trace::{spec_workload, Scale};
use std::fmt::Write as _;
use std::time::Instant;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const PROXIES: [ProxyStateSource; 3] = [
    ProxyStateSource::Cold,
    ProxyStateSource::NearestBoundary,
    ProxyStateSource::StatModel,
];
/// Quick-mode regression gate: modeled speculative speedup of the
/// statmodel proxy at 4 workers (hmmer, baseline machine).
const GATE_QUICK_SPEEDUP_4W: f64 = 1.15;
/// Full-mode floor from the ISSUE acceptance bar: speculation must beat
/// the sequential chain at 4 workers on hmmer-class workloads.
const GATE_FULL_SPEEDUP_4W: f64 = 1.0;

struct Cell {
    workload: String,
    machine: &'static str,
    proxy: &'static str,
    cpi: f64,
    hits: usize,
    regions: usize,
    hit_rate: f64,
    seq_host_seconds: f64,
    host_seconds: [f64; WORKERS.len()],
    modeled_seq_seconds: f64,
    modeled_seconds: [f64; WORKERS.len()],
    modeled_speedup: [f64; WORKERS.len()],
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// CPI + per-region + collected equality against the verbatim
/// sequential driver (whose `RunCost` predates per-unit recording, so
/// full struct equality is compared among scheduler runs only).
fn assert_matches_oracle(cell: &str, oracle: &SimulationReport, new: &SimulationReport) {
    assert_eq!(
        oracle.total(),
        new.total(),
        "{cell}: diverged from the sequential SMARTS driver"
    );
    assert!(
        oracle.cpi() == new.cpi(),
        "{cell}: CPI mismatch ({} vs {})",
        oracle.cpi(),
        new.cpi()
    );
    assert_eq!(
        oracle.regions.len(),
        new.regions.len(),
        "{cell}: region count mismatch"
    );
    for (b, n) in oracle.regions.iter().zip(&new.regions) {
        assert_eq!(b, n, "{cell}: region result diverged");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());

    let scale = Scale::demo();
    let regions = if quick { 4 } else { 10 };
    let plan = SamplingConfig::for_scale(scale)
        .with_regions(regions)
        .plan();
    let workload_names: &[&str] = if quick {
        &["hmmer"]
    } else {
        &["hmmer", "mcf", "povray"]
    };
    let machines: Vec<(&'static str, MachineConfig)> = if quick {
        vec![("baseline", MachineConfig::for_scale(scale))]
    } else {
        vec![
            ("baseline", MachineConfig::for_scale(scale)),
            (
                "prefetch",
                MachineConfig::for_scale(scale).with_prefetch(true),
            ),
        ]
    };

    let mut cells: Vec<Cell> = Vec::new();
    for (mname, machine) in &machines {
        for name in workload_names {
            let w = spec_workload(name, scale, 1).unwrap();

            // --- Verbatim sequential SMARTS: the accuracy oracle. ---
            let t = Instant::now();
            let oracle = seqdriver::smarts_sequential(machine, &w, &plan);
            let seq_host_seconds = t.elapsed().as_secs_f64();

            // --- Non-speculative scheduler run: the modeled-cost
            //     baseline every speculative report must also equal. ---
            let base = SmartsRunner::new(*machine).run_with_workers(&w, &plan, 1);
            assert_matches_oracle(&format!("{mname}/{name}/chained"), &oracle, &base.report);
            let modeled_seq_seconds = base.report.cost.region_parallel_wallclock(1);

            for proxy in PROXIES {
                let cell_name = format!("{mname}/{name}/{}", proxy.name());
                let runner = SmartsRunner::new(*machine).with_speculation(proxy);
                let mut host_seconds = [0.0; WORKERS.len()];
                let mut reports = Vec::with_capacity(WORKERS.len());
                for (i, &workers) in WORKERS.iter().enumerate() {
                    let t = Instant::now();
                    let report = runner.run_with_workers(&w, &plan, workers);
                    host_seconds[i] = t.elapsed().as_secs_f64();
                    reports.push(report);
                }

                // --- Equivalence oracle. ---
                // (a) Worker count never changes the report or the
                //     speculation outcomes, bit for bit.
                for (report, &workers) in reports.iter().zip(&WORKERS[1..]) {
                    assert_eq!(
                        reports[0].report, report.report,
                        "{cell_name}: workers={workers} changed the report"
                    );
                    assert_eq!(
                        reports[0].extras::<SpeculationExtras>(),
                        report.extras::<SpeculationExtras>(),
                        "{cell_name}: workers={workers} changed the speculation outcomes"
                    );
                }
                // (b) Speculation never changes the report either: it
                //     must equal the non-speculative scheduler run in
                //     full (cost accounting included) ...
                assert_eq!(
                    base.report, reports[0].report,
                    "{cell_name}: speculation changed the report"
                );
                // ... and the verbatim sequential driver in substance.
                assert_matches_oracle(&cell_name, &oracle, &reports[0].report);

                // --- Hit-rate + modeled speculative wallclock curve. ---
                let new = &reports[0];
                let extras = new
                    .extras::<SpeculationExtras>()
                    .expect("speculative run carries extras");
                let mut modeled_seconds = [0.0; WORKERS.len()];
                let mut modeled_speedup = [0.0; WORKERS.len()];
                for (i, &workers) in WORKERS.iter().enumerate() {
                    modeled_seconds[i] = new
                        .report
                        .cost
                        .speculative_wallclock(workers, &extras.outcomes);
                    modeled_speedup[i] = modeled_seq_seconds / modeled_seconds[i];
                }
                eprintln!(
                    "{mname:<9} {name:<7} {:<16} cpi {:>6.3}  hit {:>2}/{:<2}  modeled speedup x{:.2}/x{:.2}/x{:.2}/x{:.2} at {WORKERS:?} workers",
                    proxy.name(),
                    new.report.cpi(),
                    extras.hits(),
                    extras.outcomes.len(),
                    modeled_speedup[0],
                    modeled_speedup[1],
                    modeled_speedup[2],
                    modeled_speedup[3],
                );
                cells.push(Cell {
                    workload: name.to_string(),
                    machine: mname,
                    proxy: proxy.name(),
                    cpi: new.report.cpi(),
                    hits: extras.hits(),
                    regions: extras.outcomes.len(),
                    hit_rate: extras.hit_rate(),
                    seq_host_seconds,
                    host_seconds,
                    modeled_seq_seconds,
                    modeled_seconds,
                    modeled_speedup,
                });
            }
        }
    }

    let idx4 = WORKERS.iter().position(|&w| w == 4).unwrap();
    // Per-proxy geomean speedup curves across workload × machine cells.
    let mut proxy_geomeans: Vec<(&'static str, [f64; WORKERS.len()])> = Vec::new();
    for proxy in PROXIES {
        let mut curve = [0.0; WORKERS.len()];
        for (i, slot) in curve.iter_mut().enumerate() {
            let speedups: Vec<f64> = cells
                .iter()
                .filter(|c| c.proxy == proxy.name())
                .map(|c| c.modeled_speedup[i])
                .collect();
            *slot = geomean(&speedups);
        }
        proxy_geomeans.push((proxy.name(), curve));
    }
    // The headline: statmodel proxy on the baseline machine (the
    // configuration the ISSUE's ≥1.5× hmmer-class target names).
    let headline: Vec<f64> = cells
        .iter()
        .filter(|c| c.proxy == "statmodel" && c.machine == "baseline")
        .map(|c| c.modeled_speedup[idx4])
        .collect();
    let headline_geomean_4w = geomean(&headline);
    let hmmer_statmodel_4w = cells
        .iter()
        .find(|c| c.proxy == "statmodel" && c.machine == "baseline" && c.workload == "hmmer")
        .map(|c| c.modeled_speedup[idx4])
        .unwrap_or(0.0);
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- Emit JSON (hand-rolled: the serde shim has no serializer). ---
    let fmt_curve = |vals: &[f64; WORKERS.len()], digits: usize| -> String {
        WORKERS
            .iter()
            .zip(vals)
            .map(|(w, v)| format!("\"{w}\": {v:.digits$}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"pr\": 8,");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"regions\": {regions},");
    let _ = writeln!(j, "  \"host_available_parallelism\": {parallelism},");
    let _ = writeln!(
        j,
        "  \"oracle\": \"speculative SMARTS reports bitwise identical across 1/2/4/8 workers and all proxy sources, equal in full to the non-speculative scheduler run, and matching the verbatim pre-PR 5 sequential SMARTS driver's CPI and per-region counters for every cell\","
    );
    j.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"machine\": \"{}\", \"proxy\": \"{}\", \"scale\": \"demo\", \"cpi\": {:.4}, \"speculation_hits\": {}, \"regions\": {}, \"hit_rate\": {:.4}, \"seq_host_seconds\": {:.4}, \"host_seconds\": {{{}}}, \"modeled_seq_seconds\": {:.4}, \"modeled_wall_seconds\": {{{}}}, \"modeled_speedup\": {{{}}}}}{}",
            json_escape(&c.workload),
            c.machine,
            c.proxy,
            c.cpi,
            c.hits,
            c.regions,
            c.hit_rate,
            c.seq_host_seconds,
            fmt_curve(&c.host_seconds, 4),
            c.modeled_seq_seconds,
            fmt_curve(&c.modeled_seconds, 4),
            fmt_curve(&c.modeled_speedup, 3),
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    j.push_str("  ],\n");
    j.push_str("  \"geomean_modeled_speedup_per_proxy\": {\n");
    for (i, (pname, curve)) in proxy_geomeans.iter().enumerate() {
        let _ = writeln!(
            j,
            "    \"{pname}\": {{{}}}{}",
            fmt_curve(curve, 3),
            if i + 1 < proxy_geomeans.len() {
                ","
            } else {
                ""
            }
        );
    }
    j.push_str("  },\n");
    let _ = writeln!(
        j,
        "  \"statmodel_baseline_geomean_speedup_4_workers\": {headline_geomean_4w:.3},"
    );
    let _ = writeln!(
        j,
        "  \"hmmer_statmodel_speedup_4_workers\": {hmmer_statmodel_4w:.3},"
    );
    let gate = if quick {
        GATE_QUICK_SPEEDUP_4W
    } else {
        GATE_FULL_SPEEDUP_4W
    };
    let _ = writeln!(j, "  \"gate_speedup_4_workers\": {gate},");
    let _ = writeln!(
        j,
        "  \"honesty_note\": \"mcf's streaming reuse never converges inside a directed window, so its cells degrade to ~1x (the reconciler re-measures everything) rather than being excluded; the prefetch machine's digest canonicalizes the absolute trigger tick away, so its window proxies commit whenever the window reproduces the live streams, but streams formed before the window still miss honestly; the reference host has {parallelism} vCPU, so measured walls are context only\""
    );
    j.push_str("}\n");
    std::fs::write(&out_path, &j).expect("write BENCH_PR8.json");
    eprintln!(
        "statmodel/baseline geomean modeled speedup at 4 workers: {headline_geomean_4w:.2}x (hmmer {hmmer_statmodel_4w:.2}x)"
    );
    eprintln!("wrote {out_path}");

    // Regression gate on the statmodel/baseline headline: 1.15x in
    // quick mode (hmmer only), >1.0x geomean in full mode where the
    // honest mcf cell drags the mean down.
    if headline_geomean_4w < gate || headline_geomean_4w <= 1.0 {
        eprintln!(
            "ERROR: statmodel/baseline geomean speedup {headline_geomean_4w:.2}x at 4 workers below the {gate}x bar"
        );
        std::process::exit(1);
    }
}
