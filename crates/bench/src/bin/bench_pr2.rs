//! Warm-loop perf harness: writes `BENCH_PR2.json`, the first point of
//! the repository's perf trajectory.
//!
//! Measures, per workload family, the accesses/second of the two access
//! paths (indexed `access_at` regeneration vs the streaming
//! `Workload::cursor`), and the end-to-end wall time of each sampling
//! strategy's region loop — all of which now run on the streaming path.
//!
//! Flags: `--quick` (CI smoke: one repeat over short ranges),
//! `--out PATH` (default `BENCH_PR2.json`).

use delorean_bench::warmloop::{measure, AccessPath};
use delorean_core::{DeLoreanConfig, DeLoreanRunner};
use delorean_sampling::{
    CheckpointWarmingRunner, CoolSimConfig, CoolSimRunner, MrrlRunner, SamplingConfig,
    SamplingStrategy, SmartsRunner,
};
use delorean_trace::{
    spec_workload, Pattern, PhasedWorkloadBuilder, RecordedTrace, Scale, StreamSpec, Workload,
};
use std::fmt::Write as _;
use std::time::Instant;

struct GenerationRow {
    workload: String,
    family: &'static str,
    indexed: f64,
    streaming: f64,
    checksums_match: bool,
}

fn measured_workloads() -> Vec<(&'static str, Box<dyn Workload>)> {
    let mut v: Vec<(&'static str, Box<dyn Workload>)> = Vec::new();
    // Phased family: one representative per suite behaviour class.
    for name in ["bwaves", "perlbench", "lbm", "mcf", "GemsFDTD"] {
        v.push((
            "phased",
            Box::new(spec_workload(name, Scale::demo(), 42).unwrap()),
        ));
    }
    // Pattern primitives in isolation.
    let patterns = [
        (
            "pattern-stream",
            Pattern::Stream {
                lines: 4096,
                stride_lines: 3,
            },
        ),
        ("pattern-walk", Pattern::PermutationWalk { lines: 4096 }),
        ("pattern-random", Pattern::RandomUniform { lines: 4096 }),
    ];
    for (tag, pattern) in patterns {
        v.push((
            "pattern",
            Box::new(
                PhasedWorkloadBuilder::new(tag, 7)
                    .phase(1_000_000, vec![StreamSpec::new(pattern, 1)])
                    .build()
                    .unwrap(),
            ),
        ));
    }
    // Recorded replay.
    let src = spec_workload("hmmer", Scale::tiny(), 42).unwrap();
    v.push((
        "recorded",
        Box::new(RecordedTrace::capture(&src, 0..50_000)),
    ));
    v
}

fn strategies(scale: Scale) -> Vec<Box<dyn SamplingStrategy>> {
    let machine = delorean_cache::MachineConfig::for_scale(scale);
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ]
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());

    let accesses: u64 = if quick { 200_000 } else { 2_000_000 };
    let repeats: u32 = if quick { 1 } else { 3 };

    // --- Generation rates: indexed vs streaming, per workload. ---
    let mut rows = Vec::new();
    for (family, w) in measured_workloads() {
        let range = 1_000..1_000 + accesses;
        let idx = measure(w.as_ref(), AccessPath::Indexed, range.clone(), repeats);
        let strm = measure(w.as_ref(), AccessPath::Streaming, range, repeats);
        eprintln!(
            "{:<16} {:>8.1} Macc/s indexed   {:>8.1} Macc/s streaming   ({:.2}x)",
            w.name(),
            idx.accesses_per_sec / 1e6,
            strm.accesses_per_sec / 1e6,
            strm.accesses_per_sec / idx.accesses_per_sec,
        );
        rows.push(GenerationRow {
            workload: w.name().to_string(),
            family,
            indexed: idx.accesses_per_sec,
            streaming: strm.accesses_per_sec,
            checksums_match: idx.checksum == strm.checksum,
        });
    }
    assert!(
        rows.iter().all(|r| r.checksums_match),
        "streaming cursor diverged from access_at"
    );
    let phased_speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.family == "phased")
        .map(|r| r.streaming / r.indexed)
        .collect();
    let phased_geomean = geomean(&phased_speedups);

    // --- End-to-end strategy region time (all warm loops streaming). ---
    let scale = Scale::tiny();
    let plan = SamplingConfig::for_scale(scale)
        .with_regions(if quick { 2 } else { 3 })
        .plan();
    let strategy_workload = spec_workload("hmmer", scale, 1).unwrap();
    let mut strategy_rows = Vec::new();
    for s in strategies(scale) {
        let t = Instant::now();
        let report = s.run(&strategy_workload, &plan);
        let wall = t.elapsed().as_secs_f64();
        eprintln!(
            "{:<12} end-to-end {:>8.3} s (cpi {:.3})",
            s.name(),
            wall,
            report.cpi()
        );
        strategy_rows.push((s.name().to_string(), wall, report.cpi()));
    }

    // --- Emit JSON (hand-rolled: the serde shim has no serializer). ---
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"pr\": 2,");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"accesses_per_workload\": {accesses},");
    j.push_str("  \"generation\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"family\": \"{}\", \"indexed_accesses_per_sec\": {:.0}, \"streaming_accesses_per_sec\": {:.0}, \"speedup\": {:.3}}}{}",
            json_escape(&r.workload),
            r.family,
            r.indexed,
            r.streaming,
            r.streaming / r.indexed,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"phased_geomean_speedup\": {phased_geomean:.3},");
    j.push_str("  \"strategy_end_to_end\": [\n");
    for (i, (name, wall, cpi)) in strategy_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"strategy\": \"{}\", \"workload\": \"hmmer\", \"scale\": \"tiny\", \"wall_seconds\": {:.4}, \"cpi\": {:.4}}}{}",
            json_escape(name),
            wall,
            cpi,
            if i + 1 < strategy_rows.len() { "," } else { "" },
        );
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out_path, &j).expect("write BENCH_PR2.json");
    eprintln!("phased warm-loop geomean speedup: {phased_geomean:.2}x");
    eprintln!("wrote {out_path}");

    // The PR's acceptance bar: streaming must beat indexed generation by
    // ≥ 1.5x on the phased warm loop.
    if phased_geomean < 1.5 {
        eprintln!("WARNING: phased geomean speedup below the 1.5x acceptance bar");
        std::process::exit(1);
    }
}
