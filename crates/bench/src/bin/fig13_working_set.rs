//! Regenerates Figure 13 (working-set curves for cactusADM, leslie3d,
//! lbm). Flags: --scale demo|tiny|paper, --seed N, --filter NAME,
//! --regions N.

fn main() {
    let opts = delorean_bench::ExpOptions::from_env();
    for t in delorean_bench::experiments::fig13::run(&opts) {
        println!("{t}");
    }
}
