//! Tile-ingest perf harness: writes `BENCH_PR6.json`, the fifth point
//! of the repository's perf trajectory.
//!
//! Re-runs the PR 4 warm-loop matrix with the access source swapped:
//! each workload range is packed once into an on-disk tile file, and the
//! warm loop consumes it back through the tiled cursors. Four rates per
//! cell:
//!
//! * `per_access` — the retained pre-PR 4 replica (generation + one-at-
//!   a-time hierarchy), the trajectory's fixed baseline;
//! * `batched` — PR 4's `warm_range` over the *synthetic* workload
//!   (generation still in the loop);
//! * `tiled` — `warm_range` over the tile file with the in-place
//!   decoding cursor;
//! * `tiled_streaming` — same file through the background decoder
//!   thread and bounded channel.
//!
//! Every cell asserts both oracles: the PR 4 counter/residency oracle
//! (per-access vs batched) and the PR 6 snapshot oracle (tiled and
//! streaming runs bit-identical to the in-memory batched hierarchy).
//! The strategy table then runs all five sampling strategies on the
//! synthetic and the tiled source and asserts report equality.
//!
//! Flags: `--quick` (CI smoke: fewer repeats/accesses, relaxed gates),
//! `--out PATH` (default `BENCH_PR6.json`), `--baseline PATH` (PR 4
//! JSON for context; gates use freshly measured ratios only, so two
//! runs on differently loaded hosts cannot produce phantom
//! regressions).

use delorean_bench::hierloop::{
    assert_hierarchies_agree, measure_warm_loop, WarmLoopRate, WarmOutcome, WarmPath,
};
use delorean_bench::tileloop::{assert_warm_states_identical, TempTile};
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanRunner};
use delorean_sampling::{
    CheckpointWarmingRunner, CoolSimConfig, CoolSimRunner, MrrlRunner, SamplingConfig,
    SamplingStrategy, SmartsRunner,
};
use delorean_trace::{spec_workload, Scale, Workload};
use std::fmt::Write as _;
use std::time::Instant;

struct LoopRow {
    workload: String,
    machine: &'static str,
    accesses: u64,
    per_access_rate: f64,
    batched_rate: f64,
    tiled_rate: f64,
    tiled_streaming_rate: f64,
}

fn strategies(scale: Scale) -> Vec<Box<dyn SamplingStrategy>> {
    let machine = MachineConfig::for_scale(scale);
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ]
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Unpack a per-access + batched pair and assert the PR 4 oracle.
fn pr4_oracle(workload: &dyn Workload, accesses: u64, base: &WarmLoopRate, batched: &WarmLoopRate) {
    let (WarmOutcome::PerAccess(b), WarmOutcome::Batched(n)) = (&base.outcome, &batched.outcome)
    else {
        panic!("outcome variants mismatched the measured paths");
    };
    assert_hierarchies_agree(workload, 0..accesses, b, n);
}

/// Extract the batched `Hierarchy` out of a measured outcome.
fn batched_hierarchy(rate: WarmLoopRate) -> delorean_cache::Hierarchy {
    match rate.outcome {
        WarmOutcome::Batched(h) => *h,
        WarmOutcome::PerAccess(_) => panic!("expected a batched outcome"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1).cloned());

    let repeats: u32 = if quick { 2 } else { 5 };
    let warm_accesses: u64 = if quick { 400_000 } else { 4_000_000 };

    // --- Warm-loop rates: the PR 4 matrix with tile-backed sources. ---
    let scale = Scale::demo();
    let machines: [(&'static str, MachineConfig); 3] = [
        ("table1", MachineConfig::for_scale(scale)),
        (
            "prefetch",
            MachineConfig::for_scale(scale).with_prefetch(true),
        ),
        (
            "llc-2mb",
            MachineConfig::for_scale(scale).with_llc_paper_bytes(scale, 2 << 20),
        ),
    ];
    let mut rows: Vec<LoopRow> = Vec::new();
    let mut pack_seconds = 0.0f64;
    let mut pack_bytes = 0u64;
    for name in ["hmmer", "povray", "mcf"] {
        let w = spec_workload(name, scale, 1).unwrap();
        // Pack once per workload; every machine variant reuses the file,
        // as a production flow would.
        let t = Instant::now();
        let tile = TempTile::pack(
            &w,
            0..warm_accesses,
            delorean_trace::tile::DEFAULT_TILE_RECORDS,
        )
        .expect("pack tile file");
        pack_seconds += t.elapsed().as_secs_f64();
        pack_bytes += tile.summary.bytes;
        let tiled = tile.open(false).expect("open tile file");
        let tiled_streaming = tile.open(true).expect("open tile file (streaming)");
        for (label, machine) in &machines {
            let range = 0..warm_accesses;
            let base = measure_warm_loop(&w, machine, WarmPath::PerAccess, range.clone(), repeats);
            let batched = measure_warm_loop(&w, machine, WarmPath::Batched, range.clone(), repeats);
            pr4_oracle(&w, warm_accesses, &base, &batched);
            let tiled_rate =
                measure_warm_loop(&tiled, machine, WarmPath::Batched, range.clone(), repeats);
            let streaming_rate = measure_warm_loop(
                &tiled_streaming,
                machine,
                WarmPath::Batched,
                range.clone(),
                repeats,
            );
            // PR 6 oracle: tiled and streaming hierarchies bit-identical
            // to the in-memory batched one (counters + full snapshot).
            let mut reference = batched_hierarchy(batched.clone());
            let mut from_tiles = batched_hierarchy(tiled_rate.clone());
            let mut from_stream = batched_hierarchy(streaming_rate.clone());
            assert_warm_states_identical(
                &format!("{name}/{label} tiled"),
                &mut reference,
                &mut from_tiles,
            );
            assert_warm_states_identical(
                &format!("{name}/{label} tiled-streaming"),
                &mut reference,
                &mut from_stream,
            );
            eprintln!(
                "{:<8} {:<10} {:>9} accesses: {:>6.1} per-access  {:>6.1} batched  {:>6.1} tiled  {:>6.1} streaming Macc/s  ({:.2}x tiled vs per-access)",
                name,
                label,
                warm_accesses,
                base.accesses_per_sec / 1e6,
                batched.accesses_per_sec / 1e6,
                tiled_rate.accesses_per_sec / 1e6,
                streaming_rate.accesses_per_sec / 1e6,
                tiled_rate.accesses_per_sec / base.accesses_per_sec,
            );
            rows.push(LoopRow {
                workload: name.to_string(),
                machine: label,
                accesses: warm_accesses,
                per_access_rate: base.accesses_per_sec,
                batched_rate: batched.accesses_per_sec,
                tiled_rate: tiled_rate.accesses_per_sec,
                tiled_streaming_rate: streaming_rate.accesses_per_sec,
            });
        }
    }
    let tiled_speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.tiled_rate / r.per_access_rate)
        .collect();
    let tiled_geomean = geomean(&tiled_speedups);
    let batched_geomean = geomean(
        &rows
            .iter()
            .map(|r| r.batched_rate / r.per_access_rate)
            .collect::<Vec<_>>(),
    );
    let streaming_geomean = geomean(
        &rows
            .iter()
            .map(|r| r.tiled_streaming_rate / r.per_access_rate)
            .collect::<Vec<_>>(),
    );
    let best_geomean = geomean(
        &rows
            .iter()
            .map(|r| r.tiled_rate.max(r.tiled_streaming_rate) / r.per_access_rate)
            .collect::<Vec<_>>(),
    );

    // --- Strategy end-to-end: synthetic vs tiled source, reports must
    // match bit for bit. ---
    let plan = SamplingConfig::for_scale(scale)
        .with_regions(if quick { 1 } else { 3 })
        .plan();
    let strategy_workload = spec_workload("hmmer", scale, 1).unwrap();
    // The plan's regions (plus their warming windows) all fall inside
    // the plan's instruction span; pack that span so strategies never
    // rely on the cyclic extension and CPI stays bit-comparable.
    let span_accesses = strategy_workload.accesses_in_instrs(plan.total_instrs()) + 1;
    let t = Instant::now();
    let strategy_tile = TempTile::pack(
        &strategy_workload,
        0..span_accesses,
        delorean_trace::tile::DEFAULT_TILE_RECORDS,
    )
    .expect("pack strategy tile file");
    pack_seconds += t.elapsed().as_secs_f64();
    pack_bytes += strategy_tile.summary.bytes;
    let strategy_tiled = strategy_tile.open(false).expect("open strategy tile");
    let mut strategy_rows = Vec::new();
    for s in strategies(scale) {
        let t = Instant::now();
        let report = s.run(&strategy_workload, &plan);
        let wall = t.elapsed().as_secs_f64();
        let t = Instant::now();
        let tiled_report = s.run(&strategy_tiled, &plan);
        let tiled_wall = t.elapsed().as_secs_f64();
        assert_eq!(
            report.report,
            tiled_report.report,
            "{} report diverged between synthetic and tiled sources",
            s.name()
        );
        eprintln!(
            "{:<12} end-to-end {:>8.3} s synthetic, {:>8.3} s tiled (cpi {:.3}, bit-identical)",
            s.name(),
            wall,
            tiled_wall,
            report.cpi()
        );
        strategy_rows.push((s.name().to_string(), wall, tiled_wall, report.cpi()));
    }

    // --- PR 4 baseline context (informational only). ---
    let baseline_note = baseline_path
        .as_deref()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .and_then(|j| {
            let key = "\"warm_loop_geomean_speedup\": ";
            let at = j.find(key)? + key.len();
            let end = j[at..].find([',', '\n'])? + at;
            j[at..end].trim().parse::<f64>().ok()
        });
    if let Some(pr4) = baseline_note {
        eprintln!("PR 4 recorded batched geomean (context): {pr4:.2}x");
    }

    // --- Emit JSON (hand-rolled: the serde shim has no serializer). ---
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"pr\": 6,");
    let _ = writeln!(j, "  \"quick\": {quick},");
    j.push_str("  \"warm_loop\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"machine\": \"{}\", \"accesses\": {}, \"per_access_accesses_per_sec\": {:.0}, \"batched_accesses_per_sec\": {:.0}, \"tiled_accesses_per_sec\": {:.0}, \"tiled_streaming_accesses_per_sec\": {:.0}, \"tiled_speedup\": {:.3}}}{}",
            json_escape(&r.workload),
            r.machine,
            r.accesses,
            r.per_access_rate,
            r.batched_rate,
            r.tiled_rate,
            r.tiled_streaming_rate,
            r.tiled_rate / r.per_access_rate,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"batched_geomean_speedup\": {batched_geomean:.3},");
    let _ = writeln!(j, "  \"tiled_geomean_speedup\": {tiled_geomean:.3},");
    let _ = writeln!(
        j,
        "  \"tiled_streaming_geomean_speedup\": {streaming_geomean:.3},"
    );
    let _ = writeln!(j, "  \"best_tiled_geomean_speedup\": {best_geomean:.3},");
    let _ = writeln!(j, "  \"warm_loop_target_speedup\": 2.0,");
    if let Some(pr4) = baseline_note {
        let _ = writeln!(j, "  \"pr4_recorded_batched_geomean\": {pr4:.3},");
    }
    let _ = writeln!(j, "  \"pack_seconds\": {pack_seconds:.3},");
    let _ = writeln!(j, "  \"pack_bytes\": {pack_bytes},");
    j.push_str("  \"strategy_end_to_end\": [\n");
    for (i, (name, wall, tiled_wall, cpi)) in strategy_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"strategy\": \"{}\", \"workload\": \"hmmer\", \"scale\": \"demo\", \"wall_seconds\": {:.4}, \"tiled_wall_seconds\": {:.4}, \"cpi\": {:.4}, \"tiled_cpi_bit_identical\": true}}{}",
            json_escape(name),
            wall,
            tiled_wall,
            cpi,
            if i + 1 < strategy_rows.len() { "," } else { "" },
        );
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out_path, &j).expect("write BENCH_PR6.json");
    eprintln!(
        "geomean speedup vs per-access baseline: batched {batched_geomean:.2}x, \
         tiled {tiled_geomean:.2}x, streaming {streaming_geomean:.2}x (target 2.0x)"
    );
    eprintln!("wrote {out_path}");

    // Regression gates, all on freshly measured ratios:
    //  * tiled must clearly beat the per-access baseline (the trajectory
    //    floor), and
    //  * tiled must not fall behind PR 4's batched path — the tile
    //    source must never cost throughput vs in-memory generation.
    let floor = if quick { 1.20 } else { 1.60 };
    if tiled_geomean < floor {
        eprintln!("ERROR: tiled geomean speedup {tiled_geomean:.2}x below the {floor}x floor");
        std::process::exit(1);
    }
    let vs_batched = tiled_geomean / batched_geomean;
    let parity_bar = if quick { 0.90 } else { 0.95 };
    if vs_batched < parity_bar {
        eprintln!(
            "ERROR: tiled path is {vs_batched:.2}x of the batched in-memory path \
             (must stay ≥ {parity_bar}x)"
        );
        std::process::exit(1);
    }
}
