//! Regenerates the paper artifact implemented in
//! `delorean_bench::experiments::fig11`. Flags: --scale demo|tiny|paper,
//! --seed N, --filter NAME, --regions N.

fn main() {
    let opts = delorean_bench::ExpOptions::from_env();
    println!("{}", delorean_bench::experiments::fig11::run(&opts));
}
