//! Regenerates Figure 14 (CPI vs LLC size from one shared warm-up) plus
//! the §6.4.2 cost accounting. Flags: --scale demo|tiny|paper, --seed N,
//! --filter NAME, --regions N.

fn main() {
    let opts = delorean_bench::ExpOptions::from_env();
    for t in delorean_bench::experiments::fig14::run(&opts) {
        println!("{t}");
    }
}
