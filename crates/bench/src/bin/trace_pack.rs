//! `trace-pack`: convert synthetic workloads into on-disk trace-tile
//! files, and inspect or verify existing ones.
//!
//! ```text
//! trace-pack pack   --spec NAME --out PATH [--scale demo|tiny|paper]
//!                   [--seed N] [--accesses N] [--tile-records N]
//! trace-pack info   PATH
//! trace-pack verify PATH [--spec NAME --scale S --seed N]
//! ```
//!
//! `pack` streams the workload's cursor through the tile writer (the
//! `RecordedTrace::capture` equivalent, but bounded-memory and on disk).
//! `info` prints the header without touching payloads. `verify` runs the
//! full checksum pass; with `--spec` it additionally cross-checks every
//! record against the regenerated synthetic workload — a round-trip
//! proof for CI.

use delorean_trace::{pack_workload_with, spec_workload, Scale, TiledTrace, Workload};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace-pack pack   --spec NAME --out PATH [--scale demo|tiny|paper] \
         [--seed N] [--accesses N] [--tile-records N]\n  trace-pack info   PATH\n  \
         trace-pack verify PATH [--spec NAME --scale demo|tiny|paper --seed N]"
    );
    ExitCode::from(2)
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "paper" => Ok(Scale::paper()),
        "demo" => Ok(Scale::demo()),
        "tiny" => Ok(Scale::tiny()),
        other => Err(format!("unknown scale '{other}'")),
    }
}

/// Flag values shared by `pack` and `verify`.
struct SpecArgs {
    spec: Option<String>,
    scale: Scale,
    seed: u64,
    accesses: u64,
    tile_records: u32,
    out: Option<String>,
    path: Option<String>,
}

fn parse_args(args: &[String]) -> Result<SpecArgs, String> {
    let mut parsed = SpecArgs {
        spec: None,
        scale: Scale::demo(),
        seed: 1,
        accesses: 1_000_000,
        tile_records: delorean_trace::tile::DEFAULT_TILE_RECORDS,
        out: None,
        path: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--spec" => parsed.spec = Some(value("--spec")?),
            "--scale" => parsed.scale = parse_scale(&value("--scale")?)?,
            "--seed" => {
                parsed.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
            }
            "--accesses" => {
                parsed.accesses = value("--accesses")?
                    .parse()
                    .map_err(|e| format!("bad access count: {e}"))?;
            }
            "--tile-records" => {
                parsed.tile_records = value("--tile-records")?
                    .parse()
                    .map_err(|e| format!("bad tile record count: {e}"))?;
            }
            "--out" => parsed.out = Some(value("--out")?),
            other if !other.starts_with('-') && parsed.path.is_none() => {
                parsed.path = Some(other.to_string());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(parsed)
}

fn cmd_pack(a: &SpecArgs) -> Result<(), String> {
    let spec = a.spec.as_deref().ok_or("pack requires --spec NAME")?;
    let out = a.out.as_deref().ok_or("pack requires --out PATH")?;
    let w = spec_workload(spec, a.scale, a.seed)
        .ok_or_else(|| format!("unknown spec workload '{spec}'"))?;
    let summary = pack_workload_with(&w, 0..a.accesses, out, a.tile_records)
        .map_err(|e| format!("pack failed: {e}"))?;
    eprintln!(
        "packed {} accesses of {spec} into {out}: {} tiles, {} bytes ({:.2} B/access)",
        summary.records,
        summary.tiles,
        summary.bytes,
        summary.bytes as f64 / summary.records as f64,
    );
    Ok(())
}

fn cmd_info(a: &SpecArgs) -> Result<(), String> {
    let path = a.path.as_deref().ok_or("info requires a PATH")?;
    let t = TiledTrace::open_unverified(path).map_err(|e| format!("open failed: {e}"))?;
    let f = t.file();
    println!("path:          {path}");
    println!("workload:      {}", f.name());
    println!("records:       {}", f.record_count());
    println!("mem_period:    {}", f.mem_period());
    println!(
        "tiles:         {} × {} records",
        f.tile_count(),
        f.tile_records()
    );
    println!("bytes:         {}", f.byte_len());
    let b = f.branch_model();
    println!(
        "branch model:  period {}, pcs {}, biased {}‰, seed {:#x}",
        b.period, b.pcs, b.biased_permille, b.seed
    );
    Ok(())
}

fn cmd_verify(a: &SpecArgs) -> Result<(), String> {
    let path = a.path.as_deref().ok_or("verify requires a PATH")?;
    let t = TiledTrace::open(path).map_err(|e| format!("verification failed: {e}"))?;
    eprintln!(
        "checksums ok: {} records in {} tiles",
        t.file().record_count(),
        t.file().tile_count()
    );
    if let Some(spec) = a.spec.as_deref() {
        let w = spec_workload(spec, a.scale, a.seed)
            .ok_or_else(|| format!("unknown spec workload '{spec}'"))?;
        if w.name() != t.name() || w.mem_period() != t.mem_period() {
            return Err(format!(
                "header mismatch: file is {} (period {}), regenerated workload is {} (period {})",
                t.name(),
                t.mem_period(),
                w.name(),
                w.mem_period()
            ));
        }
        let n = t.recorded_len();
        let mut source = w.cursor(0..n);
        let mut tiled = t.cursor(0..n);
        let (mut a_buf, mut b_buf) = (Vec::new(), Vec::new());
        loop {
            let got_a = source.fill(&mut a_buf, 4096);
            let got_b = tiled.fill(&mut b_buf, 4096);
            if a_buf != b_buf || got_a != got_b {
                return Err(format!(
                    "round-trip mismatch near access {}",
                    tiled.position().saturating_sub(got_b as u64)
                ));
            }
            if got_a == 0 {
                break;
            }
        }
        eprintln!("round-trip ok: all {n} records match the regenerated {spec} workload");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let parsed = match parse_args(rest) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "pack" => cmd_pack(&parsed),
        "info" => cmd_info(&parsed),
        "verify" => cmd_verify(&parsed),
        _ => {
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
