//! Prints Table 1 (the simulated processor architecture) from the live
//! configuration structures.

fn main() {
    let opts = delorean_bench::ExpOptions::from_env();
    println!("{}", delorean_bench::experiments::table1::run(&opts));
}
