//! Runs every experiment and prints the full EXPERIMENTS.md payload.
//!
//! Figures 5–9 share one three-strategy sweep at the 8 MiB LLC; Figure 10
//! adds the 512 MiB sweep; the remaining figures run their own studies.
//! Flags: --scale demo|tiny|paper, --seed N, --filter NAME, --regions N.

use delorean_bench::experiments::{
    ablation, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14, table1,
    LLC_512MB, LLC_8MB,
};
use delorean_bench::{compare_all, ExpOptions};

fn main() {
    let opts = ExpOptions::from_env();
    eprintln!("# scale: {} | seed: {}", opts.scale, opts.seed);

    println!("{}", table1::run(&opts));

    eprintln!("[1/6] three-strategy sweep at the 8 MiB LLC ...");
    let at_8mb = compare_all(&opts, LLC_8MB);
    println!("{}", fig05::table(&at_8mb));
    println!("{}", fig06::table(&at_8mb));
    println!("{}", fig07::table(&at_8mb));
    println!("{}", fig08::table(&at_8mb));
    println!("{}", fig09::table(&at_8mb));

    eprintln!("[2/6] three-strategy sweep at the 512 MiB LLC ...");
    let at_512mb = compare_all(&opts, LLC_512MB);
    println!("{}", fig10::table(&at_512mb));

    eprintln!("[3/6] vicinity density sweep ...");
    println!("{}", fig11::run(&opts));

    eprintln!("[4/6] prefetching study ...");
    println!("{}", fig12::run(&opts));

    eprintln!("[5/6] LLC sweeps (working sets + DSE) ...");
    for t in fig13::run(&opts) {
        println!("{t}");
    }
    for t in fig14::run(&opts) {
        println!("{t}");
    }

    eprintln!("[6/6] ablations ...");
    println!("{}", ablation::explorer_depth(&opts));
    println!("{}", ablation::warming_miss_policy(&opts));
    println!("{}", ablation::pipeline_vs_serial(&opts));
}
