//! Probe-loop perf harness: writes `BENCH_PR3.json`, the second point of
//! the repository's perf trajectory.
//!
//! Measures, per workload and key/vicinity density, the accesses/second
//! of the explorer hot loop on the two lookup substrates (pre-PR 3
//! `std::collections` probes vs the fused interest filter + flat line
//! tables), and the end-to-end wall time of each sampling strategy at
//! demo scale — a full step up from the tiny-scale runs of
//! `BENCH_PR2.json`.
//!
//! Flags: `--quick` (CI smoke: best of two repeats, with relaxed
//! regression gates against both the std-map baseline and the PR 2
//! indexed-generation rate), `--out PATH` (default `BENCH_PR3.json`).

use delorean_bench::probeloop::{
    assert_outcomes_equivalent, measure_explorer_loop, ExplorerLoopCase, ProbePath,
};
use delorean_bench::warmloop::{measure, AccessPath};
use delorean_core::explorer::{pending_from_keyset, run_explorer, PendingKey};
use delorean_core::scout::scout_region;
use delorean_core::{DeLoreanConfig, DeLoreanRunner};
use delorean_sampling::{
    CheckpointWarmingRunner, CoolSimConfig, CoolSimRunner, MrrlRunner, Region, SamplingConfig,
    SamplingStrategy, SmartsRunner,
};
use delorean_trace::{spec_workload, Scale, Workload};
use delorean_virt::{CostModel, HostClock};
use std::fmt::Write as _;
use std::time::Instant;

struct LoopRow {
    workload: String,
    stage: &'static str,
    keys: usize,
    window_instrs: u64,
    vicinity_period: u64,
    std_rate: f64,
    flat_rate: f64,
}

fn strategies(scale: Scale) -> Vec<Box<dyn SamplingStrategy>> {
    let machine = delorean_cache::MachineConfig::for_scale(scale);
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ]
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The real key/watch densities of the explorer chain: run the Scout
/// for `region`, then functional Explorer-1 over its window. Returns the
/// full Scout key set (what Explorer-1 profiles) and the keys still
/// unresolved after Explorer-1 (what the VDP Explorer-2 watches).
fn chain_densities(
    w: &dyn Workload,
    scale: Scale,
    region: &Region,
    e1_window: u64,
) -> (Vec<PendingKey>, Vec<PendingKey>) {
    let machine = delorean_cache::MachineConfig::for_scale(scale);
    let cost = CostModel::paper_host();
    let mut clock = HostClock::new();
    let scout = scout_region(w, &machine, &cost, &mut clock, region, 0, 1);
    let all = pending_from_keyset(&scout.keyset);
    let e1 = run_explorer(
        w, &cost, &mut clock, 0, e1_window, 0, region, &all, 5_000, 7, 1,
    );
    (all, e1.remaining)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR3.json".to_string());

    // Even quick mode takes the best of 2 repeats: the gates below are
    // wall-clock ratios and a single preempted sample on a shared runner
    // should not fail the job.
    let repeats: u32 = if quick { 2 } else { 5 };

    // --- Explorer-loop rates: std maps vs fused filter + flat tables. ---
    // Densities come from the real chain: the Scout's key set (what a
    // hypothetical VDP Explorer-1 would watch — the dense stress case)
    // and the keys left unresolved after the functional Explorer-1 (what
    // the VDP Explorer-2 actually watches — the paper's sparse,
    // no-match-dominated regime). The vicinity period sweeps the arm/
    // disarm churn on top.
    let scale = Scale::demo();
    let config = DeLoreanConfig::for_scale(scale);
    let w1 = config.explorer_windows_instrs[0];
    let w2 = config.explorer_windows_instrs[1];
    let periods: &[u64] = if quick { &[2_000] } else { &[500, 5_000] };
    let mut rows: Vec<LoopRow> = Vec::new();
    for name in ["hmmer", "povray", "mcf"] {
        let w = spec_workload(name, scale, 1).unwrap();
        let plan = SamplingConfig::for_scale(scale).with_regions(2).plan();
        let region = plan.regions[1].clone();
        let (all_keys, remaining) = chain_densities(&w, scale, &region, w1);
        // If Explorer-1 resolved everything (hmmer's hot keys), fall back
        // to a thinned slice of the Scout keys so the sparse row still
        // measures real key probes and watch traffic instead of an empty
        // table.
        let sparse: Vec<PendingKey> = if remaining.is_empty() {
            all_keys.iter().copied().step_by(16).collect()
        } else {
            remaining
        };
        let stages: [(&'static str, &[PendingKey], u64); 2] = [
            ("explorer2-vdp", &sparse, w2.min(region.start_instr)),
            ("explorer1-dense", &all_keys, w1.min(region.start_instr)),
        ];
        for (stage, pending, window) in stages {
            for &period in periods {
                let case = ExplorerLoopCase {
                    workload: &w,
                    region: &region,
                    pending,
                    vicinity_period_accesses: period,
                    window_instrs: window,
                    explorer_index: 1, // VDP: watch + key + vicinity probes
                };
                let std = measure_explorer_loop(&case, ProbePath::StdMaps, repeats);
                let flat = measure_explorer_loop(&case, ProbePath::FlatFused, repeats);
                assert_outcomes_equivalent(&std.outcome, &flat.outcome);
                eprintln!(
                    "{:<8} {:<16} keys {:>5} period {:>6}: {:>7.1} Macc/s std   {:>7.1} Macc/s flat   ({:.2}x)",
                    name,
                    stage,
                    pending.len(),
                    period,
                    std.accesses_per_sec / 1e6,
                    flat.accesses_per_sec / 1e6,
                    flat.accesses_per_sec / std.accesses_per_sec,
                );
                rows.push(LoopRow {
                    workload: name.to_string(),
                    stage,
                    keys: pending.len(),
                    window_instrs: window,
                    vicinity_period: period,
                    std_rate: std.accesses_per_sec,
                    flat_rate: flat.accesses_per_sec,
                });
            }
        }
    }
    let speedups: Vec<f64> = rows.iter().map(|r| r.flat_rate / r.std_rate).collect();
    let loop_geomean = geomean(&speedups);

    // --- PR 2 reference point: indexed-generation throughput. ---
    // The north-star check: the classify-per-access explorer loop should
    // cost no more than the PR 2 *indexed* access-generation baseline,
    // i.e. the lookups are cheaper than regenerating the access was.
    let ref_workload = spec_workload("hmmer", scale, 1).unwrap();
    let gen_range = 1_000..1_000 + if quick { 200_000 } else { 2_000_000 };
    let indexed = measure(&ref_workload, AccessPath::Indexed, gen_range, repeats);
    let hmmer_sparse_flat = rows
        .iter()
        .filter(|r| r.workload == "hmmer")
        .map(|r| r.flat_rate)
        .fold(0.0f64, f64::max);
    eprintln!(
        "indexed generation {:.1} Macc/s, best hmmer flat explorer loop {:.1} Macc/s",
        indexed.accesses_per_sec / 1e6,
        hmmer_sparse_flat / 1e6,
    );

    // --- End-to-end strategy wall times at demo scale. ---
    let e2e_scale = Scale::demo();
    let plan = SamplingConfig::for_scale(e2e_scale)
        .with_regions(if quick { 1 } else { 3 })
        .plan();
    let strategy_workload = spec_workload("hmmer", e2e_scale, 1).unwrap();
    let mut strategy_rows = Vec::new();
    for s in strategies(e2e_scale) {
        let t = Instant::now();
        let report = s.run(&strategy_workload, &plan);
        let wall = t.elapsed().as_secs_f64();
        eprintln!(
            "{:<12} end-to-end {:>8.3} s (cpi {:.3}, demo scale)",
            s.name(),
            wall,
            report.cpi()
        );
        strategy_rows.push((s.name().to_string(), wall, report.cpi()));
    }

    // --- Emit JSON (hand-rolled: the serde shim has no serializer). ---
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"pr\": 3,");
    let _ = writeln!(j, "  \"quick\": {quick},");
    j.push_str("  \"explorer_loop\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"stage\": \"{}\", \"keys\": {}, \"window_instrs\": {}, \"vicinity_period_accesses\": {}, \"std_accesses_per_sec\": {:.0}, \"flat_accesses_per_sec\": {:.0}, \"speedup\": {:.3}}}{}",
            json_escape(&r.workload),
            r.stage,
            r.keys,
            r.window_instrs,
            r.vicinity_period,
            r.std_rate,
            r.flat_rate,
            r.flat_rate / r.std_rate,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"explorer_loop_geomean_speedup\": {loop_geomean:.3},");
    let _ = writeln!(
        j,
        "  \"indexed_generation_accesses_per_sec\": {:.0},",
        indexed.accesses_per_sec
    );
    j.push_str("  \"strategy_end_to_end\": [\n");
    for (i, (name, wall, cpi)) in strategy_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"strategy\": \"{}\", \"workload\": \"hmmer\", \"scale\": \"demo\", \"wall_seconds\": {:.4}, \"cpi\": {:.4}}}{}",
            json_escape(name),
            wall,
            cpi,
            if i + 1 < strategy_rows.len() { "," } else { "" },
        );
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out_path, &j).expect("write BENCH_PR3.json");
    eprintln!("explorer-loop geomean speedup: {loop_geomean:.2}x");
    eprintln!("wrote {out_path}");

    // Acceptance gates. Quick (CI) mode tolerates noisy shared runners
    // with a lower bar; the full run enforces the PR's 2x target.
    let bar = if quick { 1.2 } else { 2.0 };
    if loop_geomean < bar {
        eprintln!("ERROR: explorer-loop geomean speedup {loop_geomean:.2}x below the {bar}x bar");
        std::process::exit(1);
    }
    // Quick mode's samples are a few milliseconds each on a shared
    // runner, so the generation-baseline gate gets the same noise
    // allowance as the geomean gate above.
    let gen_bar = if quick { 0.6 } else { 1.0 } * indexed.accesses_per_sec;
    if hmmer_sparse_flat < gen_bar {
        eprintln!(
            "ERROR: flat explorer loop ({:.1} Macc/s) regressed below the PR 2 indexed-generation baseline ({:.1} Macc/s, gate {:.1})",
            hmmer_sparse_flat / 1e6,
            indexed.accesses_per_sec / 1e6,
            gen_bar / 1e6,
        );
        std::process::exit(1);
    }
}
