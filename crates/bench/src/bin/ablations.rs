//! Runs the design-choice ablations called out in DESIGN.md §5.

fn main() {
    let opts = delorean_bench::ExpOptions::from_env();
    println!(
        "{}",
        delorean_bench::experiments::ablation::explorer_depth(&opts)
    );
    println!(
        "{}",
        delorean_bench::experiments::ablation::warming_miss_policy(&opts)
    );
    println!(
        "{}",
        delorean_bench::experiments::ablation::pipeline_vs_serial(&opts)
    );
}
