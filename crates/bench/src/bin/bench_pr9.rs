//! Fault-tolerant sweep runtime harness: writes `BENCH_PR9.json`.
//!
//! PR 9 wraps every sweep cell in a fault domain (catch + classify +
//! bounded retry + quarantine) and adds a durable, checksummed run
//! journal with resume. This harness measures what that robustness
//! costs and proves what it preserves, in four sections:
//!
//! 1. **Clean-run overhead** — min-of-N host wallclock of the plain
//!    [`BatchExecutor::run_matrix`] against the fault-isolated
//!    [`BatchExecutor::run_matrix_isolated`] with nothing armed, gated
//!    at ≤ 5% overhead (the isolated path must be pure insurance), plus
//!    a bitwise equality check of every cell across worker
//!    compositions.
//! 2. **Recoverable faults** — a seeded [`FaultPlan`] strikes every
//!    cell at [`FaultSite::UnitEntry`] fewer times than the retry
//!    budget; the sweep must complete and stay bitwise identical to the
//!    clean run at every worker composition.
//! 3. **Quarantine availability** — a plan strikes a seed-chosen strict
//!    subset of cells *past* the budget; the harness records the
//!    availability fraction (completed / total) and asserts every
//!    surviving cell is untouched, bit for bit.
//! 4. **Journal kill → resume** — a journaled sweep is "killed" by
//!    quarantining a subset of cells (the journal holds only the
//!    completed prefix, exactly like a killed process would leave
//!    behind), then resumed with nothing armed: restored + re-executed
//!    cells must equal the uninterrupted clean matrix, cell for cell.
//!    A second pass injects [`FaultSite::JournalWrite`] failures and
//!    shows appends fail without failing the run, with a resume
//!    re-executing exactly the non-durable cells.
//!
//! Any equality violation panics (nonzero exit); the overhead gate
//! exits 1 explicitly. Flags: `--quick` (CI smoke: one workload, 4
//! regions, 3 timing repeats), `--out PATH` (default `BENCH_PR9.json`).

use delorean_bench::{headline_strategies, BatchExecutor, MatrixRun};
use delorean_cache::MachineConfig;
use delorean_sampling::{
    FaultPolicy, RegionPlan, SamplingConfig, SamplingStrategy, StrategyReport,
};
use delorean_trace::fault::{self, FaultKind, FaultPlan, FaultSite};
use delorean_trace::{spec_workload, PhasedWorkload, Scale};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Clean-run overhead gate: the isolated path may cost at most this
/// much wallclock over the plain path (min-of-N on both sides).
const GATE_OVERHEAD_PCT: f64 = 5.0;
/// (cell threads, region workers) compositions the identity oracles
/// run under — results must be bitwise identical across all of them.
const WORKER_CONFIGS: [(usize, usize); 3] = [(1, 1), (2, 2), (4, 1)];

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Assert every completed cell of `run` equals the clean matrix cell,
/// bit for bit, and return the completed-cell count. Journaled cells
/// drop strategy extras by design, so equality is on the report.
fn assert_surviving_cells_equal(
    clean: &[Vec<StrategyReport>],
    run: &MatrixRun,
    label: &str,
) -> usize {
    let mut completed = 0;
    for (w, (crow, rrow)) in clean.iter().zip(&run.matrix).enumerate() {
        for (s, (c, r)) in crow.iter().zip(rrow).enumerate() {
            if let Some(r) = r {
                assert_eq!(
                    c.report, r.report,
                    "{label}: cell w{w}/s{s} ({}/{}) diverged from the clean run",
                    c.workload, c.strategy
                );
                completed += 1;
            }
        }
    }
    completed
}

/// Smallest seed whose plan selects a nonempty strict subset of
/// `cells` at `site` (selection is purely `(seed, site, unit)`, so the
/// scan is deterministic and strikes/kinds can differ at use site).
fn seed_selecting_subset(site: FaultSite, cells: u64) -> u64 {
    (0..4096u64)
        .find(|&seed| {
            let plan = FaultPlan::new(seed).at(site).every(2);
            let n = (0..cells)
                .filter(|&u| plan.fault_for(site, u, 0).is_some())
                .count() as u64;
            n >= 1 && n < cells
        })
        .expect("some seed selects a strict subset of the cells")
}

fn min_wall<R>(repeats: usize, mut body: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..repeats {
        let t = Instant::now();
        let r = body();
        best = best.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best, out.expect("at least one timing repeat"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());

    let scale = Scale::demo();
    let regions = if quick { 4 } else { 8 };
    let repeats = if quick { 3 } else { 5 };
    let plan: RegionPlan = SamplingConfig::for_scale(scale)
        .with_regions(regions)
        .plan();
    let workload_names: &[&str] = if quick {
        &["hmmer"]
    } else {
        &["hmmer", "mcf", "povray"]
    };
    let workloads: Vec<PhasedWorkload> = workload_names
        .iter()
        .map(|n| spec_workload(n, scale, 1).expect("suite workload"))
        .collect();
    let machine = MachineConfig::for_scale(scale);
    let strategies: Vec<Box<dyn SamplingStrategy>> = headline_strategies(scale, machine);
    let cells_total = workloads.len() * strategies.len();
    let policy = FaultPolicy::default();
    let exec = BatchExecutor::new();

    // --- 1. Clean-run overhead: isolation must be pure insurance. ---
    let (clean_seconds, clean) =
        min_wall(repeats, || exec.run_matrix(&strategies, &workloads, &plan));
    let (isolated_seconds, isolated) = min_wall(repeats, || {
        exec.run_matrix_isolated(&strategies, &workloads, &plan, &policy)
    });
    assert!(isolated.is_complete(), "clean isolated run quarantined");
    assert_eq!(
        assert_surviving_cells_equal(&clean, &isolated, "clean/isolated"),
        cells_total
    );
    let overhead_pct = (isolated_seconds / clean_seconds - 1.0) * 100.0;
    eprintln!(
        "overhead: clean {clean_seconds:.4}s vs isolated {isolated_seconds:.4}s (min of {repeats}) = {overhead_pct:+.2}%"
    );
    for (threads, region_workers) in WORKER_CONFIGS {
        let run = BatchExecutor::with_threads(threads)
            .with_region_workers(region_workers)
            .run_matrix_isolated(&strategies, &workloads, &plan, &policy);
        assert!(run.is_complete());
        assert_eq!(
            assert_surviving_cells_equal(&clean, &run, "clean/worker-config"),
            cells_total
        );
    }

    // --- 2. Recoverable faults: every cell struck below the budget. ---
    // strikes(2) < max_attempts(3), so occurrences 0 and 1 fault and
    // the final retry lands; Delay in the menu exercises the benign
    // stall path (a delayed cell simply succeeds on its first attempt).
    let recover_plan = FaultPlan::new(2019)
        .at(FaultSite::UnitEntry)
        .strikes(policy.retry_budget)
        .kinds(&[
            FaultKind::Panic,
            FaultKind::TraceError,
            FaultKind::Timeout,
            FaultKind::Delay,
        ]);
    for (threads, region_workers) in WORKER_CONFIGS {
        let guard = fault::arm(recover_plan);
        let run = BatchExecutor::with_threads(threads)
            .with_region_workers(region_workers)
            .run_matrix_isolated(&strategies, &workloads, &plan, &policy);
        drop(guard);
        assert!(
            run.is_complete(),
            "recoverable plan quarantined at {threads}x{region_workers}: {:?}",
            run.quarantined
        );
        assert_eq!(
            assert_surviving_cells_equal(&clean, &run, "recoverable"),
            cells_total
        );
    }
    eprintln!(
        "recoverable: {cells_total} cells struck {} times each, bitwise identical at {WORKER_CONFIGS:?}",
        policy.retry_budget
    );

    // --- 3. Quarantine availability: a subset struck past the budget. ---
    let q_seed = seed_selecting_subset(FaultSite::UnitEntry, cells_total as u64);
    let quarantine_plan = FaultPlan::new(q_seed)
        .at(FaultSite::UnitEntry)
        .every(2)
        .strikes(policy.max_attempts() + 1);
    let guard = fault::arm(quarantine_plan);
    let partial = exec.run_matrix_isolated(&strategies, &workloads, &plan, &policy);
    drop(guard);
    assert!(!partial.is_complete(), "quarantine plan never fired");
    let survived = assert_surviving_cells_equal(&clean, &partial, "quarantine");
    assert_eq!(survived + partial.quarantined.len(), cells_total);
    let availability = survived as f64 / cells_total as f64;
    let quarantined: Vec<(u32, u32, String)> = partial
        .quarantined
        .iter()
        .map(|f| (f.unit, f.attempts, f.fault.to_string()))
        .collect();
    for (unit, attempts, fault) in &quarantined {
        eprintln!("quarantined cell {unit}: {attempts} attempts, {fault}");
    }
    eprintln!("availability under quarantine: {survived}/{cells_total} = {availability:.3}");

    // --- 4. Journal: killed sweep resumes to the uninterrupted result. ---
    let tmp = std::env::temp_dir();
    let kill_journal: PathBuf = tmp.join(format!("bench_pr9_{}_kill.journal", std::process::id()));
    let jw_journal: PathBuf = tmp.join(format!("bench_pr9_{}_jw.journal", std::process::id()));
    let _ = std::fs::remove_file(&kill_journal);
    let _ = std::fs::remove_file(&jw_journal);

    // "Kill": quarantine a subset mid-sweep, leaving a partial journal.
    let guard = fault::arm(quarantine_plan);
    let killed = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &kill_journal)
        .expect("journaled run");
    drop(guard);
    let killed_completed = cells_total - killed.quarantined.len();
    assert!(!killed.is_complete());
    // Resume with nothing armed: restored cells verbatim, only the
    // missing cells execute, and the matrix equals the clean sweep.
    let resumed = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &kill_journal)
        .expect("resumed run");
    assert!(resumed.is_complete(), "resume left cells incomplete");
    assert_eq!(resumed.resumed_cells, killed_completed);
    assert_eq!(resumed.executed_cells, killed.quarantined.len());
    assert_eq!(
        assert_surviving_cells_equal(&clean, &resumed, "resume"),
        cells_total
    );
    eprintln!(
        "journal resume: {} cells restored + {} re-executed == uninterrupted sweep",
        resumed.resumed_cells, resumed.executed_cells
    );

    // Journal-append faults: the run completes and stays correct, the
    // failed appends are counted, and a resume re-executes exactly the
    // cells that never became durable.
    let jw_seed = seed_selecting_subset(FaultSite::JournalWrite, cells_total as u64);
    let jw_plan = FaultPlan::new(jw_seed)
        .at(FaultSite::JournalWrite)
        .every(2)
        .strikes(1);
    let guard = fault::arm(jw_plan);
    let lossy = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &jw_journal)
        .expect("journaled run under append faults");
    drop(guard);
    assert!(lossy.is_complete(), "append faults must never fail cells");
    assert_eq!(
        assert_surviving_cells_equal(&clean, &lossy, "lossy-journal"),
        cells_total
    );
    assert!(lossy.journal_faults > 0, "append-fault plan never fired");
    let rewrite = exec
        .run_matrix_journaled(&strategies, &workloads, &plan, &policy, &jw_journal)
        .expect("resume after append faults");
    assert!(rewrite.is_complete());
    assert_eq!(rewrite.executed_cells, lossy.journal_faults);
    assert_eq!(
        assert_surviving_cells_equal(&clean, &rewrite, "lossy-resume"),
        cells_total
    );
    eprintln!(
        "journal-write faults: {} appends dropped, resume re-executed exactly those cells",
        lossy.journal_faults
    );
    let _ = std::fs::remove_file(&kill_journal);
    let _ = std::fs::remove_file(&jw_journal);

    // --- Emit JSON (hand-rolled: the serde shim has no serializer). ---
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"pr\": 9,");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"regions\": {regions},");
    let _ = writeln!(j, "  \"cells\": {cells_total},");
    let _ = writeln!(
        j,
        "  \"workloads\": [{}],",
        workload_names
            .iter()
            .map(|n| format!("\"{n}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        j,
        "  \"strategies\": [{}],",
        strategies
            .iter()
            .map(|s| format!("\"{}\"", s.name()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        j,
        "  \"oracle\": \"isolated, fault-recovered, and journal-resumed sweeps all bitwise equal the plain run_matrix reports, per cell, across worker compositions {:?}\",",
        WORKER_CONFIGS
    );
    j.push_str("  \"overhead\": {\n");
    let _ = writeln!(j, "    \"timing_repeats\": {repeats},");
    let _ = writeln!(j, "    \"clean_min_seconds\": {clean_seconds:.4},");
    let _ = writeln!(j, "    \"isolated_min_seconds\": {isolated_seconds:.4},");
    let _ = writeln!(j, "    \"overhead_pct\": {overhead_pct:.2},");
    let _ = writeln!(j, "    \"gate_pct\": {GATE_OVERHEAD_PCT}");
    j.push_str("  },\n");
    j.push_str("  \"recoverable\": {\n");
    let _ = writeln!(j, "    \"strikes_per_cell\": {},", policy.retry_budget);
    let _ = writeln!(j, "    \"retry_budget\": {},", policy.retry_budget);
    let _ = writeln!(j, "    \"bitwise_identical_to_clean\": true");
    j.push_str("  },\n");
    j.push_str("  \"quarantine\": {\n");
    let _ = writeln!(j, "    \"seed\": {q_seed},");
    let _ = writeln!(j, "    \"quarantined_cells\": {},", quarantined.len());
    let _ = writeln!(j, "    \"availability\": {availability:.4},");
    j.push_str("    \"failures\": [\n");
    for (i, (unit, attempts, fault)) in quarantined.iter().enumerate() {
        let _ = writeln!(
            j,
            "      {{\"cell\": {unit}, \"attempts\": {attempts}, \"fault\": \"{}\"}}{}",
            json_escape(fault),
            if i + 1 < quarantined.len() { "," } else { "" }
        );
    }
    j.push_str("    ]\n");
    j.push_str("  },\n");
    j.push_str("  \"journal\": {\n");
    let _ = writeln!(j, "    \"killed_run_completed_cells\": {killed_completed},");
    let _ = writeln!(
        j,
        "    \"killed_run_quarantined_cells\": {},",
        killed.quarantined.len()
    );
    let _ = writeln!(j, "    \"resumed_restored\": {},", resumed.resumed_cells);
    let _ = writeln!(j, "    \"resumed_executed\": {},", resumed.executed_cells);
    let _ = writeln!(j, "    \"resumed_equals_uninterrupted\": true,");
    let _ = writeln!(
        j,
        "    \"append_faults_injected\": {},",
        lossy.journal_faults
    );
    let _ = writeln!(
        j,
        "    \"append_fault_resume_reexecuted\": {}",
        rewrite.executed_cells
    );
    j.push_str("  },\n");
    let _ = writeln!(
        j,
        "  \"honesty_note\": \"overhead is min-of-{repeats} host wallclock on whatever this host is, so treat the percentage as an upper bound on scheduling cost, not a microbenchmark; every equality claim above is enforced by assertions in this binary (a violation aborts the run), and the killed-sweep journal is produced by quarantining cells rather than killing the process, which leaves the identical on-disk state: a valid prefix of completed cells\""
    );
    j.push_str("}\n");
    std::fs::write(&out_path, &j).expect("write BENCH_PR9.json");
    eprintln!("wrote {out_path}");

    if overhead_pct > GATE_OVERHEAD_PCT {
        eprintln!(
            "ERROR: isolated-path overhead {overhead_pct:.2}% exceeds the {GATE_OVERHEAD_PCT}% gate"
        );
        std::process::exit(1);
    }
}
