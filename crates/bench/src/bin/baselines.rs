//! Prints the five-strategy warm-up trade-off table (SMARTS, checkpointed
//! warming, MRRL, CoolSim, DeLorean). Flags: --scale demo|tiny|paper,
//! --seed N, --filter NAME, --regions N.

fn main() {
    let opts = delorean_bench::ExpOptions::from_env();
    println!("{}", delorean_bench::experiments::baselines::run(&opts));
}
