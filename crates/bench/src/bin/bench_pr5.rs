//! Region-parallel runtime harness: writes `BENCH_PR5.json`, the fourth
//! point of the repository's perf trajectory.
//!
//! For every strategy × workload cell at demo scale, this harness:
//!
//! 1. runs the **pre-PR 5 sequential driver** (verbatim replicas in
//!    `delorean_bench::seqdriver`; `DeLoreanRunner::run_serial` for
//!    DeLorean) as the baseline, timing its host wall;
//! 2. runs the region scheduler at 1/2/4/8 workers, timing each;
//! 3. asserts the **equivalence oracle**: identical CPI, identical
//!    per-region detailed counters and identical collected-reuse counts
//!    against the sequential baseline, and bitwise-identical reports
//!    across all worker counts;
//! 4. records the **modeled** wallclock curve
//!    (`RunCost::region_parallel_wallclock`) — the host-independent
//!    estimate the repository's cost model assigns to region-parallel
//!    execution, which is the headline speedup (the reference host has a
//!    single vCPU, so measured walls cannot show thread scaling; they
//!    are recorded as context).
//!
//! Flags: `--quick` (CI smoke: fewer regions/workloads), `--out PATH`
//! (default `BENCH_PR5.json`).

use delorean_bench::seqdriver;
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanRunner};
use delorean_sampling::{
    CheckpointWarmingRunner, CoolSimConfig, CoolSimRunner, MrrlRunner, SamplingConfig,
    SamplingStrategy, SimulationReport, SmartsRunner,
};
use delorean_trace::{spec_workload, Scale, Workload};
use std::fmt::Write as _;
use std::time::Instant;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const TARGET_SPEEDUP_4W: f64 = 1.7;

struct Cell {
    strategy: String,
    workload: String,
    cpi: f64,
    collected: u64,
    seq_host_seconds: f64,
    host_seconds: [f64; WORKERS.len()],
    modeled_seq_seconds: f64,
    modeled_seconds: [f64; WORKERS.len()],
    modeled_speedup: [f64; WORKERS.len()],
}

fn strategies(scale: Scale, machine: MachineConfig) -> Vec<Box<dyn SamplingStrategy>> {
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ]
}

fn sequential_baseline(
    name: &str,
    scale: Scale,
    machine: &MachineConfig,
    workload: &dyn Workload,
    plan: &delorean_sampling::RegionPlan,
) -> SimulationReport {
    match name {
        "smarts" => seqdriver::smarts_sequential(machine, workload, plan),
        "coolsim" => {
            seqdriver::coolsim_sequential(machine, &CoolSimConfig::for_scale(scale), workload, plan)
        }
        "mrrl" => seqdriver::mrrl_sequential(machine, workload, plan),
        "checkpoint" => seqdriver::checkpoint_sequential(machine, workload, plan),
        "delorean" => {
            DeLoreanRunner::new(*machine, DeLoreanConfig::for_scale(scale))
                .run_serial(workload, plan)
                .report
        }
        other => panic!("unknown strategy {other}"),
    }
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());

    let scale = Scale::demo();
    let machine = MachineConfig::for_scale(scale);
    let regions = if quick { 4 } else { 10 };
    let plan = SamplingConfig::for_scale(scale)
        .with_regions(regions)
        .plan();
    let workload_names: &[&str] = if quick {
        &["hmmer"]
    } else {
        &["hmmer", "mcf", "povray"]
    };

    let mut cells: Vec<Cell> = Vec::new();
    for name in workload_names {
        let w = spec_workload(name, scale, 1).unwrap();
        for s in strategies(scale, machine) {
            // --- Pre-PR 5 sequential driver: the baseline. ---
            let t = Instant::now();
            let baseline = sequential_baseline(s.name(), scale, &machine, &w, &plan);
            let seq_host_seconds = t.elapsed().as_secs_f64();

            // --- Region scheduler at each worker count. ---
            let mut host_seconds = [0.0; WORKERS.len()];
            let mut reports = Vec::with_capacity(WORKERS.len());
            for (i, &workers) in WORKERS.iter().enumerate() {
                let t = Instant::now();
                let report = s.run_with_workers(&w, &plan, workers);
                host_seconds[i] = t.elapsed().as_secs_f64();
                reports.push(report);
            }

            // --- Equivalence oracle. ---
            // (a) Worker count never changes the report, bit for bit.
            for (report, &workers) in reports.iter().zip(&WORKERS[1..]) {
                assert_eq!(
                    reports[0].report,
                    report.report,
                    "{}/{name}: workers={workers} changed the report",
                    s.name()
                );
            }
            // (b) The scheduler reproduces the sequential driver's CPI,
            // per-region counters and collected-reuse counts exactly.
            let new = &reports[0].report;
            assert_eq!(
                baseline.total(),
                new.total(),
                "{}/{name}: scheduler diverged from the sequential driver",
                s.name()
            );
            assert!(
                baseline.cpi() == new.cpi(),
                "{}/{name}: CPI mismatch ({} vs {})",
                s.name(),
                baseline.cpi(),
                new.cpi()
            );
            assert_eq!(
                baseline.collected_reuse_distances,
                new.collected_reuse_distances,
                "{}/{name}: collected-reuse mismatch",
                s.name()
            );
            for (b, n) in baseline.regions.iter().zip(&new.regions) {
                assert_eq!(b, n, "{}/{name}: region result diverged", s.name());
            }

            // --- Modeled wallclock curve. ---
            let modeled_seq_seconds = baseline.cost.serial_wallclock();
            let mut modeled_seconds = [0.0; WORKERS.len()];
            let mut modeled_speedup = [0.0; WORKERS.len()];
            for (i, &workers) in WORKERS.iter().enumerate() {
                modeled_seconds[i] = new.cost.region_parallel_wallclock(workers);
                modeled_speedup[i] = modeled_seq_seconds / modeled_seconds[i];
            }
            eprintln!(
                "{:<11} {:<7} cpi {:>6.3}  seq {:>6.3}s host | modeled speedup x{:.2}/x{:.2}/x{:.2}/x{:.2} at {:?} workers",
                s.name(),
                name,
                new.cpi(),
                seq_host_seconds,
                modeled_speedup[0],
                modeled_speedup[1],
                modeled_speedup[2],
                modeled_speedup[3],
                WORKERS,
            );
            cells.push(Cell {
                strategy: s.name().to_string(),
                workload: name.to_string(),
                cpi: new.cpi(),
                collected: new.collected_reuse_distances,
                seq_host_seconds,
                host_seconds,
                modeled_seq_seconds,
                modeled_seconds,
                modeled_speedup,
            });
        }
    }

    let idx4 = WORKERS.iter().position(|&w| w == 4).unwrap();
    let mut geomeans = [0.0; WORKERS.len()];
    for (i, slot) in geomeans.iter_mut().enumerate() {
        let speedups: Vec<f64> = cells.iter().map(|c| c.modeled_speedup[i]).collect();
        *slot = geomean(&speedups);
    }
    let host_speedups_4w: Vec<f64> = cells
        .iter()
        .map(|c| c.seq_host_seconds / c.host_seconds[idx4].max(f64::MIN_POSITIVE))
        .collect();
    let host_geomean_4w = geomean(&host_speedups_4w);
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // --- Emit JSON (hand-rolled: the serde shim has no serializer). ---
    let fmt_curve = |vals: &[f64; WORKERS.len()], digits: usize| -> String {
        WORKERS
            .iter()
            .zip(vals)
            .map(|(w, v)| format!("\"{w}\": {v:.digits$}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"pr\": 5,");
    let _ = writeln!(j, "  \"quick\": {quick},");
    let _ = writeln!(j, "  \"regions\": {regions},");
    let _ = writeln!(j, "  \"host_available_parallelism\": {parallelism},");
    let _ = writeln!(
        j,
        "  \"oracle\": \"CPI, per-region detailed counters and collected-reuse counts identical to the sequential PR 4 driver for every strategy x workload cell, and reports bitwise identical across 1/2/4/8 workers\","
    );
    j.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"strategy\": \"{}\", \"workload\": \"{}\", \"scale\": \"demo\", \"cpi\": {:.4}, \"collected_reuse_distances\": {}, \"seq_pr4_host_seconds\": {:.4}, \"host_seconds\": {{{}}}, \"modeled_seq_seconds\": {:.4}, \"modeled_wall_seconds\": {{{}}}, \"modeled_speedup\": {{{}}}}}{}",
            json_escape(&c.strategy),
            json_escape(&c.workload),
            c.cpi,
            c.collected,
            c.seq_host_seconds,
            fmt_curve(&c.host_seconds, 4),
            c.modeled_seq_seconds,
            fmt_curve(&c.modeled_seconds, 4),
            fmt_curve(&c.modeled_speedup, 3),
            if i + 1 < cells.len() { "," } else { "" },
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(
        j,
        "  \"geomean_modeled_speedup\": {{{}}},",
        fmt_curve(&geomeans, 3)
    );
    let _ = writeln!(
        j,
        "  \"geomean_end_to_end_speedup_4_threads\": {:.3},",
        geomeans[idx4]
    );
    let _ = writeln!(j, "  \"target_speedup_4_threads\": {TARGET_SPEEDUP_4W},");
    let _ = writeln!(
        j,
        "  \"geomean_host_wall_speedup_4_threads\": {host_geomean_4w:.3},"
    );
    let _ = writeln!(
        j,
        "  \"host_note\": \"modeled speedups come from the cost model's per-worker schedule (deterministic, host-independent); the reference host has {parallelism} vCPU, so measured walls cannot show thread scaling and are recorded as context only\""
    );
    j.push_str("}\n");
    std::fs::write(&out_path, &j).expect("write BENCH_PR5.json");
    eprintln!(
        "modeled geomean speedup at 4 workers: {:.2}x (host-wall geomean {:.2}x on {} vCPU)",
        geomeans[idx4], host_geomean_4w, parallelism
    );
    eprintln!("wrote {out_path}");

    // Regression gate: the modeled curve is deterministic, so the gate
    // holds in quick mode too.
    if geomeans[idx4] < TARGET_SPEEDUP_4W {
        eprintln!(
            "ERROR: modeled geomean speedup {:.2}x at 4 workers below the {TARGET_SPEEDUP_4W}x bar",
            geomeans[idx4]
        );
        std::process::exit(1);
    }
}
