//! Warm-loop perf harness: writes `BENCH_PR4.json`, the third point of
//! the repository's perf trajectory.
//!
//! Measures, per workload and machine variant, the accesses/second of
//! simulating the functional-warming hot loop through the cache
//! hierarchy on the two paths (the retained pre-PR 4 per-access baseline
//! vs the batched slice-at-a-time `warm_range`), asserting the
//! equivalence oracle on every case, plus the end-to-end wall time of
//! each sampling strategy at demo scale — directly comparable with the
//! same table in `BENCH_PR3.json`.
//!
//! Flags: `--quick` (CI smoke: best of two repeats, with relaxed
//! regression gates), `--out PATH` (default `BENCH_PR4.json`).

use delorean_bench::hierloop::{
    assert_hierarchies_agree, measure_warm_loop, WarmLoopRate, WarmOutcome, WarmPath,
};
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanRunner};
use delorean_sampling::{
    CheckpointWarmingRunner, CoolSimConfig, CoolSimRunner, MrrlRunner, SamplingConfig,
    SamplingStrategy, SmartsRunner,
};
use delorean_trace::{spec_workload, Scale};
use std::fmt::Write as _;
use std::time::Instant;

struct LoopRow {
    workload: String,
    machine: &'static str,
    accesses: u64,
    per_access_rate: f64,
    batched_rate: f64,
}

fn strategies(scale: Scale) -> Vec<Box<dyn SamplingStrategy>> {
    let machine = MachineConfig::for_scale(scale);
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ]
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());

    // Even quick mode takes the best of 2 repeats: the gates below are
    // wall-clock ratios and a single preempted sample on a shared runner
    // should not fail the job.
    let repeats: u32 = if quick { 2 } else { 5 };
    let warm_accesses: u64 = if quick { 400_000 } else { 4_000_000 };

    // --- Warm-loop rates: per-access baseline vs batched warm_range. ---
    // Machine variants cover the regimes that stress different parts of
    // the access core: the Table 1 default (hit-dominated, MSHR-quiet),
    // the prefetcher on (miss path + LLC fills), and a quarter-size LLC
    // (heavier MSHR churn and eviction traffic).
    let scale = Scale::demo();
    let machines: [(&'static str, MachineConfig); 3] = [
        ("table1", MachineConfig::for_scale(scale)),
        (
            "prefetch",
            MachineConfig::for_scale(scale).with_prefetch(true),
        ),
        (
            "llc-2mb",
            MachineConfig::for_scale(scale).with_llc_paper_bytes(scale, 2 << 20),
        ),
    ];
    let mut rows: Vec<LoopRow> = Vec::new();
    for name in ["hmmer", "povray", "mcf"] {
        let w = spec_workload(name, scale, 1).unwrap();
        for (label, machine) in &machines {
            let range = 0..warm_accesses;
            let base = measure_warm_loop(&w, machine, WarmPath::PerAccess, range.clone(), repeats);
            let batched = measure_warm_loop(&w, machine, WarmPath::Batched, range.clone(), repeats);
            oracle(&w, warm_accesses, &base, &batched);
            eprintln!(
                "{:<8} {:<10} {:>9} accesses: {:>6.1} Macc/s per-access   {:>6.1} Macc/s batched   ({:.2}x)",
                name,
                label,
                warm_accesses,
                base.accesses_per_sec / 1e6,
                batched.accesses_per_sec / 1e6,
                batched.accesses_per_sec / base.accesses_per_sec,
            );
            rows.push(LoopRow {
                workload: name.to_string(),
                machine: label,
                accesses: warm_accesses,
                per_access_rate: base.accesses_per_sec,
                batched_rate: batched.accesses_per_sec,
            });
        }
    }
    let speedups: Vec<f64> = rows
        .iter()
        .map(|r| r.batched_rate / r.per_access_rate)
        .collect();
    let loop_geomean = geomean(&speedups);

    // --- End-to-end strategy wall times at demo scale (same table as
    // BENCH_PR3.json for direct trajectory comparison). ---
    let plan = SamplingConfig::for_scale(scale)
        .with_regions(if quick { 1 } else { 3 })
        .plan();
    let strategy_workload = spec_workload("hmmer", scale, 1).unwrap();
    let mut strategy_rows = Vec::new();
    for s in strategies(scale) {
        let t = Instant::now();
        let report = s.run(&strategy_workload, &plan);
        let wall = t.elapsed().as_secs_f64();
        eprintln!(
            "{:<12} end-to-end {:>8.3} s (cpi {:.3}, demo scale)",
            s.name(),
            wall,
            report.cpi()
        );
        strategy_rows.push((s.name().to_string(), wall, report.cpi()));
    }

    // --- Emit JSON (hand-rolled: the serde shim has no serializer). ---
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"pr\": 4,");
    let _ = writeln!(j, "  \"quick\": {quick},");
    j.push_str("  \"warm_loop\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"workload\": \"{}\", \"machine\": \"{}\", \"accesses\": {}, \"per_access_accesses_per_sec\": {:.0}, \"batched_accesses_per_sec\": {:.0}, \"speedup\": {:.3}}}{}",
            json_escape(&r.workload),
            r.machine,
            r.accesses,
            r.per_access_rate,
            r.batched_rate,
            r.batched_rate / r.per_access_rate,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    j.push_str("  ],\n");
    let _ = writeln!(j, "  \"warm_loop_geomean_speedup\": {loop_geomean:.3},");
    // The issue's aspirational target. The measured geomean on the
    // 1-vCPU reference host lands well short of it: the per-access
    // baseline's removable overhead (allocating MSHR retires, duplicated
    // scans, per-access closure) is ~25% of the loop there, the rest
    // being access generation and the equivalence-constrained simulation
    // work both paths share. Recorded so the trajectory stays honest.
    let _ = writeln!(j, "  \"warm_loop_target_speedup\": 2.0,");
    j.push_str("  \"strategy_end_to_end\": [\n");
    for (i, (name, wall, cpi)) in strategy_rows.iter().enumerate() {
        let _ = writeln!(
            j,
            "    {{\"strategy\": \"{}\", \"workload\": \"hmmer\", \"scale\": \"demo\", \"wall_seconds\": {:.4}, \"cpi\": {:.4}}}{}",
            json_escape(name),
            wall,
            cpi,
            if i + 1 < strategy_rows.len() { "," } else { "" },
        );
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out_path, &j).expect("write BENCH_PR4.json");
    eprintln!("warm-loop geomean speedup: {loop_geomean:.2}x");
    eprintln!("wrote {out_path}");

    // Regression gates: lock in the speedup the batched path actually
    // delivers on the reference host (~1.25x geomean; the 2x aspiration
    // is recorded in the JSON as `warm_loop_target_speedup`). Quick (CI)
    // mode tolerates noisy shared runners with a lower bar.
    let bar = if quick { 1.05 } else { 1.15 };
    if loop_geomean < bar {
        eprintln!("ERROR: warm-loop geomean speedup {loop_geomean:.2}x below the {bar}x bar");
        std::process::exit(1);
    }
}

/// Unpack the two measured outcomes and assert the equivalence oracle.
fn oracle(
    workload: &dyn delorean_trace::Workload,
    accesses: u64,
    base: &WarmLoopRate,
    batched: &WarmLoopRate,
) {
    let (WarmOutcome::PerAccess(b), WarmOutcome::Batched(n)) = (&base.outcome, &batched.outcome)
    else {
        panic!("outcome variants mismatched the measured paths");
    };
    assert_hierarchies_agree(workload, 0..accesses, b, n);
}
