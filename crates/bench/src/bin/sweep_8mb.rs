//! One three-strategy sweep at the 8 MiB LLC, printing Figures 5–9 —
//! the shared-run fast path also used by `run_all`. Flags: --scale
//! demo|tiny|paper, --seed N, --filter NAME, --regions N.

use delorean_bench::experiments::{fig05, fig06, fig07, fig08, fig09, LLC_8MB};
use delorean_bench::{compare_all, ExpOptions};

fn main() {
    let opts = ExpOptions::from_env();
    let rows = compare_all(&opts, LLC_8MB);
    println!("{}", fig05::table(&rows));
    println!("{}", fig06::table(&rows));
    println!("{}", fig07::table(&rows));
    println!("{}", fig08::table(&rows));
    println!("{}", fig09::table(&rows));
}
