//! Figure 10: CPI at the 512 MiB LLC (the large-scale DRAM-cache case).
//!
//! Paper results: DeLorean within 2.9% of SMARTS on average, CoolSim at
//! 9.3%.

use crate::experiments::fig09::table_at;
use crate::experiments::LLC_512MB;
use crate::options::ExpOptions;
use crate::runs::{compare_all, BenchmarkComparison};
use crate::table::Table;

/// Build the Figure 10 table from precomputed comparison data (which must
/// have been produced at the 512 MiB LLC).
pub fn table(rows: &[BenchmarkComparison]) -> Table {
    table_at(
        rows,
        "Figure 10 — CPI at the 512 MiB LLC (SMARTS is the reference)",
        "paper averages: CoolSim 9.3% error, DeLorean 2.9%",
    )
}

/// Run the comparison at the 512 MiB LLC and build the table.
pub fn run(opts: &ExpOptions) -> Table {
    table(&compare_all(opts, LLC_512MB))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_llc_reduces_memory_traffic() {
        let opts = ExpOptions {
            filter: Some("lbm".into()),
            ..ExpOptions::tiny()
        };
        let small = compare_all(&opts, 1 << 20);
        let large = compare_all(&opts, 512 << 20);
        let small_mpki = small[0].outputs.smarts.llc_mpki();
        let large_mpki = large[0].outputs.smarts.llc_mpki();
        assert!(
            large_mpki <= small_mpki + 0.5,
            "bigger LLC should not miss more: {small_mpki} → {large_mpki}"
        );
        let t = table(&large);
        assert_eq!(t.rows.len(), 2);
    }
}
