//! Figure 6: reuse distances collected during warm-up, CoolSim vs
//! DeLorean.
//!
//! Paper results: DeLorean collects 30× fewer reuse distances on average
//! (up to 6,800× fewer), ~11,000 vs ~340,000 across the 10 regions.

use crate::experiments::LLC_8MB;
use crate::options::ExpOptions;
use crate::runs::{compare_all, BenchmarkComparison};
use crate::table::{f1, Table};
use delorean_sampling::metrics::geomean;

/// Build the Figure 6 table from precomputed comparison data.
pub fn table(rows: &[BenchmarkComparison]) -> Table {
    let mut t = Table::new(
        "Figure 6 — collected reuse distances (total across regions)",
        &["benchmark", "CoolSim", "DeLorean", "reduction"],
    );
    let mut ratios = Vec::new();
    let mut cool_total = 0u64;
    let mut delo_total = 0u64;
    for b in rows {
        let cool = b.outputs.coolsim.collected_reuse_distances;
        let delo = b.outputs.delorean.report.collected_reuse_distances;
        cool_total += cool;
        delo_total += delo;
        let ratio = if delo == 0 {
            cool as f64
        } else {
            cool as f64 / delo as f64
        };
        ratios.push(ratio.max(f64::MIN_POSITIVE));
        t.push_row([
            b.name.clone(),
            cool.to_string(),
            delo.to_string(),
            format!("{}×", f1(ratio)),
        ]);
    }
    let n = rows.len().max(1) as u64;
    t.push_row([
        "average".into(),
        (cool_total / n).to_string(),
        (delo_total / n).to_string(),
        format!("{}×", f1(geomean(&ratios))),
    ]);
    t.note("paper: 340,000 vs 11,000 on average — a 30× reduction (up to 6,800×)");
    t
}

/// Run the comparison and build the table.
pub fn run(opts: &ExpOptions) -> Table {
    table(&compare_all(opts, LLC_8MB))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delorean_collects_fewer_than_coolsim() {
        let opts = ExpOptions {
            filter: Some("hmmer".into()),
            ..ExpOptions::tiny()
        };
        let rows = compare_all(&opts, LLC_8MB);
        let t = table(&rows);
        assert_eq!(t.rows.len(), 2);
        let cool = rows[0].outputs.coolsim.collected_reuse_distances;
        let delo = rows[0].outputs.delorean.report.collected_reuse_distances;
        assert!(
            delo < cool,
            "directed warming should need fewer samples: {delo} vs {cool}"
        );
    }
}
