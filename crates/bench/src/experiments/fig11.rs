//! Figure 11: speed–accuracy trade-off of the vicinity sampling density.
//!
//! Paper results at the 8 MiB LLC: density 1/100 k → 126 MIPS at 3.5%
//! error; 1/10 k → 71.3 MIPS at 2.2%; 1/1 M is faster but less accurate.

use crate::experiments::LLC_8MB;
use crate::options::ExpOptions;
use crate::runs::{plan_for, BatchExecutor};
use crate::table::{f1, pct, Table};
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanRunner};
use delorean_sampling::metrics::mean;
use delorean_sampling::{SamplingStrategy, SmartsRunner};
use delorean_trace::{spec2006, Workload};

/// The paper's three sampled densities (period in memory instructions).
pub const DENSITIES: [u64; 3] = [10_000, 100_000, 1_000_000];

/// Run the density sweep and build the table.
pub fn run(opts: &ExpOptions) -> Table {
    let plan = plan_for(opts);
    let machine = MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, LLC_8MB);
    let suite: Vec<_> = spec2006(opts.scale, opts.seed)
        .into_iter()
        .filter(|w| opts.selected(w.name()))
        .collect();
    // Reference + all three densities as one strategy set: the whole
    // 4 × suite sweep fans out in a single executor call.
    let mut strategies: Vec<Box<dyn SamplingStrategy>> = vec![Box::new(SmartsRunner::new(machine))];
    for period in DENSITIES {
        strategies.push(Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(opts.scale).with_vicinity_period(opts.scale, period),
        )));
    }
    let matrix = BatchExecutor::new().run_matrix(&strategies, &suite, &plan);

    let mut t = Table::new(
        "Figure 11 — vicinity density: speed vs accuracy (8 MiB LLC)",
        &[
            "density (1 per N mem-instr)",
            "speed (MIPS)",
            "avg CPI error",
        ],
    );
    for (i, period) in DENSITIES.into_iter().enumerate() {
        let mut errs = Vec::new();
        let mut mips = Vec::new();
        for (out, reference) in matrix.iter().map(|row| (&row[i + 1], &row[0])) {
            errs.push(out.cpi_error_vs(reference));
            mips.push(out.mips_pipelined());
        }
        t.push_row([
            period.to_string(),
            f1(delorean_sampling::metrics::geomean(&mips)),
            pct(mean(&errs)),
        ]);
    }
    t.note("paper: 1/100k → 126 MIPS @ 3.5%; 1/10k → 71.3 MIPS @ 2.2%");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn denser_sampling_is_slower() {
        let opts = ExpOptions {
            filter: Some("hmmer".into()),
            ..ExpOptions::tiny()
        };
        let t = run(&opts);
        assert_eq!(t.rows.len(), 3);
        let speed_dense: f64 = t.rows[0][1].parse().unwrap();
        let speed_sparse: f64 = t.rows[2][1].parse().unwrap();
        assert!(
            speed_sparse >= speed_dense * 0.8,
            "sparse sampling should not be much slower: {speed_dense} vs {speed_sparse}"
        );
    }
}
