//! Figure 5: normalized simulation speed (SMARTS = 1) plus the §6.1
//! absolute MIPS numbers.
//!
//! Paper results: DeLorean 96× over SMARTS and 5.7× over CoolSim on
//! average; absolute speeds 1.3 / 21.9 / 126 MIPS. Best case bwaves
//! (49× over CoolSim), worst cases povray (1.05×) and GemsFDTD (1.4×).

use crate::experiments::LLC_8MB;
use crate::options::ExpOptions;
use crate::runs::{compare_all, BenchmarkComparison};
use crate::table::{f1, f2, Table};
use delorean_sampling::metrics::geomean;

/// Build the Figure 5 table from precomputed comparison data.
pub fn table(rows: &[BenchmarkComparison]) -> Table {
    let mut t = Table::new(
        "Figure 5 — normalized simulation speed (SMARTS = 1)",
        &[
            "benchmark",
            "SMARTS",
            "CoolSim",
            "DeLorean",
            "DeLorean/CoolSim",
        ],
    );
    let mut cool_speed = Vec::new();
    let mut delo_speed = Vec::new();
    let mut delo_over_cool = Vec::new();
    let mut mips = [Vec::new(), Vec::new(), Vec::new()];
    for b in rows {
        let o = &b.outputs;
        let cool = o.coolsim.speedup_vs(&o.smarts);
        let delo = o.delorean.report.speedup_vs(&o.smarts);
        let ratio = o.delorean.report.speedup_vs(&o.coolsim);
        cool_speed.push(cool);
        delo_speed.push(delo);
        delo_over_cool.push(ratio);
        mips[0].push(o.smarts.mips_pipelined());
        mips[1].push(o.coolsim.mips_pipelined());
        mips[2].push(o.delorean.report.mips_pipelined());
        t.push_row([b.name.clone(), "1.00".into(), f1(cool), f1(delo), f1(ratio)]);
    }
    t.push_row([
        "average (geomean)".into(),
        "1.00".into(),
        f1(geomean(&cool_speed)),
        f1(geomean(&delo_speed)),
        f1(geomean(&delo_over_cool)),
    ]);
    t.note(format!(
        "absolute speed (geomean MIPS): SMARTS {}, CoolSim {}, DeLorean {} \
         — paper reports 1.3 / 21.9 / 126",
        f2(geomean(&mips[0])),
        f1(geomean(&mips[1])),
        f1(geomean(&mips[2])),
    ));
    t.note("paper averages: DeLorean 96× over SMARTS, 5.7× over CoolSim");
    t
}

/// Run the comparison and build the table.
pub fn run(opts: &ExpOptions) -> Table {
    table(&compare_all(opts, LLC_8MB))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_has_expected_shape() {
        let opts = ExpOptions {
            filter: Some("bwaves".into()),
            ..ExpOptions::tiny()
        };
        let t = run(&opts);
        assert_eq!(t.headers.len(), 5);
        assert_eq!(t.rows.len(), 2); // bwaves + average
        assert!(t.markdown().contains("bwaves"));
    }
}
