//! Ablations of DeLorean's design choices (DESIGN.md §5).
//!
//! 1. **Explorer depth** — cap the Explorer chain at 1..4 windows: fewer
//!    windows leave long reuses unresolved (misclassified as cold misses),
//!    trading accuracy for nothing once windows stop being engaged.
//! 2. **Warming misses as misses** — disable the paper's core insight:
//!    every unresolved lukewarm miss counts as a real miss, reproducing
//!    the severe CPI overestimation that motivates statistical warming.
//! 3. **Pipelined vs serial TT** — same passes, same results; the
//!    wall-clock gap is the pipelining win of §3.2.

use crate::experiments::LLC_8MB;
use crate::options::ExpOptions;
use crate::runs::{plan_for, BatchExecutor};
use crate::table::{f1, f2, pct, Table};
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanExtras, DeLoreanRunner};
use delorean_sampling::metrics::mean;
use delorean_sampling::{SamplingStrategy, SmartsRunner};
use delorean_trace::{spec2006, Workload};

/// Ablation 1: explorer-chain depth vs accuracy.
pub fn explorer_depth(opts: &ExpOptions) -> Table {
    let plan = plan_for(opts);
    let machine = MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, LLC_8MB);
    let suite: Vec<_> = spec2006(opts.scale, opts.seed)
        .into_iter()
        .filter(|w| opts.selected(w.name()))
        .collect();
    // Reference + all four depths as one strategy set: the whole
    // 5 × suite sweep fans out in a single executor call.
    let mut strategies: Vec<Box<dyn SamplingStrategy>> = vec![Box::new(SmartsRunner::new(machine))];
    for depth in 1..=4usize {
        strategies.push(Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(opts.scale).with_max_explorers(depth),
        )));
    }
    let matrix = BatchExecutor::new().run_matrix(&strategies, &suite, &plan);

    let mut t = Table::new(
        "Ablation — explorer chain depth (8 MiB LLC)",
        &[
            "explorers",
            "avg CPI error",
            "avg cold keys/run",
            "speed (MIPS)",
        ],
    );
    for depth in 1..=4usize {
        let mut errs = Vec::new();
        let mut cold = 0u64;
        let mut mips = Vec::new();
        for (out, reference) in matrix.iter().map(|row| (&row[depth], &row[0])) {
            errs.push(out.cpi_error_vs(reference));
            cold += out
                .extras::<DeLoreanExtras>()
                .expect("extras")
                .stats
                .cold_keys;
            mips.push(out.mips_pipelined());
        }
        t.push_row([
            depth.to_string(),
            pct(mean(&errs)),
            f1(cold as f64 / suite.len().max(1) as f64),
            f1(delorean_sampling::metrics::geomean(&mips)),
        ]);
    }
    t.note("shallower chains leave long reuses unresolved (treated as cold misses)");
    t
}

/// Ablation 2: treat warming misses as misses.
pub fn warming_miss_policy(opts: &ExpOptions) -> Table {
    let plan = plan_for(opts);
    let machine = MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, LLC_8MB);
    let mut t = Table::new(
        "Ablation — warming misses modeled as hits (paper) vs misses",
        &["benchmark", "error (as hits)", "error (as misses)"],
    );
    let suite: Vec<_> = spec2006(opts.scale, opts.seed)
        .into_iter()
        .filter(|w| opts.selected(w.name()))
        .collect();
    // Reference + both policies as one strategy set; the executor fans
    // the whole matrix out at once.
    let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(opts.scale),
        )),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(opts.scale).with_warming_miss_as_miss(),
        )),
    ];
    let matrix = BatchExecutor::new().run_matrix(&strategies, &suite, &plan);
    let (mut hit_errs, mut miss_errs) = (Vec::new(), Vec::new());
    for (w, row) in suite.iter().zip(&matrix) {
        let [reference, as_hit, as_miss] = &row[..] else {
            unreachable!("three strategies per workload");
        };
        let he = as_hit.cpi_error_vs(reference);
        let me = as_miss.cpi_error_vs(reference);
        hit_errs.push(he);
        miss_errs.push(me);
        t.push_row([w.name().to_string(), pct(he), pct(me)]);
    }
    t.push_row([
        "average".into(),
        pct(mean(&hit_errs)),
        pct(mean(&miss_errs)),
    ]);
    t.note("counting warming misses as misses reproduces the overestimation DSW removes");
    t
}

/// Ablation 3: pipelined vs serial TT wall-clock.
pub fn pipeline_vs_serial(opts: &ExpOptions) -> Table {
    let plan = plan_for(opts);
    let machine = MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, LLC_8MB);
    let mut t = Table::new(
        "Ablation — pipelined vs serial time traveling",
        &["benchmark", "serial (s)", "pipelined (s)", "pipelining win"],
    );
    let suite: Vec<_> = spec2006(opts.scale, opts.seed)
        .into_iter()
        .filter(|w| opts.selected(w.name()))
        .collect();
    let runner = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(opts.scale));
    let outs = BatchExecutor::new().run_strategy_over(&runner, &suite, &plan);
    for (w, out) in suite.iter().zip(&outs) {
        let serial = out.cost.serial_wallclock();
        let piped = out.cost.pipelined_wallclock();
        t.push_row([
            w.name().to_string(),
            f2(serial),
            f2(piped),
            format!("{}×", f1(serial / piped.max(f64::MIN_POSITIVE))),
        ]);
    }
    t.note("identical results either way; pipelining overlaps the passes (§3.2)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> ExpOptions {
        ExpOptions {
            filter: Some("hmmer".into()),
            ..ExpOptions::tiny()
        }
    }

    #[test]
    fn depth_ablation_has_four_rows() {
        let t = explorer_depth(&opts());
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn warming_policy_as_miss_is_never_better() {
        let t = warming_miss_policy(&opts());
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn pipelining_wins() {
        let t = pipeline_vs_serial(&opts());
        let win: f64 = t.rows[0][3].trim_end_matches('×').parse().unwrap();
        assert!(win >= 1.0, "pipelining should not lose: {win}");
    }
}
