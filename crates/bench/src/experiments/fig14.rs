//! Figure 14: CPI as a function of LLC size, all points from one shared
//! warm-up, plus the §6.4.2 cost accounting.
//!
//! Paper results: DeLorean tracks the SMARTS reference across the sweep;
//! warming-to-detailed cost ratio ≈ 235×; marginal cost of 10 parallel
//! analysts ≤ 1.05× (vs 10× for re-running detailed simulation).

use crate::options::ExpOptions;
use crate::runs::{plan_for, BatchExecutor};
use crate::table::{f1, f2, Table};
use delorean_cache::MachineConfig;
use delorean_core::dse::DesignSpaceExplorer;
use delorean_core::DeLoreanConfig;
use delorean_sampling::{SamplingStrategy, SmartsRunner};
use delorean_trace::spec_workload;

/// The three benchmarks the paper plots.
pub const BENCHMARKS: [&str; 3] = ["cactusADM", "leslie3d", "lbm"];

/// One table per benchmark: CPI per LLC size for reference and DeLorean.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let plan = plan_for(opts);
    let sweep = MachineConfig::llc_sweep_paper_bytes();
    let machines: Vec<MachineConfig> = sweep
        .iter()
        .map(|&s| MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, s))
        .collect();

    BENCHMARKS
        .iter()
        .filter(|n| opts.selected(n))
        .map(|name| {
            let w = spec_workload(name, opts.scale, opts.seed).expect("known benchmark");
            let dse = DesignSpaceExplorer::new(
                MachineConfig::for_scale(opts.scale),
                DeLoreanConfig::for_scale(opts.scale),
            );
            let delorean = dse.run(&w, &plan, &machines);
            let references: Vec<Box<dyn SamplingStrategy>> = machines
                .iter()
                .map(|m| Box::new(SmartsRunner::new(*m)) as Box<dyn SamplingStrategy>)
                .collect();
            let refs = BatchExecutor::new().run_strategies(&references, &w, &plan);
            let mut t = Table::new(
                format!("Figure 14 — CPI vs LLC size for {name} (one shared warm-up)"),
                &["LLC (paper-scale MB)", "SMARTS CPI", "DeLorean CPI"],
            );
            for (i, (&size, reference)) in sweep.iter().zip(&refs).enumerate() {
                t.push_row([
                    (size >> 20).to_string(),
                    f2(reference.cpi()),
                    f2(delorean.outputs[i].report.cpi()),
                ]);
            }
            t.note(format!(
                "warming/detailed cost ratio: {}× (paper ≈ 235×); marginal cost of 10 \
                 parallel analysts: {}× (paper ≤ 1.05×)",
                f1(delorean.warming_to_detailed_ratio()),
                f2(delorean.marginal_cost_factor(10)),
            ));
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpi_declines_with_cache_size() {
        let opts = ExpOptions {
            filter: Some("lbm".into()),
            ..ExpOptions::tiny()
        };
        let tables = run(&opts);
        let t = &tables[0];
        let first: f64 = t.rows[0][2].parse().unwrap();
        let last: f64 = t.rows[9][2].parse().unwrap();
        assert!(
            last <= first,
            "DeLorean CPI should not rise with LLC size: {first} → {last}"
        );
        assert!(!t.notes.is_empty());
    }
}
