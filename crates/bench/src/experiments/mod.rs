//! One module per paper artifact. Each exposes
//! `run(&ExpOptions) -> Table` (or several tables) and, where several
//! figures share the same underlying runs, a `table(..)` function that
//! works from precomputed [`BenchmarkComparison`](crate::BenchmarkComparison)
//! data so `run_all` can reuse one sweep.

pub mod ablation;
pub mod baselines;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod table1;

/// Paper-scale LLC size used by the headline comparison (8 MiB).
pub const LLC_8MB: u64 = 8 << 20;
/// Paper-scale LLC size of the large-scale DRAM-cache study (512 MiB).
pub const LLC_512MB: u64 = 512 << 20;
