//! Figure 9: CPI at the 8 MiB LLC — SMARTS reference vs CoolSim vs
//! DeLorean.
//!
//! Paper results: DeLorean within 3.5% of SMARTS on average, CoolSim at
//! 9.1% (CoolSim badly overestimates LLC misses for soplex and GemsFDTD).

use crate::experiments::LLC_8MB;
use crate::options::ExpOptions;
use crate::runs::{compare_all, BenchmarkComparison};
use crate::table::{f2, pct, Table};
use delorean_sampling::metrics::mean;

/// Build a CPI-accuracy table from comparison data (shared with Fig. 10).
pub fn table_at(rows: &[BenchmarkComparison], title: &str, paper_note: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "benchmark",
            "SMARTS CPI",
            "CoolSim CPI",
            "DeLorean CPI",
            "CoolSim err",
            "DeLorean err",
        ],
    );
    let mut cool_errs = Vec::new();
    let mut delo_errs = Vec::new();
    for b in rows {
        let o = &b.outputs;
        let cool_err = o.coolsim.cpi_error_vs(&o.smarts);
        let delo_err = o.delorean.report.cpi_error_vs(&o.smarts);
        cool_errs.push(cool_err);
        delo_errs.push(delo_err);
        t.push_row([
            b.name.clone(),
            f2(o.smarts.cpi()),
            f2(o.coolsim.cpi()),
            f2(o.delorean.report.cpi()),
            pct(cool_err),
            pct(delo_err),
        ]);
    }
    t.push_row([
        "average".into(),
        String::new(),
        String::new(),
        String::new(),
        pct(mean(&cool_errs)),
        pct(mean(&delo_errs)),
    ]);
    t.note(paper_note.to_string());
    t
}

/// Build the Figure 9 table from precomputed comparison data.
pub fn table(rows: &[BenchmarkComparison]) -> Table {
    table_at(
        rows,
        "Figure 9 — CPI at the 8 MiB LLC (SMARTS is the reference)",
        "paper averages: CoolSim 9.1% error, DeLorean 3.5%",
    )
}

/// Run the comparison and build the table.
pub fn run(opts: &ExpOptions) -> Table {
    table(&compare_all(opts, LLC_8MB))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_finite_and_table_complete() {
        let opts = ExpOptions {
            filter: Some("namd".into()),
            ..ExpOptions::tiny()
        };
        let t = run(&opts);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0].iter().all(|c| !c.contains("NaN")));
    }
}
