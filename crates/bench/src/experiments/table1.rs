//! Table 1: the simulated processor architecture.
//!
//! A configuration table rather than an experiment — printed from the
//! actual structures the simulator runs with, so drift between the
//! documentation and the code is impossible.

use crate::options::ExpOptions;
use crate::table::Table;
use delorean_cache::HierarchyConfig;
use delorean_cpu::TimingConfig;

/// Render Table 1 at the given options' scale (plus paper scale values).
pub fn run(opts: &ExpOptions) -> Table {
    let paper = HierarchyConfig::table1();
    let scaled = HierarchyConfig::for_scale(opts.scale);
    let timing = TimingConfig::table1();
    let mut t = Table::new(
        "Table 1 — simulated processor architecture",
        &["component", "paper scale", "run scale"],
    );
    let rows: Vec<(String, String, String)> = vec![
        (
            "ROB".into(),
            format!("{} entries", timing.rob_entries),
            format!("{} entries", timing.rob_entries),
        ),
        (
            "Issue width".into(),
            format!("{}", timing.issue_width),
            format!("{}", timing.issue_width),
        ),
        (
            "Branch predictor".into(),
            "tournament (2k local / 8k global / 8k choice, 4k BTB)".into(),
            "identical".into(),
        ),
        (
            "L1-I".into(),
            format!("{}", paper.l1i),
            format!("{}", scaled.l1i),
        ),
        (
            "L1-D".into(),
            format!("{}", paper.l1d),
            format!("{}", scaled.l1d),
        ),
        (
            "LLC".into(),
            "1 MiB – 512 MiB, 8-way LRU".into(),
            format!("default {}", scaled.llc),
        ),
        (
            "MSHRs (L1-D)".into(),
            format!("{}", paper.l1d_mshrs),
            format!("{}", scaled.l1d_mshrs),
        ),
        (
            "Memory latency".into(),
            format!("{} cycles", timing.memory_latency),
            format!("{} cycles", timing.memory_latency),
        ),
    ];
    for (a, b, c) in rows {
        t.push_row([a, b, c]);
    }
    t.note(format!("run scale: {}", opts.scale));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_mentions_all_levels() {
        let t = run(&ExpOptions::tiny());
        let md = t.markdown();
        for label in ["L1-I", "L1-D", "LLC", "MSHRs", "ROB"] {
            assert!(md.contains(label), "missing {label}");
        }
    }
}
