//! The full warm-up trade-off space (§2.1 + §7): every warming strategy
//! in the paper's lineage on one table.
//!
//! | Strategy | Storage | Reusable across SW changes? | Speed |
//! |---|---|---|---|
//! | SMARTS (FW) | none | yes | slowest |
//! | Checkpointed (CW) | MiB per region | **no** | fast after prep |
//! | MRRL (adaptive FW) | none | yes | medium |
//! | CoolSim (RSW) | none | yes | fast |
//! | DeLorean (DSW+TT) | none | yes | fastest |
//!
//! Checkpointed warming matches SMARTS exactly (it restores the same
//! state) — its cost is the storage column and the invalidation rule, not
//! accuracy. That trade-off is the paper's motivation for statistical
//! warming.
//!
//! This is also the showcase of the strategy-execution layer: all five
//! strategies go through `Box<dyn SamplingStrategy>` and the batch
//! executor fans the 5 × suite matrix out in one call.

use crate::experiments::LLC_8MB;
use crate::options::ExpOptions;
use crate::runs::{plan_for, BatchExecutor};
use crate::table::{f1, f2, pct, Table};
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanRunner};
use delorean_sampling::{
    CheckpointExtras, CheckpointWarmingRunner, CoolSimConfig, CoolSimRunner, MrrlRunner,
    SamplingStrategy, SmartsRunner,
};
use delorean_trace::{spec2006, Workload};

/// Run the five-strategy comparison and build the table.
pub fn run(opts: &ExpOptions) -> Table {
    let plan = plan_for(opts);
    let machine = MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, LLC_8MB);
    let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CheckpointWarmingRunner::new(machine)),
        Box::new(MrrlRunner::new(machine)),
        Box::new(CoolSimRunner::new(
            machine,
            CoolSimConfig::for_scale(opts.scale),
        )),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(opts.scale),
        )),
    ];
    let suite: Vec<_> = spec2006(opts.scale, opts.seed)
        .into_iter()
        .filter(|w| opts.selected(w.name()))
        .collect();
    let matrix = BatchExecutor::new().run_matrix(&strategies, &suite, &plan);

    let mut t = Table::new(
        "Baseline sweep — every warming strategy (8 MiB LLC)",
        &[
            "benchmark",
            "strategy",
            "CPI error",
            "speed (MIPS)",
            "storage",
            "reusable",
        ],
    );
    for (w, row) in suite.iter().zip(&matrix) {
        let [smarts, cw, mrrl, coolsim, delorean] = &row[..] else {
            unreachable!("five strategies per workload");
        };
        let storage = cw
            .extras::<CheckpointExtras>()
            .map(|e| format!("{:.1} MiB", e.storage_bytes as f64 / (1 << 20) as f64))
            .unwrap_or_else(|| "—".into());
        let rows: [(&str, f64, f64, String, &str); 5] = [
            ("SMARTS", 0.0, smarts.mips_pipelined(), "—".into(), "yes"),
            (
                "Checkpoint",
                cw.cpi_error_vs(smarts),
                cw.mips_pipelined(),
                storage,
                "no",
            ),
            (
                "MRRL",
                mrrl.cpi_error_vs(smarts),
                mrrl.mips_pipelined(),
                "—".into(),
                "yes",
            ),
            (
                "CoolSim",
                coolsim.cpi_error_vs(smarts),
                coolsim.mips_pipelined(),
                "—".into(),
                "yes",
            ),
            (
                "DeLorean",
                delorean.cpi_error_vs(smarts),
                delorean.mips_pipelined(),
                "—".into(),
                "yes",
            ),
        ];
        for (name, err, mips, storage, reusable) in rows {
            t.push_row([
                w.name().to_string(),
                name.into(),
                if name == "SMARTS" {
                    "(ref)".into()
                } else {
                    pct(err)
                },
                if mips > 100.0 { f1(mips) } else { f2(mips) },
                storage,
                reusable.into(),
            ]);
        }
    }
    t.note(
        "checkpoint speed excludes the preparation run (one full functional-warming pass) \
         and its checkpoints are invalidated by any software or cache-structure change",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_strategies_per_benchmark() {
        let opts = ExpOptions {
            filter: Some("hmmer".into()),
            ..ExpOptions::tiny()
        };
        let t = run(&opts);
        assert_eq!(t.rows.len(), 5);
        // Checkpointed warming is exact.
        assert_eq!(t.rows[1][2], "0.0%");
        // And it stores something.
        assert!(t.rows[1][4].contains("MiB"));
    }
}
