//! Figure 8: average number of Explorers engaged per region.
//!
//! Paper results: bwaves engages fewer than one Explorer on average
//! (most regions need none — everything hits the lukewarm cache);
//! zeusmp, cactusADM, GemsFDTD and lbm approach four.

use crate::experiments::LLC_8MB;
use crate::options::ExpOptions;
use crate::runs::{compare_all, BenchmarkComparison};
use crate::table::{f2, Table};

/// Build the Figure 8 table from precomputed comparison data.
pub fn table(rows: &[BenchmarkComparison]) -> Table {
    let mut t = Table::new(
        "Figure 8 — average number of Explorers engaged per region",
        &["benchmark", "avg explorers"],
    );
    let mut sum = 0.0;
    for b in rows {
        let avg = b.outputs.delorean.stats.avg_explorers_engaged();
        sum += avg;
        t.push_row([b.name.clone(), f2(avg)]);
    }
    if !rows.is_empty() {
        t.push_row(["average".into(), f2(sum / rows.len() as f64)]);
    }
    t.note("paper: bwaves < 1; zeusmp/cactusADM/GemsFDTD/lbm near 4");
    t
}

/// Run the comparison and build the table.
pub fn run(opts: &ExpOptions) -> Table {
    table(&compare_all(opts, LLC_8MB))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engagement_is_within_bounds() {
        let opts = ExpOptions {
            filter: Some("bwaves".into()),
            ..ExpOptions::tiny()
        };
        let rows = compare_all(&opts, LLC_8MB);
        let avg = rows[0].outputs.delorean.stats.avg_explorers_engaged();
        assert!((0.0..=4.0).contains(&avg));
        let t = table(&rows);
        assert_eq!(t.rows.len(), 2);
    }
}
