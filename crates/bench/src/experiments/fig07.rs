//! Figure 7: which Explorer collects each key reuse distance, plus the
//! §3.2 key-cacheline counts.
//!
//! Paper results: most key reuse distances are collected by Explorer-1;
//! zeusmp/cactusADM/GemsFDTD/lbm engage the deep explorers. Key
//! cachelines per 10 k-instruction region range from 1 to 2,907 with an
//! average of 151.

use crate::experiments::LLC_8MB;
use crate::options::ExpOptions;
use crate::runs::{compare_all, BenchmarkComparison};
use crate::table::{f1, pct, Table};

/// Build the Figure 7 table from precomputed comparison data.
pub fn table(rows: &[BenchmarkComparison]) -> Table {
    let mut t = Table::new(
        "Figure 7 — key reuse distances per Explorer (share of resolved keys)",
        &[
            "benchmark",
            "Explorer-1",
            "Explorer-2",
            "Explorer-3",
            "Explorer-4",
            "cold keys",
            "keys/region (avg)",
        ],
    );
    let mut all_keys: Vec<u64> = Vec::new();
    for b in rows {
        let s = &b.outputs.delorean.stats;
        all_keys.extend(&s.keys_per_region);
        t.push_row([
            b.name.clone(),
            pct(s.explorer_share(0)),
            pct(s.explorer_share(1)),
            pct(s.explorer_share(2)),
            pct(s.explorer_share(3)),
            s.cold_keys.to_string(),
            f1(s.avg_keys_per_region()),
        ]);
    }
    if !all_keys.is_empty() {
        let min = all_keys.iter().min().unwrap();
        let max = all_keys.iter().max().unwrap();
        let avg = all_keys.iter().sum::<u64>() as f64 / all_keys.len() as f64;
        t.note(format!(
            "key cachelines per region: min {min}, avg {}, max {max} — \
             paper reports 1 / 151 / 2,907",
            f1(avg)
        ));
    }
    t
}

/// Run the comparison and build the table.
pub fn run(opts: &ExpOptions) -> Table {
    table(&compare_all(opts, LLC_8MB))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one_when_keys_resolve() {
        let opts = ExpOptions {
            filter: Some("hmmer".into()),
            ..ExpOptions::tiny()
        };
        let rows = compare_all(&opts, LLC_8MB);
        let s = &rows[0].outputs.delorean.stats;
        let sum: f64 = (0..4).map(|k| s.explorer_share(k)).sum();
        if s.resolved_by_explorer.iter().sum::<u64>() > 0 {
            assert!((sum - 1.0).abs() < 1e-9, "shares sum to {sum}");
        }
        let t = table(&rows);
        assert_eq!(t.rows.len(), 1);
    }
}
