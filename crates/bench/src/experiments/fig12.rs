//! Figure 12: CPI error with and without the LLC stride prefetcher.
//!
//! The DeLorean extension feeds the prefetcher *predicted* misses instead
//! of simulated ones and nullifies prefetches to lines predicted
//! resident (§6.3.2). Paper result: DeLorean is slightly *more* accurate
//! with prefetching enabled, because fewer misses remain to predict.

use crate::experiments::LLC_8MB;
use crate::options::ExpOptions;
use crate::runs::{plan_for, BatchExecutor};
use crate::table::{pct, Table};
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanRunner};
use delorean_sampling::metrics::mean;
use delorean_sampling::{SamplingStrategy, SmartsRunner};
use delorean_trace::{spec2006, Workload};

/// Run the prefetching study and build the table (benchmarks sorted by
/// no-prefetch error, as in the paper's figure).
pub fn run(opts: &ExpOptions) -> Table {
    let plan = plan_for(opts);
    let base = MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, LLC_8MB);
    let with_pf = base.with_prefetch(true);
    let config = DeLoreanConfig::for_scale(opts.scale);

    // Both machines × (reference, DeLorean): one 4-strategy matrix.
    let strategies: Vec<Box<dyn SamplingStrategy>> = vec![
        Box::new(SmartsRunner::new(base)),
        Box::new(SmartsRunner::new(with_pf)),
        Box::new(DeLoreanRunner::new(base, config.clone())),
        Box::new(DeLoreanRunner::new(with_pf, config)),
    ];
    let suite: Vec<_> = spec2006(opts.scale, opts.seed)
        .into_iter()
        .filter(|w| opts.selected(w.name()))
        .collect();
    let matrix = BatchExecutor::new().run_matrix(&strategies, &suite, &plan);

    let mut entries: Vec<(String, f64, f64)> = suite
        .iter()
        .zip(&matrix)
        .map(|(w, row)| {
            let [ref_plain, ref_pf, delo_plain, delo_pf] = &row[..] else {
                unreachable!("four strategies per workload");
            };
            (
                w.name().to_string(),
                delo_plain.cpi_error_vs(ref_plain),
                delo_pf.cpi_error_vs(ref_pf),
            )
        })
        .collect();
    entries.sort_by(|a, b| a.1.total_cmp(&b.1));

    let mut t = Table::new(
        "Figure 12 — DeLorean CPI error with and without LLC stride prefetching \
         (sorted by no-prefetch error)",
        &["benchmark", "error w/o prefetch", "error w/ prefetch"],
    );
    let (mut plain_errs, mut pf_errs) = (Vec::new(), Vec::new());
    for (name, plain, pf) in &entries {
        plain_errs.push(*plain);
        pf_errs.push(*pf);
        t.push_row([name.clone(), pct(*plain), pct(*pf)]);
    }
    t.push_row([
        "average".into(),
        pct(mean(&plain_errs)),
        pct(mean(&pf_errs)),
    ]);
    t.note("paper: slightly more accurate with prefetching (fewer misses left to predict)");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_sorted_rows() {
        let opts = ExpOptions {
            filter: Some("libquantum".into()),
            ..ExpOptions::tiny()
        };
        let t = run(&opts);
        assert_eq!(t.rows.len(), 2); // one benchmark + average
        assert!(t.markdown().contains("libquantum"));
    }
}
