//! Figure 13: working-set curves — MPKI as a function of LLC size for
//! cactusADM, leslie3d and lbm.
//!
//! Paper results: DeLorean tracks the SMARTS reference; lbm shows knees
//! around 8 MiB and 512 MiB, cactusADM and leslie3d decline gradually
//! without a pronounced knee.

use crate::options::ExpOptions;
use crate::runs::{plan_for, BatchExecutor};
use crate::table::{f2, Table};
use delorean_cache::MachineConfig;
use delorean_core::dse::DesignSpaceExplorer;
use delorean_core::DeLoreanConfig;
use delorean_sampling::{SamplingStrategy, SmartsRunner};
use delorean_trace::spec_workload;

/// The three benchmarks the paper plots.
pub const BENCHMARKS: [&str; 3] = ["cactusADM", "leslie3d", "lbm"];

/// One table per benchmark: MPKI per LLC size for reference and DeLorean.
pub fn run(opts: &ExpOptions) -> Vec<Table> {
    let plan = plan_for(opts);
    let sweep = MachineConfig::llc_sweep_paper_bytes();
    let machines: Vec<MachineConfig> = sweep
        .iter()
        .map(|&s| MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, s))
        .collect();

    BENCHMARKS
        .iter()
        .filter(|n| opts.selected(n))
        .map(|name| {
            let w = spec_workload(name, opts.scale, opts.seed).expect("known benchmark");
            // DeLorean evaluates the whole sweep from ONE warm-up; the
            // per-size SMARTS references fan out across the executor.
            let dse = DesignSpaceExplorer::new(
                MachineConfig::for_scale(opts.scale),
                DeLoreanConfig::for_scale(opts.scale),
            );
            let delorean = dse.run(&w, &plan, &machines);
            let references: Vec<Box<dyn SamplingStrategy>> = machines
                .iter()
                .map(|m| Box::new(SmartsRunner::new(*m)) as Box<dyn SamplingStrategy>)
                .collect();
            let refs = BatchExecutor::new().run_strategies(&references, &w, &plan);
            let mut t = Table::new(
                format!("Figure 13 — working-set curve for {name} (MPKI vs LLC size)"),
                &["LLC (paper-scale MB)", "SMARTS MPKI", "DeLorean MPKI"],
            );
            let mut ref_mpki = Vec::with_capacity(sweep.len());
            let mut delo_mpki = Vec::with_capacity(sweep.len());
            for (i, (&size, reference)) in sweep.iter().zip(&refs).enumerate() {
                ref_mpki.push(reference.llc_mpki());
                delo_mpki.push(delorean.outputs[i].report.llc_mpki());
                t.push_row([
                    (size >> 20).to_string(),
                    f2(reference.llc_mpki()),
                    f2(delorean.outputs[i].report.llc_mpki()),
                ]);
            }
            // Knee analysis (§6.4.1): DeLorean must find the same knees as
            // the reference.
            let sizes_mb: Vec<u64> = sweep.iter().map(|&s| s >> 20).collect();
            let fmt = |m: &[f64]| {
                // 40%: a *pronounced* fall-off in the paper's sense —
                // cactusADM/leslie3d's gradual ~30%-per-octave declines
                // must not register as knees.
                let knees = delorean_statmodel::wss::find_knees(&sizes_mb, m, 0.40, 0.3);
                if knees.is_empty() {
                    "none (gradual)".to_string()
                } else {
                    knees
                        .iter()
                        .map(|k| format!("{} MB", k.size))
                        .collect::<Vec<_>>()
                        .join(", ")
                }
            };
            t.note(format!(
                "knees — reference: {}; DeLorean: {}",
                fmt(&ref_mpki),
                fmt(&delo_mpki)
            ));
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lbm_curve_has_knee_structure() {
        let opts = ExpOptions {
            filter: Some("lbm".into()),
            ..ExpOptions::tiny()
        };
        let tables = run(&opts);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.rows.len(), 10);
        // MPKI at the largest LLC must be well below the smallest.
        let first: f64 = t.rows[0][1].parse().unwrap();
        let last: f64 = t.rows[9][1].parse().unwrap();
        assert!(
            last < first,
            "reference MPKI should fall with LLC size: {first} → {last}"
        );
    }
}
