//! Sweep-journal entry codec: durable cell results for the batch
//! executor.
//!
//! [`BatchExecutor::run_matrix_journaled`](crate::BatchExecutor::run_matrix_journaled)
//! appends one entry per completed strategy×workload cell to a
//! [`delorean_trace::journal`] file; after a crash or kill, resuming
//! restores every journaled cell verbatim and re-executes only the
//! missing ones. This module owns the entry payload format — a
//! hand-rolled little-endian encoding of [`SimulationReport`] (the
//! workspace's `serde` is a marker-only shim, so there is no derived
//! serialization to lean on) — and the journal *tag* binding a file to
//! one sweep configuration.
//!
//! The codec is **exact**: every `f64` travels as its IEEE-754 bit
//! pattern, so a decoded report is `==` the one encoded — which is what
//! lets a resumed sweep's matrix compare bitwise equal to an
//! uninterrupted run's.

use delorean_cpu::DetailedResult;
use delorean_sampling::{RegionPlan, RegionReport, SamplingStrategy, SimulationReport};
use delorean_trace::tile::tile_checksum;
use delorean_virt::RunCost;

/// Journal entry kind for one completed cell (`[cell u32][report]`).
pub const CELL_ENTRY_KIND: u32 = 1;

/// Compute the journal tag binding a file to one sweep configuration:
/// the strategy list (names, in order), the workload list (names, in
/// order) and the region plan's exact boundaries. Worker counts are
/// deliberately excluded — scheduling never changes results, so a sweep
/// may resume at a different parallelism.
pub fn sweep_tag(
    strategies: &[Box<dyn SamplingStrategy>],
    workload_names: &[&str],
    plan: &RegionPlan,
) -> u64 {
    let names: Vec<&str> = strategies.iter().map(|s| s.name()).collect();
    sweep_tag_names(&names, workload_names, plan)
}

/// [`sweep_tag`] from strategy *names* alone — for callers (the shard
/// broker) that identify strategies by name without instantiating
/// them. Identical inputs produce identical tags, so a journal written
/// by either side resumes on the other.
pub fn sweep_tag_names(strategy_names: &[&str], workload_names: &[&str], plan: &RegionPlan) -> u64 {
    let mut bytes = Vec::new();
    push_u32(&mut bytes, strategy_names.len() as u32);
    for name in strategy_names {
        push_str(&mut bytes, name);
    }
    push_u32(&mut bytes, workload_names.len() as u32);
    for name in workload_names {
        push_str(&mut bytes, name);
    }
    push_u32(&mut bytes, plan.regions.len() as u32);
    for r in &plan.regions {
        push_u32(&mut bytes, r.index);
        push_u64(&mut bytes, r.start_instr);
        push_u64(&mut bytes, r.warming.start);
        push_u64(&mut bytes, r.warming.end);
        push_u64(&mut bytes, r.detailed.start);
        push_u64(&mut bytes, r.detailed.end);
    }
    tile_checksum(&bytes)
}

/// Encode one completed cell: the flat cell index followed by the full
/// report.
pub fn encode_cell(cell: u32, report: &SimulationReport) -> Vec<u8> {
    let mut bytes = Vec::new();
    push_u32(&mut bytes, cell);
    push_str(&mut bytes, &report.workload);
    push_str(&mut bytes, &report.strategy);
    push_u32(&mut bytes, report.regions.len() as u32);
    for r in &report.regions {
        push_u32(&mut bytes, r.region);
        push_detailed(&mut bytes, &r.detailed);
    }
    push_u64(&mut bytes, report.collected_reuse_distances);
    push_cost(&mut bytes, &report.cost);
    push_u64(&mut bytes, report.covered_instrs);
    bytes
}

/// Decode a cell entry. `None` means the payload is structurally
/// invalid (wrong length, bad UTF-8) — the caller should drop the entry
/// and re-execute the cell; a checksummed journal makes this unreachable
/// short of a format change.
pub fn decode_cell(bytes: &[u8]) -> Option<(u32, SimulationReport)> {
    let mut r = Take { bytes, at: 0 };
    let cell = r.u32()?;
    let workload = r.string()?;
    let strategy = r.string()?;
    let n_regions = r.u32()? as usize;
    let mut regions = Vec::with_capacity(n_regions.min(4096));
    for _ in 0..n_regions {
        let region = r.u32()?;
        let detailed = r.detailed()?;
        regions.push(RegionReport { region, detailed });
    }
    let collected_reuse_distances = r.u64()?;
    let cost = r.cost()?;
    let covered_instrs = r.u64()?;
    if r.at != bytes.len() {
        return None;
    }
    Some((
        cell,
        SimulationReport {
            workload,
            strategy,
            regions,
            collected_reuse_distances,
            cost,
            covered_instrs,
        },
    ))
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    // Bit-exact: NaN payloads, signed zeros and subnormals all survive.
    push_u64(out, v.to_bits());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_detailed(out: &mut Vec<u8>, d: &DetailedResult) {
    push_u64(out, d.instructions);
    push_f64(out, d.cycles);
    push_u64(out, d.mem_accesses);
    for c in d.level_counts {
        push_u64(out, c);
    }
    push_u64(out, d.branches);
    push_u64(out, d.mispredicts);
}

fn push_cost(out: &mut Vec<u8>, cost: &RunCost) {
    push_u64(out, cost.regions());
    push_u32(out, cost.passes().len() as u32);
    for p in cost.passes() {
        push_str(out, &p.name);
        push_f64(out, p.seconds);
    }
    push_u32(out, cost.units().len() as u32);
    for u in cost.units() {
        push_u32(out, u.unit);
        push_f64(out, u.chained_seconds);
        push_f64(out, u.parallel_seconds);
    }
}

/// Bounds-checked little-endian reader over a payload slice.
struct Take<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Take<'_> {
    fn chunk(&mut self, n: usize) -> Option<&[u8]> {
        let end = self.at.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let c = &self.bytes[self.at..end];
        self.at = end;
        Some(c)
    }

    fn u32(&mut self) -> Option<u32> {
        let c = self.chunk(4)?;
        Some(u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let c = self.chunk(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(c);
        Some(u64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let c = self.chunk(len)?;
        String::from_utf8(c.to_vec()).ok()
    }

    fn detailed(&mut self) -> Option<DetailedResult> {
        let instructions = self.u64()?;
        let cycles = self.f64()?;
        let mem_accesses = self.u64()?;
        let mut level_counts = [0u64; 4];
        for c in &mut level_counts {
            *c = self.u64()?;
        }
        let branches = self.u64()?;
        let mispredicts = self.u64()?;
        Some(DetailedResult {
            instructions,
            cycles,
            mem_accesses,
            level_counts,
            branches,
            mispredicts,
        })
    }

    fn cost(&mut self) -> Option<RunCost> {
        let regions = self.u64()?;
        let n_passes = self.u32()? as usize;
        let mut passes = Vec::with_capacity(n_passes.min(4096));
        for _ in 0..n_passes {
            let name = self.string()?;
            let seconds = self.f64()?;
            passes.push(delorean_virt::PassCost { name, seconds });
        }
        let n_units = self.u32()? as usize;
        let mut units = Vec::with_capacity(n_units.min(4096));
        for _ in 0..n_units {
            let unit = self.u32()?;
            let chained_seconds = self.f64()?;
            let parallel_seconds = self.f64()?;
            units.push(delorean_virt::UnitCost {
                unit,
                chained_seconds,
                parallel_seconds,
            });
        }
        Some(RunCost::from_parts(passes, regions, units))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_virt::HostClock;

    fn sample_report() -> SimulationReport {
        let mut cost = RunCost::new(2);
        let mut clock = HostClock::new();
        clock.charge(1.25);
        cost.push("warm", clock);
        let mut clock = HostClock::new();
        clock.charge(0.375);
        cost.push("measure", clock);
        cost.push_unit(0, 0.5, 1.5);
        cost.push_unit(1, 0.0, 2.25);
        SimulationReport {
            workload: "hmmer".into(),
            strategy: "smarts".into(),
            regions: vec![
                RegionReport {
                    region: 0,
                    detailed: DetailedResult {
                        instructions: 10_000,
                        cycles: 12_345.678,
                        mem_accesses: 2_500,
                        level_counts: [2000, 300, 150, 50],
                        branches: 1_200,
                        mispredicts: 37,
                    },
                },
                RegionReport {
                    region: 1,
                    detailed: DetailedResult {
                        instructions: 10_000,
                        cycles: 9_999.25,
                        mem_accesses: 2_400,
                        level_counts: [1900, 290, 160, 50],
                        branches: 1_100,
                        mispredicts: 31,
                    },
                },
            ],
            collected_reuse_distances: 4_321,
            cost,
            covered_instrs: 2_000_000,
        }
    }

    #[test]
    fn cell_round_trips_bitwise() {
        let report = sample_report();
        let bytes = encode_cell(7, &report);
        let (cell, decoded) = decode_cell(&bytes).unwrap();
        assert_eq!(cell, 7);
        assert_eq!(decoded, report);
    }

    #[test]
    fn f64_bit_patterns_survive() {
        let mut report = sample_report();
        report.regions[0].detailed.cycles = -0.0;
        report.regions[1].detailed.cycles = f64::MIN_POSITIVE / 2.0; // subnormal
        let bytes = encode_cell(0, &report);
        let (_, decoded) = decode_cell(&bytes).unwrap();
        assert_eq!(
            decoded.regions[0].detailed.cycles.to_bits(),
            (-0.0f64).to_bits()
        );
        assert_eq!(
            decoded.regions[1].detailed.cycles.to_bits(),
            report.regions[1].detailed.cycles.to_bits()
        );
    }

    #[test]
    fn truncated_or_oversized_payloads_are_rejected() {
        let report = sample_report();
        let bytes = encode_cell(3, &report);
        assert!(decode_cell(&bytes[..bytes.len() - 1]).is_none());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_cell(&padded).is_none());
        assert!(decode_cell(&[]).is_none());
    }

    #[test]
    fn tag_binds_strategy_set_and_plan() {
        use delorean_cache::MachineConfig;
        use delorean_sampling::{SamplingConfig, SmartsRunner};
        use delorean_trace::Scale;

        let machine = MachineConfig::for_scale(Scale::tiny());
        let strategies: Vec<Box<dyn SamplingStrategy>> = vec![Box::new(SmartsRunner::new(machine))];
        let plan_a = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(2)
            .plan();
        let plan_b = SamplingConfig::for_scale(Scale::tiny())
            .with_regions(3)
            .plan();
        let a = sweep_tag(&strategies, &["hmmer"], &plan_a);
        assert_eq!(a, sweep_tag(&strategies, &["hmmer"], &plan_a));
        assert_ne!(a, sweep_tag(&strategies, &["hmmer"], &plan_b));
        assert_ne!(a, sweep_tag(&strategies, &["lbm"], &plan_a));
    }
}
