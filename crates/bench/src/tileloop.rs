//! Tile-backed warm-loop measurement helpers (PR 6).
//!
//! PR 4 batched the hierarchy side of the warm loop; what remained of
//! the gap to the 2× target was access *generation* — the synthetic
//! pattern math run for every access. The trace-tile ingest pipeline
//! ([`delorean_trace::tile`]) removes that term: accesses are packed
//! once to an on-disk tile file and every later warm loop decodes them
//! back with `memcpy`-grade fills. This module provides the pieces the
//! `bench_pr6` harness and the tiled determinism tests share:
//!
//! * [`TempTile`] — pack a workload range into a uniquely named tile
//!   file under the system temp directory, deleted on drop.
//! * [`assert_warm_states_identical`] — the strong oracle: two warmed
//!   hierarchies must agree on every statistics counter **and** on the
//!   full microarchitectural snapshot (tags, replacement metadata)
//!   bit for bit.
//!
//! Measurement itself reuses [`measure_warm_loop`]
//! (a [`TiledTrace`] is just a [`Workload`]), so tiled rates are
//! directly comparable with the PR 4 rows.
//!
//! [`measure_warm_loop`]: crate::hierloop::measure_warm_loop

use delorean_cache::Hierarchy;
use delorean_trace::{pack_workload_with, PackSummary, TileError, TiledTrace, Workload};
use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter making concurrent [`TempTile`]s collision-free.
static NEXT_TILE_ID: AtomicU64 = AtomicU64::new(0);

/// A workload range packed into a tile file in the system temp
/// directory; the file is deleted when the value is dropped.
pub struct TempTile {
    path: PathBuf,
    /// Pack statistics (records, tiles, bytes) for reporting.
    pub summary: PackSummary,
}

impl TempTile {
    /// Pack the accesses of `workload` with indices in `range`.
    ///
    /// # Errors
    ///
    /// Anything [`pack_workload_with`] returns.
    pub fn pack(
        workload: &dyn Workload,
        range: Range<u64>,
        tile_records: u32,
    ) -> Result<Self, TileError> {
        let id = NEXT_TILE_ID.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "delorean-bench-{}-{}-{id}.dlt",
            std::process::id(),
            workload.name(),
        ));
        let summary = pack_workload_with(workload, range, &path, tile_records)?;
        Ok(TempTile { path, summary })
    }

    /// Path of the packed file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open the packed file as a (checksum-verified) workload;
    /// `streaming` selects the background-decoder cursor.
    ///
    /// # Errors
    ///
    /// Anything [`TiledTrace::open`] returns.
    pub fn open(&self, streaming: bool) -> Result<TiledTrace, TileError> {
        Ok(TiledTrace::open(&self.path)?.with_streaming(streaming))
    }
}

impl fmt::Debug for TempTile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TempTile")
            .field("path", &self.path)
            .field("summary", &self.summary)
            .finish()
    }
}

impl Drop for TempTile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The strong tiled-vs-in-memory oracle: after warming over the same
/// access range, two hierarchies must agree on every statistics counter
/// and on the full microarchitectural snapshot — tags, replacement
/// metadata, tick counters — bit for bit. `label` names the failing
/// case in the panic message.
///
/// (Snapshots quiesce outstanding MSHRs — the drain performs fills that
/// move counters — hence `&mut`, and both snapshots are taken *before*
/// the counters are compared so the two sides are equally quiesced.)
pub fn assert_warm_states_identical(
    label: &str,
    reference: &mut Hierarchy,
    candidate: &mut Hierarchy,
) {
    let reference_snapshot = reference.snapshot();
    let candidate_snapshot = candidate.snapshot();
    assert_eq!(
        reference.stats(),
        candidate.stats(),
        "{label}: hierarchy counters diverged"
    );
    assert_eq!(
        reference.l1d().stats(),
        candidate.l1d().stats(),
        "{label}: L1-D counters diverged"
    );
    assert_eq!(
        reference.llc().stats(),
        candidate.llc().stats(),
        "{label}: LLC counters diverged"
    );
    assert_eq!(
        reference_snapshot, candidate_snapshot,
        "{label}: microarchitectural snapshots diverged"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_cache::MachineConfig;
    use delorean_trace::{spec_workload, Scale};

    #[test]
    fn tiled_warming_is_bit_identical_to_in_memory() {
        let w = spec_workload("mcf", Scale::tiny(), 5).unwrap();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let tile = TempTile::pack(&w, 0..30_000, 512).expect("pack");
        assert_eq!(tile.summary.records, 30_000);

        let mut reference = Hierarchy::new(&machine);
        reference.warm_range(&w, 0..30_000);
        for streaming in [false, true] {
            let tiled = tile.open(streaming).expect("open");
            let mut candidate = Hierarchy::new(&machine);
            candidate.warm_range(&tiled, 0..30_000);
            assert_warm_states_identical(
                &format!("mcf streaming={streaming}"),
                &mut reference,
                &mut candidate,
            );
        }
    }

    #[test]
    fn temp_tile_cleans_up_after_itself() {
        let w = spec_workload("lbm", Scale::tiny(), 2).unwrap();
        let tile = TempTile::pack(&w, 0..1_000, 128).expect("pack");
        let path = tile.path().to_path_buf();
        assert!(path.exists());
        drop(tile);
        assert!(!path.exists());
    }
}
