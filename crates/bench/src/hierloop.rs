//! Warm-loop perf measurement: per-access hierarchy simulation vs the
//! batched slice-at-a-time warm path (PR 4).
//!
//! PR 2 made access *generation* stream and PR 3 made the explorer
//! *lookups* flat; after them, the functional-warming baselines
//! (SMARTS / CoolSim / checkpoint preparation) spend their wall clock
//! pushing every access through the cache hierarchy one at a time. This
//! module measures exactly that kernel both ways:
//!
//! * [`WarmPath::PerAccess`] — a faithful replica of the pre-PR 4 path:
//!   the historical `Cache` way-scan loops, the `Vec`-allocating
//!   `take_retired` MSHR file and the per-access closure through
//!   `for_each_access`, kept verbatim as the measurement baseline and
//!   equivalence oracle (the `run_explorer_std_baseline` pattern of
//!   `probeloop`).
//! * [`WarmPath::Batched`] — the production
//!   [`Hierarchy::warm_range`](delorean_cache::Hierarchy::warm_range):
//!   cursor-filled slices into the shared inlined access core.
//!
//! Both paths must agree on every statistics counter and on the
//! residency of every line they touched — [`assert_hierarchies_agree`]
//! is asserted by the `bench_pr4` harness on every measured case.

use delorean_cache::{
    CacheConfig, CacheStats, Hierarchy, HierarchyStats, MachineConfig, MemLevel, ReplacementPolicy,
    StridePrefetcher,
};
use delorean_trace::{mix64, LineAddr, LineSet, Pc, Workload, WorkloadExt};
use std::ops::Range;
use std::time::Instant;

/// Which hierarchy path a warm-loop measurement exercised.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WarmPath {
    /// Pre-PR 4 replica: per-access `access_data` with the allocating
    /// MSHR file, driven through a per-access closure.
    PerAccess,
    /// The production batched path: `Hierarchy::warm_range`.
    Batched,
}

/// Sentinel tag for an empty way (pre-PR 4 `Cache` replica).
const EMPTY: u64 = u64::MAX;

/// Verbatim replica of the pre-PR 4 `Cache` hot path: three hand-copied
/// early-exit way-scan loops with per-element indexing, exactly as the
/// production cache ran them before the shared branchless probe helper.
#[derive(Clone, Debug)]
struct BaselineCache {
    cfg: CacheConfig,
    set_mask: u64,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    set_bits: Vec<u32>,
    tick: u64,
    rng: u64,
    stats: CacheStats,
}

impl BaselineCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let n = (sets * cfg.ways as u64) as usize;
        BaselineCache {
            cfg,
            set_mask: sets - 1,
            tags: vec![EMPTY; n],
            stamps: vec![0; n],
            set_bits: vec![0; sets as usize],
            tick: 0,
            rng: 0x5eed_c0de,
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn row(&self, set: u64) -> usize {
        (set * self.cfg.ways as u64) as usize
    }

    fn probe(&self, line: LineAddr) -> bool {
        let row = self.row(line.0 & self.set_mask);
        let ways = self.cfg.ways as usize;
        self.tags[row..row + ways].contains(&line.0)
    }

    fn access(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let set = line.0 & self.set_mask;
        let row = self.row(set);
        let ways = self.cfg.ways as usize;
        for w in 0..ways {
            if self.tags[row + w] == line.0 {
                self.stats.hits += 1;
                self.touch(set, row, w);
                return true;
            }
        }
        self.stats.misses += 1;
        self.fill_at(set, row, line);
        false
    }

    fn lookup(&mut self, line: LineAddr) -> bool {
        self.tick += 1;
        let set = line.0 & self.set_mask;
        let row = self.row(set);
        let ways = self.cfg.ways as usize;
        for w in 0..ways {
            if self.tags[row + w] == line.0 {
                self.stats.hits += 1;
                self.touch(set, row, w);
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    fn fill(&mut self, line: LineAddr) {
        self.tick += 1;
        let set = line.0 & self.set_mask;
        let row = self.row(set);
        let ways = self.cfg.ways as usize;
        for w in 0..ways {
            if self.tags[row + w] == line.0 {
                return;
            }
        }
        self.fill_at(set, row, line);
    }

    #[inline]
    fn touch(&mut self, set: u64, row: usize, w: usize) {
        match self.cfg.replacement {
            ReplacementPolicy::Lru => self.stamps[row + w] = self.tick,
            ReplacementPolicy::Fifo => {}
            ReplacementPolicy::Random => {}
            ReplacementPolicy::PLru => self.plru_touch(set, w),
            ReplacementPolicy::Nmru => self.set_bits[set as usize] = w as u32,
            ReplacementPolicy::Srrip => self.stamps[row + w] = 0,
        }
    }

    #[inline]
    fn victim(&mut self, set: u64, row: usize) -> usize {
        let ways = self.cfg.ways as usize;
        match self.cfg.replacement {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                let mut best = 0;
                let mut best_stamp = u64::MAX;
                for w in 0..ways {
                    if self.stamps[row + w] < best_stamp {
                        best_stamp = self.stamps[row + w];
                        best = w;
                    }
                }
                best
            }
            ReplacementPolicy::Random => {
                self.rng = mix64(self.rng, self.tick);
                (self.rng % ways as u64) as usize
            }
            ReplacementPolicy::PLru => self.plru_victim(set),
            ReplacementPolicy::Nmru => {
                let mru = self.set_bits[set as usize] as usize % ways;
                if ways == 1 {
                    0
                } else {
                    self.rng = mix64(self.rng, self.tick);
                    let pick = (self.rng % (ways as u64 - 1)) as usize;
                    if pick >= mru {
                        pick + 1
                    } else {
                        pick
                    }
                }
            }
            ReplacementPolicy::Srrip => loop {
                if let Some(w) = (0..ways).find(|&w| self.stamps[row + w] >= 3) {
                    return w;
                }
                for w in 0..ways {
                    self.stamps[row + w] += 1;
                }
            },
        }
    }

    fn fill_at(&mut self, set: u64, row: usize, line: LineAddr) {
        let ways = self.cfg.ways as usize;
        let w = (0..ways)
            .find(|&w| self.tags[row + w] == EMPTY)
            .unwrap_or_else(|| self.victim(set, row));
        if self.tags[row + w] != EMPTY {
            self.stats.evictions += 1;
        }
        self.tags[row + w] = line.0;
        self.stamps[row + w] = self.tick;
        match self.cfg.replacement {
            ReplacementPolicy::PLru => self.plru_touch(set, w),
            ReplacementPolicy::Nmru => self.set_bits[set as usize] = w as u32,
            ReplacementPolicy::Srrip => self.stamps[row + w] = 2,
            _ => {}
        }
    }

    fn plru_touch(&mut self, set: u64, w: usize) {
        let ways = self.cfg.ways as usize;
        if ways == 1 {
            return;
        }
        let mut bits = self.set_bits[set as usize];
        let levels = ways.trailing_zeros();
        let mut node = 0usize;
        for level in (0..levels).rev() {
            let bit = (w >> level) & 1;
            if bit == 1 {
                bits &= !(1 << node);
            } else {
                bits |= 1 << node;
            }
            node = 2 * node + 1 + bit;
        }
        self.set_bits[set as usize] = bits;
    }

    fn plru_victim(&self, set: u64) -> usize {
        let ways = self.cfg.ways as usize;
        if ways == 1 {
            return 0;
        }
        let bits = self.set_bits[set as usize];
        let levels = ways.trailing_zeros();
        let mut node = 0usize;
        let mut w = 0usize;
        for _ in 0..levels {
            let dir = ((bits >> node) & 1) as usize;
            w = (w << 1) | dir;
            node = 2 * node + 1 + dir;
        }
        w
    }
}

/// Replica of the pre-PR 4 `MshrFile`: `take_retired` returns a fresh
/// `Vec` per call, and `on_miss` re-scans the entries it just retired.
#[derive(Clone, Debug)]
struct BaselineMshrFile {
    entries: Vec<(LineAddr, u64)>,
    capacity: usize,
    latency_accesses: u64,
}

impl BaselineMshrFile {
    fn new(capacity: u32, latency_accesses: u64) -> Self {
        BaselineMshrFile {
            entries: Vec::with_capacity(capacity as usize),
            capacity: capacity as usize,
            latency_accesses,
        }
    }

    fn retire(&mut self, now: u64) {
        self.entries.retain(|&(_, fill_at)| fill_at > now);
    }

    fn take_retired(&mut self, now: u64) -> Vec<LineAddr> {
        let mut done = Vec::new();
        self.entries.retain(|&(line, fill_at)| {
            if fill_at <= now {
                done.push(line);
                false
            } else {
                true
            }
        });
        done
    }

    /// 0 = allocated, 1 = delayed hit, 2 = full.
    fn on_miss(&mut self, line: LineAddr, now: u64) -> u8 {
        self.retire(now);
        if self.entries.iter().any(|&(l, _)| l == line) {
            return 1;
        }
        if self.entries.len() >= self.capacity {
            return 2;
        }
        self.entries.push((line, now + self.latency_accesses));
        0
    }
}

/// Replica of the pre-PR 4 per-access hierarchy loop: the historical
/// early-exit cache scans and allocating MSHR flow, with the control
/// structure of the old `Hierarchy::access_data`, kept verbatim as the
/// measurement baseline and equivalence oracle.
#[derive(Clone, Debug)]
pub struct BaselineHierarchy {
    l1d: BaselineCache,
    llc: BaselineCache,
    mshr_d: BaselineMshrFile,
    prefetcher: Option<StridePrefetcher>,
    stats: HierarchyStats,
}

impl BaselineHierarchy {
    /// Build the baseline hierarchy for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        BaselineHierarchy {
            l1d: BaselineCache::new(cfg.hierarchy.l1d),
            llc: BaselineCache::new(cfg.hierarchy.llc),
            mshr_d: BaselineMshrFile::new(
                cfg.hierarchy.l1d_mshrs,
                cfg.hierarchy.mshr_latency_accesses,
            ),
            prefetcher: cfg.prefetch.then(StridePrefetcher::paper_default),
            stats: HierarchyStats::default(),
        }
    }

    /// Verbatim pre-PR 4 `access_data`: allocating `take_retired`, then
    /// lookup, then the MSHR double scan on a miss.
    pub fn access_data(&mut self, pc: Pc, line: LineAddr, now: u64) -> MemLevel {
        for done in self.mshr_d.take_retired(now) {
            self.l1d.fill(done);
        }
        if self.l1d.lookup(line) {
            self.stats.l1d_hits += 1;
            return MemLevel::L1;
        }
        match self.mshr_d.on_miss(line, now) {
            1 => {
                self.stats.mshr_hits += 1;
                MemLevel::Mshr
            }
            _ => {
                if self.llc.access(line) {
                    self.stats.llc_hits += 1;
                    MemLevel::Llc
                } else {
                    self.stats.memory += 1;
                    if let Some(pf) = self.prefetcher.as_mut() {
                        for l in pf.on_trigger(pc, line) {
                            self.stats.prefetches_issued += 1;
                            if self.llc.probe(l) {
                                self.stats.prefetches_nullified += 1;
                            } else {
                                self.llc.fill(l);
                            }
                        }
                    }
                    MemLevel::Memory
                }
            }
        }
    }

    /// Hierarchy-level statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// L1-D statistics.
    pub fn l1d_stats(&self) -> &CacheStats {
        &self.l1d.stats
    }

    /// LLC statistics.
    pub fn llc_stats(&self) -> &CacheStats {
        &self.llc.stats
    }

    /// Whether `line` is resident in the L1-D / LLC.
    pub fn probe(&self, line: LineAddr) -> (bool, bool) {
        (self.l1d.probe(line), self.llc.probe(line))
    }
}

/// One measured warm-loop rate plus the final state for the oracle.
#[derive(Clone, Debug)]
pub enum WarmOutcome {
    /// Final state of the per-access baseline.
    PerAccess(Box<BaselineHierarchy>),
    /// Final state of the batched production path.
    Batched(Box<Hierarchy>),
}

/// One measured warm-loop rate.
#[derive(Clone, Debug)]
pub struct WarmLoopRate {
    /// Warm accesses simulated per wall-clock second (best of repeats).
    pub accesses_per_sec: f64,
    /// The hierarchy state after the last run (for equivalence checks).
    pub outcome: WarmOutcome,
}

/// Measure accesses/second of warming a fresh hierarchy with the
/// workload accesses in `range` through `path`, best of `repeats` runs.
pub fn measure_warm_loop(
    workload: &dyn Workload,
    machine: &MachineConfig,
    path: WarmPath,
    range: Range<u64>,
    repeats: u32,
) -> WarmLoopRate {
    let n = range.end.saturating_sub(range.start);
    let mut best = f64::MAX;
    let mut outcome = None;
    for _ in 0..repeats.max(1) {
        match path {
            WarmPath::PerAccess => {
                let mut h = BaselineHierarchy::new(machine);
                let t = Instant::now();
                workload.for_each_access(range.clone(), |a| {
                    h.access_data(a.pc, a.line(), a.index);
                });
                best = best.min(t.elapsed().as_secs_f64());
                outcome = Some(WarmOutcome::PerAccess(Box::new(h)));
            }
            WarmPath::Batched => {
                let mut h = Hierarchy::new(machine);
                let t = Instant::now();
                h.warm_range(workload, range.clone());
                best = best.min(t.elapsed().as_secs_f64());
                outcome = Some(WarmOutcome::Batched(Box::new(h)));
            }
        }
    }
    WarmLoopRate {
        accesses_per_sec: n as f64 / best.max(1e-12),
        outcome: outcome.expect("at least one repeat"),
    }
}

/// The equivalence oracle: the baseline and batched hierarchies must
/// agree on every statistics counter (hierarchy-level and per-cache) and
/// on the L1-D/LLC residency of every line the warm range touched.
pub fn assert_hierarchies_agree(
    workload: &dyn Workload,
    range: Range<u64>,
    baseline: &BaselineHierarchy,
    batched: &Hierarchy,
) {
    assert_eq!(
        baseline.stats(),
        batched.stats(),
        "hierarchy counters diverged between per-access and batched paths"
    );
    assert_eq!(
        baseline.l1d_stats(),
        batched.l1d().stats(),
        "L1-D counters diverged"
    );
    assert_eq!(
        baseline.llc_stats(),
        batched.llc().stats(),
        "LLC counters diverged"
    );
    let mut lines = LineSet::new();
    workload.for_each_access(range, |a| {
        lines.insert(a.line());
    });
    for line in lines.iter() {
        let (bl1, bllc) = baseline.probe(line);
        assert_eq!(
            (bl1, bllc),
            (batched.l1d().probe(line), batched.llc().probe(line)),
            "residency of {line} diverged between per-access and batched paths"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_trace::{spec_workload, Scale};

    #[test]
    fn baseline_and_batched_paths_agree() {
        for name in ["hmmer", "mcf"] {
            let w = spec_workload(name, Scale::tiny(), 1).unwrap();
            let machine = MachineConfig::for_scale(Scale::tiny());
            let base = measure_warm_loop(&w, &machine, WarmPath::PerAccess, 0..20_000, 1);
            let batched = measure_warm_loop(&w, &machine, WarmPath::Batched, 0..20_000, 1);
            let (WarmOutcome::PerAccess(b), WarmOutcome::Batched(n)) =
                (&base.outcome, &batched.outcome)
            else {
                panic!("outcome variants mismatched the measured paths");
            };
            assert_hierarchies_agree(&w, 0..20_000, b, n);
            assert!(base.accesses_per_sec > 0.0 && batched.accesses_per_sec > 0.0);
        }
    }

    #[test]
    fn oracle_covers_the_prefetcher() {
        let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
        let machine = MachineConfig::for_scale(Scale::tiny()).with_prefetch(true);
        let base = measure_warm_loop(&w, &machine, WarmPath::PerAccess, 0..20_000, 1);
        let batched = measure_warm_loop(&w, &machine, WarmPath::Batched, 0..20_000, 1);
        let (WarmOutcome::PerAccess(b), WarmOutcome::Batched(n)) =
            (&base.outcome, &batched.outcome)
        else {
            panic!("outcome variants mismatched the measured paths");
        };
        assert_hierarchies_agree(&w, 0..20_000, b, n);
    }
}
