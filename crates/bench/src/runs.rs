//! The parallel strategy-execution layer of the experiment harness.
//!
//! [`BatchExecutor`] fans a `&[Box<dyn SamplingStrategy>]` × workload
//! matrix out across worker threads: every (strategy, workload) cell is
//! an independent, deterministic region evaluation, so cells execute in
//! any order and results are collected back in input order — output is
//! byte-identical for any worker count (asserted by
//! `tests/strategy_layer.rs`). All experiment drivers and the
//! `run_all`/figure binaries funnel through this one code path.

use crate::options::ExpOptions;
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanOutput, DeLoreanRunner};
use delorean_sampling::{
    CoolSimConfig, CoolSimRunner, RegionPlan, SamplingConfig, SamplingStrategy, SimulationReport,
    SmartsRunner, StrategyReport,
};
use delorean_trace::{spec2006, Scale, Workload};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

/// Executes (strategy × workload) batches on a worker pool.
///
/// The default executor sizes its pool to the machine divided by the
/// batch's maximum [`internal_parallelism`] — a scheduler-backed cell
/// fans its regions across its own workers, so running one cell per
/// core would oversubscribe the host. [`with_threads`] bounds the pool
/// explicitly (1 = serial reference execution, used by the determinism
/// tests), and [`with_region_workers`] composes **region parallelism
/// under the cell fan-out**: every cell runs its plan's region units on
/// `n` workers via [`SamplingStrategy::run_with_workers`], and the cell
/// pool shrinks by the same factor so `cells × region workers` never
/// exceeds the budget. Both knobs are pure scheduling — results are
/// byte-identical whatever the composition.
///
/// [`internal_parallelism`]: SamplingStrategy::internal_parallelism
/// [`with_threads`]: BatchExecutor::with_threads
/// [`with_region_workers`]: BatchExecutor::with_region_workers
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchExecutor {
    threads: Option<usize>,
    region_workers: Option<usize>,
}

impl BatchExecutor {
    /// An executor using the machine's full parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// An executor bounded to `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        BatchExecutor {
            threads: Some(threads.max(1)),
            region_workers: None,
        }
    }

    /// Run every cell's region units on `workers` region-scheduler
    /// workers (overriding each strategy's own configuration); the cell
    /// pool divides by the same factor to avoid oversubscription.
    pub fn with_region_workers(mut self, workers: usize) -> Self {
        self.region_workers = Some(workers.max(1));
        self
    }

    /// Run every strategy over every workload; `result[w][s]` is strategy
    /// `s` on workload `w`. Cells run in parallel; the result layout is
    /// input-ordered and independent of the worker count.
    pub fn run_matrix<W: Workload>(
        &self,
        strategies: &[Box<dyn SamplingStrategy>],
        workloads: &[W],
        plan: &RegionPlan,
    ) -> Vec<Vec<StrategyReport>> {
        let jobs: Vec<(&dyn SamplingStrategy, &W)> = workloads
            .iter()
            .flat_map(|w| strategies.iter().map(move |s| (s.as_ref(), w)))
            .collect();
        let mut cells = self.run_cells(jobs, plan).into_iter();
        workloads
            .iter()
            .map(|_| cells.by_ref().take(strategies.len()).collect())
            .collect()
    }

    /// Run one strategy over every workload, in parallel.
    pub fn run_strategy_over<W: Workload>(
        &self,
        strategy: &dyn SamplingStrategy,
        workloads: &[W],
        plan: &RegionPlan,
    ) -> Vec<StrategyReport> {
        self.run_cells(workloads.iter().map(|w| (strategy, w)).collect(), plan)
    }

    /// Run every strategy on one workload, in parallel.
    pub fn run_strategies<W: Workload>(
        &self,
        strategies: &[Box<dyn SamplingStrategy>],
        workload: &W,
        plan: &RegionPlan,
    ) -> Vec<StrategyReport> {
        self.run_cells(
            strategies.iter().map(|s| (s.as_ref(), workload)).collect(),
            plan,
        )
    }

    /// Evaluate a flat list of (strategy, workload) cells on the pool.
    fn run_cells<W: Workload>(
        &self,
        jobs: Vec<(&dyn SamplingStrategy, &W)>,
        plan: &RegionPlan,
    ) -> Vec<StrategyReport> {
        let workers = self.threads.unwrap_or_else(|| {
            // Leave room for each cell's own threads (its region-scheduler
            // workers, or whatever nested parallelism it reports).
            let nested = self.region_workers.unwrap_or_else(|| {
                jobs.iter()
                    .map(|&(s, _)| s.internal_parallelism())
                    .max()
                    .unwrap_or(1)
            });
            (rayon::current_num_threads() / nested).max(1)
        });
        let region_workers = self.region_workers;
        ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("worker pool")
            .install(|| {
                jobs.par_iter()
                    .map(|&(strategy, workload)| match region_workers {
                        Some(n) => strategy.run_with_workers(workload, plan, n),
                        None => strategy.run(workload, plan),
                    })
                    .collect()
            })
    }
}

/// Results of the three headline strategies on one workload.
#[derive(Clone, Debug)]
pub struct StrategyOutputs {
    /// SMARTS (functional warming) — the reference.
    pub smarts: SimulationReport,
    /// CoolSim (randomized statistical warming).
    pub coolsim: SimulationReport,
    /// DeLorean (directed statistical warming + time traveling).
    pub delorean: DeLoreanOutput,
}

/// One benchmark's comparison entry.
#[derive(Clone, Debug)]
pub struct BenchmarkComparison {
    /// Workload name.
    pub name: String,
    /// Per-strategy results.
    pub outputs: StrategyOutputs,
}

/// The headline strategy set behind Figures 5–10: SMARTS reference,
/// CoolSim baseline, DeLorean — as trait objects for the executor.
pub fn headline_strategies(scale: Scale, machine: MachineConfig) -> Vec<Box<dyn SamplingStrategy>> {
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ]
}

/// The region plan for a set of options.
pub fn plan_for(opts: &ExpOptions) -> RegionPlan {
    let mut cfg = SamplingConfig::for_scale(opts.scale);
    if let Some(r) = opts.regions {
        cfg = cfg.with_regions(r);
    }
    cfg.plan()
}

/// Group one workload's headline-strategy reports (executor order) into
/// named outputs. Each cell's self-reported strategy name is checked so
/// a reorder of [`headline_strategies`] fails loudly instead of
/// silently swapping the reference and baseline columns.
fn group_outputs(reports: Vec<StrategyReport>) -> StrategyOutputs {
    let mut it = reports.into_iter();
    let mut named = |expected: &str| {
        let report = it.next().expect("headline cell");
        assert_eq!(
            report.strategy, expected,
            "headline_strategies order changed without updating group_outputs"
        );
        report
    };
    let smarts = named("smarts").into_report();
    let coolsim = named("coolsim").into_report();
    let delorean = named("delorean").try_into().expect("delorean extras");
    StrategyOutputs {
        smarts,
        coolsim,
        delorean,
    }
}

/// Run SMARTS, CoolSim and DeLorean on one workload at a given LLC size
/// (paper-scale bytes), fanning the strategies out in parallel.
pub fn compare_one(
    opts: &ExpOptions,
    workload: &dyn Workload,
    plan: &RegionPlan,
    llc_paper_bytes: u64,
) -> StrategyOutputs {
    let machine =
        MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, llc_paper_bytes);
    let strategies = headline_strategies(opts.scale, machine);
    group_outputs(BatchExecutor::new().run_strategies(&strategies, &workload, plan))
}

/// Run the three-strategy comparison over the (filtered) suite: the full
/// strategy × workload matrix through the batch executor.
pub fn compare_all(opts: &ExpOptions, llc_paper_bytes: u64) -> Vec<BenchmarkComparison> {
    let plan = plan_for(opts);
    let machine =
        MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, llc_paper_bytes);
    let strategies = headline_strategies(opts.scale, machine);
    let workloads: Vec<_> = spec2006(opts.scale, opts.seed)
        .into_iter()
        .filter(|w| opts.selected(w.name()))
        .collect();
    let matrix = BatchExecutor::new().run_matrix(&strategies, &workloads, &plan);
    workloads
        .iter()
        .zip(matrix)
        .map(|(w, reports)| BenchmarkComparison {
            name: w.name().to_string(),
            outputs: group_outputs(reports),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_comparison_produces_all_strategies() {
        let opts = ExpOptions {
            filter: Some("bwaves".into()),
            ..ExpOptions::tiny()
        };
        let rows = compare_all(&opts, 8 << 20);
        assert_eq!(rows.len(), 1);
        let o = &rows[0].outputs;
        assert!(o.smarts.cpi() > 0.0);
        assert!(o.coolsim.cpi() > 0.0);
        assert!(o.delorean.report.cpi() > 0.0);
    }

    #[test]
    fn filter_selects_subset() {
        let opts = ExpOptions {
            filter: Some("lbm".into()),
            ..ExpOptions::tiny()
        };
        let rows = compare_all(&opts, 8 << 20);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "lbm");
    }

    #[test]
    fn region_workers_compose_without_changing_results() {
        let opts = ExpOptions {
            filter: Some("bwaves".into()),
            ..ExpOptions::tiny()
        };
        let plan = plan_for(&opts);
        let machine = MachineConfig::for_scale(opts.scale);
        let strategies = headline_strategies(opts.scale, machine);
        let workloads: Vec<_> = spec2006(opts.scale, opts.seed)
            .into_iter()
            .filter(|w| opts.selected(w.name()))
            .collect();
        let reference = BatchExecutor::with_threads(1).run_matrix(&strategies, &workloads, &plan);
        for (threads, region_workers) in [(1, 4), (2, 2), (4, 1)] {
            let composed = BatchExecutor::with_threads(threads)
                .with_region_workers(region_workers)
                .run_matrix(&strategies, &workloads, &plan);
            for (rrow, crow) in reference.iter().zip(&composed) {
                for (r, c) in rrow.iter().zip(crow) {
                    assert_eq!(
                        r.report, c.report,
                        "{}×{} changed {}/{}",
                        threads, region_workers, r.workload, r.strategy
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_layout_is_workload_major() {
        let opts = ExpOptions {
            filter: Some("m".into()), // several workloads contain an 'm'
            ..ExpOptions::tiny()
        };
        let plan = plan_for(&opts);
        let machine = MachineConfig::for_scale(opts.scale);
        let strategies = headline_strategies(opts.scale, machine);
        let workloads: Vec<_> = spec2006(opts.scale, opts.seed)
            .into_iter()
            .filter(|w| opts.selected(w.name()))
            .take(2)
            .collect();
        let matrix = BatchExecutor::new().run_matrix(&strategies, &workloads, &plan);
        assert_eq!(matrix.len(), workloads.len());
        for (w, row) in workloads.iter().zip(&matrix) {
            assert_eq!(row.len(), strategies.len());
            for (s, cell) in strategies.iter().zip(row) {
                assert_eq!(cell.workload, w.name());
                assert_eq!(cell.strategy, s.name());
            }
        }
    }
}
