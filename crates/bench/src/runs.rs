//! Shared experiment drivers: run all three strategies over the suite.

use crate::options::ExpOptions;
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanOutput, DeLoreanRunner};
use delorean_sampling::{
    CoolSimConfig, CoolSimRunner, RegionPlan, SamplingConfig, SimulationReport, SmartsRunner,
};
use delorean_trace::{spec2006, Workload};

/// Results of all three strategies on one workload.
#[derive(Clone, Debug)]
pub struct StrategyOutputs {
    /// SMARTS (functional warming) — the reference.
    pub smarts: SimulationReport,
    /// CoolSim (randomized statistical warming).
    pub coolsim: SimulationReport,
    /// DeLorean (directed statistical warming + time traveling).
    pub delorean: DeLoreanOutput,
}

/// One benchmark's comparison entry.
#[derive(Clone, Debug)]
pub struct BenchmarkComparison {
    /// Workload name.
    pub name: String,
    /// Per-strategy results.
    pub outputs: StrategyOutputs,
}

/// The region plan for a set of options.
pub fn plan_for(opts: &ExpOptions) -> RegionPlan {
    let mut cfg = SamplingConfig::for_scale(opts.scale);
    if let Some(r) = opts.regions {
        cfg = cfg.with_regions(r);
    }
    cfg.plan()
}

/// Run SMARTS, CoolSim and DeLorean on one workload at a given LLC size
/// (paper-scale bytes).
pub fn compare_one(
    opts: &ExpOptions,
    workload: &dyn Workload,
    plan: &RegionPlan,
    llc_paper_bytes: u64,
) -> StrategyOutputs {
    let machine =
        MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, llc_paper_bytes);
    let smarts = SmartsRunner::new(machine).run(workload, plan);
    let coolsim = CoolSimRunner::new(machine, CoolSimConfig::for_scale(opts.scale))
        .run(workload, plan);
    let delorean = DeLoreanRunner::new(machine, DeLoreanConfig::for_scale(opts.scale))
        .run(workload, plan);
    StrategyOutputs {
        smarts,
        coolsim,
        delorean,
    }
}

/// Run the three-strategy comparison over the (filtered) suite.
pub fn compare_all(opts: &ExpOptions, llc_paper_bytes: u64) -> Vec<BenchmarkComparison> {
    let plan = plan_for(opts);
    spec2006(opts.scale, opts.seed)
        .into_iter()
        .filter(|w| opts.selected(w.name()))
        .map(|w| {
            let outputs = compare_one(opts, &w, &plan, llc_paper_bytes);
            BenchmarkComparison {
                name: w.name().to_string(),
                outputs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_comparison_produces_all_strategies() {
        let opts = ExpOptions {
            filter: Some("bwaves".into()),
            ..ExpOptions::tiny()
        };
        let rows = compare_all(&opts, 8 << 20);
        assert_eq!(rows.len(), 1);
        let o = &rows[0].outputs;
        assert!(o.smarts.cpi() > 0.0);
        assert!(o.coolsim.cpi() > 0.0);
        assert!(o.delorean.report.cpi() > 0.0);
    }

    #[test]
    fn filter_selects_subset() {
        let opts = ExpOptions {
            filter: Some("lbm".into()),
            ..ExpOptions::tiny()
        };
        let rows = compare_all(&opts, 8 << 20);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "lbm");
    }
}
