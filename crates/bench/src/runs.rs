//! The parallel strategy-execution layer of the experiment harness.
//!
//! [`BatchExecutor`] fans a `&[Box<dyn SamplingStrategy>]` × workload
//! matrix out across worker threads: every (strategy, workload) cell is
//! an independent, deterministic region evaluation, so cells execute in
//! any order and results are collected back in input order — output is
//! byte-identical for any worker count (asserted by
//! `tests/strategy_layer.rs`). All experiment drivers and the
//! `run_all`/figure binaries funnel through this one code path.

use crate::journal::{decode_cell, encode_cell, sweep_tag, CELL_ENTRY_KIND};
use crate::options::ExpOptions;
use delorean_cache::MachineConfig;
use delorean_core::{DeLoreanConfig, DeLoreanOutput, DeLoreanRunner};
use delorean_sampling::{
    CoolSimConfig, CoolSimRunner, FaultPolicy, RegionPlan, SamplingConfig, SamplingStrategy,
    SimulationReport, SmartsRunner, StrategyReport, UnitFailure,
};
use delorean_trace::fault::{self, FaultSite};
use delorean_trace::{spec2006, JournalError, JournalWriter, Scale, Workload};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Executes (strategy × workload) batches on a worker pool.
///
/// The default executor sizes its pool to the machine divided by the
/// batch's maximum [`internal_parallelism`] — a scheduler-backed cell
/// fans its regions across its own workers, so running one cell per
/// core would oversubscribe the host. [`with_threads`] bounds the pool
/// explicitly (1 = serial reference execution, used by the determinism
/// tests), and [`with_region_workers`] composes **region parallelism
/// under the cell fan-out**: every cell runs its plan's region units on
/// `n` workers via [`SamplingStrategy::run_with_workers`], and the cell
/// pool shrinks by the same factor so `cells × region workers` never
/// exceeds the budget. Both knobs are pure scheduling — results are
/// byte-identical whatever the composition.
///
/// [`internal_parallelism`]: SamplingStrategy::internal_parallelism
/// [`with_threads`]: BatchExecutor::with_threads
/// [`with_region_workers`]: BatchExecutor::with_region_workers
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchExecutor {
    threads: Option<usize>,
    region_workers: Option<usize>,
}

impl BatchExecutor {
    /// An executor using the machine's full parallelism.
    pub fn new() -> Self {
        Self::default()
    }

    /// An executor bounded to `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        BatchExecutor {
            threads: Some(threads.max(1)),
            region_workers: None,
        }
    }

    /// Run every cell's region units on `workers` region-scheduler
    /// workers (overriding each strategy's own configuration); the cell
    /// pool divides by the same factor to avoid oversubscription.
    pub fn with_region_workers(mut self, workers: usize) -> Self {
        self.region_workers = Some(workers.max(1));
        self
    }

    /// Run every strategy over every workload; `result[w][s]` is strategy
    /// `s` on workload `w`. Cells run in parallel; the result layout is
    /// input-ordered and independent of the worker count.
    pub fn run_matrix<W: Workload>(
        &self,
        strategies: &[Box<dyn SamplingStrategy>],
        workloads: &[W],
        plan: &RegionPlan,
    ) -> Vec<Vec<StrategyReport>> {
        let jobs: Vec<(&dyn SamplingStrategy, &W)> = workloads
            .iter()
            .flat_map(|w| strategies.iter().map(move |s| (s.as_ref(), w)))
            .collect();
        let mut cells = self.run_cells(jobs, plan).into_iter();
        workloads
            .iter()
            .map(|_| cells.by_ref().take(strategies.len()).collect())
            .collect()
    }

    /// Run one strategy over every workload, in parallel.
    pub fn run_strategy_over<W: Workload>(
        &self,
        strategy: &dyn SamplingStrategy,
        workloads: &[W],
        plan: &RegionPlan,
    ) -> Vec<StrategyReport> {
        self.run_cells(workloads.iter().map(|w| (strategy, w)).collect(), plan)
    }

    /// Run every strategy on one workload, in parallel.
    pub fn run_strategies<W: Workload>(
        &self,
        strategies: &[Box<dyn SamplingStrategy>],
        workload: &W,
        plan: &RegionPlan,
    ) -> Vec<StrategyReport> {
        self.run_cells(
            strategies.iter().map(|s| (s.as_ref(), workload)).collect(),
            plan,
        )
    }

    /// Run every strategy over every workload with **per-cell panic
    /// isolation**: each cell is guarded, retried within `policy`'s
    /// budget, and quarantined (a `None` slot plus a typed failure) on
    /// exhaustion — a faulting cell never takes the sweep down with it.
    /// On a clean run every slot is `Some` and each report is bitwise
    /// identical to [`run_matrix`](BatchExecutor::run_matrix)'s.
    pub fn run_matrix_isolated<W: Workload>(
        &self,
        strategies: &[Box<dyn SamplingStrategy>],
        workloads: &[W],
        plan: &RegionPlan,
        policy: &FaultPolicy,
    ) -> MatrixRun {
        // lint:allow(no-unwrap): None journal path cannot produce a journal error
        self.run_matrix_durable(strategies, workloads, plan, policy, None)
            .expect("isolated run without a journal cannot fail to open one")
    }

    /// Like [`run_matrix_isolated`](BatchExecutor::run_matrix_isolated),
    /// with a **durable journal**: each completed cell's reduced report
    /// is appended (checksummed) to `journal` the moment it finishes, so
    /// a killed sweep loses at most the cells in flight. If `journal`
    /// already exists it is *resumed*: its valid prefix (torn tails are
    /// truncated) restores completed cells verbatim and only missing
    /// cells execute, so a resumed sweep's matrix is `==` an
    /// uninterrupted one's. The journal is bound to the sweep's
    /// configuration by tag ([`sweep_tag`](crate::journal::sweep_tag));
    /// resuming with a different strategy set, workload list or plan is
    /// a hard [`JournalError::TagMismatch`].
    ///
    /// Journaled cells carry no strategy extras — only the
    /// [`SimulationReport`] is durable.
    pub fn run_matrix_journaled<W: Workload>(
        &self,
        strategies: &[Box<dyn SamplingStrategy>],
        workloads: &[W],
        plan: &RegionPlan,
        policy: &FaultPolicy,
        journal: &Path,
    ) -> Result<MatrixRun, JournalError> {
        self.run_matrix_durable(strategies, workloads, plan, policy, Some(journal))
    }

    /// The shared isolated/durable matrix engine.
    fn run_matrix_durable<W: Workload>(
        &self,
        strategies: &[Box<dyn SamplingStrategy>],
        workloads: &[W],
        plan: &RegionPlan,
        policy: &FaultPolicy,
        journal: Option<&Path>,
    ) -> Result<MatrixRun, JournalError> {
        // Flat cell list, workload-major: cell = w * strategies + s.
        let jobs: Vec<(&dyn SamplingStrategy, &W)> = workloads
            .iter()
            .flat_map(|w| strategies.iter().map(move |s| (s.as_ref(), w)))
            .collect();

        // Restore journaled cells (resume) or start a fresh journal.
        let mut restored: Vec<Option<SimulationReport>> = (0..jobs.len()).map(|_| None).collect();
        let writer = match journal {
            Some(path) => {
                let names: Vec<&str> = workloads.iter().map(|w| w.name()).collect();
                let tag = sweep_tag(strategies, &names, plan);
                let writer = if path.exists() {
                    let (writer, prefix) = JournalWriter::resume(path, tag)?;
                    for entry in prefix {
                        if entry.kind != CELL_ENTRY_KIND {
                            continue;
                        }
                        if let Some((cell, report)) = decode_cell(&entry.payload) {
                            if let Some(slot) = restored.get_mut(cell as usize) {
                                *slot = Some(report);
                            }
                        }
                    }
                    writer
                } else {
                    JournalWriter::create(path, tag)?
                };
                Some(Mutex::new(writer))
            }
            None => None,
        };
        let resumed_cells = restored.iter().filter(|r| r.is_some()).count();

        // Execute the missing cells, each as one guarded, retryable
        // fault unit; append to the journal the moment a cell completes
        // (completion order is racy, but entries are keyed by cell
        // index, so the resume assembly below is order-independent).
        let pending: Vec<(u32, &dyn SamplingStrategy, &W)> = jobs
            .iter()
            .enumerate()
            .filter(|&(cell, _)| restored[cell].is_none())
            .map(|(cell, &(s, w))| (cell as u32, s, w))
            .collect();
        let executed_cells = pending.len();
        let region_workers = self.region_workers;
        let journal_faults = AtomicUsize::new(0);
        let executed: Vec<(u32, Result<StrategyReport, UnitFailure>)> =
            self.pool_for(&jobs).install(|| {
                pending
                    .par_iter()
                    .map(|&(cell, strategy, workload)| {
                        let result = fault::run_unit_guarded(cell, policy, || {
                            fault::hit(FaultSite::UnitEntry, u64::from(cell));
                            match region_workers {
                                Some(n) => strategy.run_with_workers(workload, plan, n),
                                None => strategy.run(workload, plan),
                            }
                        });
                        if let (Some(writer), Ok(report)) = (writer.as_ref(), result.as_ref()) {
                            // A failed append must never unwind through
                            // the run it records: the cell's result
                            // stays in memory, it is just not durable.
                            let payload = encode_cell(cell, &report.report);
                            let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
                            if w.append(CELL_ENTRY_KIND, &payload).is_err() {
                                journal_faults.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        (cell, result)
                    })
                    .collect()
            });

        // Assemble in cell order: journaled cells verbatim (no extras),
        // executed cells with their extras, quarantined cells as None.
        let mut slots: Vec<Option<StrategyReport>> = restored
            .into_iter()
            .map(|r| r.map(StrategyReport::new))
            .collect();
        let mut quarantined = Vec::new();
        for (cell, result) in executed {
            match result {
                Ok(report) => slots[cell as usize] = Some(report),
                Err(failure) => quarantined.push(failure),
            }
        }
        let mut rows = Vec::with_capacity(workloads.len());
        let mut it = slots.into_iter();
        for _ in workloads {
            rows.push(it.by_ref().take(strategies.len()).collect());
        }
        Ok(MatrixRun {
            matrix: rows,
            quarantined,
            resumed_cells,
            executed_cells,
            journal_faults: journal_faults.into_inner(),
        })
    }

    /// Evaluate a flat list of (strategy, workload) cells on the pool.
    fn run_cells<W: Workload>(
        &self,
        jobs: Vec<(&dyn SamplingStrategy, &W)>,
        plan: &RegionPlan,
    ) -> Vec<StrategyReport> {
        let region_workers = self.region_workers;
        self.pool_for(&jobs).install(|| {
            jobs.par_iter()
                .map(|&(strategy, workload)| match region_workers {
                    Some(n) => strategy.run_with_workers(workload, plan, n),
                    None => strategy.run(workload, plan),
                })
                .collect()
        })
    }

    /// The worker pool for a cell list, leaving room for each cell's own
    /// threads (its region-scheduler workers, or whatever nested
    /// parallelism it reports).
    fn pool_for<W: Workload>(&self, jobs: &[(&dyn SamplingStrategy, &W)]) -> rayon::ThreadPool {
        let workers = self.threads.unwrap_or_else(|| {
            let nested = self.region_workers.unwrap_or_else(|| {
                jobs.iter()
                    .map(|&(s, _)| s.internal_parallelism())
                    .max()
                    .unwrap_or(1)
            });
            (rayon::current_num_threads() / nested).max(1)
        });
        ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .expect("worker pool")
    }
}

/// The outcome of a fault-isolated (optionally journaled) matrix run.
///
/// `matrix[w][s]` mirrors [`BatchExecutor::run_matrix`]'s layout with
/// `None` marking quarantined cells. The counters distinguish where
/// results came from: `resumed_cells` were restored verbatim from the
/// journal, `executed_cells` ran this time.
#[derive(Debug)]
pub struct MatrixRun {
    /// Workload-major cell results; `None` where the cell exhausted its
    /// retry budget.
    pub matrix: Vec<Vec<Option<StrategyReport>>>,
    /// Typed failures of quarantined cells, in cell order (the failure's
    /// `unit` is the flat cell index `w * strategies + s`).
    pub quarantined: Vec<UnitFailure>,
    /// Cells restored from the journal's valid prefix.
    pub resumed_cells: usize,
    /// Cells executed (not restored) in this run.
    pub executed_cells: usize,
    /// Journal appends that failed (the cell result is in memory but
    /// not durable); 0 outside fault-injection harnesses.
    pub journal_faults: usize,
}

impl MatrixRun {
    /// Whether every cell completed.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty()
    }

    /// The plain reports, if the run is complete.
    pub fn into_reports(self) -> Option<Vec<Vec<SimulationReport>>> {
        self.matrix
            .into_iter()
            .map(|row| row.into_iter().map(|c| Some(c?.into_report())).collect())
            .collect()
    }
}

/// Results of the three headline strategies on one workload.
#[derive(Clone, Debug)]
pub struct StrategyOutputs {
    /// SMARTS (functional warming) — the reference.
    pub smarts: SimulationReport,
    /// CoolSim (randomized statistical warming).
    pub coolsim: SimulationReport,
    /// DeLorean (directed statistical warming + time traveling).
    pub delorean: DeLoreanOutput,
}

/// One benchmark's comparison entry.
#[derive(Clone, Debug)]
pub struct BenchmarkComparison {
    /// Workload name.
    pub name: String,
    /// Per-strategy results.
    pub outputs: StrategyOutputs,
}

/// The headline strategy set behind Figures 5–10: SMARTS reference,
/// CoolSim baseline, DeLorean — as trait objects for the executor.
pub fn headline_strategies(scale: Scale, machine: MachineConfig) -> Vec<Box<dyn SamplingStrategy>> {
    vec![
        Box::new(SmartsRunner::new(machine)),
        Box::new(CoolSimRunner::new(machine, CoolSimConfig::for_scale(scale))),
        Box::new(DeLoreanRunner::new(
            machine,
            DeLoreanConfig::for_scale(scale),
        )),
    ]
}

/// The region plan for a set of options.
pub fn plan_for(opts: &ExpOptions) -> RegionPlan {
    let mut cfg = SamplingConfig::for_scale(opts.scale);
    if let Some(r) = opts.regions {
        cfg = cfg.with_regions(r);
    }
    cfg.plan()
}

/// Group one workload's headline-strategy reports (executor order) into
/// named outputs. Each cell's self-reported strategy name is checked so
/// a reorder of [`headline_strategies`] fails loudly instead of
/// silently swapping the reference and baseline columns.
fn group_outputs(reports: Vec<StrategyReport>) -> StrategyOutputs {
    let mut it = reports.into_iter();
    let mut named = |expected: &str| {
        let report = it.next().expect("headline cell");
        assert_eq!(
            report.strategy, expected,
            "headline_strategies order changed without updating group_outputs"
        );
        report
    };
    let smarts = named("smarts").into_report();
    let coolsim = named("coolsim").into_report();
    let delorean = named("delorean").try_into().expect("delorean extras");
    StrategyOutputs {
        smarts,
        coolsim,
        delorean,
    }
}

/// Run SMARTS, CoolSim and DeLorean on one workload at a given LLC size
/// (paper-scale bytes), fanning the strategies out in parallel.
pub fn compare_one(
    opts: &ExpOptions,
    workload: &dyn Workload,
    plan: &RegionPlan,
    llc_paper_bytes: u64,
) -> StrategyOutputs {
    let machine =
        MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, llc_paper_bytes);
    let strategies = headline_strategies(opts.scale, machine);
    group_outputs(BatchExecutor::new().run_strategies(&strategies, &workload, plan))
}

/// Run the three-strategy comparison over the (filtered) suite: the full
/// strategy × workload matrix through the batch executor.
pub fn compare_all(opts: &ExpOptions, llc_paper_bytes: u64) -> Vec<BenchmarkComparison> {
    let plan = plan_for(opts);
    let machine =
        MachineConfig::for_scale(opts.scale).with_llc_paper_bytes(opts.scale, llc_paper_bytes);
    let strategies = headline_strategies(opts.scale, machine);
    let workloads: Vec<_> = spec2006(opts.scale, opts.seed)
        .into_iter()
        .filter(|w| opts.selected(w.name()))
        .collect();
    let matrix = BatchExecutor::new().run_matrix(&strategies, &workloads, &plan);
    workloads
        .iter()
        .zip(matrix)
        .map(|(w, reports)| BenchmarkComparison {
            name: w.name().to_string(),
            outputs: group_outputs(reports),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_comparison_produces_all_strategies() {
        let opts = ExpOptions {
            filter: Some("bwaves".into()),
            ..ExpOptions::tiny()
        };
        let rows = compare_all(&opts, 8 << 20);
        assert_eq!(rows.len(), 1);
        let o = &rows[0].outputs;
        assert!(o.smarts.cpi() > 0.0);
        assert!(o.coolsim.cpi() > 0.0);
        assert!(o.delorean.report.cpi() > 0.0);
    }

    #[test]
    fn filter_selects_subset() {
        let opts = ExpOptions {
            filter: Some("lbm".into()),
            ..ExpOptions::tiny()
        };
        let rows = compare_all(&opts, 8 << 20);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].name, "lbm");
    }

    #[test]
    fn region_workers_compose_without_changing_results() {
        let opts = ExpOptions {
            filter: Some("bwaves".into()),
            ..ExpOptions::tiny()
        };
        let plan = plan_for(&opts);
        let machine = MachineConfig::for_scale(opts.scale);
        let strategies = headline_strategies(opts.scale, machine);
        let workloads: Vec<_> = spec2006(opts.scale, opts.seed)
            .into_iter()
            .filter(|w| opts.selected(w.name()))
            .collect();
        let reference = BatchExecutor::with_threads(1).run_matrix(&strategies, &workloads, &plan);
        for (threads, region_workers) in [(1, 4), (2, 2), (4, 1)] {
            let composed = BatchExecutor::with_threads(threads)
                .with_region_workers(region_workers)
                .run_matrix(&strategies, &workloads, &plan);
            for (rrow, crow) in reference.iter().zip(&composed) {
                for (r, c) in rrow.iter().zip(crow) {
                    assert_eq!(
                        r.report, c.report,
                        "{}×{} changed {}/{}",
                        threads, region_workers, r.workload, r.strategy
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_layout_is_workload_major() {
        let opts = ExpOptions {
            filter: Some("m".into()), // several workloads contain an 'm'
            ..ExpOptions::tiny()
        };
        let plan = plan_for(&opts);
        let machine = MachineConfig::for_scale(opts.scale);
        let strategies = headline_strategies(opts.scale, machine);
        let workloads: Vec<_> = spec2006(opts.scale, opts.seed)
            .into_iter()
            .filter(|w| opts.selected(w.name()))
            .take(2)
            .collect();
        let matrix = BatchExecutor::new().run_matrix(&strategies, &workloads, &plan);
        assert_eq!(matrix.len(), workloads.len());
        for (w, row) in workloads.iter().zip(&matrix) {
            assert_eq!(row.len(), strategies.len());
            for (s, cell) in strategies.iter().zip(row) {
                assert_eq!(cell.workload, w.name());
                assert_eq!(cell.strategy, s.name());
            }
        }
    }
}
