//! Experiment harness: regenerate every table and figure of the paper.
//!
//! Each module under [`experiments`] reproduces one artifact of the
//! evaluation section and returns a [`Table`] whose rows mirror what the
//! paper plots:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`experiments::table1`] | Table 1 — simulated processor configuration |
//! | [`experiments::fig05`] | Fig. 5 — normalized simulation speed (+ §6.1 absolute MIPS) |
//! | [`experiments::fig06`] | Fig. 6 — collected reuse distances, CoolSim vs DeLorean |
//! | [`experiments::fig07`] | Fig. 7 — key reuse distances per Explorer (+ §3.2 key counts) |
//! | [`experiments::fig08`] | Fig. 8 — average number of engaged Explorers |
//! | [`experiments::fig09`] | Fig. 9 — CPI at the 8 MiB LLC |
//! | [`experiments::fig10`] | Fig. 10 — CPI at the 512 MiB LLC |
//! | [`experiments::fig11`] | Fig. 11 — vicinity-density speed/accuracy trade-off |
//! | [`experiments::fig12`] | Fig. 12 — CPI error with/without prefetching |
//! | [`experiments::fig13`] | Fig. 13 — working-set curves (MPKI vs LLC size) |
//! | [`experiments::fig14`] | Fig. 14 — CPI vs LLC size from one shared warm-up (+ §6.4.2 costs) |
//! | [`experiments::ablation`] | design-choice ablations called out in DESIGN.md |
//!
//! One binary per figure lives in `src/bin/`; `run_all` executes
//! everything and emits the EXPERIMENTS.md payload. `cargo bench` runs
//! criterion microbenchmarks of the substrates (`benches/substrates.rs`)
//! and regenerates every figure (`benches/figures.rs`).
//!
//! Every experiment funnels its strategy runs through [`BatchExecutor`],
//! which fans `Box<dyn SamplingStrategy>` × workload matrices out across
//! worker threads with input-ordered (thread-count-independent) results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod hierloop;
pub mod journal;
mod options;
pub mod probeloop;
mod runs;
pub mod seqdriver;
mod table;
pub mod tileloop;
pub mod warmloop;

pub use options::ExpOptions;
pub use runs::{
    compare_all, compare_one, headline_strategies, plan_for, BatchExecutor, BenchmarkComparison,
    MatrixRun, StrategyOutputs,
};
pub use table::Table;
