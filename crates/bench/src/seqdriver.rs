//! Verbatim replicas of the **pre-PR 5 sequential strategy drivers** —
//! the equivalence-oracle baseline for the region-parallel runtime.
//!
//! Until PR 5, every strategy walked its plan in one sequential loop:
//! a single running host clock, one hierarchy carried in place across
//! regions, per-region results appended in order. The region scheduler
//! replaced those loops; these functions preserve them, exactly as they
//! were, so `bench_pr5` can (a) measure the old driver's host wall time
//! as the speedup baseline and (b) assert the oracle: the scheduler —
//! at **any** worker count — must reproduce the old drivers' CPI,
//! per-region detailed counters and collected-reuse counts bit for bit.
//!
//! DeLorean's pre-PR 5 serial driver survives as
//! [`DeLoreanRunner::run_serial`] (same per-region computations, now
//! reduced through the scheduler at one worker), so it needs no replica
//! here; the oracle compares against it directly.
//!
//! [`DeLoreanRunner::run_serial`]: delorean_core::DeLoreanRunner::run_serial

use delorean_cache::{Hierarchy, MachineConfig, MemLevel};
use delorean_cpu::TimingConfig;
use delorean_sampling::{
    run_region_detailed, CoolSimConfig, RegionPlan, RegionReport, SimulationReport,
};
use delorean_statmodel::per_pc::{PcPrediction, PcProfiles};
use delorean_statmodel::LogHistogram;
use delorean_trace::{
    CounterRng, InterestFilter, LineMap, MemAccess, Workload, WorkloadExt, CURSOR_BATCH,
};
use delorean_virt::{CostModel, HostClock, RunCost, Trap, WatchSet, WorkKind};

/// The sequential region loop's shared scaffolding: one running clock,
/// regions appended in order — the pre-PR 5 `RegionDriver`, verbatim.
struct SeqDriver<'a> {
    workload: &'a dyn Workload,
    plan: &'a RegionPlan,
    timing: TimingConfig,
    cost: CostModel,
    clock: HostClock,
    regions: Vec<RegionReport>,
    collected: u64,
}

impl<'a> SeqDriver<'a> {
    fn new(workload: &'a dyn Workload, plan: &'a RegionPlan) -> Self {
        SeqDriver {
            workload,
            plan,
            timing: TimingConfig::table1(),
            cost: CostModel::paper_host(),
            clock: HostClock::new(),
            regions: Vec::with_capacity(plan.regions.len()),
            collected: 0,
        }
    }

    fn charge_work(&mut self, kind: WorkKind, instrs: u64) {
        self.clock.charge(self.cost.instr_seconds(kind, instrs));
    }

    fn measure_region(
        &mut self,
        region: &delorean_sampling::Region,
        source: &mut dyn delorean_cpu::OutcomeSource,
    ) {
        let span = region.detailed.end.saturating_sub(region.warming.start);
        self.clock
            .charge(self.cost.instr_seconds(WorkKind::Detailed, span));
        let result = run_region_detailed(self.workload, region, &self.timing, source);
        self.regions.push(RegionReport {
            region: region.index,
            detailed: result,
        });
    }

    fn finish(self, strategy: &str) -> SimulationReport {
        let mut cost = RunCost::new(self.plan.regions.len() as u64);
        cost.push(strategy, self.clock);
        SimulationReport {
            workload: self.workload.name().to_string(),
            strategy: strategy.into(),
            regions: self.regions,
            collected_reuse_distances: self.collected,
            cost,
            covered_instrs: self.plan.represented_instrs(),
        }
    }
}

/// The pre-PR 5 SMARTS driver: one hierarchy functionally warmed in
/// place, measured in place, region after region.
pub fn smarts_sequential(
    machine: &MachineConfig,
    workload: &dyn Workload,
    plan: &RegionPlan,
) -> SimulationReport {
    let mut driver = SeqDriver::new(workload, plan);
    let mut hierarchy = Hierarchy::new(machine);
    let p = workload.mem_period();
    let mult = plan.config.work_multiplier();
    let mut pos_access: u64 = 0;
    for region in &plan.regions {
        let warm_end_access = region.warming.start / p;
        let span = warm_end_access.saturating_sub(pos_access);
        driver.charge_work(WorkKind::Functional, span * p * mult);
        hierarchy.warm_range(workload, pos_access..warm_end_access);
        let mut source = |a: &MemAccess, now: u64| hierarchy.access_data(a.pc, a.line(), now);
        driver.measure_region(region, &mut source);
        pos_access = region.detailed.end / p;
    }
    driver.finish("smarts")
}

/// The pre-PR 5 CoolSim driver: per-region watchpoint profiling and a
/// lukewarm measure, one region after another on a single clock.
pub fn coolsim_sequential(
    machine: &MachineConfig,
    config: &CoolSimConfig,
    workload: &dyn Workload,
    plan: &RegionPlan,
) -> SimulationReport {
    // CoolSimConfig::period_at is private to the sampling crate; the
    // replica reimplements the same schedule arithmetic.
    let period_at = |offset: u64, len: u64, mem_period: u64| -> u64 {
        let mut acc = 0u64;
        let pos_permille = (offset * 1000).checked_div(len).unwrap_or(0);
        for ph in &config.schedule {
            acc += ph.span_permille as u64;
            if pos_permille < acc {
                return (ph.period_instrs / mem_period).max(1);
            }
        }
        config
            .schedule
            .last()
            .map(|p| (p.period_instrs / mem_period).max(1))
            .unwrap_or(1)
    };

    let mut driver = SeqDriver::new(workload, plan);
    let p = workload.mem_period();
    let mult = plan.config.work_multiplier();
    let rng = CounterRng::new(config.seed);
    let spacing = plan.config.spacing_instrs;
    let llc_lines = machine.hierarchy.llc.lines();
    let trap_seconds = driver.cost.trap_seconds;

    for region in &plan.regions {
        let interval = region.warmup_interval(spacing);
        let first = interval.start.div_ceil(p);
        let last = interval.end / p;
        let len = last.saturating_sub(first);
        let mut profiles = PcProfiles::new();
        let mut watch = WatchSet::new();
        let mut pending: LineMap<u64> = LineMap::new();
        let mut filter = InterestFilter::with_capacity_for(1024);

        driver.charge_work(WorkKind::Vff, len * p * mult);
        let mut cursor = workload.cursor(first..last);
        let mut batch = Vec::with_capacity(CURSOR_BATCH);
        while cursor.fill(&mut batch, CURSOR_BATCH) > 0 {
            for a in &batch {
                let k = a.index;
                if filter.contains_page(a.page()) {
                    match watch.classify(a) {
                        Trap::None => {}
                        Trap::FalsePositive => driver.clock.charge(trap_seconds),
                        Trap::Hit(line) => {
                            driver.clock.charge(trap_seconds);
                            if let Some(set_at) = pending.remove(line) {
                                profiles.record(a.pc, k - set_at - 1, 1.0);
                                driver.collected += 1;
                                watch.unwatch_line(line);
                                filter.remove_page(line.page());
                            }
                        }
                    }
                }
                let period = period_at(k - first, len, p);
                if rng.chance_one_in(k, period) && !pending.contains(a.line()) {
                    pending.insert(a.line(), k);
                    watch.watch_line(a.line());
                    filter.insert_page(a.page());
                }
            }
        }
        for (line, set_at) in pending.drain() {
            let pc = workload.access_at(set_at).pc;
            profiles.record_cold(pc, 1.0);
            watch.unwatch_line(line);
        }

        let mut lukewarm = Hierarchy::new(machine);
        let mut source = |a: &MemAccess, now: u64| {
            let simulated = lukewarm.access_data(a.pc, a.line(), now);
            if simulated != MemLevel::Memory {
                return simulated;
            }
            match profiles.predict(a.pc, llc_lines) {
                PcPrediction::Hit => MemLevel::Llc,
                PcPrediction::Miss | PcPrediction::NoData => MemLevel::Memory,
            }
        };
        driver.measure_region(region, &mut source);
    }
    driver.finish("coolsim")
}

/// The pre-PR 5 MRRL driver (99.9% coverage, 50 k profile accesses —
/// the `MrrlRunner::new` defaults).
pub fn mrrl_sequential(
    machine: &MachineConfig,
    workload: &dyn Workload,
    plan: &RegionPlan,
) -> SimulationReport {
    let percentile = 0.999f64;
    let profile_accesses = 50_000u64;
    let p = workload.mem_period();
    let warming_window = |around_access: u64| -> u64 {
        let start = around_access.saturating_sub(profile_accesses);
        let mut hist = LogHistogram::new();
        let mut last: LineMap<u64> = LineMap::new();
        workload.for_each_access(start..around_access, |a| {
            if let Some(prev) = last.insert(a.line(), a.index) {
                hist.add((a.index - prev) * p, 1.0);
            }
        });
        if hist.is_empty() {
            return profile_accesses * p;
        }
        hist.quantile(percentile)
    };

    let mut driver = SeqDriver::new(workload, plan);
    let mult = plan.config.work_multiplier();
    let mut prev_end = 0u64;
    for region in &plan.regions {
        let region_first = workload.access_index_at_instr(region.detailed.start);
        driver.charge_work(WorkKind::Functional, profile_accesses * p);
        let window = warming_window(region_first).clamp(p, region.warming.start);
        let warm_start = region.warming.start.saturating_sub(window);
        let skip = warm_start.saturating_sub(prev_end);
        driver.charge_work(WorkKind::Vff, skip * mult);
        driver.charge_work(WorkKind::Functional, window * mult);
        let mut hierarchy = Hierarchy::new(machine);
        let from = workload.access_index_at_instr(warm_start);
        let to = workload.access_index_at_instr(region.warming.start);
        hierarchy.warm_range(workload, from..to);
        let mut source = |a: &MemAccess, now: u64| hierarchy.access_data(a.pc, a.line(), now);
        driver.measure_region(region, &mut source);
        prev_end = region.detailed.end;
    }
    driver.finish("mrrl")
}

/// The pre-PR 5 checkpointed-warming driver: a sequential preparation
/// pass snapshotting one cumulatively warmed hierarchy, then a
/// sequential evaluation loop restoring into one reused hierarchy.
/// Returns the evaluation report (PR 4 semantics: preparation cost is
/// excluded from it).
pub fn checkpoint_sequential(
    machine: &MachineConfig,
    workload: &dyn Workload,
    plan: &RegionPlan,
) -> SimulationReport {
    let load_bytes_per_second = 100.0e6;
    let p = workload.mem_period();

    // Preparation (its clock went to the extras in PR 4, not to the
    // evaluation report replicated here).
    let mut hierarchy = Hierarchy::new(machine);
    let mut pos_access = 0u64;
    let mut snapshots = Vec::with_capacity(plan.regions.len());
    for region in &plan.regions {
        let warm_end_access = region.warming.start / p;
        hierarchy.warm_range(workload, pos_access..warm_end_access);
        snapshots.push(hierarchy.snapshot());
        pos_access = warm_end_access;
    }

    // Evaluation.
    let mut driver = SeqDriver::new(workload, plan);
    let mut eval = Hierarchy::new(machine);
    for (region, snap) in plan.regions.iter().zip(&snapshots) {
        driver
            .clock
            .charge(snap.storage_bytes() as f64 / load_bytes_per_second);
        eval.restore(snap);
        let mut source = |a: &MemAccess, now: u64| eval.access_data(a.pc, a.line(), now);
        driver.measure_region(region, &mut source);
    }
    driver.finish("checkpoint")
}
