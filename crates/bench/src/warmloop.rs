//! Warm-loop perf measurement: indexed vs streaming access generation.
//!
//! The warm loops (functional warming, watchpoint scans, profiling
//! windows) dominate every strategy's wall clock, and they all reduce to
//! "generate a contiguous range of accesses and fold them into some
//! state". This module measures exactly that kernel both ways — through
//! the stateless [`access_at`](delorean_trace::Workload::access_at)
//! fallback ([`IndexedCursor`]) and through the workload's streaming
//! [`cursor`](delorean_trace::Workload::cursor) — and is shared by the
//! `warmloop` criterion bench and the `bench_pr2` JSON perf harness.

use delorean_trace::{AccessCursor, IndexedCursor, Workload, CURSOR_BATCH};
use std::ops::Range;
use std::time::Instant;

/// Which access path a measurement exercised.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessPath {
    /// Per-access regeneration through `access_at` (`IndexedCursor`).
    Indexed,
    /// The workload's streaming cursor.
    Streaming,
}

/// Drain `range` through the chosen access path, folding a checksum so
/// the generation cannot be optimized away. Returns the checksum.
pub fn drain(workload: &dyn Workload, path: AccessPath, range: Range<u64>) -> u64 {
    let mut cursor: Box<dyn AccessCursor + '_> = match path {
        AccessPath::Indexed => Box::new(IndexedCursor::new(workload, range)),
        AccessPath::Streaming => workload.cursor(range),
    };
    let mut buf = Vec::with_capacity(CURSOR_BATCH);
    let mut acc = 0u64;
    while cursor.fill(&mut buf, CURSOR_BATCH) > 0 {
        for a in &buf {
            acc ^= a
                .addr
                .0
                .wrapping_add(a.pc.0)
                .rotate_left((a.index % 63) as u32);
        }
    }
    acc
}

/// One measured warm-loop rate.
#[derive(Copy, Clone, Debug)]
pub struct WarmLoopRate {
    /// Accesses generated per wall-clock second (best of `repeats`).
    pub accesses_per_sec: f64,
    /// Fold checksum (identical across paths by the cursor contract).
    pub checksum: u64,
}

/// Measure accesses/second of `path` over `range`, best of `repeats`
/// runs (wall-clock noise shrinks the rate, never inflates it).
pub fn measure(
    workload: &dyn Workload,
    path: AccessPath,
    range: Range<u64>,
    repeats: u32,
) -> WarmLoopRate {
    let n = range.end.saturating_sub(range.start);
    let mut best = f64::MAX;
    let mut checksum = 0;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        checksum = drain(workload, path, range.clone());
        best = best.min(t.elapsed().as_secs_f64());
    }
    WarmLoopRate {
        accesses_per_sec: n as f64 / best.max(1e-12),
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_trace::{spec_workload, Scale};

    #[test]
    fn both_paths_fold_the_same_checksum() {
        let w = spec_workload("perlbench", Scale::tiny(), 42).unwrap();
        let a = drain(&w, AccessPath::Indexed, 1_000..9_000);
        let b = drain(&w, AccessPath::Streaming, 1_000..9_000);
        assert_eq!(a, b);
    }

    #[test]
    fn measure_reports_a_positive_rate() {
        let w = spec_workload("bwaves", Scale::tiny(), 42).unwrap();
        let r = measure(&w, AccessPath::Streaming, 0..20_000, 1);
        assert!(r.accesses_per_sec > 0.0);
    }
}
