//! Hierarchy warm-loop microbenchmarks: the pre-PR 4 per-access path vs
//! the batched slice-at-a-time `Hierarchy::warm_range`, per workload and
//! machine variant.
//!
//! The functional-warming baselines spend their wall clock in exactly
//! this loop; these benches track both hierarchy paths side by side so a
//! regression in either is visible. `bench_pr4` emits the same
//! comparison as machine-readable JSON (`BENCH_PR4.json`), including the
//! equivalence oracle.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use delorean_bench::hierloop::{measure_warm_loop, WarmPath};
use delorean_cache::MachineConfig;
use delorean_trace::Scale;

const ACCESSES: u64 = 100_000;

fn bench_both_paths(c: &mut Criterion, group: &str, name: &str, machine: &MachineConfig) {
    let w = delorean_trace::spec_workload(name, Scale::demo(), 42).unwrap();
    let mut g = c.benchmark_group(group);
    g.throughput(Throughput::Elements(ACCESSES));
    g.bench_function("per-access", |b| {
        b.iter(|| {
            black_box(
                measure_warm_loop(&w, machine, WarmPath::PerAccess, 0..ACCESSES, 1)
                    .accesses_per_sec,
            )
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            black_box(
                measure_warm_loop(&w, machine, WarmPath::Batched, 0..ACCESSES, 1).accesses_per_sec,
            )
        })
    });
    g.finish();
}

fn warm_suite(c: &mut Criterion) {
    let table1 = MachineConfig::for_scale(Scale::demo());
    // Hit-dominated, mixed, and miss-heavy representatives.
    for name in ["bwaves", "hmmer", "mcf"] {
        bench_both_paths(c, &format!("hierloop/table1/{name}"), name, &table1);
    }
    let prefetch = table1.with_prefetch(true);
    bench_both_paths(c, "hierloop/prefetch/mcf", "mcf", &prefetch);
}

criterion_group!(benches, warm_suite);
criterion_main!(benches);
