//! Warm-loop microbenchmarks: indexed (`access_at`) vs streaming
//! (`Workload::cursor`) access generation, per workload family.
//!
//! The warm loops are the dominant hot path of every sampling strategy;
//! these benches track the two access paths side by side so a regression
//! in either is visible. `bench_pr2` emits the same comparison as
//! machine-readable JSON (`BENCH_PR2.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use delorean_bench::warmloop::{drain, AccessPath};
use delorean_trace::{Pattern, PhasedWorkloadBuilder, RecordedTrace, Scale, StreamSpec, Workload};

const ACCESSES: u64 = 100_000;

fn bench_both_paths(c: &mut Criterion, group: &str, workload: &dyn Workload) {
    let mut g = c.benchmark_group(group);
    g.throughput(Throughput::Elements(ACCESSES));
    g.bench_function("indexed", |b| {
        b.iter(|| {
            black_box(drain(
                workload,
                AccessPath::Indexed,
                1_000..1_000 + ACCESSES,
            ))
        })
    });
    g.bench_function("streaming", |b| {
        b.iter(|| {
            black_box(drain(
                workload,
                AccessPath::Streaming,
                1_000..1_000 + ACCESSES,
            ))
        })
    });
    g.finish();
}

fn phased_suite(c: &mut Criterion) {
    // One representative per suite behaviour class: hot-set dominated,
    // permutation-walk heavy, sequential sweeps, random tails.
    for name in ["bwaves", "perlbench", "lbm", "mcf"] {
        let w = delorean_trace::spec_workload(name, Scale::demo(), 42).unwrap();
        bench_both_paths(c, &format!("warmloop/phased/{name}"), &w);
    }
}

fn pattern_primitives(c: &mut Criterion) {
    let patterns = [
        (
            "stream",
            Pattern::Stream {
                lines: 4096,
                stride_lines: 3,
            },
        ),
        ("walk", Pattern::PermutationWalk { lines: 4096 }),
        ("random", Pattern::RandomUniform { lines: 4096 }),
        (
            "strided",
            Pattern::StridedScan {
                lines: 512,
                stride_lines: 8,
            },
        ),
    ];
    for (tag, pattern) in patterns {
        let w = PhasedWorkloadBuilder::new(format!("pattern-{tag}"), 7)
            .phase(1_000_000, vec![StreamSpec::new(pattern, 1)])
            .build()
            .unwrap();
        bench_both_paths(c, &format!("warmloop/pattern/{tag}"), &w);
    }
}

fn recorded_replay(c: &mut Criterion) {
    let src = delorean_trace::spec_workload("hmmer", Scale::tiny(), 42).unwrap();
    let trace = RecordedTrace::capture(&src, 0..50_000);
    bench_both_paths(c, "warmloop/recorded/hmmer", &trace);
}

criterion_group!(benches, phased_suite, pattern_primitives, recorded_replay);
criterion_main!(benches);
