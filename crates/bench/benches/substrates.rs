//! Criterion microbenchmarks of the hot substrates: these set the wall
//! clock of every experiment, so regressions here directly slow the
//! figure reproduction.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use delorean_cache::{Cache, CacheConfig, Hierarchy, MachineConfig, ReplacementPolicy};
use delorean_cpu::TournamentPredictor;
use delorean_statmodel::exact::ExactStackProcessor;
use delorean_statmodel::ReuseProfile;
use delorean_trace::{mix64, spec_workload, LineAddr, Pc, Scale, WorkloadExt};
use delorean_virt::WatchSet;

fn workload_generation(c: &mut Criterion) {
    let w = spec_workload("mcf", Scale::demo(), 42).unwrap();
    let mut g = c.benchmark_group("workload");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("access_at_100k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for a in w.iter_range(1_000_000..1_100_000) {
                acc ^= a.addr.0;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn cache_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(100_000));
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::PLru,
        ReplacementPolicy::Random,
    ] {
        let mut cache = Cache::new(CacheConfig::new(128 << 10, 8).with_replacement(policy));
        g.bench_function(format!("access_100k_{policy}"), |b| {
            b.iter(|| {
                let mut hits = 0u64;
                for i in 0..100_000u64 {
                    if cache.access(LineAddr(mix64(3, i) % 4096)).is_hit() {
                        hits += 1;
                    }
                }
                black_box(hits)
            })
        });
    }
    g.finish();
}

fn hierarchy_access(c: &mut Criterion) {
    let machine = MachineConfig::for_scale(Scale::demo());
    let w = spec_workload("leslie3d", Scale::demo(), 42).unwrap();
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("access_data_100k", |b| {
        let mut h = Hierarchy::new(&machine);
        b.iter(|| {
            for a in w.iter_range(0..100_000) {
                h.access_data(a.pc, a.line(), a.index);
            }
            black_box(h.stats().data_accesses())
        })
    });
    g.finish();
}

fn statstack(c: &mut Criterion) {
    let mut profile = ReuseProfile::new();
    for i in 0..100_000u64 {
        profile.record(mix64(9, i) % 1_000_000, 1.0);
    }
    c.bench_function("statstack_miss_ratio_curve_10_sizes", |b| {
        let sizes: Vec<u64> = (0..10).map(|i| 256u64 << i).collect();
        b.iter(|| black_box(profile.miss_ratio_curve(&sizes)))
    });
}

fn exact_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_oracle");
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("stack_distance_50k", |b| {
        b.iter(|| {
            let mut p = ExactStackProcessor::new();
            let mut sum = 0u64;
            for i in 0..50_000u64 {
                if let Some(sd) = p.access(LineAddr(mix64(5, i) % 8192)) {
                    sum += sd;
                }
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn predictor(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("tournament_100k", |b| {
        let mut p = TournamentPredictor::new();
        b.iter(|| {
            for i in 0..100_000u64 {
                p.execute(Pc(0x400 + (i % 64) * 4), !mix64(7, i).is_multiple_of(3));
            }
            black_box(p.stats().mispredicts)
        })
    });
    g.finish();
}

fn watchpoints(c: &mut Criterion) {
    let mut w = WatchSet::new();
    for i in 0..200u64 {
        w.watch_line(LineAddr(i * 300));
    }
    let mut g = c.benchmark_group("watchpoints");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("classify_100k", |b| {
        b.iter(|| {
            let mut traps = 0u64;
            for i in 0..100_000u64 {
                if w.classify_line(LineAddr(mix64(11, i) % 65_536)).traps() {
                    traps += 1;
                }
            }
            black_box(traps)
        })
    });
    g.finish();
}

fn line_tables(c: &mut Criterion) {
    // The PR 3 lookup substrate against std: the per-access probe that
    // every warm loop pays. Populated at a typical key-set density.
    let mut flat: delorean_trace::LineMap<u64> = delorean_trace::LineMap::new();
    let mut std_map: std::collections::HashMap<LineAddr, u64> = std::collections::HashMap::new();
    let mut filter = delorean_trace::InterestFilter::with_capacity_for(512);
    for i in 0..512u64 {
        let line = LineAddr(mix64(13, i) % 65_536);
        flat.insert(line, i);
        std_map.insert(line, i);
        filter.insert_line(line);
    }
    let mut g = c.benchmark_group("line_tables");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("std_hashmap_probe_100k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..100_000u64 {
                if std_map.contains_key(&LineAddr(mix64(17, i) % 65_536)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("flat_linemap_probe_100k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..100_000u64 {
                if flat.contains(LineAddr(mix64(17, i) % 65_536)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("interest_filter_probe_100k", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..100_000u64 {
                if filter.contains_line(LineAddr(mix64(17, i) % 65_536)) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    workload_generation,
    cache_access,
    hierarchy_access,
    statstack,
    exact_stack,
    predictor,
    watchpoints,
    line_tables
);
criterion_main!(benches);
