//! `cargo bench` entry point that regenerates every paper table and
//! figure (custom harness, not criterion — each "benchmark" is one
//! experiment).
//!
//! Scale is `tiny` by default so `cargo bench` stays quick; set
//! `DELOREAN_BENCH_SCALE=demo` (or `paper`) and optionally
//! `DELOREAN_BENCH_FILTER=<name>` to reproduce the recorded
//! EXPERIMENTS.md numbers (the same output `run_all --scale demo`
//! produces).

use delorean_bench::experiments::{
    ablation, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14, table1,
    LLC_512MB, LLC_8MB,
};
use delorean_bench::{compare_all, ExpOptions};
use delorean_trace::Scale;
use std::time::Instant;

fn main() {
    let scale = match std::env::var("DELOREAN_BENCH_SCALE").as_deref() {
        Ok("paper") => Scale::paper(),
        Ok("demo") => Scale::demo(),
        _ => Scale::tiny(),
    };
    let mut opts = ExpOptions {
        scale,
        ..ExpOptions::default()
    };
    if scale == Scale::tiny() {
        opts.regions = Some(3);
    }
    if let Ok(f) = std::env::var("DELOREAN_BENCH_FILTER") {
        opts.filter = Some(f);
    }
    eprintln!(
        "# figures bench at scale {} (set DELOREAN_BENCH_SCALE=demo for the recorded runs)",
        opts.scale
    );

    let timed = |name: &str, f: &mut dyn FnMut()| {
        let t = Instant::now();
        f();
        eprintln!("[{name}] regenerated in {:.1}s", t.elapsed().as_secs_f64());
    };

    timed("table1", &mut || println!("{}", table1::run(&opts)));
    let mut rows8 = Vec::new();
    timed("sweep@8MiB (figs 5-9)", &mut || {
        rows8 = compare_all(&opts, LLC_8MB);
    });
    println!("{}", fig05::table(&rows8));
    println!("{}", fig06::table(&rows8));
    println!("{}", fig07::table(&rows8));
    println!("{}", fig08::table(&rows8));
    println!("{}", fig09::table(&rows8));
    timed("fig10", &mut || {
        println!("{}", fig10::table(&compare_all(&opts, LLC_512MB)))
    });
    timed("fig11", &mut || println!("{}", fig11::run(&opts)));
    timed("fig12", &mut || println!("{}", fig12::run(&opts)));
    timed("fig13", &mut || {
        for t in fig13::run(&opts) {
            println!("{t}");
        }
    });
    timed("fig14", &mut || {
        for t in fig14::run(&opts) {
            println!("{t}");
        }
    });
    timed("ablations", &mut || {
        println!("{}", ablation::explorer_depth(&opts));
        println!("{}", ablation::warming_miss_policy(&opts));
        println!("{}", ablation::pipeline_vs_serial(&opts));
    });
}
