//! The detailed-simulation loop shared by every sampling strategy.
//!
//! The loop walks instructions, resolves branches against the tournament
//! predictor, issues memory accesses, and charges the interval model. What
//! distinguishes SMARTS from CoolSim from DeLorean is only *where the
//! memory outcome comes from* — a fully warmed simulated hierarchy, or a
//! statistical classification over a lukewarm one — abstracted here as
//! [`OutcomeSource`].

use crate::predictor::TournamentPredictor;
use crate::timing::{IntervalCore, TimingConfig};
use delorean_cache::MemLevel;
use delorean_trace::{MemAccess, Workload, CURSOR_BATCH};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Supplies the serving level of each memory access during detailed
/// simulation.
///
/// Implemented for every `FnMut(&MemAccess, u64) -> MemLevel`, so warming
/// strategies are usually written as closures over their hierarchy and
/// statistical model.
pub trait OutcomeSource {
    /// The level that serves `access` at global access-time `now`.
    fn outcome(&mut self, access: &MemAccess, now: u64) -> MemLevel;
}

impl<F: FnMut(&MemAccess, u64) -> MemLevel> OutcomeSource for F {
    fn outcome(&mut self, access: &MemAccess, now: u64) -> MemLevel {
        self(access, now)
    }
}

/// Result of simulating one detailed region.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DetailedResult {
    /// Instructions simulated.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: f64,
    /// Memory accesses issued.
    pub mem_accesses: u64,
    /// Accesses served per level: `[L1, MSHR, LLC, Memory]`.
    pub level_counts: [u64; 4],
    /// Dynamic branches resolved.
    pub branches: u64,
    /// Branches mispredicted.
    pub mispredicts: u64,
}

impl DetailedResult {
    /// Cycles per instruction (0 for an empty region).
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles / self.instructions as f64
        }
    }

    /// LLC misses (memory-served accesses) per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.level_counts[3] as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Accumulate another region's result.
    pub fn merge(&mut self, other: &DetailedResult) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.mem_accesses += other.mem_accesses;
        for (a, b) in self.level_counts.iter_mut().zip(&other.level_counts) {
            *a += b;
        }
        self.branches += other.branches;
        self.mispredicts += other.mispredicts;
    }
}

/// Simulate the instructions in `instr_range` in detail.
///
/// `source` provides per-access outcomes; `predictor` is trained in place
/// (so lukewarm warming naturally carries into the measured region).
pub fn simulate_detailed(
    workload: &dyn Workload,
    instr_range: Range<u64>,
    cfg: &TimingConfig,
    predictor: &mut TournamentPredictor,
    source: &mut dyn OutcomeSource,
) -> DetailedResult {
    let mut core = IntervalCore::new(*cfg);
    let branch_model = workload.branch_model();
    let p = workload.mem_period().max(1);
    let start = instr_range.start;
    let mut result = DetailedResult::default();

    // The region's accesses are the indices k with k*p in the range; pull
    // them through the workload's streaming cursor in batches instead of
    // a stateless `access_at` regeneration per access.
    let mut cursor = workload.cursor(instr_range.start.div_ceil(p)..instr_range.end.div_ceil(p));
    let mut batch: Vec<MemAccess> = Vec::with_capacity(CURSOR_BATCH);
    let mut batch_pos = 0usize;

    for i in instr_range {
        core.retire(1);
        if let Some(ev) = branch_model.branch_at(i) {
            result.branches += 1;
            let correct = predictor.execute(ev.pc, ev.taken);
            if !correct {
                result.mispredicts += 1;
            }
            core.branch(!correct);
        }
        if i % p == 0 {
            if batch_pos == batch.len() {
                cursor.fill(&mut batch, CURSOR_BATCH);
                batch_pos = 0;
                debug_assert!(!batch.is_empty(), "cursor exhausted before the range");
            }
            let access = batch[batch_pos];
            batch_pos += 1;
            debug_assert_eq!(access.index, i / p);
            let level = source.outcome(&access, access.index);
            result.mem_accesses += 1;
            let idx = match level {
                MemLevel::L1 => 0,
                MemLevel::Mshr => 1,
                MemLevel::Llc => 2,
                MemLevel::Memory => 3,
            };
            result.level_counts[idx] += 1;
            core.mem_access(level, i - start);
        }
    }
    result.instructions = core.instructions();
    result.cycles = core.cycles();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_cache::{Hierarchy, MachineConfig};
    use delorean_trace::{spec_workload, Scale};

    #[test]
    fn all_l1_hits_give_near_base_cpi() {
        let w = spec_workload("bwaves", Scale::tiny(), 1).unwrap();
        let mut pred = TournamentPredictor::new();
        // Pre-warm the predictor so branch noise is small.
        let bm = w.branch_model();
        for b in 0..20_000u64 {
            let e = bm.branch_event(b);
            pred.execute(e.pc, e.taken);
        }
        let mut always_l1 = |_: &MemAccess, _: u64| MemLevel::L1;
        let r = simulate_detailed(
            &w,
            0..10_000,
            &TimingConfig::table1(),
            &mut pred,
            &mut always_l1,
        );
        assert_eq!(r.instructions, 10_000);
        assert!(r.cpi() > 0.1 && r.cpi() < 0.6, "cpi = {}", r.cpi());
        assert_eq!(r.level_counts[0], r.mem_accesses);
    }

    #[test]
    fn memory_bound_region_has_high_cpi() {
        let w = spec_workload("mcf", Scale::tiny(), 1).unwrap();
        let mut pred = TournamentPredictor::new();
        let mut all_memory = |_: &MemAccess, _: u64| MemLevel::Memory;
        let r = simulate_detailed(
            &w,
            0..10_000,
            &TimingConfig::table1(),
            &mut pred,
            &mut all_memory,
        );
        assert!(r.cpi() > 5.0, "cpi = {}", r.cpi());
        assert_eq!(r.level_counts[3], r.mem_accesses);
    }

    #[test]
    fn hierarchy_as_source_matches_direct_simulation() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap();
        let machine = MachineConfig::for_scale(Scale::tiny());
        let mut h = Hierarchy::new(&machine);
        let mut pred = TournamentPredictor::new();
        let mut src = |a: &MemAccess, now: u64| h.access_data(a.pc, a.line(), now);
        let r = simulate_detailed(&w, 0..30_000, &TimingConfig::table1(), &mut pred, &mut src);
        let total: u64 = r.level_counts.iter().sum();
        assert_eq!(total, r.mem_accesses);
        assert_eq!(r.mem_accesses, 30_000 / w.mem_period());
        assert!(r.cpi() > 0.1);
    }

    #[test]
    fn results_merge_additively() {
        let mut a = DetailedResult {
            instructions: 100,
            cycles: 50.0,
            mem_accesses: 30,
            level_counts: [10, 5, 10, 5],
            branches: 20,
            mispredicts: 2,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.instructions, 200);
        assert_eq!(a.level_counts, [20, 10, 20, 10]);
        assert!((a.cpi() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unaligned_ranges_issue_correct_access_count() {
        let w = spec_workload("hmmer", Scale::tiny(), 1).unwrap(); // period 3
        let mut pred = TournamentPredictor::new();
        let mut src = |_: &MemAccess, _: u64| MemLevel::L1;
        let r = simulate_detailed(&w, 7..22, &TimingConfig::table1(), &mut pred, &mut src);
        // Multiples of 3 in [7, 22): 9, 12, 15, 18, 21 → 5 accesses.
        assert_eq!(r.mem_accesses, 5);
        assert_eq!(r.instructions, 15);
    }
}
