//! The out-of-order interval timing model.

use delorean_cache::MemLevel;
use serde::{Deserialize, Serialize};

/// Timing parameters of the modeled core (CPU half of Table 1).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Issue width (Table 1: 8).
    pub issue_width: u32,
    /// Reorder-buffer entries (Table 1: 192); bounds MLP overlap.
    pub rob_entries: u32,
    /// Branch misprediction penalty, cycles.
    pub mispredict_penalty: u32,
    /// L1 hit latency beyond the pipelined base, cycles (usually hidden).
    pub l1_hit_extra: u32,
    /// Extra latency of an MSHR (delayed) hit, cycles.
    pub mshr_hit_extra: u32,
    /// LLC hit latency, cycles.
    pub llc_latency: u32,
    /// Main memory latency, cycles.
    pub memory_latency: u32,
    /// Maximum overlapped misses within one ROB window (MLP ceiling).
    pub max_mlp: u32,
}

impl TimingConfig {
    /// The Table 1 core.
    pub fn table1() -> Self {
        TimingConfig {
            issue_width: 8,
            rob_entries: 192,
            mispredict_penalty: 15,
            l1_hit_extra: 0,
            mshr_hit_extra: 6,
            llc_latency: 30,
            memory_latency: 200,
            max_mlp: 6,
        }
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.issue_width == 0 || self.rob_entries == 0 || self.max_mlp == 0 {
            return Err("issue width, ROB and MLP must be positive".into());
        }
        Ok(())
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::table1()
    }
}

/// Cycle breakdown accumulated by [`IntervalCore`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CpiBreakdown {
    /// Cycles from issue-width-limited retirement.
    pub base: f64,
    /// Cycles from branch mispredictions.
    pub branch: f64,
    /// Cycles from MSHR (delayed) hits.
    pub mshr: f64,
    /// Cycles from LLC hits (L2 access latency).
    pub llc: f64,
    /// Cycles from memory accesses (LLC misses), after MLP overlap.
    pub memory: f64,
}

impl CpiBreakdown {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.base + self.branch + self.mshr + self.llc + self.memory
    }
}

/// Streaming interval model: feed it retired instructions, branch
/// resolutions and memory outcomes; read back cycles and CPI.
///
/// Memory-level parallelism: a memory-latency event whose triggering
/// instruction is within `rob_entries` instructions of the previous one is
/// considered overlapped and charged `memory_latency / max_mlp` instead of
/// the full latency (the first miss of a burst pays in full). The same
/// window logic, with a lighter discount, applies to LLC hits.
///
/// ```
/// use delorean_cpu::{IntervalCore, TimingConfig};
///
/// let mut core = IntervalCore::new(TimingConfig::table1());
/// core.retire(1000);
/// assert!((core.cpi() - 1.0 / 8.0).abs() < 1e-9); // pure issue-limited
/// ```
#[derive(Clone, Debug)]
pub struct IntervalCore {
    cfg: TimingConfig,
    instrs: u64,
    breakdown: CpiBreakdown,
    last_memory_icount: Option<u64>,
    last_llc_icount: Option<u64>,
}

impl IntervalCore {
    /// A core with the given timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: TimingConfig) -> Self {
        // lint:allow(no-unwrap): documented # Panics contract — construction fails fast on an invalid config
        cfg.validate().expect("invalid timing config");
        IntervalCore {
            cfg,
            instrs: 0,
            breakdown: CpiBreakdown::default(),
            last_memory_icount: None,
            last_llc_icount: None,
        }
    }

    /// Retire `n` instructions (charges base cycles).
    #[inline]
    pub fn retire(&mut self, n: u64) {
        self.instrs += n;
        self.breakdown.base += n as f64 / self.cfg.issue_width as f64;
    }

    /// Account a resolved branch.
    #[inline]
    pub fn branch(&mut self, mispredicted: bool) {
        if mispredicted {
            self.breakdown.branch += self.cfg.mispredict_penalty as f64;
        }
    }

    /// Account a memory access served at `level`, issued by the
    /// instruction with (local) index `icount`.
    #[inline]
    pub fn mem_access(&mut self, level: MemLevel, icount: u64) {
        let rob = self.cfg.rob_entries as u64;
        match level {
            MemLevel::L1 => {
                self.breakdown.base += self.cfg.l1_hit_extra as f64;
            }
            MemLevel::Mshr => {
                self.breakdown.mshr += self.cfg.mshr_hit_extra as f64;
            }
            MemLevel::Llc => {
                let overlapped = self
                    .last_llc_icount
                    .is_some_and(|p| icount.saturating_sub(p) < rob / 2);
                let lat = self.cfg.llc_latency as f64;
                self.breakdown.llc += if overlapped { lat / 3.0 } else { lat };
                self.last_llc_icount = Some(icount);
            }
            MemLevel::Memory => {
                let overlapped = self
                    .last_memory_icount
                    .is_some_and(|p| icount.saturating_sub(p) < rob);
                let lat = self.cfg.memory_latency as f64;
                self.breakdown.memory += if overlapped {
                    lat / self.cfg.max_mlp as f64
                } else {
                    lat
                };
                self.last_memory_icount = Some(icount);
            }
        }
    }

    /// Instructions retired.
    pub fn instructions(&self) -> u64 {
        self.instrs
    }

    /// Total cycles.
    pub fn cycles(&self) -> f64 {
        self.breakdown.total()
    }

    /// Cycles per instruction (0 before any retirement).
    pub fn cpi(&self) -> f64 {
        if self.instrs == 0 {
            0.0
        } else {
            self.cycles() / self.instrs as f64
        }
    }

    /// The cycle breakdown.
    pub fn breakdown(&self) -> &CpiBreakdown {
        &self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cpi_is_inverse_width() {
        let mut c = IntervalCore::new(TimingConfig::table1());
        c.retire(800);
        assert!((c.cpi() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn mispredicts_add_penalty() {
        let mut c = IntervalCore::new(TimingConfig::table1());
        c.retire(1000);
        for _ in 0..10 {
            c.branch(true);
        }
        c.branch(false);
        assert!((c.breakdown().branch - 150.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_memory_misses_pay_full_latency() {
        let mut c = IntervalCore::new(TimingConfig::table1());
        c.retire(10_000);
        c.mem_access(MemLevel::Memory, 0);
        c.mem_access(MemLevel::Memory, 5_000);
        assert!((c.breakdown().memory - 400.0).abs() < 1e-12);
    }

    #[test]
    fn clustered_misses_overlap() {
        let cfg = TimingConfig::table1();
        let mut c = IntervalCore::new(cfg);
        c.retire(1000);
        c.mem_access(MemLevel::Memory, 0);
        for i in 1..6u64 {
            c.mem_access(MemLevel::Memory, i * 10); // well inside the ROB
        }
        let expect = 200.0 + 5.0 * 200.0 / cfg.max_mlp as f64;
        assert!(
            (c.breakdown().memory - expect).abs() < 1e-9,
            "memory cycles {}",
            c.breakdown().memory
        );
    }

    #[test]
    fn llc_hits_cost_less_than_memory() {
        let mut a = IntervalCore::new(TimingConfig::table1());
        a.retire(1000);
        a.mem_access(MemLevel::Llc, 0);
        let mut b = IntervalCore::new(TimingConfig::table1());
        b.retire(1000);
        b.mem_access(MemLevel::Memory, 0);
        assert!(a.cycles() < b.cycles());
    }

    #[test]
    fn l1_and_mshr_hits_are_cheap() {
        let cfg = TimingConfig::table1();
        let mut c = IntervalCore::new(cfg);
        c.retire(100);
        c.mem_access(MemLevel::L1, 0);
        c.mem_access(MemLevel::Mshr, 1);
        let expect = 100.0 / 8.0 + cfg.mshr_hit_extra as f64;
        assert!((c.cycles() - expect).abs() < 1e-9);
    }

    #[test]
    fn cpi_of_empty_core_is_zero() {
        let c = IntervalCore::new(TimingConfig::table1());
        assert_eq!(c.cpi(), 0.0);
    }

    #[test]
    fn rob_boundary_separates_bursts() {
        let cfg = TimingConfig::table1();
        let mut c = IntervalCore::new(cfg);
        c.retire(10_000);
        c.mem_access(MemLevel::Memory, 0);
        // Exactly at the ROB boundary: NOT overlapped (window is strict).
        c.mem_access(MemLevel::Memory, cfg.rob_entries as u64);
        assert!((c.breakdown().memory - 400.0).abs() < 1e-9);
        // One instruction inside: overlapped.
        c.mem_access(MemLevel::Memory, 2 * cfg.rob_entries as u64 - 1);
        let expect = 400.0 + 200.0 / cfg.max_mlp as f64;
        assert!((c.breakdown().memory - expect).abs() < 1e-9);
    }

    #[test]
    fn breakdown_components_sum_to_total() {
        let mut c = IntervalCore::new(TimingConfig::table1());
        c.retire(5_000);
        for i in 0..40u64 {
            c.branch(i % 7 == 0);
            c.mem_access(
                match i % 4 {
                    0 => MemLevel::L1,
                    1 => MemLevel::Mshr,
                    2 => MemLevel::Llc,
                    _ => MemLevel::Memory,
                },
                i * 97,
            );
        }
        let b = c.breakdown();
        let sum = b.base + b.branch + b.mshr + b.llc + b.memory;
        assert!((sum - c.cycles()).abs() < 1e-9);
        assert!(b.branch > 0.0 && b.mshr > 0.0 && b.llc > 0.0 && b.memory > 0.0);
    }

    #[test]
    fn wider_issue_lowers_base_cpi() {
        let narrow = TimingConfig {
            issue_width: 2,
            ..TimingConfig::table1()
        };
        let mut a = IntervalCore::new(narrow);
        a.retire(1_000);
        let mut b = IntervalCore::new(TimingConfig::table1());
        b.retire(1_000);
        assert!(a.cpi() > b.cpi());
        assert!((a.cpi() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid timing config")]
    fn zero_width_rejected() {
        let cfg = TimingConfig {
            issue_width: 0,
            ..TimingConfig::table1()
        };
        let _ = IntervalCore::new(cfg);
    }
}
