//! CPU timing substrate: branch prediction and an out-of-order interval
//! timing model.
//!
//! The paper's detailed regions run on gem5's default 8-wide out-of-order
//! x86 CPU (Table 1). Reimplementing a cycle-accurate O3 pipeline is out of
//! scope for a methodology reproduction — what the methodology needs is a
//! deterministic model that maps per-access cache outcomes to CPI with
//! realistic first-order effects:
//!
//! * base throughput limited by issue width,
//! * branch misprediction penalties fed by a real (warmable!) tournament
//!   predictor,
//! * latency costs per serving level, with ROB-bounded memory-level
//!   parallelism: independent LLC misses within a reorder-buffer window
//!   overlap rather than serialize.
//!
//! That is the interval-analysis family of models (Carlson & Eeckhout's
//! Sniper lineage), which this crate implements in [`IntervalCore`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod detailed;
mod predictor;
mod timing;

pub use detailed::{simulate_detailed, DetailedResult, OutcomeSource};
pub use predictor::{BranchStats, TournamentPredictor};
pub use timing::{CpiBreakdown, IntervalCore, TimingConfig};
