//! Tournament branch predictor (Table 1).
//!
//! Local 2-bit counters (2 k entries), global 2-bit counters (8 k entries,
//! indexed by global history), 2-bit choice counters (8 k entries) and a
//! 4 k-entry BTB. The predictor is real state that the 30 k-instruction
//! detailed warming must warm — exactly like the caches, just much faster
//! to warm, which is why the paper's lukewarm warming suffices for it.

use delorean_trace::Pc;
use serde::{Deserialize, Serialize};

const LOCAL_ENTRIES: usize = 2 * 1024;
const GLOBAL_ENTRIES: usize = 8 * 1024;
const CHOICE_ENTRIES: usize = 8 * 1024;
const BTB_ENTRIES: usize = 4 * 1024;

/// Prediction statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Dynamic branches observed.
    pub branches: u64,
    /// Direction mispredictions.
    pub mispredicts: u64,
    /// Taken branches whose target was absent from the BTB.
    pub btb_misses: u64,
}

impl BranchStats {
    /// Misprediction rate in `[0, 1]` (0 when no branches were seen).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// The Table 1 tournament predictor.
///
/// ```
/// use delorean_cpu::TournamentPredictor;
/// use delorean_trace::Pc;
///
/// let mut p = TournamentPredictor::new();
/// // A strongly taken branch becomes predictable after a few occurrences.
/// for _ in 0..16 {
///     p.execute(Pc(0x40), true);
/// }
/// assert!(p.execute(Pc(0x40), true));
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct TournamentPredictor {
    local: Vec<u8>,
    global: Vec<u8>,
    choice: Vec<u8>,
    btb: Vec<u64>,
    history: u64,
    stats: BranchStats,
}

impl TournamentPredictor {
    /// A predictor with all counters weakly not-taken and an empty BTB.
    pub fn new() -> Self {
        TournamentPredictor {
            local: vec![1; LOCAL_ENTRIES],
            global: vec![1; GLOBAL_ENTRIES],
            choice: vec![1; CHOICE_ENTRIES],
            btb: vec![u64::MAX; BTB_ENTRIES],
            history: 0,
            stats: BranchStats::default(),
        }
    }

    #[inline]
    fn local_index(pc: Pc) -> usize {
        (pc.0 as usize >> 2) % LOCAL_ENTRIES
    }

    #[inline]
    fn global_index(&self) -> usize {
        (self.history as usize) % GLOBAL_ENTRIES
    }

    #[inline]
    fn choice_index(&self, pc: Pc) -> usize {
        ((pc.0 >> 2) ^ self.history) as usize % CHOICE_ENTRIES
    }

    #[inline]
    fn btb_index(pc: Pc) -> usize {
        (pc.0 as usize >> 2) % BTB_ENTRIES
    }

    /// Predict the direction of the branch at `pc` without updating state.
    pub fn predict(&self, pc: Pc) -> bool {
        let local = self.local[Self::local_index(pc)] >= 2;
        let global = self.global[self.global_index()] >= 2;
        let use_global = self.choice[self.choice_index(pc)] >= 2;
        if use_global {
            global
        } else {
            local
        }
    }

    /// Resolve the branch: predict, train all tables, update history and
    /// BTB. Returns `true` if the prediction (direction *and* BTB presence
    /// for taken branches) was correct.
    pub fn execute(&mut self, pc: Pc, taken: bool) -> bool {
        self.stats.branches += 1;
        let li = Self::local_index(pc);
        let gi = self.global_index();
        let ci = self.choice_index(pc);
        let local_pred = self.local[li] >= 2;
        let global_pred = self.global[gi] >= 2;
        let use_global = self.choice[ci] >= 2;
        let direction = if use_global { global_pred } else { local_pred };

        // Choice trains toward whichever component was right (when they
        // disagree).
        if local_pred != global_pred {
            if global_pred == taken {
                self.choice[ci] = (self.choice[ci] + 1).min(3);
            } else {
                self.choice[ci] = self.choice[ci].saturating_sub(1);
            }
        }
        bump(&mut self.local[li], taken);
        bump(&mut self.global[gi], taken);
        self.history = (self.history << 1) | taken as u64;

        let mut correct = direction == taken;
        if taken {
            let bi = Self::btb_index(pc);
            if self.btb[bi] != pc.0 {
                self.stats.btb_misses += 1;
                self.btb[bi] = pc.0;
                correct = false; // no target to redirect to
            }
        }
        if !correct {
            self.stats.mispredicts += 1;
        }
        correct
    }

    /// Statistics since construction or the last reset.
    pub fn stats(&self) -> &BranchStats {
        &self.stats
    }

    /// Zero the statistics (predictor state is kept).
    pub fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }
}

#[inline]
fn bump(counter: &mut u8, taken: bool) {
    *counter = if taken {
        (*counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    };
}

impl Default for TournamentPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TournamentPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TournamentPredictor")
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use delorean_trace::BranchModel;

    #[test]
    fn learns_strongly_biased_branches() {
        let mut p = TournamentPredictor::new();
        for i in 0..2000u64 {
            p.execute(Pc(0x100 + (i % 8) * 4), true);
        }
        p.reset_stats();
        for i in 0..2000u64 {
            p.execute(Pc(0x100 + (i % 8) * 4), true);
        }
        assert!(
            p.stats().mispredict_rate() < 0.01,
            "rate = {}",
            p.stats().mispredict_rate()
        );
    }

    #[test]
    fn alternating_pattern_is_learned_by_global_history() {
        let mut p = TournamentPredictor::new();
        for i in 0..4000u64 {
            p.execute(Pc(0x200), i % 2 == 0);
        }
        p.reset_stats();
        for i in 0..2000u64 {
            p.execute(Pc(0x200), i % 2 == 0);
        }
        assert!(
            p.stats().mispredict_rate() < 0.05,
            "rate = {}",
            p.stats().mispredict_rate()
        );
    }

    #[test]
    fn random_branches_are_hard() {
        let mut p = TournamentPredictor::new();
        for i in 0..5000u64 {
            p.execute(Pc(0x300), delorean_trace::mix64(9, i).is_multiple_of(2));
        }
        let rate = p.stats().mispredict_rate();
        assert!(rate > 0.3, "random branches should hurt: {rate}");
    }

    #[test]
    fn btb_misses_count_once_per_cold_target() {
        let mut p = TournamentPredictor::new();
        p.execute(Pc(0x40), true);
        p.execute(Pc(0x40), true);
        assert_eq!(p.stats().btb_misses, 1);
    }

    #[test]
    fn predict_is_pure() {
        let mut p = TournamentPredictor::new();
        for i in 0..500u64 {
            p.execute(Pc(0x40 + (i % 4) * 8), i % 3 != 0);
        }
        let pc = Pc(0x48);
        let first = p.predict(pc);
        for _ in 0..10 {
            assert_eq!(p.predict(pc), first, "predict must not mutate");
        }
    }

    #[test]
    fn choice_learns_to_prefer_the_better_component() {
        // A pattern only the global (history) component can capture:
        // direction = parity of the last outcome. Train long enough and
        // the tournament must reach a low misprediction rate, which
        // requires the choice table to route to the global side.
        let mut p = TournamentPredictor::new();
        let mut last = false;
        for i in 0..20_000u64 {
            let taken = !last;
            p.execute(Pc(0x900 + (i % 3) * 4), taken);
            last = taken;
        }
        p.reset_stats();
        let mut last = false;
        for i in 0..5_000u64 {
            let taken = !last;
            p.execute(Pc(0x900 + (i % 3) * 4), taken);
            last = taken;
        }
        assert!(
            p.stats().mispredict_rate() < 0.05,
            "rate {}",
            p.stats().mispredict_rate()
        );
    }

    #[test]
    fn stats_reset_keeps_learned_state() {
        let mut p = TournamentPredictor::new();
        for _ in 0..100 {
            p.execute(Pc(0x10), true);
        }
        p.reset_stats();
        assert_eq!(p.stats().branches, 0);
        // Still predicts taken: the tables were not cleared.
        assert!(p.predict(Pc(0x10)));
    }

    #[test]
    fn workload_branch_model_is_mostly_predictable() {
        // End-to-end sanity: the synthetic branch stream must be learnable
        // to roughly its biased fraction.
        let m = BranchModel::new(77).with_biased_permille(900);
        let mut p = TournamentPredictor::new();
        for b in 0..30_000u64 {
            let e = m.branch_event(b);
            p.execute(e.pc, e.taken);
        }
        p.reset_stats();
        for b in 30_000..60_000u64 {
            let e = m.branch_event(b);
            p.execute(e.pc, e.taken);
        }
        let rate = p.stats().mispredict_rate();
        // ~10% of PCs are 50/50 → floor ≈ 5%; biased PCs ≈ 5% noise.
        assert!(
            rate > 0.02 && rate < 0.20,
            "workload mispredict rate {rate}"
        );
    }
}
