//! LLC stride prefetcher (§6.3.2).
//!
//! An 8-stream per-PC stride prefetcher: each stream tracks the last line
//! and stride of one load PC; two consecutive confirmations of the same
//! stride arm the stream, after which every trigger prefetches the next
//! `degree` lines along the stride.
//!
//! The DeLorean extension feeds this table with *predicted* misses (from
//! the statistical model) instead of simulated misses — the prefetcher does
//! not care where the trigger verdicts come from, which is exactly the
//! paper's point.

use delorean_trace::{mix64, LineAddr, Pc};
use serde::{Deserialize, Serialize};

/// Confidence threshold to arm a stream.
const ARM_THRESHOLD: u8 = 2;

#[derive(Copy, Clone, Debug, Serialize, Deserialize)]
struct Stream {
    pc: Pc,
    last_line: u64,
    stride: i64,
    confidence: u8,
    last_used: u64,
}

/// A fixed-size table of stride-detecting prefetch streams.
///
/// ```
/// use delorean_cache::StridePrefetcher;
/// use delorean_trace::{LineAddr, Pc};
///
/// let mut p = StridePrefetcher::new(8, 2);
/// let pc = Pc(0x400);
/// assert!(p.on_trigger(pc, LineAddr(100)).is_empty()); // first sighting
/// assert!(p.on_trigger(pc, LineAddr(104)).is_empty()); // stride learned
/// let req = p.on_trigger(pc, LineAddr(108));           // armed
/// assert_eq!(req, vec![LineAddr(112), LineAddr(116)]);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct StridePrefetcher {
    streams: Vec<Stream>,
    max_streams: usize,
    degree: u32,
    tick: u64,
    issued: u64,
}

impl StridePrefetcher {
    /// A prefetcher with `max_streams` streams issuing `degree` prefetches
    /// per armed trigger. The paper uses 8 streams.
    ///
    /// # Panics
    ///
    /// Panics if `max_streams` or `degree` is zero.
    pub fn new(max_streams: u32, degree: u32) -> Self {
        assert!(max_streams > 0 && degree > 0, "degenerate prefetcher");
        StridePrefetcher {
            streams: Vec::with_capacity(max_streams as usize),
            max_streams: max_streams as usize,
            degree,
            tick: 0,
            issued: 0,
        }
    }

    /// The paper's configuration: 8 streams, degree 2.
    pub fn paper_default() -> Self {
        Self::new(8, 2)
    }

    /// Number of prefetch requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Feed a trigger (a miss — simulated or predicted) from `pc` touching
    /// `line`; returns the lines to prefetch.
    pub fn on_trigger(&mut self, pc: Pc, line: LineAddr) -> Vec<LineAddr> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(s) = self.streams.iter_mut().find(|s| s.pc == pc) {
            s.last_used = tick;
            let new_stride = line.0 as i64 - s.last_line as i64;
            if new_stride == s.stride && new_stride != 0 {
                s.confidence = s.confidence.saturating_add(1);
            } else {
                s.stride = new_stride;
                s.confidence = 1;
            }
            s.last_line = line.0;
            if s.confidence >= ARM_THRESHOLD && s.stride != 0 {
                let stride = s.stride;
                let base = line.0 as i64;
                let out: Vec<LineAddr> = (1..=self.degree as i64)
                    .map(|k| base + k * stride)
                    .filter(|&l| l >= 0)
                    .map(|l| LineAddr(l as u64))
                    .collect();
                self.issued += out.len() as u64;
                return out;
            }
            return Vec::new();
        }
        // Allocate a stream, replacing the least recently used if full.
        let stream = Stream {
            pc,
            last_line: line.0,
            stride: 0,
            confidence: 0,
            last_used: tick,
        };
        if self.streams.len() < self.max_streams {
            self.streams.push(stream);
        } else if let Some(lru) = self.streams.iter_mut().min_by_key(|s| s.last_used) {
            *lru = stream;
        }
        Vec::new()
    }

    /// Forget all streams (used at region boundaries).
    pub fn reset(&mut self) {
        self.streams.clear();
    }

    /// A [`mix64`] fold over the prefetcher's **behaviorally live**
    /// state, canonicalized: streams in recency order (most recently
    /// triggered first), each with its prediction state (`pc`,
    /// `last_line`, `stride`) and its confidence clamped to the arm
    /// threshold. The `issued` counter is a statistic and excluded.
    ///
    /// Two canonicalizations make behaviorally equal states digest
    /// equal:
    ///
    /// * **Absolute trigger ticks are dropped.** `tick` and the raw
    ///   `last_used` stamps only act through the recency *order*: every
    ///   trigger stamps one stream with a strictly increasing tick, so
    ///   stamps are distinct, LRU replacement compares nothing but
    ///   their order, and a future allocation always outranks them.
    ///   This is what lets a warm-up window replayed from cold — whose
    ///   absolute trigger count differs from the live chain's — commit
    ///   against sequential state when it reproduces the same streams
    ///   in the same recency order.
    /// * **Confidence saturates at the arm threshold.** Any confidence
    ///   at or above the threshold predicts identically: further
    ///   confirmations keep the stream armed, and a stride break resets
    ///   to 1 regardless of how high it was.
    pub fn state_digest(&self, seed: u64) -> u64 {
        let mut d = mix64(
            seed,
            (self.max_streams as u64) << 32 | u64::from(self.degree),
        );
        let mut by_recency: Vec<&Stream> = self.streams.iter().collect();
        by_recency.sort_by_key(|s| std::cmp::Reverse(s.last_used));
        for s in by_recency {
            d = mix64(d, s.pc.0);
            d = mix64(d, s.last_line);
            d = mix64(d, s.stride as u64);
            d = mix64(d, u64::from(s.confidence.min(ARM_THRESHOLD)));
        }
        d
    }

    /// Adopt another prefetcher's state, reusing the stream allocation.
    ///
    /// # Panics
    ///
    /// Panics if the table shape differs.
    pub fn copy_state_from(&mut self, other: &StridePrefetcher) {
        assert_eq!(self.max_streams, other.max_streams, "stream table mismatch");
        assert_eq!(self.degree, other.degree, "prefetch degree mismatch");
        self.streams.clone_from(&other.streams);
        self.tick = other.tick;
        self.issued = other.issued;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_stride_and_prefetches_ahead() {
        let mut p = StridePrefetcher::new(8, 2);
        let pc = Pc(1);
        assert!(p.on_trigger(pc, LineAddr(10)).is_empty());
        assert!(p.on_trigger(pc, LineAddr(20)).is_empty());
        assert_eq!(
            p.on_trigger(pc, LineAddr(30)),
            vec![LineAddr(40), LineAddr(50)]
        );
        assert_eq!(p.issued(), 2);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(8, 1);
        let pc = Pc(1);
        p.on_trigger(pc, LineAddr(10));
        p.on_trigger(pc, LineAddr(20));
        p.on_trigger(pc, LineAddr(30)); // armed
        assert!(p.on_trigger(pc, LineAddr(100)).is_empty()); // break
        assert!(p.on_trigger(pc, LineAddr(107)).is_empty()); // new stride seen once
        assert_eq!(p.on_trigger(pc, LineAddr(114)), vec![LineAddr(121)]);
    }

    #[test]
    fn negative_strides_work_and_clip_at_zero() {
        let mut p = StridePrefetcher::new(8, 2);
        let pc = Pc(1);
        p.on_trigger(pc, LineAddr(10));
        p.on_trigger(pc, LineAddr(7));
        assert_eq!(p.on_trigger(pc, LineAddr(4)), vec![LineAddr(1)]);
        // The second prefetch (line -2) was clipped.
    }

    #[test]
    fn streams_are_capped_with_lru_replacement() {
        let mut p = StridePrefetcher::new(2, 1);
        p.on_trigger(Pc(1), LineAddr(0));
        p.on_trigger(Pc(2), LineAddr(0));
        p.on_trigger(Pc(3), LineAddr(0)); // evicts PC 1
                                          // PC 1 must re-learn from scratch.
        p.on_trigger(Pc(1), LineAddr(8)); // evicts PC 2, fresh stream
        p.on_trigger(Pc(1), LineAddr(16));
        assert!(p.on_trigger(Pc(1), LineAddr(24)) == vec![LineAddr(32)]);
    }

    #[test]
    fn zero_stride_never_arms() {
        let mut p = StridePrefetcher::new(2, 1);
        for _ in 0..10 {
            assert!(p.on_trigger(Pc(1), LineAddr(5)).is_empty());
        }
    }

    #[test]
    fn reset_forgets_streams() {
        let mut p = StridePrefetcher::new(2, 1);
        p.on_trigger(Pc(1), LineAddr(0));
        p.on_trigger(Pc(1), LineAddr(8));
        p.reset();
        assert!(p.on_trigger(Pc(1), LineAddr(16)).is_empty());
        assert!(p.on_trigger(Pc(1), LineAddr(24)).is_empty());
    }

    #[test]
    #[should_panic(expected = "degenerate prefetcher")]
    fn zero_streams_panics() {
        let _ = StridePrefetcher::new(0, 1);
    }

    #[test]
    fn digest_ignores_absolute_trigger_ticks() {
        let mut a = StridePrefetcher::paper_default();
        let mut b = StridePrefetcher::paper_default();
        // b burns 37 ticks on streams that are then forgotten, so its
        // absolute tick and last_used stamps are offset from a's.
        for k in 0..37 {
            b.on_trigger(Pc(0xdead + k), LineAddr(k));
        }
        b.reset();
        for (pc, line) in [
            (Pc(1), LineAddr(10)),
            (Pc(2), LineAddr(100)),
            (Pc(1), LineAddr(20)),
            (Pc(2), LineAddr(108)),
            (Pc(1), LineAddr(30)),
        ] {
            a.on_trigger(pc, line);
            b.on_trigger(pc, line);
        }
        assert_eq!(a.state_digest(7), b.state_digest(7), "tick canonicalized");
        // And the digest promise holds: identical future behavior.
        assert_eq!(
            a.on_trigger(Pc(2), LineAddr(116)),
            b.on_trigger(Pc(2), LineAddr(116))
        );
    }

    #[test]
    fn digest_saturates_confidence_at_the_arm_threshold() {
        let mut a = StridePrefetcher::paper_default();
        let mut b = StridePrefetcher::paper_default();
        // Same stream endpoint (stride 10, last line 40), different
        // confirmation counts (confidence 2 vs 4) — behaviorally equal.
        for line in [20, 30, 40] {
            a.on_trigger(Pc(1), LineAddr(line));
        }
        for line in [0, 10, 20, 30, 40] {
            b.on_trigger(Pc(1), LineAddr(line));
        }
        assert_eq!(a.state_digest(7), b.state_digest(7), "confidence clamped");
        assert_eq!(
            a.on_trigger(Pc(1), LineAddr(50)),
            b.on_trigger(Pc(1), LineAddr(50))
        );
    }

    #[test]
    fn digest_still_separates_recency_order_and_content() {
        // Recency order is live state: with a full table it decides the
        // next eviction, so the digest must distinguish it.
        let mut a = StridePrefetcher::new(2, 1);
        let mut b = StridePrefetcher::new(2, 1);
        a.on_trigger(Pc(1), LineAddr(5));
        a.on_trigger(Pc(2), LineAddr(9));
        b.on_trigger(Pc(2), LineAddr(9));
        b.on_trigger(Pc(1), LineAddr(5));
        assert_ne!(a.state_digest(7), b.state_digest(7), "recency order");

        // Sub-threshold confidence differences still distinguish.
        let mut c = StridePrefetcher::paper_default();
        let mut d = StridePrefetcher::paper_default();
        c.on_trigger(Pc(1), LineAddr(10)); // confidence 0
        d.on_trigger(Pc(1), LineAddr(0));
        d.on_trigger(Pc(1), LineAddr(10)); // confidence 1, stride learned
        assert_ne!(c.state_digest(7), d.state_digest(7), "confidence 0 vs 1");
    }
}
